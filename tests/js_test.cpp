#include <gtest/gtest.h>

#include "js/interpreter.hpp"
#include "js/lexer.hpp"
#include "js/parser.hpp"
#include "js/stdlib.hpp"

namespace nakika::js {
namespace {

// Evaluates a script under BOTH engines — the tree-walker as the reference
// oracle and the bytecode VM as the production path — asserts they agree, and
// returns the VM's global `result`. Every test in this file is therefore also
// a differential test. If either engine throws, both must throw the same
// script_error kind (rethrown so EXPECT_THROW-style tests keep working).
value eval_result(const std::string& source, context_limits limits = {}) {
  bool tree_threw = false;
  script_error tree_err(script_error_kind::runtime, "");
  value tree_val;
  {
    context ctx(limits);
    try {
      eval_script(ctx, source, "<script>", engine_kind::tree_walker);
      tree_val = ctx.global()->get("result");
    } catch (const script_error& e) {
      tree_threw = true;
      tree_err = e;
    }
  }

  context ctx(limits);
  try {
    eval_script(ctx, source, "<script>", engine_kind::bytecode);
  } catch (const script_error& e) {
    if (!tree_threw) {
      ADD_FAILURE() << "VM threw but tree-walker did not: " << e.what();
    } else {
      EXPECT_EQ(to_string(tree_err.kind()), to_string(e.kind()))
          << "engines disagree on error kind for: " << source;
    }
    throw;
  }
  if (tree_threw) {
    ADD_FAILURE() << "tree-walker threw but VM did not: " << tree_err.what();
    throw tree_err;
  }
  const value vm_val = ctx.global()->get("result");
  EXPECT_EQ(tree_val.to_string(), vm_val.to_string()) << "engines disagree for: " << source;
  return vm_val;
}

std::string eval_str(const std::string& source) { return eval_result(source).to_string(); }
double eval_num(const std::string& source) { return eval_result(source).to_number(); }

// ----- lexer -------------------------------------------------------------------

TEST(Lexer, TokenKinds) {
  const auto tokens = tokenize("var x = 42.5; // comment\n\"str\" === x");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, token_kind::keyword);
  EXPECT_EQ(tokens[1].kind, token_kind::identifier);
  EXPECT_EQ(tokens[2].text, "=");
  EXPECT_DOUBLE_EQ(tokens[3].number, 42.5);
  EXPECT_EQ(tokens[5].kind, token_kind::string);
  EXPECT_EQ(tokens[6].text, "===");
}

TEST(Lexer, NumbersAndEscapes) {
  EXPECT_DOUBLE_EQ(tokenize("0x1F")[0].number, 31.0);
  EXPECT_DOUBLE_EQ(tokenize("1e3")[0].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokenize(".5")[0].number, 0.5);
  EXPECT_EQ(tokenize("'a\\n\\t\\x41'")[0].text, "a\n\tA");
}

TEST(Lexer, TracksLines) {
  const auto tokens = tokenize("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, RejectsMalformed) {
  EXPECT_THROW(tokenize("\"unterminated"), script_error);
  EXPECT_THROW(tokenize("/* open"), script_error);
  EXPECT_THROW(tokenize("@"), script_error);
  EXPECT_THROW(tokenize("0x"), script_error);
  EXPECT_THROW(tokenize("1e"), script_error);
}

// ----- parser ------------------------------------------------------------------

TEST(Parser, RejectsSyntaxErrors) {
  EXPECT_THROW(parse_program("var = 3;"), script_error);
  EXPECT_THROW(parse_program("if (x {"), script_error);
  EXPECT_THROW(parse_program("function () {}"), script_error);  // decl needs name
  EXPECT_THROW(parse_program("a + ;"), script_error);
  EXPECT_THROW(parse_program("3 = x;"), script_error);          // bad assign target
  EXPECT_THROW(parse_program("try {}"), script_error);          // needs catch/finally
  EXPECT_THROW(parse_program("do { } ;"), script_error);
}

TEST(Parser, ReportsLineNumbers) {
  try {
    (void)parse_program("var a = 1;\nvar b = ;\n");
    FAIL() << "expected syntax error";
  } catch (const script_error& e) {
    EXPECT_EQ(e.kind(), script_error_kind::syntax);
    EXPECT_EQ(e.line(), 2);
  }
}

// ----- interpreter: expressions ---------------------------------------------------

TEST(Interp, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval_num("result = 2 + 3 * 4;"), 14);
  EXPECT_DOUBLE_EQ(eval_num("result = (2 + 3) * 4;"), 20);
  EXPECT_DOUBLE_EQ(eval_num("result = 7 % 3;"), 1);
  EXPECT_DOUBLE_EQ(eval_num("result = -2 * -3;"), 6);
  EXPECT_DOUBLE_EQ(eval_num("result = 10 / 4;"), 2.5);
}

TEST(Interp, StringConcatCoercion) {
  EXPECT_EQ(eval_str("result = 'a' + 1 + 2;"), "a12");
  EXPECT_EQ(eval_str("result = 1 + 2 + 'a';"), "3a");
  EXPECT_EQ(eval_str("result = 'n=' + null + ' u=' + undefined;"), "n=null u=undefined");
}

TEST(Interp, Comparisons) {
  EXPECT_EQ(eval_str("result = (1 < 2) + ',' + ('b' > 'a') + ',' + (2 >= 2);"),
            "true,true,true");
  EXPECT_EQ(eval_str("result = (1 == '1') + ',' + (1 === '1');"), "true,false");
  EXPECT_EQ(eval_str("result = (null == undefined) + ',' + (null === undefined);"),
            "true,false");
  EXPECT_EQ(eval_str("result = (0 == false) + ',' + ('' == false);"), "true,true");
}

TEST(Interp, LogicalOperatorsReturnOperands) {
  EXPECT_EQ(eval_str("result = 'x' || 'y';"), "x");
  EXPECT_EQ(eval_str("result = '' || 'y';"), "y");
  EXPECT_EQ(eval_str("result = 'x' && 'y';"), "y");
  EXPECT_EQ(eval_str("result = 0 && 'y';"), "0");
}

TEST(Interp, ShortCircuitSkipsEvaluation) {
  EXPECT_EQ(eval_str("var n = 0; function f() { n++; return true; }\n"
                     "false && f(); true || f(); result = '' + n;"),
            "0");
}

TEST(Interp, BitwiseOps) {
  EXPECT_DOUBLE_EQ(eval_num("result = 12 & 10;"), 8);
  EXPECT_DOUBLE_EQ(eval_num("result = 12 | 10;"), 14);
  EXPECT_DOUBLE_EQ(eval_num("result = 12 ^ 10;"), 6);
  EXPECT_DOUBLE_EQ(eval_num("result = 1 << 4;"), 16);
  EXPECT_DOUBLE_EQ(eval_num("result = 256 >> 4;"), 16);
  EXPECT_DOUBLE_EQ(eval_num("result = ~0;"), -1);
}

TEST(Interp, TernaryAndUpdate) {
  EXPECT_EQ(eval_str("result = 5 > 3 ? 'yes' : 'no';"), "yes");
  EXPECT_DOUBLE_EQ(eval_num("var i = 5; var a = i++; result = a * 10 + i;"), 56);
  EXPECT_DOUBLE_EQ(eval_num("var i = 5; var a = ++i; result = a * 10 + i;"), 66);
  EXPECT_DOUBLE_EQ(eval_num("var i = 5; i--; --i; result = i;"), 3);
}

TEST(Interp, CompoundAssignment) {
  EXPECT_DOUBLE_EQ(eval_num("var x = 10; x += 5; x -= 3; x *= 2; x /= 4; result = x;"), 6);
  EXPECT_EQ(eval_str("var s = 'a'; s += 'b'; result = s;"), "ab");
  EXPECT_DOUBLE_EQ(eval_num("var x = 12; x &= 10; x |= 1; result = x;"), 9);
}

TEST(Interp, TypeofAndDelete) {
  EXPECT_EQ(eval_str("result = typeof 3;"), "number");
  EXPECT_EQ(eval_str("result = typeof 'x';"), "string");
  EXPECT_EQ(eval_str("result = typeof undefinedVariable;"), "undefined");
  EXPECT_EQ(eval_str("result = typeof {};"), "object");
  EXPECT_EQ(eval_str("result = typeof function() {};"), "function");
  EXPECT_EQ(eval_str("var o = {a: 1}; delete o.a; result = typeof o.a;"), "undefined");
}

// ----- interpreter: statements -----------------------------------------------------

TEST(Interp, WhileAndFor) {
  EXPECT_DOUBLE_EQ(eval_num("var s = 0; for (var i = 1; i <= 10; i++) s += i; result = s;"),
                   55);
  EXPECT_DOUBLE_EQ(eval_num("var s = 0; var i = 0; while (i < 5) { s += i; i++; } result = s;"),
                   10);
  EXPECT_DOUBLE_EQ(eval_num("var s = 0; var i = 0; do { s++; i++; } while (i < 3); result = s;"),
                   3);
}

TEST(Interp, BreakContinue) {
  EXPECT_DOUBLE_EQ(
      eval_num("var s = 0; for (var i = 0; i < 10; i++) { if (i == 5) break; s += i; } "
               "result = s;"),
      10);
  EXPECT_DOUBLE_EQ(
      eval_num("var s = 0; for (var i = 0; i < 5; i++) { if (i % 2 == 0) continue; s += i; } "
               "result = s;"),
      4);
}

TEST(Interp, ForInIteratesKeys) {
  EXPECT_EQ(eval_str("var o = {a: 1, b: 2}; var keys = ''; for (var k in o) keys += k; "
                     "result = keys;"),
            "ab");
  EXPECT_EQ(eval_str("var a = [9, 8]; var s = ''; for (var i in a) s += i; result = s;"),
            "01");
}

TEST(Interp, SwitchWithFallthrough) {
  const char* script = R"JS(
    function classify(n) {
      var out = '';
      switch (n) {
        case 1:
        case 2: out = 'small'; break;
        case 3: out = 'three';  // falls through
        case 4: out += '+four'; break;
        default: out = 'big';
      }
      return out;
    }
    result = classify(1) + ',' + classify(3) + ',' + classify(9);
  )JS";
  EXPECT_EQ(eval_str(script), "small,three+four,big");
}

TEST(Interp, TryCatchFinally) {
  EXPECT_EQ(eval_str("var r = ''; try { throw 'oops'; } catch (e) { r = e; } "
                     "finally { r += '!'; } result = r;"),
            "oops!");
  EXPECT_EQ(eval_str("var r = 'none'; try { r = 'ok'; } finally { r += '+fin'; } result = r;"),
            "ok+fin");
  // Nested rethrow.
  EXPECT_EQ(eval_str("var r = ''; try { try { throw 'inner'; } finally { r += 'f'; } } "
                     "catch (e) { r += e; } result = r;"),
            "finner");
}

TEST(Interp, UncaughtThrowSurfacesAsScriptError) {
  try {
    eval_result("throw 'kaboom';");
    FAIL() << "expected script_error";
  } catch (const script_error& e) {
    EXPECT_EQ(e.kind(), script_error_kind::thrown);
    EXPECT_NE(std::string(e.what()).find("kaboom"), std::string::npos);
  }
}

// ----- functions and closures -------------------------------------------------------

TEST(Interp, FunctionsAndRecursion) {
  EXPECT_DOUBLE_EQ(eval_num("function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); } "
                            "result = fib(15);"),
                   610);
}

TEST(Interp, ClosuresCaptureEnvironment) {
  const char* script = R"JS(
    function counter() {
      var n = 0;
      return function() { n++; return n; };
    }
    var c1 = counter();
    var c2 = counter();
    c1(); c1(); c2();
    result = '' + c1() + c2();
  )JS";
  EXPECT_EQ(eval_str(script), "32");
}

TEST(Interp, ArgumentsObjectAndMissingParams) {
  EXPECT_EQ(eval_str("function f(a, b) { return '' + a + ',' + b + ',' + arguments.length; } "
                     "result = f(1);"),
            "1,undefined,0");
  EXPECT_EQ(eval_str("function f(a) { return arguments.length; } result = '' + f(1, 2, 3);"),
            "2");
}

TEST(Interp, PrototypesAndNew) {
  const char* script = R"JS(
    function Point(x, y) { this.x = x; this.y = y; }
    Point.prototype.norm2 = function() { return this.x * this.x + this.y * this.y; };
    var p = new Point(3, 4);
    result = p.norm2();
  )JS";
  EXPECT_DOUBLE_EQ(eval_num(script), 25);
}

TEST(Interp, InstanceofAndIn) {
  const char* script = R"JS(
    function A() {}
    var a = new A();
    result = (a instanceof A) + ',' + ('x' in {x: 1}) + ',' + ('y' in {x: 1});
  )JS";
  EXPECT_EQ(eval_str(script), "true,true,false");
}

TEST(Interp, MethodThisBinding) {
  EXPECT_DOUBLE_EQ(eval_num("var o = {v: 7, get: function() { return this.v; }}; "
                            "result = o.get();"),
                   7);
}

TEST(Interp, CallDepthLimited) {
  context_limits limits;
  limits.call_depth = 50;
  EXPECT_THROW(eval_result("function f() { return f(); } f();", limits), script_error);
}

// ----- objects and arrays -------------------------------------------------------------

TEST(Interp, ArrayBasics) {
  EXPECT_DOUBLE_EQ(eval_num("var a = [1, 2, 3]; a.push(4); result = a.length + a[3];"), 8);
  EXPECT_EQ(eval_str("var a = [3, 1, 2]; a.sort(); result = a.join('-');"), "1-2-3");
  EXPECT_EQ(eval_str("var a = [1,2,3,4]; result = a.slice(1, 3).join(',');"), "2,3");
  EXPECT_EQ(eval_str("var a = [1,2]; result = a.concat([3], 4).join('');"), "1234");
  EXPECT_DOUBLE_EQ(eval_num("result = [5, 6, 7].indexOf(6);"), 1);
  EXPECT_DOUBLE_EQ(eval_num("result = [5, 6, 7].indexOf(9);"), -1);
  EXPECT_EQ(eval_str("var a = [1, 2]; a.reverse(); result = a.join('');"), "21");
  EXPECT_EQ(eval_str("var a = [1, 2, 3]; result = '' + a.pop() + a.shift() + a.length;"),
            "311");
}

TEST(Interp, ArrayGrowthAndLength) {
  EXPECT_EQ(eval_str("var a = []; a[3] = 'x'; result = '' + a.length + typeof a[0];"),
            "4undefined");
  EXPECT_DOUBLE_EQ(eval_num("var a = [1,2,3]; a.length = 1; result = a.length;"), 1);
}

TEST(Interp, SortWithComparator) {
  EXPECT_EQ(eval_str("var a = [3, 10, 2]; a.sort(function(x, y) { return x - y; }); "
                     "result = a.join(',');"),
            "2,3,10");
}

TEST(Interp, ObjectLiteralsAndIndexing) {
  EXPECT_EQ(eval_str("var o = {'a b': 1, c: {d: 'deep'}}; result = o['a b'] + o.c.d;"),
            "1deep");
  EXPECT_EQ(eval_str("var o = {}; o['k' + 1] = 'v'; result = o.k1;"), "v");
}

// ----- stdlib -------------------------------------------------------------------------

TEST(Stdlib, StringMethods) {
  EXPECT_EQ(eval_str("result = 'Hello World'.toLowerCase();"), "hello world");
  EXPECT_EQ(eval_str("result = 'hi'.toUpperCase();"), "HI");
  EXPECT_DOUBLE_EQ(eval_num("result = 'abcabc'.indexOf('c');"), 2);
  EXPECT_DOUBLE_EQ(eval_num("result = 'abcabc'.indexOf('c', 3);"), 5);
  EXPECT_DOUBLE_EQ(eval_num("result = 'abcabc'.lastIndexOf('b');"), 4);
  EXPECT_EQ(eval_str("result = 'abcdef'.substring(1, 3);"), "bc");
  EXPECT_EQ(eval_str("result = 'abcdef'.substring(3, 1);"), "bc");  // swapped
  EXPECT_EQ(eval_str("result = 'abcdef'.slice(-2);"), "ef");
  EXPECT_EQ(eval_str("result = 'a,b,,c'.split(',').join('|');"), "a|b||c");
  EXPECT_EQ(eval_str("result = 'aaa'.replace('a', 'b');"), "baa");
  EXPECT_EQ(eval_str("result = 'aaa'.replaceAll('a', 'b');"), "bbb");
  EXPECT_EQ(eval_str("result = '  x '.trim();"), "x");
  EXPECT_EQ(eval_str("result = '' + 'abc'.startsWith('ab') + 'abc'.endsWith('bc');"),
            "truetrue");
  EXPECT_EQ(eval_str("result = 'abc'.charAt(1);"), "b");
  EXPECT_DOUBLE_EQ(eval_num("result = 'A'.charCodeAt(0);"), 65);
  EXPECT_EQ(eval_str("result = 'abc'[1];"), "b");
  EXPECT_DOUBLE_EQ(eval_num("result = 'hello'.length;"), 5);
}

TEST(Stdlib, MathFunctions) {
  EXPECT_DOUBLE_EQ(eval_num("result = Math.floor(2.7) + Math.ceil(2.2) + Math.round(2.5);"),
                   8);
  EXPECT_DOUBLE_EQ(eval_num("result = Math.min(3, 1, 2) + Math.max(3, 1, 2);"), 4);
  EXPECT_DOUBLE_EQ(eval_num("result = Math.abs(-5) + Math.sqrt(16) + Math.pow(2, 3);"), 17);
  EXPECT_EQ(eval_str("var r = Math.random(); result = '' + (r >= 0 && r < 1);"), "true");
}

TEST(Stdlib, GlobalConversions) {
  EXPECT_DOUBLE_EQ(eval_num("result = parseInt('42px');"), 42);
  EXPECT_DOUBLE_EQ(eval_num("result = parseInt('ff', 16);"), 255);
  EXPECT_DOUBLE_EQ(eval_num("result = parseFloat('2.5x');"), 2.5);
  EXPECT_EQ(eval_str("result = '' + isNaN('abc') + isNaN('12');"), "truefalse");
  EXPECT_EQ(eval_str("result = String(42) + typeof Number('3');"), "42number");
}

TEST(Stdlib, JsonRoundTrip) {
  const char* script = R"JS(
    var o = {name: "nakika", n: 3, list: [1, "two", null, true], nested: {x: 1}};
    var s = JSON.stringify(o);
    var back = JSON.parse(s);
    result = back.name + back.n + back.list[1] + back.nested.x;
  )JS";
  EXPECT_EQ(eval_str(script), "nakika3two1");
}

TEST(Stdlib, JsonEscapes) {
  EXPECT_EQ(eval_str(R"JS(result = JSON.stringify({s: "a\"b\n"});)JS"),
            R"({"s":"a\"b\n"})");
  EXPECT_EQ(eval_str(R"JS(result = JSON.parse('"\\u0041\\t"');)JS"), "A\t");
}

TEST(Stdlib, JsonParseErrorsAreCatchable) {
  EXPECT_EQ(eval_str("var r = 'no'; try { JSON.parse('{bad'); } catch (e) { r = 'caught'; } "
                     "result = r;"),
            "caught");
}

TEST(Stdlib, ObjectKeys) {
  EXPECT_EQ(eval_str("result = Object.keys({a: 1, b: 2}).join(',');"), "a,b");
}

TEST(Stdlib, ByteArray) {
  const char* script = R"JS(
    var b = new ByteArray("abc");
    b.append("def");
    b.append(33);
    var s = b.slice(2, 5);
    result = b.toString() + '|' + s.toString() + '|' + b.length + '|' + b[0];
  )JS";
  EXPECT_EQ(eval_str(script), "abcdef!|cde|7|97");
}

TEST(Stdlib, RegExpVocabulary) {
  EXPECT_EQ(eval_str("var re = new RegExp('^a+b'); result = '' + re.test('aab') + "
                     "re.test('cab') + re.search('xxaab');"),
            "truefalse-1");
  EXPECT_EQ(eval_str("var r = 'no'; try { new RegExp('('); } catch (e) { r = 'caught'; } "
                     "result = r;"),
            "caught");
}

// ----- sandboxing / resource limits ------------------------------------------------------

TEST(Sandbox, OpsBudgetStopsInfiniteLoop) {
  context_limits limits;
  limits.ops = 100000;
  try {
    eval_result("while (true) {}", limits);
    FAIL() << "expected ops budget error";
  } catch (const script_error& e) {
    EXPECT_EQ(e.kind(), script_error_kind::ops_budget);
  }
}

TEST(Sandbox, HeapLimitStopsMemoryHog) {
  context_limits limits;
  limits.heap_bytes = 1 * 1024 * 1024;
  // The paper's misbehaving script: "consumes all available memory by
  // repeatedly doubling a string".
  try {
    eval_result("var s = 'x'; while (true) { s = s + s; }", limits);
    FAIL() << "expected out-of-memory error";
  } catch (const script_error& e) {
    EXPECT_EQ(e.kind(), script_error_kind::out_of_memory);
  }
}

TEST(Sandbox, HeapLimitAppliesToByteArrays) {
  context_limits limits;
  limits.heap_bytes = 64 * 1024;
  try {
    eval_result("var b = new ByteArray('xxxxxxxx'); while (true) { b.append(b); }", limits);
    FAIL() << "expected out-of-memory error";
  } catch (const script_error& e) {
    EXPECT_EQ(e.kind(), script_error_kind::out_of_memory);
  }
}

TEST(Sandbox, KillFlagTerminatesPromptly) {
  for (const engine_kind engine : {engine_kind::tree_walker, engine_kind::bytecode}) {
    context ctx;
    ctx.kill_flag()->store(true);
    try {
      eval_script(ctx, "var i = 0; while (true) { i++; }", "<script>", engine);
      FAIL() << "expected termination under " << to_string(engine);
    } catch (const script_error& e) {
      EXPECT_EQ(e.kind(), script_error_kind::terminated) << to_string(engine);
    }
  }
}

TEST(Sandbox, EngineErrorsNotCatchableByScript) {
  context_limits limits;
  limits.ops = 50000;
  // try/catch must NOT swallow the sandbox's termination errors.
  EXPECT_THROW(
      eval_result("try { while (true) {} } catch (e) { result = 'swallowed'; }", limits),
      script_error);
}

TEST(Sandbox, ContextReuseResetsCounters) {
  for (const engine_kind engine : {engine_kind::tree_walker, engine_kind::bytecode}) {
    context ctx;
    eval_script(ctx, "var x = 0; for (var i = 0; i < 1000; i++) x++;", "<script>", engine);
    const auto ops_first = ctx.ops_used();
    EXPECT_GT(ops_first, 1000u) << to_string(engine);
    ctx.reset_for_reuse();
    EXPECT_EQ(ctx.ops_used(), 0u) << to_string(engine);
    // Globals survive reuse (that is the point of reuse).
    eval_script(ctx, "result = x;", "<script>", engine);
    EXPECT_DOUBLE_EQ(ctx.global()->get("result").to_number(), 1000) << to_string(engine);
  }
}

TEST(Sandbox, RuntimeErrorsCarryKind) {
  try {
    eval_result("nonexistentFunction();");
    FAIL() << "expected runtime error";
  } catch (const script_error& e) {
    EXPECT_EQ(e.kind(), script_error_kind::runtime);
  }
  EXPECT_THROW(eval_result("null.x;"), script_error);
  EXPECT_THROW(eval_result("var x = 3; x.y = 1;"), script_error);
  EXPECT_THROW(eval_result("(3)();"), script_error);
}

// ----- property sweep: numeric edge cases -------------------------------------------------

struct num_case {
  const char* expr;
  double expected;
};
class NumericEdge : public ::testing::TestWithParam<num_case> {};
TEST_P(NumericEdge, Evaluates) {
  EXPECT_DOUBLE_EQ(eval_num(std::string("result = ") + GetParam().expr + ";"),
                   GetParam().expected);
}
INSTANTIATE_TEST_SUITE_P(
    Cases, NumericEdge,
    ::testing::Values(num_case{"0.1 + 0.2 > 0.3 - 1e-9", 1},  // truthy -> 1 via to_number
                      num_case{"5 % 0 == 5 % 0 ? 0 : 1", 1},  // NaN != NaN
                      num_case{"parseInt('  12  ')", 12},
                      num_case{"1e2 + 1", 101},
                      num_case{"0x10 + 1", 17}));

// ----- closure lifetime (tree-walker env<->closure cycle fix) -------------------
// A function declared in a local scope holds its environment via `closure`
// while the environment's slot holds the function — a shared_ptr cycle the
// tree-walker used to strand on every scope exit. The context heap counter is
// charged per live object, so a leak shows up as heap_used never returning to
// baseline. Run these under ASan/LSan (CI sanitize-engines job) to catch the
// raw memory too.

TEST(TreeWalkerClosures, LocalScopeClosuresDoNotLeak) {
  context ctx;
  eval_script(ctx, "var warm = 0;", "<warm>", engine_kind::tree_walker);
  const std::size_t baseline = ctx.heap_used();
  eval_script(ctx, R"JS(
    for (var i = 0; i < 200; i++) {
      (function () {
        function helper(n) { return n <= 1 ? 1 : n * helper(n - 1); }
        helper(6);
      })();
    }
  )JS",
              "<leak>", engine_kind::tree_walker);
  // 200 stranded closures would hold 200 * object_overhead of charged heap.
  EXPECT_LE(ctx.heap_used(), baseline + 512);
}

TEST(TreeWalkerClosures, MutuallyRecursiveLocalClosuresDoNotLeak) {
  context ctx;
  eval_script(ctx, "var warm = 0;", "<warm>", engine_kind::tree_walker);
  const std::size_t baseline = ctx.heap_used();
  eval_script(ctx, R"JS(
    for (var i = 0; i < 100; i++) {
      (function () {
        function even(n) { return n == 0 ? true : odd(n - 1); }
        function odd(n) { return n == 0 ? false : even(n - 1); }
        if (!even(8)) { throw "wrong answer"; }
      })();
    }
  )JS",
              "<leak>", engine_kind::tree_walker);
  EXPECT_LE(ctx.heap_used(), baseline + 512);
}

TEST(TreeWalkerClosures, BlockScopedClosuresDoNotLeak) {
  context ctx;
  eval_script(ctx, "var warm = 0;", "<warm>", engine_kind::tree_walker);
  const std::size_t baseline = ctx.heap_used();
  eval_script(ctx, R"JS(
    for (var i = 0; i < 100; i++) {
      {
        function shadowed(x) { return x + 1; }
        shadowed(i);
      }
    }
  )JS",
              "<leak>", engine_kind::tree_walker);
  EXPECT_LE(ctx.heap_used(), baseline + 512);
}

// The cycle breaker must never fire for closures that escape their scope:
// escaped functions keep their environment (and stay callable), verified
// through both engines by the differential harness.

TEST(TreeWalkerClosures, EscapingClosureKeepsCaptures) {
  EXPECT_DOUBLE_EQ(eval_num(R"JS(
    function make(n) {
      var extra = 10;
      return function (m) { return n + extra + m; };
    }
    var f = make(5);
    result = f(1) + f(2);
  )JS"),
                   33.0);
}

TEST(TreeWalkerClosures, EscapedNamedHelperStaysRecursive) {
  EXPECT_DOUBLE_EQ(eval_num(R"JS(
    function make() {
      function helper(n) { return n <= 1 ? 1 : n * helper(n - 1); }
      return helper;
    }
    var f = make();
    result = f(5);
  )JS"),
                   120.0);
}

TEST(TreeWalkerClosures, ClosureStoredInObjectSurvives) {
  EXPECT_EQ(eval_str(R"JS(
    var holder = {};
    (function () {
      function tag(s) { return "[" + s + "]"; }
      holder.tag = tag;
    })();
    result = holder.tag("kept");
  )JS"),
            "[kept]");
}

}  // namespace
}  // namespace nakika::js
