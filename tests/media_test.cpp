#include <gtest/gtest.h>

#include "media/image.hpp"
#include "media/xml.hpp"
#include "media/xsl.hpp"

namespace nakika::media {
namespace {

// ----- image -------------------------------------------------------------------

TEST(Image, EncodeDecodeRoundTrip) {
  const image img = make_test_image(16, 9, 42);
  const auto encoded = encode(img, image_format::jpeg);
  const decode_result d = decode(encoded.span());
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_EQ(d.format, image_format::jpeg);
  EXPECT_EQ(d.img.width, 16u);
  EXPECT_EQ(d.img.height, 9u);
  EXPECT_EQ(d.img.pixels, img.pixels);
}

TEST(Image, HeaderOnlyReads) {
  const auto encoded = encode(make_test_image(33, 21, 1), image_format::png);
  const auto dims = read_dimensions(encoded.span());
  ASSERT_TRUE(dims.has_value());
  EXPECT_EQ(dims->width, 33u);
  EXPECT_EQ(dims->height, 21u);
  EXPECT_EQ(read_format(encoded.span()), image_format::png);
}

TEST(Image, DecodeRejectsGarbage) {
  const util::byte_buffer junk("not an image at all, definitely");
  EXPECT_FALSE(decode(junk.span()).ok);
  EXPECT_FALSE(read_dimensions(junk.span()).has_value());
  // Truncated pixel data.
  auto encoded = encode(make_test_image(10, 10, 1), image_format::raw);
  const auto truncated = encoded.slice(0, encoded.size() - 10);
  EXPECT_FALSE(decode(truncated.span()).ok);
}

TEST(Image, MimeMapping) {
  EXPECT_EQ(format_from_mime("image/jpeg"), image_format::jpeg);
  EXPECT_EQ(format_from_mime(" IMAGE/GIF "), image_format::gif);
  EXPECT_FALSE(format_from_mime("text/html").has_value());
  EXPECT_FALSE(format_from_mime("image/webp").has_value());
  EXPECT_EQ(mime_from_format(image_format::png), "image/png");
  EXPECT_EQ(format_from_name("jpg"), image_format::jpeg);
}

TEST(Image, ScalePreservesGradientStructure) {
  // The test image has a horizontal red gradient; scaling keeps it monotone.
  const image src = make_test_image(64, 64, 3);
  const image dst = scale_bilinear(src, 16, 16);
  EXPECT_EQ(dst.width, 16u);
  EXPECT_TRUE(dst.valid());
  const auto red_at = [&](std::uint32_t x) { return dst.pixels[(8 * 16 + x) * 3]; };
  EXPECT_LT(red_at(0), red_at(8));
  EXPECT_LT(red_at(8), red_at(15));
}

TEST(Image, ScaleEdgeCases) {
  const image src = make_test_image(10, 10, 1);
  const image one = scale_bilinear(src, 1, 1);
  EXPECT_EQ(one.pixels.size(), 3u);
  const image up = scale_bilinear(src, 20, 5);
  EXPECT_EQ(up.width, 20u);
  EXPECT_EQ(up.height, 5u);
  EXPECT_THROW((void)scale_bilinear(src, 0, 5), std::invalid_argument);
  image invalid;
  EXPECT_THROW((void)scale_bilinear(invalid, 5, 5), std::invalid_argument);
}

TEST(Image, TranscodeFitsNokiaScreen) {
  // The paper's Fig. 2 example: fit within 176x208.
  const auto big = encode(make_test_image(1024, 768, 9), image_format::png);
  const auto result = transcode_to_fit(big.span(), image_format::jpeg, 176, 208);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_LE(result.dims.width, 176u);
  EXPECT_LE(result.dims.height, 208u);
  // Aspect ratio preserved: 1024/768 = 4:3 -> 176x132.
  EXPECT_EQ(result.dims.width, 176u);
  EXPECT_EQ(result.dims.height, 132u);
  EXPECT_EQ(read_format(result.data.span()), image_format::jpeg);
}

TEST(Image, TranscodeNeverUpscales) {
  const auto small = encode(make_test_image(100, 50, 2), image_format::gif);
  const auto result = transcode_to_fit(small.span(), image_format::jpeg, 176, 208);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.dims.width, 100u);
  EXPECT_EQ(result.dims.height, 50u);
}

TEST(Image, TranscodeRejectsBadInput) {
  const util::byte_buffer junk("zzz");
  EXPECT_FALSE(transcode_to_fit(junk.span(), image_format::jpeg, 10, 10).ok);
  const auto good = encode(make_test_image(4, 4, 1), image_format::raw);
  EXPECT_FALSE(transcode_to_fit(good.span(), image_format::jpeg, 0, 10).ok);
}

// Parameterized sweep: every source/target size combination stays in bounds.
struct fit_case {
  std::uint32_t sw, sh, mw, mh;
};
class TranscodeFit : public ::testing::TestWithParam<fit_case> {};
TEST_P(TranscodeFit, FitsWithinBox) {
  const auto p = GetParam();
  const auto data = encode(make_test_image(p.sw, p.sh, 7), image_format::jpeg);
  const auto result = transcode_to_fit(data.span(), image_format::jpeg, p.mw, p.mh);
  ASSERT_TRUE(result.ok);
  EXPECT_LE(result.dims.width, p.mw);
  EXPECT_LE(result.dims.height, p.mh);
  EXPECT_GE(result.dims.width, 1u);
  EXPECT_GE(result.dims.height, 1u);
}
INSTANTIATE_TEST_SUITE_P(Sizes, TranscodeFit,
                         ::testing::Values(fit_case{640, 480, 176, 208},
                                           fit_case{480, 640, 176, 208},
                                           fit_case{2000, 100, 176, 208},
                                           fit_case{100, 2000, 176, 208},
                                           fit_case{176, 208, 176, 208},
                                           fit_case{177, 208, 176, 208},
                                           fit_case{1, 1, 176, 208}));

// ----- xml ----------------------------------------------------------------------

TEST(Xml, ParsesElementsAttributesText) {
  const auto root = parse_xml("<a x=\"1\" y='2'><b>hi</b><c/>tail</a>");
  EXPECT_EQ(root->name, "a");
  EXPECT_EQ(*root->attr("x"), "1");
  EXPECT_EQ(*root->attr("y"), "2");
  EXPECT_EQ(root->attr("z"), nullptr);
  ASSERT_EQ(root->children.size(), 3u);
  EXPECT_EQ(root->child("b")->inner_text(), "hi");
  EXPECT_EQ(root->child("c")->children.size(), 0u);
  EXPECT_EQ(root->inner_text(), "hitail");
}

TEST(Xml, HandlesPrologCommentsCdata) {
  const auto root = parse_xml(
      "<?xml version=\"1.0\"?><!-- c --><root><!-- inner --><![CDATA[<raw>]]></root>");
  EXPECT_EQ(root->name, "root");
  EXPECT_EQ(root->inner_text(), "<raw>");
}

TEST(Xml, DecodesEntities) {
  const auto root = parse_xml("<a>&lt;x&gt; &amp; &quot;q&quot; &apos;s&apos; &#65;</a>");
  EXPECT_EQ(root->inner_text(), "<x> & \"q\" 's' A");
}

TEST(Xml, SerializeRoundTrip) {
  const char* doc = "<a x=\"1\"><b>t &amp; u</b><c/></a>";
  const auto root = parse_xml(doc);
  const std::string out = serialize_xml(*root);
  const auto reparsed = parse_xml(out);
  EXPECT_EQ(serialize_xml(*reparsed), out);
  EXPECT_EQ(reparsed->child("b")->inner_text(), "t & u");
}

TEST(Xml, RejectsMalformed) {
  EXPECT_THROW(parse_xml("<a><b></a>"), std::invalid_argument);
  EXPECT_THROW(parse_xml("<a"), std::invalid_argument);
  EXPECT_THROW(parse_xml("<a attr></a>"), std::invalid_argument);
  EXPECT_THROW(parse_xml("<a>&bogus;</a>"), std::invalid_argument);
  EXPECT_THROW(parse_xml("<a></a><b></b>"), std::invalid_argument);
  EXPECT_THROW(parse_xml("<a x=\"unterminated></a>"), std::invalid_argument);
}

TEST(Xml, ChildQueries) {
  const auto root = parse_xml("<r><s>1</s><s>2</s><t>3</t></r>");
  EXPECT_EQ(root->children_named("s").size(), 2u);
  EXPECT_EQ(root->child("t")->inner_text(), "3");
  EXPECT_EQ(root->child("missing"), nullptr);
}

// ----- xsl ----------------------------------------------------------------------

TEST(Xsl, ValueOfAndForEach) {
  const char* sheet = R"(<xsl:stylesheet version="1.0">
    <xsl:template match="doc">
      <ul><xsl:for-each select="item"><li><xsl:value-of select="."/></li></xsl:for-each></ul>
    </xsl:template>
  </xsl:stylesheet>)";
  const char* doc = "<doc><item>a</item><item>b</item></doc>";
  // Whitespace-only text between elements is dropped by the parser.
  EXPECT_EQ(xsl_transform(sheet, doc), "<ul><li>a</li><li>b</li></ul>");
}

TEST(Xsl, AttributeSelectAndPaths) {
  const char* sheet = R"(<xsl:stylesheet version="1.0">
    <xsl:template match="doc"><xsl:value-of select="meta/@id"/>:<xsl:value-of select="meta/title"/></xsl:template>
  </xsl:stylesheet>)";
  const char* doc = "<doc><meta id=\"7\"><title>T</title></meta></doc>";
  EXPECT_EQ(xsl_transform(sheet, doc), "7:T");
}

TEST(Xsl, ApplyTemplatesRecursion) {
  const char* sheet = R"(<xsl:stylesheet version="1.0">
    <xsl:template match="doc"><div><xsl:apply-templates select="sec"/></div></xsl:template>
    <xsl:template match="sec"><p><xsl:value-of select="."/></p></xsl:template>
  </xsl:stylesheet>)";
  const char* doc = "<doc><sec>one</sec><sec>two</sec></doc>";
  EXPECT_EQ(xsl_transform(sheet, doc), "<div><p>one</p><p>two</p></div>");
}

TEST(Xsl, LiteralElementsCopyAttributes) {
  const char* sheet = R"(<xsl:stylesheet version="1.0">
    <xsl:template match="d"><a href="x">link</a><br/></xsl:template>
  </xsl:stylesheet>)";
  EXPECT_EQ(xsl_transform(sheet, "<d/>"), "<a href=\"x\">link</a><br/>");
}

TEST(Xsl, EscapesOutputText) {
  const char* sheet = R"(<xsl:stylesheet version="1.0">
    <xsl:template match="d"><xsl:value-of select="."/></xsl:template>
  </xsl:stylesheet>)";
  EXPECT_EQ(xsl_transform(sheet, "<d>a &lt; b</d>"), "a &lt; b");
}

TEST(Xsl, RejectsInvalidStylesheets) {
  EXPECT_THROW(xsl_stylesheet::parse("<notasheet/>"), std::invalid_argument);
  EXPECT_THROW(xsl_stylesheet::parse("<xsl:stylesheet version=\"1.0\"/>"),
               std::invalid_argument);
  EXPECT_THROW(xsl_stylesheet::parse(
                   "<xsl:stylesheet version=\"1.0\"><xsl:template>x</xsl:template>"
                   "</xsl:stylesheet>"),
               std::invalid_argument);
  const char* unsupported = R"(<xsl:stylesheet version="1.0">
    <xsl:template match="d"><xsl:choose/></xsl:template>
  </xsl:stylesheet>)";
  EXPECT_THROW(xsl_transform(unsupported, "<d/>"), std::invalid_argument);
}

TEST(Xsl, BuiltInRuleRecursesUnmatched) {
  const char* sheet = R"(<xsl:stylesheet version="1.0">
    <xsl:template match="leaf">[L]</xsl:template>
  </xsl:stylesheet>)";
  // <root> has no rule: built-in recursion descends to <leaf>.
  EXPECT_EQ(xsl_transform(sheet, "<root><mid><leaf>x</leaf></mid>t</root>"), "[L]t");
}

}  // namespace
}  // namespace nakika::media
