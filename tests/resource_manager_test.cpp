// Tests for the congestion controller (paper Fig. 6): congestion detection,
// proportional throttling, termination of the top offender, renewable vs
// nonrenewable accounting, EWMA contributions, and — since the node grew a
// worker pool — cross-thread accounting and kill-flag delivery.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/resource_manager.hpp"
#include "js/errors.hpp"
#include "js/interpreter.hpp"

namespace nakika::core {
namespace {

resource_capacities small_caps() {
  resource_capacities caps;
  caps.cpu_seconds_per_second = 1.0;
  caps.memory_bytes_per_second = 1000;
  caps.bandwidth_bytes_per_second = 1000;
  caps.congestion_threshold = 0.9;
  return caps;
}

TEST(ResourceKinds, RenewableClassification) {
  EXPECT_TRUE(is_renewable(resource_kind::cpu));
  EXPECT_TRUE(is_renewable(resource_kind::memory));
  EXPECT_TRUE(is_renewable(resource_kind::bandwidth));
  EXPECT_FALSE(is_renewable(resource_kind::running_time));
  EXPECT_FALSE(is_renewable(resource_kind::total_bytes));
  EXPECT_STREQ(to_string(resource_kind::cpu), "cpu");
}

TEST(ResourceManager, NoCongestionNoThrottle) {
  resource_manager rm(small_caps());
  rm.record("siteA", resource_kind::cpu, 0.1);  // 10% over a 1s interval
  EXPECT_FALSE(rm.control_phase1(resource_kind::cpu, 1.0));
  EXPECT_FALSE(rm.is_throttled("siteA"));
  util::rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(rm.admit("siteA", rng));
}

TEST(ResourceManager, CongestionStartsProportionalThrottling) {
  resource_manager rm(small_caps());
  rm.record("hog", resource_kind::cpu, 1.8);
  rm.record("small", resource_kind::cpu, 0.2);
  EXPECT_TRUE(rm.control_phase1(resource_kind::cpu, 1.0));  // 200% utilization
  EXPECT_TRUE(rm.is_throttled("hog"));
  EXPECT_TRUE(rm.is_throttled("small"));

  // Rejection probability tracks the contribution share: the hog (90%)
  // must be rejected far more often than the small site (10%).
  util::rng rng(2);
  int hog_rejected = 0;
  int small_rejected = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!rm.admit("hog", rng)) ++hog_rejected;
    if (!rm.admit("small", rng)) ++small_rejected;
  }
  EXPECT_GT(hog_rejected, 800);
  EXPECT_LT(small_rejected, 250);
  EXPECT_GT(rm.throttle_rejections(), 0u);
}

TEST(ResourceManager, Phase2TerminatesTopOffenderWhenStillCongested) {
  resource_manager rm(small_caps());
  auto hog_flag = std::make_shared<std::atomic<bool>>(false);
  auto small_flag = std::make_shared<std::atomic<bool>>(false);
  rm.pipeline_started("hog", hog_flag);
  rm.pipeline_started("small", small_flag);

  rm.record("hog", resource_kind::cpu, 1.8);
  rm.record("small", resource_kind::cpu, 0.2);
  ASSERT_TRUE(rm.control_phase1(resource_kind::cpu, 1.0));

  // Still congested during the wait: the hog keeps burning.
  rm.record("hog", resource_kind::cpu, 0.9);
  const control_outcome outcome = rm.control_phase2(resource_kind::cpu, 1.5);
  EXPECT_TRUE(outcome.congested_after);
  EXPECT_EQ(outcome.terminated_site, "hog");
  EXPECT_EQ(outcome.pipelines_killed, 1u);
  EXPECT_TRUE(hog_flag->load());
  EXPECT_FALSE(small_flag->load());
  EXPECT_EQ(rm.terminations(), 1u);
}

TEST(ResourceManager, Phase2UnthrottlesWhenRelieved) {
  resource_manager rm(small_caps());
  rm.record("a", resource_kind::cpu, 2.0);
  ASSERT_TRUE(rm.control_phase1(resource_kind::cpu, 1.0));
  EXPECT_TRUE(rm.is_throttled("a"));
  // No new consumption during the wait: congestion relieved.
  const control_outcome outcome = rm.control_phase2(resource_kind::cpu, 1.5);
  EXPECT_FALSE(outcome.congested_after);
  EXPECT_TRUE(outcome.terminated_site.empty());
  EXPECT_FALSE(rm.is_throttled("a"));
}

TEST(ResourceManager, TerminationCanBeDisabled) {
  resource_manager rm(small_caps());
  rm.set_termination_enabled(false);
  auto flag = std::make_shared<std::atomic<bool>>(false);
  rm.pipeline_started("hog", flag);
  rm.record("hog", resource_kind::cpu, 5.0);
  rm.control_phase1(resource_kind::cpu, 1.0);
  rm.record("hog", resource_kind::cpu, 5.0);
  const control_outcome outcome = rm.control_phase2(resource_kind::cpu, 1.5);
  EXPECT_TRUE(outcome.congested_after);
  EXPECT_TRUE(outcome.terminated_site.empty());
  EXPECT_FALSE(flag->load());
}

TEST(ResourceManager, NonrenewableTrackedWithoutCongestion) {
  resource_manager rm(small_caps());
  rm.record("a", resource_kind::total_bytes, 1e12);  // absurd volume
  EXPECT_FALSE(rm.control_phase1(resource_kind::total_bytes, 1.0));
  // Usage EWMA updated even without congestion: contribution is recorded.
  EXPECT_GT(rm.contribution("a", resource_kind::total_bytes), 0.9);
  EXPECT_FALSE(rm.is_throttled("a"));
}

TEST(ResourceManager, RenewableContributionOnlyUnderOverutilization) {
  resource_manager rm(small_caps());
  rm.record("a", resource_kind::cpu, 0.1);  // far below capacity
  rm.control_phase1(resource_kind::cpu, 1.0);
  EXPECT_DOUBLE_EQ(rm.contribution("a", resource_kind::cpu), 0.0);
  // Under congestion the contribution updates.
  rm.record("a", resource_kind::cpu, 2.0);
  rm.control_phase1(resource_kind::cpu, 2.0);
  EXPECT_GT(rm.contribution("a", resource_kind::cpu), 0.9);
}

TEST(ResourceManager, ContributionIsWeightedAverage) {
  resource_manager rm(small_caps(), /*ewma_alpha=*/0.5);
  rm.record("a", resource_kind::cpu, 2.0);  // 100% of congestion
  rm.control_phase1(resource_kind::cpu, 1.0);
  EXPECT_DOUBLE_EQ(rm.contribution("a", resource_kind::cpu), 1.0);
  // Next interval, a is quiet but b hogs: a's contribution halves (EWMA),
  // allowing recovery from past penalization.
  rm.record("b", resource_kind::cpu, 2.0);
  rm.control_phase1(resource_kind::cpu, 2.0);
  EXPECT_DOUBLE_EQ(rm.contribution("a", resource_kind::cpu), 0.5);
  EXPECT_DOUBLE_EQ(rm.contribution("b", resource_kind::cpu), 1.0);
}

TEST(ResourceManager, PipelineRegistrationLifecycle) {
  resource_manager rm(small_caps());
  auto f1 = std::make_shared<std::atomic<bool>>(false);
  auto f2 = std::make_shared<std::atomic<bool>>(false);
  rm.pipeline_started("s", f1);
  rm.pipeline_started("s", f2);
  EXPECT_EQ(rm.active_pipelines("s"), 2u);
  rm.pipeline_finished("s", f1);
  EXPECT_EQ(rm.active_pipelines("s"), 1u);
  rm.pipeline_finished("s", f2);
  EXPECT_EQ(rm.active_pipelines("s"), 0u);
  EXPECT_EQ(rm.active_pipelines("unknown"), 0u);
}

TEST(ResourceManager, ViewForScripts) {
  resource_manager rm(small_caps());
  rm.record("a", resource_kind::cpu, 2.0);
  rm.control_phase1(resource_kind::cpu, 1.0);
  const resource_view v = rm.view_for("a");
  EXPECT_GT(v.cpu_congestion, 1.0);
  EXPECT_TRUE(v.throttled);
  EXPECT_GT(v.site_contribution, 0.9);
  const resource_view other = rm.view_for("unknown-site");
  EXPECT_FALSE(other.throttled);
  EXPECT_DOUBLE_EQ(other.site_contribution, 0.0);
}

TEST(ResourceManager, NegativeAmountsIgnored) {
  resource_manager rm(small_caps());
  rm.record("a", resource_kind::cpu, -5.0);
  EXPECT_FALSE(rm.control_phase1(resource_kind::cpu, 1.0));
}

// ----- cross-thread accounting (multi-worker node) ------------------------------

TEST(ResourceManagerConcurrent, ChargesFromManyThreadsAggregateExactly) {
  resource_manager rm(small_caps());
  constexpr int k_threads = 8;
  constexpr int k_charges = 1000;
  std::vector<std::thread> workers;
  workers.reserve(k_threads);
  for (int t = 0; t < k_threads; ++t) {
    workers.emplace_back([&rm, t] {
      const std::string site = (t % 2 == 0) ? "even.org" : "odd.org";
      for (int i = 0; i < k_charges; ++i) {
        rm.record(site, resource_kind::cpu, 0.001);
        rm.record(site, resource_kind::total_bytes, 100.0);
      }
    });
  }
  for (auto& w : workers) w.join();

  // 8 threads x 1000 x 1ms = 8 CPU-seconds over a 1-second interval: the
  // monitor's aggregation must see every charge (no lost updates).
  EXPECT_TRUE(rm.control_phase1(resource_kind::cpu, 1.0));
  EXPECT_NEAR(rm.utilization(resource_kind::cpu), 8.0, 1e-6);
  rm.control_phase1(resource_kind::total_bytes, 1.0);
  EXPECT_NEAR(rm.contribution("even.org", resource_kind::total_bytes), 0.5, 1e-9);
  EXPECT_NEAR(rm.contribution("odd.org", resource_kind::total_bytes), 0.5, 1e-9);
}

TEST(ResourceManagerConcurrent, AdmitAndChargeRaceStaysConsistent) {
  resource_manager rm(small_caps());
  // Pre-throttle the site so concurrent admits exercise the rejection path.
  rm.record("busy.org", resource_kind::cpu, 5.0);
  rm.control_phase1(resource_kind::cpu, 1.0);
  ASSERT_TRUE(rm.is_throttled("busy.org"));

  constexpr int k_threads = 8;
  std::atomic<int> admitted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < k_threads; ++t) {
    workers.emplace_back([&, t] {
      util::rng rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 500; ++i) {
        if (rm.admit("busy.org", rng)) {
          admitted.fetch_add(1);
          rm.record("busy.org", resource_kind::cpu, 0.0001);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(admitted.load() + rejected.load(), k_threads * 500);
  EXPECT_EQ(rm.throttle_rejections(), static_cast<std::uint64_t>(rejected.load()));
  // Contribution ~1.0: rejections must dominate for the sole hot site.
  EXPECT_GT(rejected.load(), admitted.load());
}

TEST(ResourceManagerConcurrent, PipelineRegistrationFromManyThreads) {
  resource_manager rm(small_caps());
  constexpr int k_threads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < k_threads; ++t) {
    workers.emplace_back([&rm] {
      for (int i = 0; i < 200; ++i) {
        auto flag = std::make_shared<std::atomic<bool>>(false);
        rm.pipeline_started("s.org", flag);
        rm.pipeline_finished("s.org", flag);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(rm.active_pipelines("s.org"), 0u);
}

TEST(ResourceManagerConcurrent, MonitorKillFlagStopsVmLoopOnAnotherThread) {
  resource_manager rm(small_caps());

  // A VM spinning `while (true) {}` on a worker thread, registered with the
  // manager exactly like a node pipeline. Ops are unlimited so only the kill
  // flag (checked at loop back-edges) can stop it.
  js::context_limits limits;
  limits.ops = 0;
  js::context ctx(limits);
  rm.pipeline_started("hog.org", ctx.kill_flag());

  std::atomic<bool> script_ended{false};
  js::script_error_kind observed = js::script_error_kind::runtime;
  std::thread vm_thread([&] {
    try {
      js::eval_script(ctx, "while (true) {}", "<spin>", js::engine_kind::bytecode);
    } catch (const js::script_error& e) {
      observed = e.kind();
    }
    script_ended.store(true);
  });

  // Drive CONTROL from this thread: congestion at phase 1, still congested at
  // phase 2 -> terminate the top offender, setting its kill flag.
  rm.record("hog.org", resource_kind::cpu, 5.0);
  ASSERT_TRUE(rm.control_phase1(resource_kind::cpu, 1.0));
  rm.record("hog.org", resource_kind::cpu, 5.0);
  const control_outcome outcome = rm.control_phase2(resource_kind::cpu, 1.5);
  EXPECT_EQ(outcome.terminated_site, "hog.org");
  EXPECT_EQ(outcome.pipelines_killed, 1u);

  vm_thread.join();
  EXPECT_TRUE(script_ended.load());
  EXPECT_EQ(observed, js::script_error_kind::terminated);
  rm.pipeline_finished("hog.org", ctx.kill_flag());
  EXPECT_EQ(rm.active_pipelines("hog.org"), 0u);
}

TEST(ResourceManager, TerminatedSiteStaysThrottled) {
  resource_manager rm(small_caps());
  auto flag = std::make_shared<std::atomic<bool>>(false);
  rm.pipeline_started("hog", flag);
  rm.record("hog", resource_kind::cpu, 3.0);
  rm.control_phase1(resource_kind::cpu, 1.0);
  rm.record("hog", resource_kind::cpu, 3.0);
  rm.control_phase2(resource_kind::cpu, 1.5);
  // Admission for the terminated site is fully blocked until it recovers.
  util::rng rng(3);
  int admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (rm.admit("hog", rng)) ++admitted;
  }
  EXPECT_EQ(admitted, 0);
}

}  // namespace
}  // namespace nakika::core
