#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "overlay/clusters.hpp"
#include "overlay/dht.hpp"
#include "overlay/node_id.hpp"
#include "overlay/redirector.hpp"
#include "overlay/routing_table.hpp"
#include "sim/topology.hpp"
#include "util/ebr.hpp"

namespace nakika::overlay {
namespace {

// ----- node_id ------------------------------------------------------------------

TEST(NodeId, HashIsDeterministicAndDistinct) {
  EXPECT_EQ(node_id::hash_of("a"), node_id::hash_of("a"));
  EXPECT_NE(node_id::hash_of("a"), node_id::hash_of("b"));
  EXPECT_EQ(node_id::hash_of("a").hex().size(), 40u);
}

TEST(NodeId, XorMetricProperties) {
  const node_id a = node_id::hash_of("a");
  const node_id b = node_id::hash_of("b");
  EXPECT_EQ(a.distance_to(a), node_id{});
  EXPECT_EQ(a.distance_to(b), b.distance_to(a));  // symmetry
  EXPECT_EQ(a.bucket_index(a), -1);
  const int bucket = a.bucket_index(b);
  EXPECT_GE(bucket, 0);
  EXPECT_LT(bucket, 160);
}

TEST(NodeId, BucketIndexMatchesHighBit) {
  std::array<std::uint8_t, node_id::bytes> raw{};
  const node_id zero(raw);
  raw[0] = 0x80;
  EXPECT_EQ(zero.bucket_index(node_id(raw)), 159);
  raw[0] = 0;
  raw[19] = 0x01;
  EXPECT_EQ(zero.bucket_index(node_id(raw)), 0);
}

// ----- routing table -------------------------------------------------------------

TEST(RoutingTable, ObserveAndClosest) {
  const node_id owner = node_id::hash_of("owner");
  routing_table table(owner, 4);
  for (int i = 0; i < 64; ++i) {
    table.observe({node_id::hash_of("n" + std::to_string(i)),
                   static_cast<std::uint32_t>(i)});
  }
  EXPECT_GT(table.size(), 0u);
  const node_id target = node_id::hash_of("target");
  const auto closest = table.closest(target, 5);
  ASSERT_LE(closest.size(), 5u);
  // Results are sorted by XOR distance.
  for (std::size_t i = 1; i < closest.size(); ++i) {
    EXPECT_LE(closest[i - 1].id.distance_to(target), closest[i].id.distance_to(target));
  }
}

TEST(RoutingTable, NeverStoresSelfAndHonorsCapacity) {
  const node_id owner = node_id::hash_of("owner");
  routing_table table(owner, 2);
  EXPECT_FALSE(table.observe({owner, 0}));
  // Same bucket can hold at most k entries; extras are dropped.
  std::size_t inserted = 0;
  for (int i = 0; i < 500; ++i) {
    if (table.observe({node_id::hash_of("x" + std::to_string(i)), 1})) ++inserted;
  }
  EXPECT_LT(inserted, 500u);
}

TEST(RoutingTable, RemoveDeadContacts) {
  routing_table table(node_id::hash_of("owner"), 4);
  const contact c{node_id::hash_of("peer"), 9};
  table.observe(c);
  EXPECT_TRUE(table.remove(c.id));
  EXPECT_FALSE(table.remove(c.id));
}

// ----- sloppy dht ------------------------------------------------------------------

struct dht_fixture : ::testing::Test {
  sim::event_loop loop;
  sim::network net{loop};
  std::vector<sim::node_id> hosts;

  void build_mesh(int n) {
    std::vector<sim::link_id> nics;
    for (int i = 0; i < n; ++i) {
      hosts.push_back(net.add_node("h" + std::to_string(i)));
      nics.push_back(net.add_link(12.5e6));
    }
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        net.set_route(hosts[i], hosts[j], 0.005, {nics[i], nics[j]});
      }
    }
  }
};

TEST_F(dht_fixture, PutThenGetFindsValue) {
  build_mesh(12);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();  // settle joins

  bool put_done = false;
  dht.put(members[0], "http://a/x", "holder-0", 1000, [&](int) { put_done = true; });
  loop.run();
  EXPECT_TRUE(put_done);

  std::vector<std::string> found;
  int hops = -1;
  dht.get(members[7], "http://a/x", [&](std::vector<std::string> v, int h) {
    found = std::move(v);
    hops = h;
  });
  loop.run();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], "holder-0");
  EXPECT_GE(hops, 0);
}

TEST_F(dht_fixture, MissingKeyReturnsEmpty) {
  build_mesh(8);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  bool called = false;
  dht.get(members[2], "http://nothing", [&](std::vector<std::string> v, int) {
    called = true;
    EXPECT_TRUE(v.empty());
  });
  loop.run();
  EXPECT_TRUE(called);
}

TEST_F(dht_fixture, ValuesExpire) {
  build_mesh(6);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  dht.put(members[0], "k", "v", 10, [](int) {});
  loop.run();
  loop.run_until(20.0);  // virtual time past the expiry

  bool called = false;
  dht.get(members[1], "k", [&](std::vector<std::string> v, int) {
    called = true;
    EXPECT_TRUE(v.empty());
  });
  loop.run();
  EXPECT_TRUE(called);
}

TEST_F(dht_fixture, MultipleValuesPerKey) {
  build_mesh(10);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  for (int i = 0; i < 3; ++i) {
    dht.put(members[static_cast<std::size_t>(i)], "shared", "holder-" + std::to_string(i),
            1000, [](int) {});
  }
  loop.run();

  std::vector<std::string> found;
  dht.get(members[9], "shared", [&](std::vector<std::string> v, int) { found = std::move(v); });
  loop.run();
  EXPECT_GE(found.size(), 1u);  // sloppiness may spread values across nodes
}

TEST_F(dht_fixture, LocalStoreAnswersWithZeroHops) {
  build_mesh(6);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  // Force a value into member 3's local store, then get from member 3.
  dht.put(members[3], "k3", "v3", 1000, [](int) {});
  loop.run();
  // Find who actually stores it; if member 3 does, the get is local.
  const auto local = dht.stored_at(members[3], "k3", 0);
  std::vector<std::string> found;
  int hops = -1;
  dht.get(members[3], "k3", [&](std::vector<std::string> v, int h) {
    found = std::move(v);
    hops = h;
  });
  loop.run();
  ASSERT_FALSE(found.empty());
  if (!local.empty()) {
    EXPECT_EQ(hops, 0);
  }
}

TEST_F(dht_fixture, DeadNodeDoesNotWedgeLookups) {
  build_mesh(8);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();
  dht.put(members[0], "k", "v", 1000, [](int) {});
  loop.run();

  dht.leave(members[2]);
  dht.leave(members[5]);
  bool called = false;
  dht.get(members[7], "k", [&](std::vector<std::string>, int) { called = true; });
  loop.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(dht.member_count(), 6u);
}

// ----- synchronous (thread-safe) dht api --------------------------------------------

TEST_F(dht_fixture, SyncPutThenGetFindsValue) {
  build_mesh(12);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();  // settle joins

  const int put_hops = dht.put_now(members[0], "http://a/x", "holder-0", 1000, 0);
  EXPECT_GE(put_hops, 1);

  const sloppy_dht::sync_result found = dht.get_now(members[7], "http://a/x", 0);
  ASSERT_EQ(found.values.size(), 1u);
  EXPECT_EQ(found.values[0], "holder-0");
  EXPECT_GE(found.hops, 0);
  // The walk accounts the virtual cost the sim would have billed (5 ms
  // one-way mesh routes), unless the value happened to land locally.
  if (found.hops > 0) {
    EXPECT_GT(found.latency_seconds, 0.0);
  }
}

TEST_F(dht_fixture, SyncGetHonorsTtl) {
  build_mesh(6);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  dht.put_now(members[0], "k", "v", /*expires_at=*/10, /*now=*/0);
  EXPECT_FALSE(dht.get_now(members[1], "k", 5).values.empty());
  EXPECT_TRUE(dht.get_now(members[1], "k", 20).values.empty());
}

TEST_F(dht_fixture, SyncBoundsPerKeyValueLists) {
  build_mesh(8);
  dht_config cfg;
  cfg.max_values_per_key = 3;
  sloppy_dht dht(net, cfg);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  for (int i = 0; i < 40; ++i) {
    dht.put_now(members[static_cast<std::size_t>(i) % members.size()], "hot",
                "holder-" + std::to_string(i), 1000 + i, 0);
  }
  for (auto m : members) {
    EXPECT_LE(dht.stored_at(m, "hot", 0).size(), cfg.max_values_per_key)
        << "per-key value list exceeded its bound at member " << m;
  }
}

// Expired entries are dropped by the amortized sweep during ordinary
// inserts — stores of keys that are never queried again cannot accumulate.
TEST(SloppyDhtHygiene, InsertSweepDropsExpiredKeys) {
  sim::event_loop loop;
  sim::network net{loop};
  const sim::node_id host = net.add_node("solo");
  dht_config cfg;
  cfg.sweep_interval = 4;
  sloppy_dht dht(net, cfg);
  const auto m = dht.join(host, "solo");

  for (int i = 0; i < 10; ++i) {
    dht.put_now(m, "dead-" + std::to_string(i), "v", /*expires_at=*/5, /*now=*/0);
  }
  EXPECT_EQ(dht.stored_keys(m), 10u);
  // Four more inserts after expiry: the interval sweep fires mid-stream and
  // clears every dead key without any lookup touching them.
  for (int i = 0; i < 4; ++i) {
    dht.put_now(m, "live-" + std::to_string(i), "v", /*expires_at=*/4000, /*now=*/100);
  }
  EXPECT_EQ(dht.stored_keys(m), 4u);
}

TEST_F(dht_fixture, PurgeExpiredEmptiesStores) {
  build_mesh(6);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  for (int i = 0; i < 30; ++i) {
    dht.put_now(members[static_cast<std::size_t>(i) % members.size()],
                "k" + std::to_string(i), "v", /*expires_at=*/50, /*now=*/0);
  }
  std::size_t resident = 0;
  for (auto m : members) resident += dht.stored_keys(m);
  EXPECT_GT(resident, 0u);

  dht.purge_expired(/*now=*/100);
  resident = 0;
  for (auto m : members) resident += dht.stored_keys(m);
  EXPECT_EQ(resident, 0u);
}

// 8 threads x insert/lookup/introspect/purge on one ring: must be TSan-clean
// and every per-key list must respect its bound afterwards.
TEST_F(dht_fixture, ConcurrentSyncOpsAreRaceFree) {
  build_mesh(12);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  constexpr int k_threads = 8;
  constexpr int k_ops = 1'500;
  constexpr int k_keys = 23;
  std::vector<std::thread> threads;
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < k_ops; ++i) {
        const std::string key = "k" + std::to_string((i * 7 + t) % k_keys);
        const auto via = members[static_cast<std::size_t>(t + i) % members.size()];
        const std::int64_t now = i / 50;
        switch (i % 4) {
          case 0:
            dht.put_now(via, key, "h" + std::to_string(t), now + 30, now);
            break;
          case 1:
            (void)dht.get_now(via, key, now);
            break;
          case 2:
            (void)dht.stored_at(via, key, now);
            break;
          default:
            if (i % 256 == 3) {
              dht.purge_expired(now);
            } else {
              (void)dht.get_now(via, key, now);
            }
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(dht.member_count(), members.size());
  const dht_config defaults;
  for (auto m : members) {
    for (int k = 0; k < k_keys; ++k) {
      EXPECT_LE(dht.stored_at(m, "k" + std::to_string(k), 0).size(),
                defaults.max_values_per_key);
    }
  }
}

// ----- synchronous coral api ---------------------------------------------------------

TEST(Clusters, SyncGetPrefersTightCluster) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 3);

  coral_overlay coral(net);
  std::vector<coral_overlay::member_id> members;
  for (std::size_t i = 0; i < g.sites.size(); ++i) {
    members.push_back(coral.join(g.sites[i].proxy, "p" + std::to_string(i)));
  }
  loop.run();

  coral.put_now(members[0], "key", "holder", 10000, 0);

  // A same-region member finds it at the tightest level.
  const coral_overlay::sync_result near = coral.get_now(members[1], "key", 0);
  ASSERT_FALSE(near.values.empty());
  EXPECT_EQ(near.level, 2);

  // A remote-region member still finds it via a wider ring.
  const coral_overlay::sync_result far = coral.get_now(members[6], "key", 0);
  ASSERT_FALSE(far.values.empty());
  EXPECT_LE(far.level, 1);
  EXPECT_TRUE(coral.get_now(members[3], "absent", 0).values.empty());
}

TEST(Clusters, ConcurrentSyncOpsAreRaceFree) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 3);

  coral_overlay coral(net);
  std::vector<coral_overlay::member_id> members;
  for (std::size_t i = 0; i < g.sites.size(); ++i) {
    members.push_back(coral.join(g.sites[i].proxy, "p" + std::to_string(i)));
  }
  loop.run();

  constexpr int k_threads = 8;
  constexpr int k_ops = 600;
  std::atomic<std::size_t> found{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < k_ops; ++i) {
        const std::string key = "u" + std::to_string((i + t * 3) % 17);
        const auto via = members[static_cast<std::size_t>(t + i) % members.size()];
        const std::int64_t now = i / 40;
        if (i % 3 == 0) {
          coral.put_now(via, key, "holder-" + std::to_string(t), now + 60, now);
        } else if (i % 97 == 1) {
          coral.purge_expired(now);
        } else {
          if (!coral.get_now(via, key, now).values.empty()) found.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(found.load(), 0u) << "concurrent lookups should observe concurrent inserts";
}

// ----- clusters ---------------------------------------------------------------------

TEST(Clusters, GeoNodesFormRegionalClusters) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 3);

  coral_overlay coral(net);
  std::vector<coral_overlay::member_id> members;
  for (const auto& site : g.sites) {
    members.push_back(coral.join(site.proxy, "proxy-" + site.region +
                                                 std::to_string(members.size())));
  }
  loop.run();

  ASSERT_EQ(coral.level_count(), 3u);
  EXPECT_EQ(coral.cluster_count(0), 1u);  // global: everyone together
  // Tightest level: one cluster per region (intra-region 10 ms < 15 ms).
  EXPECT_EQ(coral.cluster_count(2), 3u);
  // Same-region nodes share a tight cluster.
  EXPECT_EQ(coral.cluster_of(members[0], 2), coral.cluster_of(members[1], 2));
  EXPECT_NE(coral.cluster_of(members[0], 2), coral.cluster_of(members[3], 2));
}

TEST(Clusters, GetPrefersTightCluster) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 3);

  coral_overlay coral(net);
  std::vector<coral_overlay::member_id> members;
  for (std::size_t i = 0; i < g.sites.size(); ++i) {
    members.push_back(coral.join(g.sites[i].proxy, "p" + std::to_string(i)));
  }
  loop.run();

  bool put_done = false;
  coral.put(members[0], "key", "holder", 10000, [&] { put_done = true; });
  loop.run();
  EXPECT_TRUE(put_done);

  // A same-region member finds it at the tightest level.
  int level = -2;
  coral.get(members[1], "key", [&](std::vector<std::string> v, int l) {
    EXPECT_FALSE(v.empty());
    level = l;
  });
  loop.run();
  EXPECT_EQ(level, 2);

  // A remote-region member still finds it (via a wider level).
  bool found_remote = false;
  coral.get(members[6], "key", [&](std::vector<std::string> v, int l) {
    found_remote = !v.empty();
    EXPECT_LE(l, 1);
  });
  loop.run();
  EXPECT_TRUE(found_remote);
}

TEST(Clusters, MissReportsLevelMinusOne) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 1);
  coral_overlay coral(net);
  const auto m = coral.join(g.sites[0].proxy, "only");
  loop.run();
  int level = 0;
  coral.get(m, "absent", [&](std::vector<std::string> v, int l) {
    EXPECT_TRUE(v.empty());
    level = l;
  });
  loop.run();
  EXPECT_EQ(level, -1);
}

// ----- redirector -------------------------------------------------------------------

TEST(Redirector, PicksNearbyProxy) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 2);
  dns_redirector redirector(net, 1.05);
  for (const auto& site : g.sites) redirector.add_proxy(site.proxy);

  util::rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const sim::node_id picked = redirector.pick(g.sites[0].client, rng);
    // Must be the site-local proxy (2 ms) — everything else is >= 10 ms.
    EXPECT_EQ(picked, g.sites[0].proxy);
  }
}

TEST(Redirector, BalancesAmongEquallyNearProxies) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::node_id client = net.add_node("client");
  const sim::node_id p1 = net.add_node("p1");
  const sim::node_id p2 = net.add_node("p2");
  net.set_route(client, p1, 0.010);
  net.set_route(client, p2, 0.010);
  dns_redirector redirector(net);
  redirector.add_proxy(p1);
  redirector.add_proxy(p2);

  util::rng rng(2);
  int hits_p1 = 0;
  for (int i = 0; i < 200; ++i) {
    if (redirector.pick(client, rng) == p1) ++hits_p1;
  }
  EXPECT_GT(hits_p1, 50);
  EXPECT_LT(hits_p1, 150);
}

TEST(Redirector, ErrorsWithoutProxies) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::node_id client = net.add_node("client");
  dns_redirector redirector(net);
  util::rng rng(1);
  EXPECT_THROW((void)redirector.pick(client, rng), std::logic_error);
  EXPECT_THROW(dns_redirector(net, 0.5), std::invalid_argument);
}

TEST(Redirector, HostnameRewriting) {
  EXPECT_EQ(to_nakika_host("www.med.nyu.edu"), "www.med.nyu.edu.nakika.net");
  EXPECT_EQ(from_nakika_host("www.med.nyu.edu.nakika.net"), "www.med.nyu.edu");
  EXPECT_EQ(from_nakika_host("plain.org"), "plain.org");
  EXPECT_TRUE(is_nakika_host("a.nakika.net"));
  EXPECT_FALSE(is_nakika_host("a.nakika.org"));
  // Idempotent.
  EXPECT_EQ(to_nakika_host(to_nakika_host("x.org")), "x.org.nakika.net");
}

// ----- churn: crash, re-replication, and dangling-holder hygiene --------------------

TEST_F(dht_fixture, GetNeverReturnsDeadHolders) {
  build_mesh(8);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  // Two holders advertise the same key; holder h2 then dies. Lookups must
  // return only the live holder — a dangling advertisement would send the
  // transport to a dead endpoint.
  ASSERT_GE(dht.put_now(members[0], "http://a/x", "h2", 1000, 0), 0);
  ASSERT_GE(dht.put_now(members[1], "http://a/x", "h5", 1000, 0), 0);
  dht.leave(members[2]);  // members[i] is named "h<i>" by the mesh builder

  const sloppy_dht::sync_result r = dht.get_now(members[6], "http://a/x", 0);
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0], "h5");
}

TEST_F(dht_fixture, PurgedHolderFallsToLiveReplicaOrEmpty) {
  build_mesh(10);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  // Several nodes advertise themselves for the key (sloppy replication
  // spreads the values), then one advertiser crashes AND its store is purged.
  // Every remaining lookup result must name a live member — never the dead
  // one — or come back empty (caller falls to origin); a dangling holder is
  // the one unacceptable outcome.
  for (int i = 0; i < 5; ++i) {
    ASSERT_GE(dht.put_now(members[i], "http://b/y", "h" + std::to_string(i), 1000, 0), 0);
  }
  dht.leave(members[3]);
  dht.purge_store(members[3]);

  for (int via = 4; via < 10; ++via) {
    const sloppy_dht::sync_result r = dht.get_now(members[via], "http://b/y", 0);
    for (const std::string& holder : r.values) {
      EXPECT_NE(holder, "h3") << "lookup via member " << via
                              << " returned the dead holder";
    }
  }
}

TEST_F(dht_fixture, ReviveRestoresAdvertisementVisibility) {
  build_mesh(8);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  // Pick a key whose replica is NOT stored at the member we will crash
  // (leave() drops the leaver's store, which would conflate two effects —
  // that path is covered by ReReplicationAfterCrashMakesKeyFindableAgain).
  std::string key;
  for (int k = 0; k < 32 && key.empty(); ++k) {
    const std::string cand = "http://c/z" + std::to_string(k);
    ASSERT_GE(dht.put_now(members[0], cand, "h1", 1000, 0), 0);
    if (dht.stored_at(members[1], cand, 0).empty()) key = cand;
  }
  ASSERT_FALSE(key.empty());

  // Leave then revive with NO lookup in between: the advertisement is still
  // stored elsewhere, so it becomes visible again as soon as the holder is
  // back.
  dht.leave(members[1]);
  dht.revive(members[1]);
  const sloppy_dht::sync_result back = dht.get_now(members[5], key, 0);
  ASSERT_EQ(back.values.size(), 1u);
  EXPECT_EQ(back.values[0], "h1");

  // But a lookup DURING the outage scrubs the dangling value permanently:
  // after that, only a fresh re-advertisement (re-replication) restores it.
  dht.leave(members[1]);
  EXPECT_TRUE(dht.get_now(members[5], key, 0).values.empty())
      << "sole holder is dead: the value must be filtered";
  dht.revive(members[1]);
  EXPECT_TRUE(dht.get_now(members[5], key, 0).values.empty())
      << "the scrub is destructive: revival alone must not resurrect it";
  ASSERT_GE(dht.put_now(members[1], key, "h1", 1000, 0), 0);
  EXPECT_FALSE(dht.get_now(members[5], key, 0).values.empty());

  // And a revived member routes: it can find other keys again.
  ASSERT_GE(dht.put_now(members[4], "http://c/w", "h4", 1000, 0), 0);
  EXPECT_FALSE(dht.get_now(members[1], "http://c/w", 0).values.empty());
}

TEST_F(dht_fixture, ReReplicationAfterCrashMakesKeyFindableAgain) {
  build_mesh(8);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  // Sole holder dies with its DHT state; a survivor re-fetches from origin
  // and re-advertises itself — exactly what nakika_node's miss path does.
  ASSERT_GE(dht.put_now(members[0], "http://d/q", "h2", 1000, 0), 0);
  dht.leave(members[2]);
  dht.purge_store(members[2]);
  ASSERT_TRUE(dht.get_now(members[6], "http://d/q", 0).values.empty());

  ASSERT_GE(dht.put_now(members[6], "http://d/q", "h6", 1000, 0), 0);
  const sloppy_dht::sync_result r = dht.get_now(members[7], "http://d/q", 0);
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0], "h6");
}

TEST_F(dht_fixture, ConcurrentChurnOpsAreRaceFree) {
  build_mesh(10);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  // put/get traffic racing crash/revive of one member: no crashes, no
  // lost writes to live members, and (checked under TSan in CI) no races.
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    for (int i = 0; i < 60; ++i) {
      dht.leave(members[9]);
      dht.purge_store(members[9]);
      dht.revive(members[9]);
    }
    stop.store(true);
  });
  std::vector<std::thread> workers;
  std::atomic<std::size_t> found{0};
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load() || i < 50) {
        const std::string key = "k" + std::to_string(i % 7);
        const auto via = members[static_cast<std::size_t>(t * 3 + i) % 9];  // live members
        if (i % 2 == 0) {
          (void)dht.put_now(via, key, "h" + std::to_string(t), 1000, 0);
        } else if (!dht.get_now(via, key, 0).values.empty()) {
          found.fetch_add(1);
        }
        ++i;
      }
    });
  }
  churner.join();
  for (auto& w : workers) w.join();
  EXPECT_GT(found.load(), 0u);
  EXPECT_EQ(dht.member_count(), members.size());
}

TEST(Clusters, CrashAndReviveMemberAcrossRings) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 3);

  coral_overlay coral(net);
  std::vector<coral_overlay::member_id> members;
  for (std::size_t i = 0; i < g.sites.size(); ++i) {
    members.push_back(coral.join(g.sites[i].proxy, "p" + std::to_string(i)));
  }
  loop.run();

  coral.put_now(members[0], "key", "p0", 10000, 0);
  ASSERT_FALSE(coral.get_now(members[1], "key", 0).values.empty());

  // Crash the sole holder at every ring level: the advertisement vanishes
  // from all of them, near and far (and the lookups scrub the dangling
  // values from whatever stores they touched).
  coral.crash_member(members[0]);
  EXPECT_TRUE(coral.get_now(members[1], "key", 0).values.empty());
  EXPECT_TRUE(coral.get_now(members[6], "key", 0).values.empty());

  // Revive and re-advertise (the node's miss path would do this on its next
  // serve): the key is findable again.
  coral.revive_member(members[0]);
  coral.put_now(members[0], "key", "p0", 10000, 0);
  EXPECT_FALSE(coral.get_now(members[1], "key", 0).values.empty());

  // A revived member participates again: it can read a fresh put.
  coral.put_now(members[4], "other", "p4", 10000, 0);
  EXPECT_FALSE(coral.get_now(members[0], "other", 0).values.empty());
}

TEST(Clusters, PurgeMemberStoreDropsItsReplicas) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 2);

  coral_overlay coral(net);
  std::vector<coral_overlay::member_id> members;
  for (std::size_t i = 0; i < g.sites.size(); ++i) {
    members.push_back(coral.join(g.sites[i].proxy, "p" + std::to_string(i)));
  }
  loop.run();

  coral.put_now(members[2], "k", "p2", 10000, 0);
  coral.crash_member(members[2]);
  coral.purge_member_store(members[2]);
  coral.revive_member(members[2]);
  // The member is back but its stores died with the process: whatever any
  // lookup returns, it must not be served from the purged member's stores
  // naming only itself... the value may have spilled to other members, but
  // a fresh re-advertisement must always win.
  coral.put_now(members[3], "k", "p3", 10000, 0);
  const coral_overlay::sync_result r = coral.get_now(members[1], "k", 0);
  ASSERT_FALSE(r.values.empty());
  bool has_live = false;
  for (const std::string& v : r.values) has_live |= (v == "p3");
  EXPECT_TRUE(has_live);
}

// ----- epoch-based reclamation + lock-free read path ---------------------------------

// The perf tentpole's contract: steady-state get_now resolves entirely from
// the published snapshot. read_slowpath() counts exactly the reads that had
// to take the ring mutex — after one warm-up rebuild it must stay frozen
// while thousands of reads stream through the fast path.
TEST_F(dht_fixture, SteadyStateGetNowNeverTakesRingMutex) {
  build_mesh(8);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();
  for (int k = 0; k < 5; ++k) {
    ASSERT_GE(dht.put_now(members[0], "k" + std::to_string(k), "h1", 1000, 0), 0);
  }
  // Warm-up: the first read after the puts rebuilds the snapshot.
  (void)dht.get_now(members[1], "k0", 0);
  const std::uint64_t slow_before = dht.read_slowpath();
  const std::uint64_t fast_before = dht.read_fastpath();

  constexpr int k_reads = 2'000;
  for (int i = 0; i < k_reads; ++i) {
    const auto via = members[static_cast<std::size_t>(i) % members.size()];
    (void)dht.get_now(via, "k" + std::to_string(i % 5), 0);
  }
  EXPECT_EQ(dht.read_slowpath(), slow_before)
      << "a steady-state read took the ring mutex";
  EXPECT_EQ(dht.read_fastpath(), fast_before + k_reads);
}

// Same property at the coral layer: after the last join, rings_of resolves
// from the membership snapshot; only the first post-join read rebuilds.
TEST(Clusters, SteadyStateLookupsNeverTakeMembershipMutex) {
  sim::event_loop loop;
  sim::network net(loop);
  std::vector<sim::node_id> hosts;
  for (int i = 0; i < 6; ++i) hosts.push_back(net.add_node("n" + std::to_string(i)));
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) net.set_route(hosts[i], hosts[j], 0.010);
  }
  coral_overlay overlay(net);
  std::vector<coral_overlay::member_id> members;
  for (auto h : hosts) members.push_back(overlay.join(h, net.node_name(h)));
  loop.run();
  ASSERT_GE(overlay.put_now(members[0], "key", "n0", 1000, 0), 0);
  (void)overlay.get_now(members[1], "key", 0);  // warm-up rebuilds
  const std::uint64_t membership_slow = overlay.read_slowpath();
  const std::uint64_t ring_slow = overlay.ring_read_slowpath();
  for (int i = 0; i < 500; ++i) {
    (void)overlay.get_now(members[static_cast<std::size_t>(i) % members.size()], "key", 0);
  }
  EXPECT_EQ(overlay.read_slowpath(), membership_slow);
  EXPECT_EQ(overlay.ring_read_slowpath(), ring_slow);
  EXPECT_GT(overlay.read_fastpath(), 0u);
  EXPECT_GT(overlay.ring_read_fastpath(), 0u);
}

// EBR torture (run under ASan in CI): readers chase a shared pointer that a
// writer keeps swapping and retiring through the global domain. A reclaim
// racing a pinned reader is a use-after-free ASan would catch; torn blobs
// would show up as mixed words.
TEST(EpochReclamation, RetireWhileReadersPinnedNeverFreesEarly) {
  struct blob {
    std::uint64_t words[8];
  };
  auto& domain = util::ebr_domain::instance();
  const std::uint64_t retired_before = domain.retired_count();

  std::atomic<blob*> shared{new blob{{0, 0, 0, 0, 0, 0, 0, 0}}};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        util::ebr_domain::guard g;
        const blob* b = shared.load(std::memory_order_acquire);
        const std::uint64_t first = b->words[0];
        for (int w = 1; w < 8; ++w) {
          if (b->words[w] != first) torn.fetch_add(1);
        }
      }
    });
  }
  constexpr std::uint64_t k_swaps = 2'000;
  for (std::uint64_t i = 1; i <= k_swaps; ++i) {
    auto* fresh = new blob{{i, i, i, i, i, i, i, i}};
    blob* old = shared.exchange(fresh, std::memory_order_acq_rel);
    domain.retire(old, [](void* p) { delete static_cast<blob*>(p); });
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  delete shared.exchange(nullptr, std::memory_order_acq_rel);
  domain.flush();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(domain.retired_count() - retired_before, k_swaps);
  EXPECT_EQ(domain.limbo_size(), 0u) << "flush with no pinned readers must reclaim all";
}

// Snapshot reads racing churn (run under TSan in CI): crash/revive and puts
// force continuous snapshot retirement while readers walk old epochs.
TEST_F(dht_fixture, SnapshotReadsRaceChurnWithoutRaces) {
  build_mesh(10);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();
  for (int k = 0; k < 7; ++k) {
    ASSERT_GE(dht.put_now(members[0], "k" + std::to_string(k), "h2", 1000, 0), 0);
  }

  std::atomic<bool> stop{false};
  std::thread churner([&] {
    for (int i = 0; i < 80; ++i) {
      dht.leave(members[9]);
      dht.revive(members[9]);
      (void)dht.put_now(members[0], "k" + std::to_string(i % 7), "h2", 1000, 0);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> reads{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load() || i < 200) {
        const auto via = members[static_cast<std::size_t>(t * 2 + i) % 9];
        (void)dht.get_now(via, "k" + std::to_string(i % 7), 0);
        reads.fetch_add(1);
        ++i;
      }
    });
  }
  churner.join();
  for (auto& r : readers) r.join();

  EXPECT_GE(reads.load(), 800u);
  EXPECT_EQ(dht.member_count(), members.size());
  // Every read went through exactly one of the two accounted paths.
  EXPECT_GE(dht.read_fastpath() + dht.read_slowpath(), reads.load());
}

}  // namespace
}  // namespace nakika::overlay
