#include <gtest/gtest.h>

#include "overlay/clusters.hpp"
#include "overlay/dht.hpp"
#include "overlay/node_id.hpp"
#include "overlay/redirector.hpp"
#include "overlay/routing_table.hpp"
#include "sim/topology.hpp"

namespace nakika::overlay {
namespace {

// ----- node_id ------------------------------------------------------------------

TEST(NodeId, HashIsDeterministicAndDistinct) {
  EXPECT_EQ(node_id::hash_of("a"), node_id::hash_of("a"));
  EXPECT_NE(node_id::hash_of("a"), node_id::hash_of("b"));
  EXPECT_EQ(node_id::hash_of("a").hex().size(), 40u);
}

TEST(NodeId, XorMetricProperties) {
  const node_id a = node_id::hash_of("a");
  const node_id b = node_id::hash_of("b");
  EXPECT_EQ(a.distance_to(a), node_id{});
  EXPECT_EQ(a.distance_to(b), b.distance_to(a));  // symmetry
  EXPECT_EQ(a.bucket_index(a), -1);
  const int bucket = a.bucket_index(b);
  EXPECT_GE(bucket, 0);
  EXPECT_LT(bucket, 160);
}

TEST(NodeId, BucketIndexMatchesHighBit) {
  std::array<std::uint8_t, node_id::bytes> raw{};
  const node_id zero(raw);
  raw[0] = 0x80;
  EXPECT_EQ(zero.bucket_index(node_id(raw)), 159);
  raw[0] = 0;
  raw[19] = 0x01;
  EXPECT_EQ(zero.bucket_index(node_id(raw)), 0);
}

// ----- routing table -------------------------------------------------------------

TEST(RoutingTable, ObserveAndClosest) {
  const node_id owner = node_id::hash_of("owner");
  routing_table table(owner, 4);
  for (int i = 0; i < 64; ++i) {
    table.observe({node_id::hash_of("n" + std::to_string(i)),
                   static_cast<std::uint32_t>(i)});
  }
  EXPECT_GT(table.size(), 0u);
  const node_id target = node_id::hash_of("target");
  const auto closest = table.closest(target, 5);
  ASSERT_LE(closest.size(), 5u);
  // Results are sorted by XOR distance.
  for (std::size_t i = 1; i < closest.size(); ++i) {
    EXPECT_LE(closest[i - 1].id.distance_to(target), closest[i].id.distance_to(target));
  }
}

TEST(RoutingTable, NeverStoresSelfAndHonorsCapacity) {
  const node_id owner = node_id::hash_of("owner");
  routing_table table(owner, 2);
  EXPECT_FALSE(table.observe({owner, 0}));
  // Same bucket can hold at most k entries; extras are dropped.
  std::size_t inserted = 0;
  for (int i = 0; i < 500; ++i) {
    if (table.observe({node_id::hash_of("x" + std::to_string(i)), 1})) ++inserted;
  }
  EXPECT_LT(inserted, 500u);
}

TEST(RoutingTable, RemoveDeadContacts) {
  routing_table table(node_id::hash_of("owner"), 4);
  const contact c{node_id::hash_of("peer"), 9};
  table.observe(c);
  EXPECT_TRUE(table.remove(c.id));
  EXPECT_FALSE(table.remove(c.id));
}

// ----- sloppy dht ------------------------------------------------------------------

struct dht_fixture : ::testing::Test {
  sim::event_loop loop;
  sim::network net{loop};
  std::vector<sim::node_id> hosts;

  void build_mesh(int n) {
    std::vector<sim::link_id> nics;
    for (int i = 0; i < n; ++i) {
      hosts.push_back(net.add_node("h" + std::to_string(i)));
      nics.push_back(net.add_link(12.5e6));
    }
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        net.set_route(hosts[i], hosts[j], 0.005, {nics[i], nics[j]});
      }
    }
  }
};

TEST_F(dht_fixture, PutThenGetFindsValue) {
  build_mesh(12);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();  // settle joins

  bool put_done = false;
  dht.put(members[0], "http://a/x", "holder-0", 1000, [&](int) { put_done = true; });
  loop.run();
  EXPECT_TRUE(put_done);

  std::vector<std::string> found;
  int hops = -1;
  dht.get(members[7], "http://a/x", [&](std::vector<std::string> v, int h) {
    found = std::move(v);
    hops = h;
  });
  loop.run();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], "holder-0");
  EXPECT_GE(hops, 0);
}

TEST_F(dht_fixture, MissingKeyReturnsEmpty) {
  build_mesh(8);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  bool called = false;
  dht.get(members[2], "http://nothing", [&](std::vector<std::string> v, int) {
    called = true;
    EXPECT_TRUE(v.empty());
  });
  loop.run();
  EXPECT_TRUE(called);
}

TEST_F(dht_fixture, ValuesExpire) {
  build_mesh(6);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  dht.put(members[0], "k", "v", 10, [](int) {});
  loop.run();
  loop.run_until(20.0);  // virtual time past the expiry

  bool called = false;
  dht.get(members[1], "k", [&](std::vector<std::string> v, int) {
    called = true;
    EXPECT_TRUE(v.empty());
  });
  loop.run();
  EXPECT_TRUE(called);
}

TEST_F(dht_fixture, MultipleValuesPerKey) {
  build_mesh(10);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  for (int i = 0; i < 3; ++i) {
    dht.put(members[static_cast<std::size_t>(i)], "shared", "holder-" + std::to_string(i),
            1000, [](int) {});
  }
  loop.run();

  std::vector<std::string> found;
  dht.get(members[9], "shared", [&](std::vector<std::string> v, int) { found = std::move(v); });
  loop.run();
  EXPECT_GE(found.size(), 1u);  // sloppiness may spread values across nodes
}

TEST_F(dht_fixture, LocalStoreAnswersWithZeroHops) {
  build_mesh(6);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();

  // Force a value into member 3's local store, then get from member 3.
  dht.put(members[3], "k3", "v3", 1000, [](int) {});
  loop.run();
  // Find who actually stores it; if member 3 does, the get is local.
  const auto local = dht.stored_at(members[3], "k3", 0);
  std::vector<std::string> found;
  int hops = -1;
  dht.get(members[3], "k3", [&](std::vector<std::string> v, int h) {
    found = std::move(v);
    hops = h;
  });
  loop.run();
  ASSERT_FALSE(found.empty());
  if (!local.empty()) {
    EXPECT_EQ(hops, 0);
  }
}

TEST_F(dht_fixture, DeadNodeDoesNotWedgeLookups) {
  build_mesh(8);
  sloppy_dht dht(net);
  std::vector<sloppy_dht::member_id> members;
  for (auto h : hosts) members.push_back(dht.join(h, net.node_name(h)));
  loop.run();
  dht.put(members[0], "k", "v", 1000, [](int) {});
  loop.run();

  dht.leave(members[2]);
  dht.leave(members[5]);
  bool called = false;
  dht.get(members[7], "k", [&](std::vector<std::string>, int) { called = true; });
  loop.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(dht.member_count(), 6u);
}

// ----- clusters ---------------------------------------------------------------------

TEST(Clusters, GeoNodesFormRegionalClusters) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 3);

  coral_overlay coral(net);
  std::vector<coral_overlay::member_id> members;
  for (const auto& site : g.sites) {
    members.push_back(coral.join(site.proxy, "proxy-" + site.region +
                                                 std::to_string(members.size())));
  }
  loop.run();

  ASSERT_EQ(coral.level_count(), 3u);
  EXPECT_EQ(coral.cluster_count(0), 1u);  // global: everyone together
  // Tightest level: one cluster per region (intra-region 10 ms < 15 ms).
  EXPECT_EQ(coral.cluster_count(2), 3u);
  // Same-region nodes share a tight cluster.
  EXPECT_EQ(coral.cluster_of(members[0], 2), coral.cluster_of(members[1], 2));
  EXPECT_NE(coral.cluster_of(members[0], 2), coral.cluster_of(members[3], 2));
}

TEST(Clusters, GetPrefersTightCluster) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 3);

  coral_overlay coral(net);
  std::vector<coral_overlay::member_id> members;
  for (std::size_t i = 0; i < g.sites.size(); ++i) {
    members.push_back(coral.join(g.sites[i].proxy, "p" + std::to_string(i)));
  }
  loop.run();

  bool put_done = false;
  coral.put(members[0], "key", "holder", 10000, [&] { put_done = true; });
  loop.run();
  EXPECT_TRUE(put_done);

  // A same-region member finds it at the tightest level.
  int level = -2;
  coral.get(members[1], "key", [&](std::vector<std::string> v, int l) {
    EXPECT_FALSE(v.empty());
    level = l;
  });
  loop.run();
  EXPECT_EQ(level, 2);

  // A remote-region member still finds it (via a wider level).
  bool found_remote = false;
  coral.get(members[6], "key", [&](std::vector<std::string> v, int l) {
    found_remote = !v.empty();
    EXPECT_LE(l, 1);
  });
  loop.run();
  EXPECT_TRUE(found_remote);
}

TEST(Clusters, MissReportsLevelMinusOne) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 1);
  coral_overlay coral(net);
  const auto m = coral.join(g.sites[0].proxy, "only");
  loop.run();
  int level = 0;
  coral.get(m, "absent", [&](std::vector<std::string> v, int l) {
    EXPECT_TRUE(v.empty());
    level = l;
  });
  loop.run();
  EXPECT_EQ(level, -1);
}

// ----- redirector -------------------------------------------------------------------

TEST(Redirector, PicksNearbyProxy) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment g = sim::build_geo(net, 2);
  dns_redirector redirector(net, 1.05);
  for (const auto& site : g.sites) redirector.add_proxy(site.proxy);

  util::rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const sim::node_id picked = redirector.pick(g.sites[0].client, rng);
    // Must be the site-local proxy (2 ms) — everything else is >= 10 ms.
    EXPECT_EQ(picked, g.sites[0].proxy);
  }
}

TEST(Redirector, BalancesAmongEquallyNearProxies) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::node_id client = net.add_node("client");
  const sim::node_id p1 = net.add_node("p1");
  const sim::node_id p2 = net.add_node("p2");
  net.set_route(client, p1, 0.010);
  net.set_route(client, p2, 0.010);
  dns_redirector redirector(net);
  redirector.add_proxy(p1);
  redirector.add_proxy(p2);

  util::rng rng(2);
  int hits_p1 = 0;
  for (int i = 0; i < 200; ++i) {
    if (redirector.pick(client, rng) == p1) ++hits_p1;
  }
  EXPECT_GT(hits_p1, 50);
  EXPECT_LT(hits_p1, 150);
}

TEST(Redirector, ErrorsWithoutProxies) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::node_id client = net.add_node("client");
  dns_redirector redirector(net);
  util::rng rng(1);
  EXPECT_THROW((void)redirector.pick(client, rng), std::logic_error);
  EXPECT_THROW(dns_redirector(net, 0.5), std::invalid_argument);
}

TEST(Redirector, HostnameRewriting) {
  EXPECT_EQ(to_nakika_host("www.med.nyu.edu"), "www.med.nyu.edu.nakika.net");
  EXPECT_EQ(from_nakika_host("www.med.nyu.edu.nakika.net"), "www.med.nyu.edu");
  EXPECT_EQ(from_nakika_host("plain.org"), "plain.org");
  EXPECT_TRUE(is_nakika_host("a.nakika.net"));
  EXPECT_FALSE(is_nakika_host("a.nakika.org"));
  // Idempotent.
  EXPECT_EQ(to_nakika_host(to_nakika_host("x.org")), "x.org.nakika.net");
}

}  // namespace
}  // namespace nakika::overlay
