// Multi-node worker-cluster tier (run under TSan in CI): concurrently-running
// worker-mode nodes cooperating through the thread-safe peer transport.
//   - a 2-node scenario whose peer-cache hits and served bytes must equal the
//     deterministic sim-path oracle (same deployment, workers=0),
//   - a 4-node x 4-worker mixed stress: every response verified, peer hits
//     observed, no lost/duplicated completions, race-free under TSan,
//   - single-flight coalescing: a burst of identical cold URLs collapses to
//     one origin fetch, asserted via the origin's handler count and the new
//     coalesced/flight counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "proxy/deployment.hpp"

namespace nakika::proxy {
namespace {

constexpr std::size_t k_urls = 32;

const char* k_site_script = R"JS(
  var p = new Policy();
  p.url = [ "scripted.org" ];
  p.onResponse = function () {
    var n = 0;
    for (var i = 0; i < 300; i++) { n += i; }
    Response.setHeader("X-Work", "" + n);
  };
  p.register();
)JS";

// A deployment of `n_nodes` Na Kika nodes on a low-latency proxy mesh with
// one origin. With workers > 0 every node serves concurrently and the
// deployment attaches the threaded peer transport; with workers = 0 the same
// wiring runs on the event loop (the oracle).
struct cluster_env {
  sim::event_loop loop;
  sim::network net{loop};
  std::unique_ptr<deployment> dep;
  origin_server* origin = nullptr;
  sim::node_id client = 0;
  std::vector<nakika_node*> nodes;

  cluster_env(std::size_t n_nodes, std::size_t workers, std::size_t queue_capacity = 4096) {
    const sim::node_id origin_host = net.add_node("origin");
    client = net.add_node("client");
    std::vector<sim::node_id> hosts;
    for (std::size_t i = 0; i < n_nodes; ++i) {
      hosts.push_back(net.add_node("p" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n_nodes; ++i) {
      net.set_route(hosts[i], origin_host, 0.005);
      net.set_route(hosts[i], client, 0.001);
      for (std::size_t j = i + 1; j < n_nodes; ++j) {
        net.set_route(hosts[i], hosts[j], 0.002);  // one tight Coral cluster
      }
    }

    dep = std::make_unique<deployment>(net);
    origin = &dep->create_origin(origin_host);
    dep->map_host("static.org", *origin);
    dep->map_host("scripted.org", *origin);
    dep->map_host("slow.org", *origin);
    for (std::size_t i = 0; i < k_urls; ++i) {
      origin->add_static_text("static.org", "/obj/" + std::to_string(i), "text/plain",
                              "body-" + std::to_string(i), 3600);
      origin->add_static_text("scripted.org", "/doc/" + std::to_string(i), "text/plain",
                              "doc-" + std::to_string(i), 3600);
    }
    origin->add_static_text("scripted.org", "/nakika.js", "application/javascript",
                            k_site_script, 3600);

    dep->enable_overlay();
    for (std::size_t i = 0; i < n_nodes; ++i) {
      node_config cfg;
      cfg.workers = workers;
      cfg.queue_capacity = queue_capacity;
      cfg.resource_controls = false;
      nodes.push_back(&dep->create_node(hosts[i], std::move(cfg)));
    }
    // Settle the overlay joins' bootstrap traffic (single-threaded, before
    // any concurrent serving starts).
    loop.run();
  }

  // One request in worker mode: enqueue + drain (callers drain in bulk for
  // concurrent submissions).
  http::response fetch_worker(nakika_node& node, const std::string& url) {
    http::request r;
    r.url = http::url::parse(url);
    r.client_ip = "10.0.0.1";
    http::response out;
    node.handle(r, [&](http::response resp) { out = std::move(resp); });
    node.drain();
    return out;
  }

  // One request on the sim path, driven to completion on the event loop.
  http::response fetch_sim(nakika_node& node, const std::string& url) {
    http::request r;
    r.url = http::url::parse(url);
    r.client_ip = "10.0.0.1";
    http::response out;
    forward_request(net, client, node, r, [&](http::response resp) { out = std::move(resp); });
    loop.run();
    return out;
  }
};

std::string url_for(std::size_t i) {
  return i % 2 == 0 ? "http://static.org/obj/" + std::to_string(i % k_urls)
                    : "http://scripted.org/doc/" + std::to_string(i % k_urls);
}

bool response_matches(std::size_t i, const http::response& resp) {
  if (resp.status != 200 || !resp.body) return false;
  if (i % 2 == 0) return resp.body->view() == "body-" + std::to_string(i % k_urls);
  return resp.body->view() == "doc-" + std::to_string(i % k_urls) &&
         resp.headers.get("X-Work") == "44850";
}

// ----- worker cluster vs sim oracle ---------------------------------------------

// Warm every URL through node 0, then serve the same set through node 1:
// every node-1 request must be a peer-cache hit (node 0 advertised its
// copies), and the worker-mode run must agree with the deterministic sim
// oracle on bodies, peer-hit counts, and origin load.
struct oracle_outcome {
  std::vector<std::pair<int, std::string>> responses;  // node 1's (status, body)
  std::size_t peer_hits = 0;
  std::size_t peer_misses = 0;
  std::uint64_t origin_served = 0;
};

oracle_outcome run_two_node_scenario(std::size_t workers) {
  cluster_env env(2, workers);
  oracle_outcome out;
  for (std::size_t i = 0; i < k_urls; ++i) {
    const http::response resp =
        workers > 0 ? env.fetch_worker(*env.nodes[0], url_for(i))
                    : env.fetch_sim(*env.nodes[0], url_for(i));
    EXPECT_EQ(resp.status, 200) << "warm fetch " << i;
  }
  for (std::size_t i = 0; i < k_urls; ++i) {
    const http::response resp =
        workers > 0 ? env.fetch_worker(*env.nodes[1], url_for(i))
                    : env.fetch_sim(*env.nodes[1], url_for(i));
    out.responses.emplace_back(resp.status,
                               std::string(resp.body ? resp.body->view() : ""));
  }
  const util::run_counters c = env.nodes[1]->counters();
  out.peer_hits = c.peer_hits;
  out.peer_misses = c.peer_misses;
  out.origin_served = env.origin->requests_served();
  return out;
}

TEST(WorkerCluster, PeerCacheHitsEqualSimPathOracle) {
  const oracle_outcome oracle = run_two_node_scenario(/*workers=*/0);
  const oracle_outcome cluster = run_two_node_scenario(/*workers=*/4);

  // The oracle itself must demonstrate cooperative caching: node 1 answered
  // every content request from node 0's cache.
  ASSERT_EQ(oracle.peer_hits, k_urls);
  EXPECT_EQ(oracle.peer_misses, 0u);

  EXPECT_EQ(cluster.peer_hits, oracle.peer_hits);
  EXPECT_EQ(cluster.peer_misses, oracle.peer_misses);
  EXPECT_EQ(cluster.origin_served, oracle.origin_served)
      << "worker cluster must shield the origin exactly like the sim path";
  ASSERT_EQ(cluster.responses.size(), oracle.responses.size());
  for (std::size_t i = 0; i < oracle.responses.size(); ++i) {
    EXPECT_EQ(cluster.responses[i].first, oracle.responses[i].first) << "status " << i;
    EXPECT_EQ(cluster.responses[i].second, oracle.responses[i].second) << "body " << i;
  }
  // The threaded transport accounted virtual network cost for its walks.
  EXPECT_GT(run_two_node_scenario(/*workers=*/1).peer_hits, 0u);
}

// ----- 4-node x 4-worker stress --------------------------------------------------

TEST(WorkerCluster, FourNodeFourWorkerStressServesAndSharesRaceFree) {
  constexpr std::size_t k_nodes = 4;
  constexpr std::size_t k_per_node = 1'500;
  cluster_env env(k_nodes, /*workers=*/4);

  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> mismatches{0};

  // Two producer threads per node; phases shifted per node so each node's
  // early misses are another node's already-cached content.
  std::vector<std::thread> producers;
  for (std::size_t n = 0; n < k_nodes; ++n) {
    for (std::size_t half = 0; half < 2; ++half) {
      producers.emplace_back([&, n, half] {
        const std::size_t begin = half * (k_per_node / 2);
        const std::size_t end = begin + k_per_node / 2;
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t idx = i + n * (k_urls / k_nodes);
          http::request r;
          r.url = http::url::parse(url_for(idx));
          r.client_ip = "10.0.0.1";
          env.nodes[n]->handle(r, [&, idx](http::response resp) {
            if (!response_matches(idx, resp)) mismatches.fetch_add(1);
            done.fetch_add(1);
          });
        }
      });
    }
  }
  for (auto& t : producers) t.join();
  for (auto* node : env.nodes) node->drain();

  EXPECT_EQ(done.load(), k_nodes * (k_per_node / 2) * 2);
  EXPECT_EQ(mismatches.load(), 0u);

  std::size_t total_completed = 0;
  std::size_t total_peer_hits = 0;
  for (auto* node : env.nodes) {
    const util::run_counters c = node->counters();
    total_completed += c.completed;
    total_peer_hits += c.peer_hits;
    EXPECT_EQ(node->pool()->job_exceptions(), 0u);
    EXPECT_EQ(c.failed, 0u);
    EXPECT_EQ(c.rejected, 0u);
  }
  EXPECT_EQ(total_completed, done.load());
  EXPECT_GT(total_peer_hits, 0u)
      << "a 4-node cluster over one hot URL set must serve some misses from peers";
}

// ----- single-flight coalescing --------------------------------------------------

TEST(WorkerCluster, SingleFlightCollapsesConcurrentMissesToOneOriginFetch) {
  cluster_env env(1, /*workers=*/4);
  std::atomic<int> handler_calls{0};
  env.origin->add_dynamic("slow.org", "/cold", [&](const http::request&) {
    handler_calls.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    origin_server::dynamic_result out;
    out.response = http::make_response(200, "text/plain", util::make_body("cold-body"));
    out.response.headers.set("Cache-Control", "max-age=3600");
    return out;
  });

  constexpr std::size_t k_burst = 16;
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> good{0};
  for (std::size_t i = 0; i < k_burst; ++i) {
    http::request r;
    r.url = http::url::parse("http://slow.org/cold");
    r.client_ip = "10.0.0.1";
    env.nodes[0]->handle(r, [&](http::response resp) {
      if (resp.status == 200 && resp.body && resp.body->view() == "cold-body") {
        good.fetch_add(1);
      }
      done.fetch_add(1);
    });
  }
  env.nodes[0]->drain();

  EXPECT_EQ(done.load(), k_burst);
  EXPECT_EQ(good.load(), k_burst);
  EXPECT_EQ(handler_calls.load(), 1)
      << "concurrent same-URL misses must collapse onto one upstream fetch";

  const util::run_counters c = env.nodes[0]->counters();
  const net::single_flight::stats fs = env.nodes[0]->flight_stats();
  EXPECT_GE(fs.leaders, 1u);
  EXPECT_GE(c.coalesced, 1u) << "with 4 workers and a 250 ms origin, some "
                                "requests must have parked on the flight";
  EXPECT_EQ(c.coalesced, fs.waiters);
  EXPECT_EQ(c.completed, k_burst);
}

// Query-bearing URLs are personalized: they must bypass coalescing and each
// reach the origin.
TEST(WorkerCluster, QueryUrlsBypassCoalescing) {
  cluster_env env(1, /*workers=*/2);
  std::atomic<int> handler_calls{0};
  env.origin->add_dynamic("slow.org", "/per-user", [&](const http::request& r) {
    handler_calls.fetch_add(1);
    origin_server::dynamic_result out;
    out.response = http::make_response(200, "text/plain",
                                       util::make_body("for " + r.url.query()));
    out.response.headers.set("Cache-Control", "no-store");
    return out;
  });

  constexpr std::size_t k_requests = 8;
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < k_requests; ++i) {
    http::request r;
    r.url = http::url::parse("http://slow.org/per-user?u=" + std::to_string(i));
    r.client_ip = "10.0.0.1";
    env.nodes[0]->handle(r, [&](http::response resp) {
      EXPECT_EQ(resp.status, 200);
      done.fetch_add(1);
    });
  }
  env.nodes[0]->drain();
  EXPECT_EQ(done.load(), k_requests);
  EXPECT_EQ(handler_calls.load(), static_cast<int>(k_requests));
  EXPECT_EQ(env.nodes[0]->counters().coalesced, 0u);
}

}  // namespace
}  // namespace nakika::proxy
