// Property-based sweeps over randomized inputs: invariants that must hold
// for arbitrary data, not just hand-picked examples.
//   - HTTP wire round-trip: parse(serialize(m)) == m
//   - JSON round-trip through the scripting engine
//   - cache accounting never exceeds capacity under random operation mixes
//   - SHA-256 incremental == one-shot for random chunkings
//   - DHT: every successful put is findable from every member
#include <gtest/gtest.h>

#include "cache/http_cache.hpp"
#include "http/wire.hpp"
#include "integrity/sha256.hpp"
#include "js/interpreter.hpp"
#include "js/stdlib.hpp"
#include "overlay/dht.hpp"
#include "util/random.hpp"

namespace nakika {
namespace {

class Seeded : public ::testing::TestWithParam<int> {
 protected:
  util::rng rng{static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17};

  std::string random_token(std::size_t max_len) {
    static constexpr char alphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789-_";
    const std::size_t n = 1 + rng.next(max_len);
    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(alphabet[rng.next(sizeof(alphabet) - 1)]);
    }
    return out;
  }
};

// ----- HTTP wire round trip -----------------------------------------------------

class WireRoundTrip : public Seeded {};

TEST_P(WireRoundTrip, RequestSurvivesSerialization) {
  for (int trial = 0; trial < 20; ++trial) {
    http::request r;
    r.method = rng.chance(0.5) ? http::method::get : http::method::post;
    std::string url = "http://" + random_token(10) + ".example.org";
    const std::size_t path_parts = rng.next(4);
    for (std::size_t i = 0; i < path_parts; ++i) url += "/" + random_token(8);
    if (path_parts == 0) url += "/";
    if (rng.chance(0.4)) url += "?" + random_token(12);
    r.url = http::url::parse(url);
    const std::size_t headers = rng.next(5);
    for (std::size_t i = 0; i < headers; ++i) {
      r.headers.set("X-H" + std::to_string(i), random_token(16));
    }
    if (rng.chance(0.5)) {
      const std::string body = random_token(200);
      r.body = util::make_body(body);
      r.headers.set("Content-Length", std::to_string(body.size()));
    }

    const auto wire = http::serialize(r);
    const auto parsed = http::parse_request(wire.view());
    ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << wire.view();
    EXPECT_EQ(parsed.value.method, r.method);
    EXPECT_EQ(parsed.value.url.str(), r.url.str());
    for (const auto& e : r.headers.entries()) {
      EXPECT_EQ(parsed.value.headers.get(e.name), e.val);
    }
    EXPECT_EQ(parsed.value.body_size(), r.body_size());
  }
}

TEST_P(WireRoundTrip, ResponseSurvivesSerialization) {
  for (int trial = 0; trial < 20; ++trial) {
    const int statuses[] = {200, 204, 301, 404, 500, 503};
    http::response r = http::make_response(
        statuses[rng.next(6)], "text/" + random_token(6),
        util::make_body(random_token(300)));
    const auto wire = http::serialize(r);
    const auto parsed = http::parse_response(wire.view());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.value.status, r.status);
    EXPECT_EQ(parsed.value.body->view(), r.body->view());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Range(0, 8));

// ----- JSON round trip through the engine ------------------------------------------

class JsonRoundTrip : public Seeded {
 protected:
  js::value random_value(js::context& ctx, int depth) {
    switch (rng.next(depth > 2 ? 4 : 6)) {
      case 0: return js::value::number(static_cast<double>(rng.next(100000)) / 4.0);
      case 1: return js::value::string(random_token(20));
      case 2: return js::value::boolean(rng.chance(0.5));
      case 3: return js::value::null();
      case 4: {
        auto arr = ctx.make_array();
        const std::size_t n = rng.next(5);
        for (std::size_t i = 0; i < n; ++i) {
          arr->elements.push_back(random_value(ctx, depth + 1));
        }
        return js::value::object(arr);
      }
      default: {
        auto obj = ctx.make_object();
        const std::size_t n = rng.next(5);
        for (std::size_t i = 0; i < n; ++i) {
          obj->set("k" + std::to_string(i), random_value(ctx, depth + 1));
        }
        return js::value::object(obj);
      }
    }
  }
};

TEST_P(JsonRoundTrip, StringifyParseIdentity) {
  js::context ctx;
  for (int trial = 0; trial < 15; ++trial) {
    const js::value v = random_value(ctx, 0);
    const std::string once = js::json_stringify(v);
    const js::value back = js::json_parse(ctx, once);
    const std::string twice = js::json_stringify(back);
    EXPECT_EQ(once, twice) << once;  // parse-stringify is a fixed point
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip, ::testing::Range(0, 8));

// ----- cache capacity invariant ------------------------------------------------------

class CacheInvariant : public Seeded {};

TEST_P(CacheInvariant, NeverExceedsCapacityUnderRandomMix) {
  const std::size_t capacity = 8 * 1024;
  cache::http_cache c(capacity);
  std::int64_t now = 0;
  for (int op = 0; op < 400; ++op) {
    now += static_cast<std::int64_t>(rng.next(20));
    const std::string url = "http://x/" + std::to_string(rng.next(40));
    const double action = rng.next_double();
    if (action < 0.55) {
      const std::size_t size = 1 + rng.next(2000);
      c.put_with_expiry(url,
                        http::make_response(200, "t",
                                            util::make_body(std::string(size, 'b'))),
                        now + 1 + static_cast<std::int64_t>(rng.next(200)), now);
    } else if (action < 0.9) {
      (void)c.get(url, now);
    } else {
      (void)c.remove(url);
    }
    ASSERT_LE(c.bytes_used(), capacity) << "after op " << op;
  }
  // Every surviving entry must still be retrievable and fresh.
  const std::size_t entries = c.entry_count();
  (void)entries;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheInvariant, ::testing::Range(0, 6));

// ----- sharded cache LRU invariants ---------------------------------------------------

// Same random mix, but against an explicitly multi-shard cache, checking the
// structural invariants after every op: the public entry_count matches the
// per-shard maps, each shard's LRU list tracks its map, byte accounting is
// exact, the capacity bound holds, and evictions never exceed insertions.
class ShardedCacheInvariant : public Seeded {};

TEST_P(ShardedCacheInvariant, StructuralInvariantsHoldAfterEveryOp) {
  const std::size_t capacity = 16 * 1024;
  const std::size_t shards = 8;
  // Strict mode: these invariants pin the historical per-slice bound. The
  // borrowing-mode twin below checks the global bound instead.
  cache::http_cache c(capacity, shards, /*shard_borrowing=*/false);
  ASSERT_EQ(c.shard_count(), shards);
  std::int64_t now = 0;
  for (int op = 0; op < 400; ++op) {
    now += static_cast<std::int64_t>(rng.next(20));
    const std::string url = "http://x/" + std::to_string(rng.next(40));
    const double action = rng.next_double();
    if (action < 0.55) {
      const std::size_t size = 1 + rng.next(1500);
      c.put_with_expiry(url,
                        http::make_response(200, "t",
                                            util::make_body(std::string(size, 'b'))),
                        now + 1 + static_cast<std::int64_t>(rng.next(200)), now);
    } else if (action < 0.85) {
      (void)c.get(url, now);
    } else if (action < 0.95) {
      (void)c.remove(url);
    } else {
      c.clear();
    }

    std::size_t map_entries = 0;
    std::size_t map_bytes = 0;
    for (const auto& s : c.snapshot_shards()) {
      ASSERT_EQ(s.entries, s.lru_length) << "after op " << op;
      ASSERT_EQ(s.bytes_used, s.charged_bytes) << "after op " << op;
      ASSERT_LE(s.bytes_used, capacity / shards) << "after op " << op;
      map_entries += s.entries;
      map_bytes += s.bytes_used;
    }
    ASSERT_EQ(c.entry_count(), map_entries) << "after op " << op;
    ASSERT_EQ(c.bytes_used(), map_bytes) << "after op " << op;
    ASSERT_LE(c.bytes_used(), capacity) << "after op " << op;
    ASSERT_LE(c.stats().evictions, c.stats().insertions) << "after op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedCacheInvariant, ::testing::Range(0, 6));

// Borrowing-mode twin: the per-shard slice bound is deliberately gone, but
// the *global* capacity bound and all structural/accounting invariants must
// still hold after every op.
class BorrowingCacheInvariant : public Seeded {};

TEST_P(BorrowingCacheInvariant, GlobalBoundAndAccountingHoldAfterEveryOp) {
  const std::size_t capacity = 16 * 1024;
  const std::size_t shards = 8;
  cache::http_cache c(capacity, shards, /*shard_borrowing=*/true);
  std::int64_t now = 0;
  for (int op = 0; op < 400; ++op) {
    now += static_cast<std::int64_t>(rng.next(20));
    const std::string url = "http://x/" + std::to_string(rng.next(40));
    const double action = rng.next_double();
    if (action < 0.55) {
      const std::size_t size = 1 + rng.next(3000);  // up to > one slice
      c.put_with_expiry(url,
                        http::make_response(200, "t",
                                            util::make_body(std::string(size, 'b'))),
                        now + 1 + static_cast<std::int64_t>(rng.next(200)), now);
    } else if (action < 0.85) {
      (void)c.get(url, now);
    } else if (action < 0.95) {
      (void)c.remove(url);
    } else {
      c.clear();
    }

    std::size_t map_entries = 0;
    std::size_t map_bytes = 0;
    for (const auto& s : c.snapshot_shards()) {
      ASSERT_EQ(s.entries, s.lru_length) << "after op " << op;
      ASSERT_EQ(s.bytes_used, s.charged_bytes) << "after op " << op;
      map_entries += s.entries;
      map_bytes += s.bytes_used;
    }
    ASSERT_EQ(c.entry_count(), map_entries) << "after op " << op;
    ASSERT_EQ(c.bytes_used(), map_bytes) << "after op " << op;
    ASSERT_LE(c.bytes_used(), capacity) << "after op " << op;
    ASSERT_LE(c.stats().evictions, c.stats().insertions) << "after op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BorrowingCacheInvariant, ::testing::Range(0, 6));

// The ROADMAP item-1 regression: a workload concentrated on one hot shard
// must be able to borrow the other shards' idle capacity instead of
// thrashing inside its 1/N slice.
TEST(ShardedCacheBorrowing, HotShardBorrowsIdleCapacity) {
  constexpr std::size_t shards = 4;
  constexpr std::size_t capacity = 64 * 1024;  // 16 KiB per slice
  cache::http_cache c(capacity, shards, /*shard_borrowing=*/true);
  const auto shard_of = [](const std::string& url) {
    return std::hash<std::string>{}(url) % shards;
  };
  // 20 entries × (2048 + 256) bytes ≈ 45 KiB, all hashed to one shard:
  // nearly 3× the slice, comfortably under the whole cache.
  std::vector<std::string> hot;
  for (int i = 0; hot.size() < 20 && i < 100000; ++i) {
    const std::string url = "http://hot/" + std::to_string(i);
    if (hot.empty() || shard_of(url) == shard_of(hot.front())) hot.push_back(url);
  }
  ASSERT_EQ(hot.size(), 20u);
  const http::response body =
      http::make_response(200, "t", util::make_body(std::string(2048, 'h')));
  for (const auto& url : hot) ASSERT_TRUE(c.put_with_expiry(url, body, 10'000, 0));
  // No thrash: every hot entry is resident and nothing was evicted.
  EXPECT_EQ(c.stats().evictions, 0u);
  for (const auto& url : hot) EXPECT_TRUE(c.get(url, 1).has_value());
  // The global bound still binds: keep inserting into the hot shard until
  // past capacity, and the cache evicts instead of growing.
  for (int i = 0; i < 40000; ++i) {
    const std::string url = "http://hot2/" + std::to_string(i);
    if (shard_of(url) != shard_of(hot.front())) continue;
    c.put_with_expiry(url, body, 10'000, 0);
  }
  EXPECT_GT(c.stats().evictions, 0u);
  EXPECT_LE(c.bytes_used(), capacity);
}

// ----- scan-resistant admission -------------------------------------------------------

// The admission tentpole's core property: a sequential scan of one-hit
// wonders much larger than the cache must not evict a promoted hot set.
// New keys churn through the probation FIFO; keys read a second time live in
// the main LRU, which the scan never reaches once probation holds its share.
TEST(CacheAdmission, ScanCannotEvictPromotedHotSet) {
  constexpr std::size_t capacity = 64 * 1024;
  cache::http_cache c(capacity, /*shard_count=*/1, /*shard_borrowing=*/true,
                      /*admission=*/true);
  ASSERT_TRUE(c.admission_enabled());
  const http::response body =
      http::make_response(200, "t", util::make_body(std::string(1024, 'h')));

  // Promote a hot set (~31% of capacity): first access inserts on probation,
  // second access promotes into main.
  std::vector<std::string> hot;
  for (int i = 0; i < 16; ++i) hot.push_back("http://hot/" + std::to_string(i));
  for (const auto& url : hot) ASSERT_TRUE(c.put_with_expiry(url, body, 10'000, 0));
  EXPECT_EQ(c.probation_count(), hot.size());
  for (const auto& url : hot) ASSERT_TRUE(c.get(url, 1).has_value());
  EXPECT_EQ(c.probation_count(), 0u) << "a hit on probation must promote";

  // Scan: ~8x the cache in never-reread keys.
  for (int i = 0; i < 400; ++i) {
    c.put_with_expiry("http://scan/" + std::to_string(i), body, 10'000, 1);
  }

  for (const auto& url : hot) {
    EXPECT_TRUE(c.get(url, 2).has_value()) << url << " evicted by a one-pass scan";
  }
  EXPECT_LE(c.bytes_used(), capacity);
  EXPECT_GT(c.stats().admission_rejected, 0u)
      << "scan victims must be counted as admission rejections";

  // Control: with admission off (pure LRU) the same scan flushes the hot set.
  cache::http_cache lru(capacity, 1, true, /*admission=*/false);
  for (const auto& url : hot) ASSERT_TRUE(lru.put_with_expiry(url, body, 10'000, 0));
  for (const auto& url : hot) ASSERT_TRUE(lru.get(url, 1).has_value());
  for (int i = 0; i < 400; ++i) {
    lru.put_with_expiry("http://scan/" + std::to_string(i), body, 10'000, 1);
  }
  std::size_t survivors = 0;
  for (const auto& url : hot) survivors += lru.get(url, 2).has_value() ? 1 : 0;
  EXPECT_LT(survivors, hot.size()) << "LRU control should thrash under the scan";
}

// Ghost readmission: a key demoted from probation that comes back is
// admitted straight into main (its return proves reuse), so the next scan
// cannot displace it again.
TEST(CacheAdmission, GhostReadmissionSkipsProbation) {
  constexpr std::size_t capacity = 16 * 1024;
  cache::http_cache c(capacity, 1, true, true);
  const http::response body =
      http::make_response(200, "t", util::make_body(std::string(1024, 'g')));
  ASSERT_TRUE(c.put_with_expiry("http://a/key", body, 10'000, 0));
  // Pressure well past capacity: the never-read key is the probation tail
  // and gets demoted. (No get() polling here — a hit would promote it.)
  for (int i = 0; i < 20; ++i) {
    c.put_with_expiry("http://fill/" + std::to_string(i), body, 10'000, 0);
  }
  ASSERT_FALSE(c.get("http://a/key", 1).has_value());
  const std::size_t probation_before = c.probation_count();
  ASSERT_TRUE(c.put_with_expiry("http://a/key", body, 10'000, 1));
  // Not EQ: making room for the re-insert may itself evict a probation
  // entry. The point is the readmitted key did not join the FIFO.
  EXPECT_LE(c.probation_count(), probation_before)
      << "a ghost-matched re-insert must bypass probation";
  // A fresh scan now churns probation; the readmitted key stays resident.
  for (int i = 0; i < 100; ++i) {
    c.put_with_expiry("http://fill2/" + std::to_string(i), body, 10'000, 1);
  }
  EXPECT_TRUE(c.get("http://a/key", 2).has_value());
}

// Tenant quotas bind unchanged with admission on: probation entries are
// charged to their tenant, the cap holds at every step, and a configured
// tenant's promoted set is protected from another tenant's probation churn.
TEST(CacheAdmission, TenantQuotasHoldWithProbation) {
  constexpr std::size_t capacity = 64 * 1024;
  cache::http_cache c(capacity, 1, true, true);
  c.set_tenant_quota("greedy.org", 8 * 1024);
  c.set_tenant_quota("victim.org", 8 * 1024);
  const http::response body =
      http::make_response(200, "t", util::make_body(std::string(1024, 'q')));
  // Victim's working set, promoted to main.
  for (int i = 0; i < 4; ++i) {
    const std::string url = "http://victim.org/" + std::to_string(i);
    ASSERT_TRUE(c.put_with_expiry(url, body, 10'000, 0));
    ASSERT_TRUE(c.get(url, 0).has_value());
  }
  // Greedy floods far past its quota: its own probation entries must pay.
  for (int i = 0; i < 64; ++i) {
    c.put_with_expiry("http://greedy.org/" + std::to_string(i), body, 10'000, 0);
    ASSERT_LE(c.tenant_bytes("greedy.org"), c.tenant_quota("greedy.org"))
        << "after greedy insert " << i;
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(c.get("http://victim.org/" + std::to_string(i), 1).has_value())
        << "a tenant's resident set must survive another tenant's flood";
  }
}

// A get must refresh LRU order within the touched entry's shard: fill one
// shard to capacity, touch the older entry, add a third — the touched entry
// survives and the untouched peer is the eviction victim. URLs are bucketed
// with the same `std::hash % shard_count` mapping the cache documents.
TEST(ShardedCacheLru, TouchRefreshesOrderWithinItsShard) {
  constexpr std::size_t shards = 4;
  // 1 KiB per shard; each entry charges 256 (body) + 256 (overhead) = 512,
  // so exactly two entries fit in a shard and a third forces one eviction.
  // Strict mode: with borrowing the third entry would fit the global bound.
  cache::http_cache c(4 * 1024, shards, /*shard_borrowing=*/false);
  ASSERT_EQ(c.shard_count(), shards);
  const auto shard_of = [](const std::string& url) {
    return std::hash<std::string>{}(url) % shards;
  };
  // Three URLs that land in the same shard.
  std::vector<std::string> same_shard;
  for (int i = 0; same_shard.size() < 3 && i < 1000; ++i) {
    const std::string url = "http://t/" + std::to_string(i);
    if (same_shard.empty() || shard_of(url) == shard_of(same_shard.front())) {
      same_shard.push_back(url);
    }
  }
  ASSERT_EQ(same_shard.size(), 3u);

  const http::response body =
      http::make_response(200, "t", util::make_body(std::string(256, 'a')));
  c.put_with_expiry(same_shard[0], body, 10'000, 0);  // oldest
  c.put_with_expiry(same_shard[1], body, 10'000, 0);
  ASSERT_TRUE(c.get(same_shard[0], 1).has_value());  // refresh the oldest
  c.put_with_expiry(same_shard[2], body, 10'000, 1);  // forces one eviction

  EXPECT_TRUE(c.get(same_shard[0], 2).has_value());   // touched: survives
  EXPECT_FALSE(c.get(same_shard[1], 2).has_value());  // untouched peer: victim
  EXPECT_TRUE(c.get(same_shard[2], 2).has_value());
  EXPECT_EQ(c.stats().evictions, 1u);
}

// Oversized puts are rejected with an explicit counter, and a bounded cache
// with an oversubscribed shard count degenerates to rejecting puts — never
// to unlimited growth.
TEST(ShardedCacheLru, OversizedPutsAreCountedNotSilent) {
  // 1 KiB per shard, strict: the entry bound is the slice, not the cache.
  cache::http_cache small(4 * 1024, 4, /*shard_borrowing=*/false);
  small.put_with_expiry("http://big/1",
                        http::make_response(200, "t", util::make_body(std::string(2048, 'x'))),
                        10'000, 0);
  EXPECT_EQ(small.entry_count(), 0u);
  EXPECT_EQ(small.stats().oversized_rejections, 1u);

  // capacity / shards rounds to 0
  cache::http_cache oversubscribed(1024, 2048, /*shard_borrowing=*/false);
  for (int i = 0; i < 100; ++i) {
    oversubscribed.put_with_expiry("http://o/" + std::to_string(i),
                                   http::make_response(200, "t", util::make_body("x")),
                                   10'000, 0);
  }
  EXPECT_EQ(oversubscribed.bytes_used(), 0u);  // bounded stays bounded
  EXPECT_EQ(oversubscribed.stats().oversized_rejections, 100u);
}

// ----- SHA-256 chunking invariance ----------------------------------------------------

class ShaChunking : public Seeded {};

TEST_P(ShaChunking, ArbitraryChunkingMatchesOneShot) {
  for (int trial = 0; trial < 10; ++trial) {
    const std::string msg = random_token(1 + rng.next(500));
    const auto expected = integrity::sha256_hash(msg);
    integrity::sha256 h;
    std::size_t pos = 0;
    while (pos < msg.size()) {
      const std::size_t n = 1 + rng.next(64);
      const std::size_t take = std::min(n, msg.size() - pos);
      h.update(std::string_view(msg).substr(pos, take));
      pos += take;
    }
    EXPECT_EQ(h.finish(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShaChunking, ::testing::Range(0, 6));

// ----- DHT completeness ---------------------------------------------------------------

class DhtCompleteness : public Seeded {};

TEST_P(DhtCompleteness, EveryPutIsFindableFromEveryMember) {
  sim::event_loop loop;
  sim::network net(loop);
  const std::size_t members = 6 + rng.next(8);
  std::vector<sim::node_id> hosts;
  std::vector<sim::link_id> nics;
  for (std::size_t i = 0; i < members; ++i) {
    hosts.push_back(net.add_node("h" + std::to_string(i)));
    nics.push_back(net.add_link(12.5e6));
  }
  for (std::size_t i = 0; i < members; ++i) {
    for (std::size_t j = i + 1; j < members; ++j) {
      net.set_route(hosts[i], hosts[j], 0.001 + rng.next_double() * 0.02,
                    {nics[i], nics[j]});
    }
  }
  overlay::sloppy_dht dht(net);
  std::vector<overlay::sloppy_dht::member_id> ids;
  for (std::size_t i = 0; i < members; ++i) {
    ids.push_back(dht.join(hosts[i], "m" + std::to_string(i)));
  }
  loop.run();

  std::vector<std::string> keys;
  for (int k = 0; k < 6; ++k) {
    const std::string key = "http://content/" + random_token(12);
    keys.push_back(key);
    dht.put(ids[rng.next(ids.size())], key, "holder-" + std::to_string(k), 100000,
            [](int) {});
  }
  loop.run();

  for (const auto& key : keys) {
    for (std::size_t m = 0; m < ids.size(); ++m) {
      bool found = false;
      dht.get(ids[m], key,
              [&](std::vector<std::string> values, int) { found = !values.empty(); });
      loop.run();
      EXPECT_TRUE(found) << "key " << key << " invisible from member " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DhtCompleteness, ::testing::Range(0, 4));

}  // namespace
}  // namespace nakika
