#include <gtest/gtest.h>

#include <memory>

#include "core/decision_tree.hpp"
#include "core/match_compiler.hpp"
#include "core/policy.hpp"
#include "util/random.hpp"

namespace nakika::core {
namespace {

http::request make_request(const std::string& url, const std::string& client_ip = "1.2.3.4",
                           const std::string& client_host = "",
                           http::method m = http::method::get) {
  http::request r;
  r.url = http::url::parse(url);
  r.client_ip = client_ip;
  r.client_host = client_host;
  r.method = m;
  return r;
}

policy_ptr make_policy(std::vector<std::string> urls, std::vector<std::string> clients = {},
                       std::vector<http::method> methods = {},
                       std::vector<std::pair<std::string, std::string>> headers = {},
                       std::uint64_t order = 0) {
  auto p = std::make_shared<policy>();
  for (const auto& u : urls) p->urls.push_back(http::url::parse_lenient(u));
  p->clients = std::move(clients);
  p->methods = std::move(methods);
  for (auto& [name, pattern_text] : headers) {
    header_predicate hp;
    hp.name = name;
    hp.pattern_source = pattern_text;
    hp.pattern = std::make_shared<util::pattern>(pattern_text);
    p->headers.push_back(std::move(hp));
  }
  p->registration_order = order;
  return p;
}

// ----- individual predicate evaluation -------------------------------------------------

TEST(Predicates, UrlDomainSuffixSemantics) {
  const http::url pred = http::url::parse_lenient("med.nyu.edu");
  EXPECT_TRUE(match_url_value(pred, http::url::parse("http://med.nyu.edu/")).has_value());
  EXPECT_TRUE(match_url_value(pred, http::url::parse("http://www.med.nyu.edu/x")).has_value());
  EXPECT_FALSE(match_url_value(pred, http::url::parse("http://law.nyu.edu/")).has_value());
  EXPECT_FALSE(match_url_value(pred, http::url::parse("http://notmed.nyu.edux/")).has_value());
}

TEST(Predicates, UrlPathPrefixSemantics) {
  const http::url pred = http::url::parse_lenient("a.org/docs/api");
  EXPECT_TRUE(match_url_value(pred, http::url::parse("http://a.org/docs/api")).has_value());
  EXPECT_TRUE(
      match_url_value(pred, http::url::parse("http://a.org/docs/api/v2")).has_value());
  EXPECT_FALSE(match_url_value(pred, http::url::parse("http://a.org/docs")).has_value());
  EXPECT_FALSE(match_url_value(pred, http::url::parse("http://a.org/docsx/api")).has_value());
}

TEST(Predicates, UrlPortMustAgree) {
  const http::url pred = http::url::parse_lenient("a.org:8080");
  EXPECT_TRUE(match_url_value(pred, http::url::parse("http://a.org:8080/")).has_value());
  EXPECT_FALSE(match_url_value(pred, http::url::parse("http://a.org/")).has_value());
}

TEST(Predicates, UrlSpecificityCountsComponents) {
  // host components + 1 (port) + path components
  EXPECT_EQ(match_url_value(http::url::parse_lenient("nyu.edu"),
                            http::url::parse("http://www.med.nyu.edu/a")),
            3);  // 2 host + port
  EXPECT_EQ(match_url_value(http::url::parse_lenient("med.nyu.edu/a/b"),
                            http::url::parse("http://med.nyu.edu/a/b/c")),
            6);  // 3 host + port + 2 path
}

TEST(Predicates, ClientSpecs) {
  // CIDR
  EXPECT_TRUE(match_client_value("192.168.0.0/16", "192.168.9.9", "").has_value());
  EXPECT_FALSE(match_client_value("192.168.0.0/16", "10.0.0.1", "").has_value());
  EXPECT_EQ(match_client_value("192.168.0.0/16", "192.168.9.9", ""), 2);
  // Exact IP
  EXPECT_EQ(match_client_value("1.2.3.4", "1.2.3.4", ""), 4);
  EXPECT_FALSE(match_client_value("1.2.3.4", "1.2.3.5", "").has_value());
  // Domain suffix needs a resolved host name.
  EXPECT_EQ(match_client_value("nyu.edu", "1.2.3.4", "dialup.nyu.edu"), 2);
  EXPECT_FALSE(match_client_value("nyu.edu", "1.2.3.4", "").has_value());
  EXPECT_FALSE(match_client_value("nyu.edu", "1.2.3.4", "pitt.edu").has_value());
  EXPECT_FALSE(match_client_value("", "1.2.3.4", "x").has_value());
}

TEST(Predicates, HeadersAreConjunctive) {
  const auto p = make_policy({}, {}, {},
                             {{"User-Agent", "Nokia"}, {"Accept", "image"}});
  http::request r = make_request("http://a.org/");
  EXPECT_FALSE(evaluate_policy(*p, r).has_value());
  r.headers.set("User-Agent", "Nokia6600/2.0");
  EXPECT_FALSE(evaluate_policy(*p, r).has_value());
  r.headers.set("Accept", "text/html,image/gif");
  const auto score = evaluate_policy(*p, r);
  ASSERT_TRUE(score.has_value());
  EXPECT_EQ((*score)[3], 2);
}

TEST(Predicates, ValuesWithinPropertyAreDisjunctive) {
  // Paper Fig. 3: two URLs, two client domains.
  const auto p = make_policy({"med.nyu.edu", "medschool.pitt.edu"}, {"nyu.edu", "pitt.edu"});
  EXPECT_TRUE(evaluate_policy(*p, make_request("http://med.nyu.edu/x", "1.1.1.1",
                                               "cs.pitt.edu"))
                  .has_value());
  EXPECT_TRUE(evaluate_policy(*p, make_request("http://medschool.pitt.edu/y", "1.1.1.1",
                                               "lab.nyu.edu"))
                  .has_value());
  EXPECT_FALSE(evaluate_policy(*p, make_request("http://med.nyu.edu/x", "1.1.1.1",
                                                "harvard.edu"))
                   .has_value());
  EXPECT_FALSE(evaluate_policy(*p, make_request("http://elsewhere.org/", "1.1.1.1",
                                                "lab.nyu.edu"))
                   .has_value());
}

TEST(Predicates, NullPropertiesAreTrue) {
  const auto p = make_policy({});
  EXPECT_TRUE(evaluate_policy(*p, make_request("http://anything.example/")).has_value());
}

TEST(Predicates, MethodsMatch) {
  const auto p = make_policy({}, {}, {http::method::post, http::method::put});
  EXPECT_FALSE(evaluate_policy(*p, make_request("http://a/")).has_value());
  EXPECT_TRUE(evaluate_policy(*p, make_request("http://a/", "1.1.1.1", "",
                                               http::method::post))
                  .has_value());
}

// ----- closest-match selection -------------------------------------------------------

TEST(Matching, MoreSpecificUrlWins) {
  policy_set set;
  set.policies.push_back(make_policy({"nyu.edu"}, {}, {}, {}, 0));
  set.policies.push_back(make_policy({"med.nyu.edu/simms"}, {}, {}, {}, 1));
  const auto result = match_linear(set, make_request("http://med.nyu.edu/simms/intro"));
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.matched->registration_order, 1u);
}

TEST(Matching, UrlPrecedesClientSpecificity) {
  // Paper: precedence is URL, then client. A policy with a more specific URL
  // beats one with a hyper-specific client but shorter URL.
  policy_set set;
  set.policies.push_back(make_policy({"nyu.edu"}, {"1.2.3.4"}, {}, {}, 0));
  set.policies.push_back(make_policy({"med.nyu.edu"}, {}, {}, {}, 1));
  const auto result = match_linear(set, make_request("http://med.nyu.edu/x", "1.2.3.4"));
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.matched->registration_order, 1u);
}

TEST(Matching, ClientPrecedesMethod) {
  policy_set set;
  set.policies.push_back(make_policy({}, {}, {http::method::get}, {}, 0));
  set.policies.push_back(make_policy({}, {"10.0.0.0/8"}, {}, {}, 1));
  const auto result = match_linear(set, make_request("http://a/", "10.1.1.1"));
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.matched->registration_order, 1u);
}

TEST(Matching, TieBreaksOnRegistrationOrder) {
  policy_set set;
  set.policies.push_back(make_policy({"a.org"}, {}, {}, {}, 0));
  set.policies.push_back(make_policy({"a.org"}, {}, {}, {}, 1));
  const auto result = match_linear(set, make_request("http://a.org/"));
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.matched->registration_order, 0u);
}

TEST(Matching, NoMatchReported) {
  policy_set set;
  set.policies.push_back(make_policy({"a.org"}));
  EXPECT_FALSE(match_linear(set, make_request("http://b.org/")).found());
  EXPECT_FALSE(decision_tree::build(set).match(make_request("http://b.org/")).found());
}

// ----- decision tree ------------------------------------------------------------------

TEST(DecisionTree, SharesPrefixesAcrossPolicies) {
  policy_set set;
  set.policies.push_back(make_policy({"med.nyu.edu/a"}));
  set.policies.push_back(make_policy({"med.nyu.edu/b"}));
  set.policies.push_back(make_policy({"law.nyu.edu"}));
  const decision_tree tree = decision_tree::build(set);
  // Shared: root + edu + nyu (3) then med/port/a, med-port shared... total
  // must be well below three independent chains (3 * 5 + root = 16).
  EXPECT_LT(tree.node_count(), 12u);
  EXPECT_EQ(tree.policy_count(), 3u);
}

TEST(DecisionTree, MatchesEquivalentToLinearOnExamples) {
  policy_set set;
  set.policies.push_back(make_policy({"med.nyu.edu", "medschool.pitt.edu"},
                                     {"nyu.edu", "pitt.edu"}, {}, {}, 0));
  set.policies.push_back(make_policy({"med.nyu.edu/simms"}, {}, {}, {}, 1));
  set.policies.push_back(
      make_policy({}, {}, {}, {{"User-Agent", "Nokia|SonyEricsson"}}, 2));
  set.policies.push_back(make_policy({}, {"192.168.0.0/16"}, {http::method::post}, {}, 3));
  const decision_tree tree = decision_tree::build(set);

  std::vector<http::request> requests;
  requests.push_back(make_request("http://med.nyu.edu/simms/1", "1.1.1.1", "cs.nyu.edu"));
  requests.push_back(make_request("http://www.med.nyu.edu/", "1.1.1.1", "cs.pitt.edu"));
  requests.push_back(make_request("http://other.org/", "192.168.3.4", "",
                                  http::method::post));
  requests.push_back(make_request("http://other.org/", "10.0.0.1"));
  http::request nokia = make_request("http://any.org/pic.png");
  nokia.headers.set("User-Agent", "Nokia6600");
  requests.push_back(nokia);

  for (const auto& r : requests) {
    const auto linear = match_linear(set, r);
    const auto via_tree = tree.match(r);
    EXPECT_EQ(linear.found(), via_tree.found()) << r.url.str();
    if (linear.found() && via_tree.found()) {
      EXPECT_EQ(linear.matched->registration_order, via_tree.matched->registration_order)
          << r.url.str();
      EXPECT_EQ(linear.score, via_tree.score) << r.url.str();
    }
  }
}

// Property test: the decision tree agrees with the reference linear matcher
// on randomized policy sets and requests.
class TreeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TreeEquivalence, RandomizedAgreement) {
  util::rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  const std::vector<std::string> hosts = {"a.org", "www.a.org", "b.a.org", "x.net",
                                          "deep.x.net"};
  const std::vector<std::string> paths = {"", "/p", "/p/q", "/r"};
  const std::vector<std::string> clients = {"10.0.0.0/8", "192.168.1.0/24", "1.2.3.4",
                                            "nyu.edu", "cs.nyu.edu"};
  const std::vector<http::method> methods = {http::method::get, http::method::post,
                                             http::method::head};

  policy_set set;
  const std::size_t policy_count = 1 + rng.next(12);
  for (std::size_t i = 0; i < policy_count; ++i) {
    std::vector<std::string> urls;
    const std::size_t url_count = rng.next(3);  // 0 = null property
    for (std::size_t u = 0; u < url_count; ++u) {
      urls.push_back(hosts[rng.next(hosts.size())] + paths[rng.next(paths.size())]);
    }
    std::vector<std::string> client_specs;
    const std::size_t client_count = rng.next(3);
    for (std::size_t c = 0; c < client_count; ++c) {
      client_specs.push_back(clients[rng.next(clients.size())]);
    }
    std::vector<http::method> method_list;
    if (rng.chance(0.3)) method_list.push_back(methods[rng.next(methods.size())]);
    std::vector<std::pair<std::string, std::string>> headers;
    if (rng.chance(0.3)) headers.emplace_back("User-Agent", "Nokia|Moto");
    set.policies.push_back(
        make_policy(urls, client_specs, method_list, headers, i));
  }
  const decision_tree tree = decision_tree::build(set);

  for (int t = 0; t < 60; ++t) {
    http::request r = make_request(
        "http://" + hosts[rng.next(hosts.size())] + paths[rng.next(paths.size())] + "/leaf",
        rng.chance(0.5) ? "10.1.2.3" : (rng.chance(0.5) ? "192.168.1.9" : "1.2.3.4"),
        rng.chance(0.5) ? "dialup.cs.nyu.edu" : "", methods[rng.next(methods.size())]);
    if (rng.chance(0.3)) r.headers.set("User-Agent", "Nokia123");

    const auto linear = match_linear(set, r);
    const auto via_tree = tree.match(r);
    ASSERT_EQ(linear.found(), via_tree.found()) << "seed=" << GetParam() << " t=" << t;
    if (linear.found()) {
      EXPECT_EQ(linear.matched->registration_order, via_tree.matched->registration_order)
          << "seed=" << GetParam() << " t=" << t << " url=" << r.url.str();
      EXPECT_EQ(linear.score, via_tree.score);
    }
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, TreeEquivalence, ::testing::Range(0, 20));

// ----- compiled matcher (decision tree lowered to bytecode) ---------------------
//
// The VM-evaluated predicate chunk must agree with the tree walk — which in
// turn agrees with match_linear — on the chosen policy AND its specificity.

class matcher_fixture {
 public:
  matcher_fixture() {
    js::context_limits limits;
    limits.heap_bytes = 0;
    limits.ops = 0;
    ctx_ = std::make_unique<js::context>(limits, js::context::bare_t{});
  }

  void check_parity(const policy_set& set, const http::request& r,
                    const std::string& label) {
    const decision_tree tree = decision_tree::build(set);
    const auto matcher = compiled_matcher::build(tree);
    ASSERT_NE(matcher, nullptr) << label;
    const match_result walked = tree.match(r);
    const match_result compiled = matcher->match(*ctx_, r);
    ASSERT_EQ(walked.found(), compiled.found()) << label << " url=" << r.url.str();
    if (walked.found()) {
      EXPECT_EQ(walked.matched->registration_order, compiled.matched->registration_order)
          << label << " url=" << r.url.str();
      EXPECT_EQ(walked.score, compiled.score) << label << " url=" << r.url.str();
    }
  }

 private:
  std::unique_ptr<js::context> ctx_;
};

TEST(CompiledMatcher, CuratedParity) {
  matcher_fixture fx;
  policy_set set;
  set.policies.push_back(make_policy({"med.nyu.edu", "medschool.pitt.edu"},
                                     {"nyu.edu", "pitt.edu"}, {}, {}, 0));
  set.policies.push_back(make_policy({"med.nyu.edu/simms"}, {}, {}, {}, 1));
  set.policies.push_back(
      make_policy({}, {}, {}, {{"User-Agent", "Nokia|SonyEricsson"}}, 2));
  set.policies.push_back(make_policy({}, {"192.168.0.0/16"}, {http::method::post}, {}, 3));
  set.policies.push_back(make_policy({}, {}, {}, {}, 4));  // catch-all at the root

  std::vector<http::request> requests;
  requests.push_back(make_request("http://med.nyu.edu/simms/1", "1.1.1.1", "cs.nyu.edu"));
  requests.push_back(make_request("http://www.med.nyu.edu/", "1.1.1.1", "cs.pitt.edu"));
  requests.push_back(
      make_request("http://other.org/", "192.168.3.4", "", http::method::post));
  requests.push_back(make_request("http://other.org/", "10.0.0.1"));
  requests.push_back(make_request("http://MED.NYU.EDU/simms", "1.1.1.1", "x.nyu.edu"));
  http::request nokia = make_request("http://any.org/pic.png");
  nokia.headers.set("User-Agent", "Nokia6600");
  requests.push_back(nokia);

  for (const auto& r : requests) fx.check_parity(set, r, "curated");
}

TEST(CompiledMatcher, TieBreaksAndEmptySets) {
  matcher_fixture fx;
  {
    policy_set ties;
    ties.policies.push_back(make_policy({"a.org"}, {}, {}, {}, 0));
    ties.policies.push_back(make_policy({"a.org"}, {}, {}, {}, 1));
    fx.check_parity(ties, make_request("http://a.org/"), "tie");
  }
  {
    policy_set empty;
    fx.check_parity(empty, make_request("http://a.org/"), "empty");
  }
}

TEST(CompiledMatcher, ReusableAcrossRequestsAndStages) {
  // One matcher instance, many requests (the per-sandbox usage pattern), and
  // a second matcher bound to the same context (multiple loaded stages).
  js::context_limits limits;
  limits.heap_bytes = 0;
  limits.ops = 0;
  js::context ctx(limits, js::context::bare_t{});

  policy_set a;
  a.policies.push_back(make_policy({"a.org/x"}, {}, {}, {}, 0));
  a.policies.push_back(make_policy({"a.org"}, {}, {}, {}, 1));
  const decision_tree tree_a = decision_tree::build(a);
  const auto matcher_a = compiled_matcher::build(tree_a);
  ASSERT_NE(matcher_a, nullptr);

  policy_set b;
  b.policies.push_back(make_policy({}, {"10.0.0.0/8"}, {}, {}, 0));
  const decision_tree tree_b = decision_tree::build(b);
  const auto matcher_b = compiled_matcher::build(tree_b);
  ASSERT_NE(matcher_b, nullptr);

  for (int i = 0; i < 200; ++i) {
    const http::request r1 =
        make_request(i % 2 == 0 ? "http://a.org/x/deep" : "http://a.org/other");
    const match_result w1 = tree_a.match(r1);
    const match_result c1 = matcher_a->match(ctx, r1);
    ASSERT_EQ(w1.matched->registration_order, c1.matched->registration_order) << i;

    const http::request r2 = make_request("http://b.net/", i % 3 == 0 ? "10.1.1.1" : "9.9.9.9");
    const match_result w2 = tree_b.match(r2);
    const match_result c2 = matcher_b->match(ctx, r2);
    ASSERT_EQ(w2.found(), c2.found()) << i;
  }
}

// Property test: compiled matcher vs tree walk on the randomized generator
// the tree-vs-linear suite uses.
class MatcherEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MatcherEquivalence, RandomizedAgreement) {
  util::rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  matcher_fixture fx;

  const std::vector<std::string> hosts = {"a.org", "www.a.org", "b.a.org", "x.net",
                                          "deep.x.net"};
  const std::vector<std::string> paths = {"", "/p", "/p/q", "/r"};
  const std::vector<std::string> clients = {"10.0.0.0/8", "192.168.1.0/24", "1.2.3.4",
                                            "nyu.edu", "cs.nyu.edu"};
  const std::vector<http::method> methods = {http::method::get, http::method::post,
                                             http::method::head};

  policy_set set;
  const std::size_t policy_count = 1 + rng.next(12);
  for (std::size_t i = 0; i < policy_count; ++i) {
    std::vector<std::string> urls;
    const std::size_t url_count = rng.next(3);
    for (std::size_t u = 0; u < url_count; ++u) {
      urls.push_back(hosts[rng.next(hosts.size())] + paths[rng.next(paths.size())]);
    }
    std::vector<std::string> client_specs;
    const std::size_t client_count = rng.next(3);
    for (std::size_t c = 0; c < client_count; ++c) {
      client_specs.push_back(clients[rng.next(clients.size())]);
    }
    std::vector<http::method> method_list;
    if (rng.chance(0.3)) method_list.push_back(methods[rng.next(methods.size())]);
    std::vector<std::pair<std::string, std::string>> headers;
    if (rng.chance(0.3)) headers.emplace_back("User-Agent", "Nokia|Moto");
    set.policies.push_back(make_policy(urls, client_specs, method_list, headers, i));
  }

  for (int t = 0; t < 40; ++t) {
    http::request r = make_request(
        "http://" + hosts[rng.next(hosts.size())] + paths[rng.next(paths.size())] + "/leaf",
        rng.chance(0.5) ? "10.1.2.3" : (rng.chance(0.5) ? "192.168.1.9" : "1.2.3.4"),
        rng.chance(0.5) ? "dialup.cs.nyu.edu" : "", methods[rng.next(methods.size())]);
    if (rng.chance(0.3)) r.headers.set("User-Agent", "Nokia123");
    fx.check_parity(set, r, "seed=" + std::to_string(GetParam()) + " t=" + std::to_string(t));
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, MatcherEquivalence, ::testing::Range(0, 12));

}  // namespace
}  // namespace nakika::core
