// Differential testing of the two script engines: every program in a curated
// corpus plus a deterministic generated corpus runs through the tree-walking
// interpreter (reference oracle) and the bytecode VM, asserting identical
// results and side-effects. Also proves the VM's fuel metering enforces the
// same resource limits the tree-walker did (ops budget, kill flag, heap, call
// depth), and that the compiled-chunk cache shares work across sandboxes.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/sandbox.hpp"
#include "js/compiler.hpp"
#include "js/interpreter.hpp"
#include "js/parser.hpp"
#include "js/vm.hpp"

namespace nakika::js {
namespace {

struct eval_outcome {
  bool threw = false;
  script_error_kind error_kind = script_error_kind::runtime;
  std::string error_what;
  std::string result;  // global `result` stringified
  std::string trace;   // global `trace` stringified (side-effect log)
};

eval_outcome run_engine(const std::string& source, engine_kind engine,
                        context_limits limits = {}) {
  eval_outcome out;
  context ctx(limits);
  try {
    eval_script(ctx, source, "<diff>", engine);
  } catch (const script_error& e) {
    out.threw = true;
    out.error_kind = e.kind();
    out.error_what = e.what();
  }
  // Globals are read even after a throw: side effects up to the failure
  // point must match across engines too.
  out.result = ctx.global()->get("result").to_string();
  out.trace = ctx.global()->get("trace").to_string();
  return out;
}

// Runs `source` under both engines and asserts equivalent observable
// behavior: same result/trace globals, or same error kind.
void expect_equivalent(const std::string& source, context_limits limits = {}) {
  const eval_outcome tree = run_engine(source, engine_kind::tree_walker, limits);
  const eval_outcome vm = run_engine(source, engine_kind::bytecode, limits);
  ASSERT_EQ(tree.threw, vm.threw)
      << "one engine threw for:\n"
      << source << "\ntree: " << (tree.threw ? tree.error_what : tree.result)
      << "\nvm:   " << (vm.threw ? vm.error_what : vm.result);
  if (tree.threw) {
    EXPECT_EQ(to_string(tree.error_kind), to_string(vm.error_kind)) << source;
  } else {
    EXPECT_EQ(tree.result, vm.result) << source;
  }
  EXPECT_EQ(tree.trace, vm.trace) << source;
}

// ----- curated corpus: control flow, closures, exceptions ----------------------

TEST(Differential, ClosureCorpus) {
  expect_equivalent(R"JS(
    function make(start) {
      var n = start;
      return { inc: function() { n++; return n; },
               dec: function() { n--; return n; } };
    }
    var a = make(10); var b = make(100);
    a.inc(); a.inc(); b.dec();
    result = '' + a.inc() + ':' + b.dec() + ':' + a.dec();
  )JS");
  expect_equivalent(R"JS(
    var fs = [];
    for (var i = 0; i < 3; i++) {
      var x = i * 10;
      fs.push(function() { return x + i; });
    }
    result = '' + fs[0]() + ',' + fs[1]() + ',' + fs[2]();
  )JS");
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NAKIKA_TEST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define NAKIKA_TEST_ASAN 1
#endif
#ifndef NAKIKA_TEST_ASAN
  // Known pre-existing tree-walker limitation: a function DECLARED in a local
  // scope is stored in the same environment its closure captures, creating an
  // env<->closure shared_ptr cycle that LeakSanitizer reports. The VM's
  // cell-based closures do not cycle here. Differential coverage for local
  // function declarations runs in non-ASan builds only.
  expect_equivalent(R"JS(
    function outer() {
      var total = 0;
      function add(n) { total += n; }
      add(1); add(2); add(3);
      return total;
    }
    result = outer();
  )JS");
#endif
  expect_equivalent(R"JS(
    function counterChain() {
      var a = 1;
      return function() {
        var b = 2;
        return function() { return a + b; };
      };
    }
    result = counterChain()()();
  )JS");
  // Forward references: a closure created BEFORE the var it captures is
  // declared must still bind that local once the declaration runs (caught by
  // review: the compiler originally resolved these to globals). The closures
  // are published through globals — as stage scripts publish handlers — which
  // also sidesteps the pre-existing tree-walker env<->closure leak cycle.
  expect_equivalent(R"JS(
    function outer() { pub = function() { return x; }; var x = 5; return pub(); }
    result = outer();
  )JS");
  expect_equivalent(R"JS(
    function outer() { pub = function() { x = 9; }; var x = 1; pub(); return x; }
    result = outer() + typeof x;
  )JS");
  expect_equivalent(R"JS(
    fs = [];
    function outer() {
      for (var i = 0; i < 3; i++) {
        fs.push(function() { return seen; });
        var seen = i * 11;
      }
    }
    outer();
    result = fs[0]() + ',' + fs[1]() + ',' + fs[2]();
  )JS");
}

TEST(Differential, ExceptionCorpus) {
  expect_equivalent(R"JS(
    trace = '';
    function risky(n) {
      try {
        if (n > 1) throw 'big';
        trace += 'ok' + n;
        return n;
      } finally {
        trace += 'f' + n;
      }
    }
    var got = '';
    try { got += risky(0); got += risky(2); } catch (e) { got += 'c:' + e; }
    result = got;
  )JS");
  expect_equivalent(R"JS(
    trace = '';
    for (var i = 0; i < 4; i++) {
      try {
        if (i == 1) continue;
        if (i == 3) break;
        trace += 'b' + i;
      } finally {
        trace += 'f' + i;
      }
    }
    result = trace;
  )JS");
  expect_equivalent(R"JS(
    function f() {
      try { return 'tried'; } finally { trace = 'fin-ran'; }
    }
    result = f();
  )JS");
  expect_equivalent(R"JS(
    function f() {
      for (var i = 0; i < 3; i++) {
        try { return 'first'; } finally { break; }
      }
      return 'after-break:' + i;
    }
    result = f();
  )JS");
  expect_equivalent(R"JS(
    trace = '';
    try {
      try { throw 'inner'; } catch (e) { trace += 'c1:' + e; throw 'rethrown'; }
    } catch (e2) { trace += '|c2:' + e2; }
    result = trace;
  )JS");
  expect_equivalent("try { null.x; } catch (e) { result = 'engine errors pass'; }");
  // `new` must reject a non-function BEFORE evaluating arguments (caught by
  // review: the VM originally evaluated args first).
  expect_equivalent("trace = 0; try { new 5(trace = 1); } catch (e) {} result = trace;");
  expect_equivalent("throw {code: 42};");
  expect_equivalent(R"JS(
    var depth = 0;
    function rec(n) { depth = n; if (n > 0) rec(n - 1); }
    try { rec(5000); } catch (e) { }
    result = 'done';
  )JS");
}

TEST(Differential, StatementCorpus) {
  expect_equivalent(R"JS(
    var s = 0;
    for (var i = 0; i < 5; i++) {
      for (var j = 0; j < 5; j++) {
        if (j > i) continue;
        if (i * j > 6) break;
        s += i * 10 + j;
      }
    }
    result = s;
  )JS");
  expect_equivalent(R"JS(
    var words = [];
    var o = {x: 1, y: 2, z: 3};
    o.y = undefined; delete o.z;
    for (var k in o) words.push(k + '=' + o[k]);
    var arr = ['a', 'b'];
    for (var idx in arr) words.push(idx);
    result = words.join('|');
  )JS");
  expect_equivalent(R"JS(
    function day(n) {
      var out = '';
      switch (n % 3) {
        case 0: out += 'zero';
        case 1: out += 'one'; break;
        case 2: out += 'two'; break;
        default: out = 'never';
      }
      return out;
    }
    result = day(0) + ',' + day(1) + ',' + day(2) + ',' + day(3);
  )JS");
  expect_equivalent(R"JS(
    var n = 0; var seen = '';
    do { seen += n; n++; } while (n < 4);
    while (n > 0) { n -= 2; seen += '.' + n; }
    result = seen;
  )JS");
  expect_equivalent(R"JS(
    var x = 5;
    { var x = 7; result = x; }
    result = result * 10 + x;
  )JS");
}

TEST(Differential, ExpressionCorpus) {
  expect_equivalent(R"JS(
    var a = [1, 2, 3];
    a[1] += 10; a[0] *= 3; a[2] -= 0.5;
    var o = {n: 'x'};
    o.n += '!';
    var i = 0;
    var post = i++; var pre = ++i;
    a[0]++; --a[1];
    result = a.join(',') + '|' + o.n + '|' + post + pre + i;
  )JS");
  expect_equivalent(R"JS(
    var b = new ByteArray('abc');
    b[0] = 65; b[1] += 1;
    result = b.toString() + b.length;
  )JS");
  expect_equivalent(R"JS(
    result = '' + (undefined == null) + (NaN1 = 0/0, NaN1 == NaN1) +
             ('5' * '4') + (true + true) + ('x' || 'y') + (0 && 'z');
  )JS");
  expect_equivalent(R"JS(
    function Vec(x, y) { this.x = x; this.y = y; }
    Vec.prototype.dot = function(o) { return this.x * o.x + this.y * o.y; };
    var v = new Vec(2, 3);
    result = '' + v.dot(new Vec(4, 5)) + (v instanceof Vec) + ('x' in v) + ('z' in v);
  )JS");
  expect_equivalent(R"JS(
    var obj = {f: function() { return typeof this.g; }, g: function() {} };
    var tbl = {}; tbl['k' + 1] = obj;
    result = tbl['k1'].f() + typeof missingThing + (typeof obj.f);
  )JS");
  expect_equivalent(R"JS(
    var calls = '';
    function t(label, v) { calls += label; return v; }
    var r = t('a', false) && t('b', true);
    r = t('c', 1) || t('d', 2);
    r = t('e', 0) ? t('f', 1) : t('g', 2);
    result = calls;
  )JS");
  expect_equivalent(R"JS(
    var s = 'hello world';
    result = s.split(' ').map; // undefined member access on natives
    result = '' + s.toUpperCase() + s.indexOf('o', 5) + s.slice(-3) + s[1];
  )JS");
  expect_equivalent(R"JS(
    var sorted = [5, 1, 4, 2, 3].sort(function(a, b) { return b - a; });
    result = sorted.join('') + JSON.stringify({k: [1, null, 'two']});
  )JS");
  expect_equivalent("var a = []; a[5] = 1; result = '' + a.length + a[3];");
  expect_equivalent("result = (function(a, b) { return arguments.length + '/' + a; })(7, 8, 9);");
}

// ----- generated corpus --------------------------------------------------------
//
// A deterministic program generator: seeded LCG, bounded loops, arithmetic on
// a fixed pool of variables, nested conditionals, small functions and
// closures. Termination is guaranteed by construction (loops have constant
// trip counts), so every generated program must produce identical output on
// both engines.

class gen {
 public:
  explicit gen(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  std::uint64_t next(std::uint64_t bound) { return next() % bound; }

  std::string var() { return std::string(1, static_cast<char>('a' + next(4))); }

  std::string expr(int depth) {
    switch (next(depth <= 0 ? 3 : 7)) {
      case 0: return std::to_string(next(100));
      case 1: return var();
      case 2: return "'s" + std::to_string(next(10)) + "'";
      case 3: return "(" + expr(depth - 1) + " " + binop() + " " + expr(depth - 1) + ")";
      case 4: return "(" + expr(depth - 1) + " ? " + expr(depth - 1) + " : " +
                     expr(depth - 1) + ")";
      case 5: return "f" + std::to_string(next(2)) + "(" + expr(depth - 1) + ")";
      default: return "(-" + std::to_string(next(50)) + " + " + var() + ")";
    }
  }

  std::string binop() {
    static const char* ops[] = {"+", "-", "*", "%", "<", ">", "==", "!=", "&", "|", "^"};
    return ops[next(sizeof(ops) / sizeof(ops[0]))];
  }

  std::string stmt(int depth) {
    switch (next(depth <= 0 ? 2 : 7)) {
      case 0: return var() + " = " + expr(2) + ";\n";
      case 1: return "trace += '' + (" + expr(2) + ");\n";
      case 2: {
        const std::string v = var();
        return "if (" + expr(1) + ") { " + stmt(depth - 1) + " } else { " + v + " = " +
               expr(1) + "; }\n";
      }
      case 3: {
        const std::string body = stmt(depth - 1) + stmt(depth - 1);
        return "for (var q = 0; q < " + std::to_string(1 + next(4)) + "; q++) { " + body +
               " }\n";
      }
      case 4: return var() + " += " + expr(1) + ";\n";
      case 5: {
        // Closure created before the var it captures is declared (the
        // forward-reference class the compiler must bind via cells). Stored
        // in a global, not a captured local, to avoid the pre-existing
        // tree-walker env<->closure cycle. NOTE: the closure must only be
        // CALLED after the `var` executes, and the name must not be touched
        // before its declaration — accesses above the declaration of a
        // captured name are a documented engine divergence (see README).
        return "{ hh = function() { return w + " + var() + "; }; var w = " + expr(1) +
               "; trace += '#' + hh(); }\n";
      }
      default: {
        return "try { if (" + expr(1) + ") throw " + expr(1) + "; " + stmt(depth - 1) +
               " } catch (e) { trace += '!' + e; } finally { trace += '.'; }\n";
      }
    }
  }

  std::string program() {
    std::string src = "var a = 1; var b = 2; var c = 'x'; var d = 0; trace = '';\n";
    src += "function f0(n) { return (n | 0) % 7; }\n";
    src += "function f1(n) { var k = 3; return function(m) { return k + (m | 0); }(n); }\n";
    const std::uint64_t statements = 3 + next(5);
    for (std::uint64_t i = 0; i < statements; ++i) src += stmt(2);
    src += "result = '' + a + '|' + b + '|' + c + '|' + d;\n";
    return src;
  }

 private:
  std::uint64_t state_;
};

TEST(Differential, GeneratedCorpus) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    gen g(seed * 2654435761ULL);
    const std::string src = g.program();
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_equivalent(src);
  }
}

// ----- fuel metering: the VM enforces the sandbox limits -----------------------

// ----- inline-cache invalidation ----------------------------------------------
//
// The VM's monomorphic caches short-circuit global and property lookups after
// the first access through a site. Every test here re-executes a site AFTER a
// structural change (delete, shadowing store, global redefinition) and
// asserts the cached path still agrees with the uncached tree-walker — i.e.
// the shape-generation / global-generation invalidation actually fires.

TEST(InlineCache, PropertyDeletionInvalidates) {
  expect_equivalent(R"JS(
    var o = {a: 1, b: 2, c: 3};
    function readB() { return o.b; }
    var before = 0;
    for (var i = 0; i < 50; i++) before += readB();  // cache o.b
    delete o.a;                                      // shifts b's index
    var after = 0;
    for (var j = 0; j < 50; j++) after += readB();
    delete o.b;                                      // b now comes from nowhere
    var gone = o.b === undefined;
    result = before + ':' + after + ':' + gone;
  )JS");
}

TEST(InlineCache, PrototypeShadowingInvalidates) {
  expect_equivalent(R"JS(
    function C() {}
    C.prototype.x = 'proto';
    var o = new C();
    function readX() { return o.x; }
    var first = readX();   // prototype hit (uncacheable)
    for (var i = 0; i < 20; i++) readX();
    o.x = 'own';           // shadowing own store changes the shape
    var second = readX();  // must see the own property now
    delete o.x;            // un-shadow: back to the prototype
    var third = readX();
    result = first + ':' + second + ':' + third;
  )JS");
}

TEST(InlineCache, GlobalRedefinitionInvalidates) {
  expect_equivalent(R"JS(
    var mode = 'a';
    function f() { return 1; }
    function probe() { return mode + f(); }
    var out = '';
    for (var i = 0; i < 30; i++) out = probe();  // cache the globals
    mode = 'b';                                  // in-place write (no reshape)
    out += probe();
    f = function() { return 2; };                // redefinition through the cache
    out += probe();
    shadow = 'new-global';                       // inserting a global reshapes
    out += probe() + shadow;
    result = out;
  )JS");
}

TEST(InlineCache, SetThroughCacheAfterReshape) {
  expect_equivalent(R"JS(
    var o = {n: 0, pad: 1};
    function bump() { o.n = o.n + 1; return o.n; }
    for (var i = 0; i < 25; i++) bump();  // cache the o.n set site
    delete o.pad;                         // reshape shifts n
    for (var j = 0; j < 25; j++) bump();
    o.extra = 'x';                        // reshape by insertion
    for (var k = 0; k < 25; k++) bump();
    result = o.n + ':' + o.extra;
  )JS");
}

TEST(InlineCache, DynamicIndexMethodKeyChanges) {
  expect_equivalent(R"JS(
    var dispatch = {
      inc: function(v) { return v + 1; },
      dec: function(v) { return v - 1; }
    };
    var total = 0;
    for (var i = 0; i < 40; i++) {
      var op = (i % 2 === 0) ? 'inc' : 'dec';
      total = dispatch[op](total) + (i % 3);
    }
    result = total;
  )JS");
}

TEST(InlineCache, PerContextIsolation) {
  // One chunk, two contexts: caches filled in the first context must not
  // leak results into the second (the side table is per-context).
  const program_ptr prog = parse_program(
      "result = '' + answer + ':' + obj.tag;", "<shared>");
  const compiled_program_ptr chunk = compile_program(prog);

  context a;
  eval_script(a, "var answer = 1; var obj = {pad: 0, tag: 'A'};", "<seed-a>",
              engine_kind::bytecode);
  run_program(a, chunk);
  run_program(a, chunk);  // second run goes through warm caches
  EXPECT_EQ(a.global()->get("result").to_string(), "1:A");

  context b;
  eval_script(b, "var pad2 = 0; var answer = 2; var obj = {tag: 'B'};", "<seed-b>",
              engine_kind::bytecode);
  run_program(b, chunk);
  EXPECT_EQ(b.global()->get("result").to_string(), "2:B");
  EXPECT_EQ(a.global()->get("result").to_string(), "1:A");
}

TEST(InlineCache, CountersReportHitsAndMisses) {
  context ctx;
  eval_script(ctx,
              "var state = {n: 0}; for (var i = 0; i < 100; i++) state.n = state.n + 1; "
              "result = state.n;",
              "<counters>", engine_kind::bytecode);
  EXPECT_EQ(ctx.global()->get("result").to_string(), "100");
  EXPECT_GT(ctx.ic_hits(), 100u);  // the loop's global + property sites stay hot
  EXPECT_GT(ctx.ic_misses(), 0u);  // first touch of every site misses
  ctx.reset_for_reuse();
  EXPECT_EQ(ctx.ic_hits(), 0u);
  EXPECT_EQ(ctx.ic_misses(), 0u);
}

// Frame-arena regression: deep recursion followed by shallow calls must reuse
// pooled frames without leaking values between calls.
TEST(FrameArena, RecursionReusesFramesCleanly) {
  context ctx;
  eval_script(ctx,
              "function down(n) { var local = 'x' + n; "
              "  return n === 0 ? 0 : local.length + down(n - 1); } "
              "var deep = down(150); var shallow = down(3); "
              "result = deep + ':' + shallow;",
              "<arena>", engine_kind::bytecode);
  const std::string deep_then_shallow = ctx.global()->get("result").to_string();
  context ctx2;
  eval_script(ctx2,
              "function down(n) { var local = 'x' + n; "
              "  return n === 0 ? 0 : local.length + down(n - 1); } "
              "var shallow = down(3); var deep = down(150); "
              "result = deep + ':' + shallow;",
              "<arena>", engine_kind::bytecode);
  EXPECT_EQ(deep_then_shallow, ctx2.global()->get("result").to_string());
}

TEST(Fuel, VmKillsRunawayLoopAtOpsBudget) {
  context_limits limits;
  limits.ops = 100000;
  for (const engine_kind engine : {engine_kind::tree_walker, engine_kind::bytecode}) {
    const eval_outcome out = run_engine("while (true) {}", engine, limits);
    ASSERT_TRUE(out.threw) << to_string(engine);
    EXPECT_EQ(to_string(out.error_kind), to_string(script_error_kind::ops_budget))
        << to_string(engine);
  }
}

TEST(Fuel, VmKillsRunawayLoopInsideCalls) {
  // The runaway loop spins inside a called function: fuel must flow through
  // frames, not just the top-level chunk.
  context_limits limits;
  limits.ops = 100000;
  const char* src = "function spin() { var i = 0; while (true) { i++; } } spin();";
  for (const engine_kind engine : {engine_kind::tree_walker, engine_kind::bytecode}) {
    const eval_outcome out = run_engine(src, engine, limits);
    ASSERT_TRUE(out.threw) << to_string(engine);
    EXPECT_EQ(to_string(out.error_kind), to_string(script_error_kind::ops_budget))
        << to_string(engine);
  }
}

TEST(Fuel, VmOpsBudgetNotCatchableByScript) {
  context_limits limits;
  limits.ops = 50000;
  const char* src = "try { while (true) {} } catch (e) { result = 'swallowed'; }";
  for (const engine_kind engine : {engine_kind::tree_walker, engine_kind::bytecode}) {
    const eval_outcome out = run_engine(src, engine, limits);
    ASSERT_TRUE(out.threw) << to_string(engine);
    EXPECT_EQ(to_string(out.error_kind), to_string(script_error_kind::ops_budget))
        << to_string(engine);
  }
}

TEST(Fuel, KillFlagStopsVmAtBackEdge) {
  context ctx;
  ctx.kill_flag()->store(true);
  try {
    eval_script(ctx, "var i = 0; for (;;) { i = i + 1; }", "<kill>", engine_kind::bytecode);
    FAIL() << "expected termination";
  } catch (const script_error& e) {
    EXPECT_EQ(e.kind(), script_error_kind::terminated);
  }
}

TEST(Fuel, HeapLimitParity) {
  context_limits limits;
  limits.heap_bytes = 1 * 1024 * 1024;
  const char* src = "var s = 'y'; while (true) { s = s + s; }";
  for (const engine_kind engine : {engine_kind::tree_walker, engine_kind::bytecode}) {
    const eval_outcome out = run_engine(src, engine, limits);
    ASSERT_TRUE(out.threw) << to_string(engine);
    EXPECT_EQ(to_string(out.error_kind), to_string(script_error_kind::out_of_memory))
        << to_string(engine);
  }
}

TEST(Fuel, CallDepthParity) {
  context_limits limits;
  limits.call_depth = 40;
  const char* src = "function f() { return f(); } f();";
  for (const engine_kind engine : {engine_kind::tree_walker, engine_kind::bytecode}) {
    const eval_outcome out = run_engine(src, engine, limits);
    ASSERT_TRUE(out.threw) << to_string(engine);
    EXPECT_EQ(to_string(out.error_kind), to_string(script_error_kind::runtime))
        << to_string(engine);
  }
}

TEST(Fuel, VmChargesOpsProportionalToWork) {
  context ctx;
  eval_script(ctx, "var x = 0; for (var i = 0; i < 1000; i++) x += i;", "<fuel>",
              engine_kind::bytecode);
  const std::uint64_t thousand_iters = ctx.ops_used();
  EXPECT_GT(thousand_iters, 1000u);

  context ctx2;
  eval_script(ctx2, "var x = 0; for (var i = 0; i < 10000; i++) x += i;", "<fuel>",
              engine_kind::bytecode);
  EXPECT_GT(ctx2.ops_used(), 5 * thousand_iters);
}

// Pins the VM's (intentionally) divergent behavior for accesses to a captured
// name ABOVE its `var` statement — the documented trade-off of binding
// forward-referenced captures at block entry (see README "Compile-time
// resolution note"). These are VM-only assertions, not differential ones: the
// tree-walker raises "not defined" / creates a global here.
TEST(Differential, DocumentedEarlyAccessDivergence) {
  {
    context ctx;
    eval_script(ctx,
                "function o() { pub = function() { return x; }; var early = pub(); "
                "var x = 5; return '' + early + ':' + pub(); } result = o();",
                "<pin>", engine_kind::bytecode);
    EXPECT_EQ(ctx.global()->get("result").to_string(), "undefined:5");
  }
  {
    context ctx;
    eval_script(ctx,
                "function o() { pub = function() { return x; }; x = 7; var x = 1; "
                "return pub(); } result = '' + o() + typeof x;",
                "<pin>", engine_kind::bytecode);
    // The early write lands in the pre-declared cell (overwritten by the
    // declaration), not in a global.
    EXPECT_EQ(ctx.global()->get("result").to_string(), "1undefined");
  }
}

// ----- cross-engine interop ----------------------------------------------------

TEST(Interop, TreeWalkerCallsVmCompiledFunction) {
  context ctx;
  eval_script(ctx, "handler = function(n) { return n * 2 + 1; };", "<vm>",
              engine_kind::bytecode);
  interpreter in(ctx);
  const value fn = ctx.global()->get("handler");
  const value out = in.call(fn, value::undefined(), {value::number(20)});
  EXPECT_DOUBLE_EQ(out.to_number(), 41);
}

TEST(Interop, VmCallsTreeWalkerCompiledFunction) {
  context ctx;
  eval_script(ctx, "astFn = function(n) { return n + 'ast'; };", "<tree>",
              engine_kind::tree_walker);
  eval_script(ctx, "result = astFn('via-vm-');", "<vm>", engine_kind::bytecode);
  EXPECT_EQ(ctx.global()->get("result").to_string(), "via-vm-ast");
}

TEST(Interop, VmClosuresSurviveAcrossRuns) {
  // Handlers registered by one run stay callable later (how stages publish
  // onRequest/onResponse handlers that pipelines call long after load).
  context ctx;
  eval_script(ctx, "var hits = 0; onHit = function() { hits++; return hits; };", "<a>",
              engine_kind::bytecode);
  interpreter in(ctx);
  const value fn = ctx.global()->get("onHit");
  in.call(fn, value::undefined(), {});
  in.call(fn, value::undefined(), {});
  const value out = in.call(fn, value::undefined(), {});
  EXPECT_DOUBLE_EQ(out.to_number(), 3);
}

// ----- compiled-chunk sharing --------------------------------------------------

TEST(ChunkCache, SharedAcrossSandboxes) {
  core::chunk_cache chunks(16);
  const std::string source = "counter = 0; onRequest = function() { counter++; };";

  core::sandbox sb1(js::context_limits{}, engine_kind::bytecode);
  sb1.set_chunk_cache(&chunks);
  core::stage_load_stats stats1;
  sb1.load_stage("http://site-a/nakika.js", source, 1, &stats1);
  EXPECT_FALSE(stats1.chunk_cache_hit);
  EXPECT_GT(stats1.parse_seconds + stats1.compile_seconds, 0.0);

  // A different sandbox, different URL, same content: compile is skipped.
  core::sandbox sb2(js::context_limits{}, engine_kind::bytecode);
  sb2.set_chunk_cache(&chunks);
  core::stage_load_stats stats2;
  sb2.load_stage("http://site-b/nakika.js", source, 7, &stats2);
  EXPECT_TRUE(stats2.chunk_cache_hit);
  EXPECT_DOUBLE_EQ(stats2.parse_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats2.compile_seconds, 0.0);
  EXPECT_EQ(chunks.hits(), 1u);
  EXPECT_EQ(chunks.misses(), 1u);
}

TEST(ChunkCache, PerSandboxStageCacheStillWins) {
  core::chunk_cache chunks(16);
  core::sandbox sb(js::context_limits{}, engine_kind::bytecode);
  sb.set_chunk_cache(&chunks);
  core::stage_load_stats stats;
  sb.load_stage("http://s/nakika.js", "x = 1;", 3, &stats);
  EXPECT_FALSE(stats.from_cache);
  core::stage_load_stats again;
  sb.load_stage("http://s/nakika.js", "x = 1;", 3, &again);
  EXPECT_TRUE(again.from_cache);
}

TEST(ChunkCache, TreeWalkerEngineIgnoresChunkCache) {
  core::chunk_cache chunks(16);
  core::sandbox sb(js::context_limits{}, engine_kind::tree_walker);
  sb.set_chunk_cache(&chunks);
  core::stage_load_stats stats;
  sb.load_stage("http://s/nakika.js", "y = 2;", 1, &stats);
  EXPECT_FALSE(stats.chunk_cache_hit);
  EXPECT_EQ(chunks.size(), 0u);
  EXPECT_EQ(sb.ctx().global()->get("y").to_number(), 2.0);
}

// ----- shapes + polymorphic inline caches --------------------------------------
// The shape layer and the 4-way ICs are pure accelerators: every program here
// must produce identical results with shapes on, shapes off (dictionary mode,
// shape_table_max = 0), and on the tree-walker oracle.

namespace {

// Source of a handler that streams `nlayouts` distinct object layouts through
// one hot access site (.v is at a different property index per layout).
std::string poly_site_source(int nlayouts, int nobjects, int rounds) {
  std::string src = "var make = [];\n";
  for (int l = 0; l < nlayouts; ++l) {
    src += "make.push(function(i) { return {";
    for (int p = 0; p < l; ++p) {
      src += "pad" + std::to_string(p) + ": " + std::to_string(p) + ", ";
    }
    src += "v: i, tag: " + std::to_string(l) + "}; });\n";
  }
  src += "var objs = [];\n";
  // `var mk = ...; mk(i)` rather than `make[...](i)`: direct calls of an
  // indexed element are not part of the dialect (both engines reject them).
  src += "for (var i = 0; i < " + std::to_string(nobjects) + "; i++) { var mk = make[i % " +
         std::to_string(nlayouts) + "]; objs.push(mk(i)); }\n";
  src += "var total = 0;\n";
  src += "for (var r = 0; r < " + std::to_string(rounds) + "; r++) {\n";
  src += "  for (var j = 0; j < objs.length; j++) {\n";
  src += "    var o = objs[j];\n";
  src += "    total = total + o.v + o.tag;\n";
  src += "    o.v = o.v + 1;\n";
  src += "  }\n";
  src += "}\n";
  src += "result = total;\n";
  return src;
}

// Runs `source` on the bytecode VM and returns the context's IC counters.
struct ic_run_stats {
  std::uint64_t mono = 0;
  std::uint64_t poly = 0;
  std::uint64_t mega = 0;
  std::uint64_t misses = 0;
  std::string result;
};

ic_run_stats run_vm_ic_stats(const std::string& source, context_limits limits = {}) {
  ic_run_stats out;
  context ctx(limits);
  eval_script(ctx, source, "<ic-stats>", engine_kind::bytecode);
  out.mono = ctx.ic_mono_hits();
  out.poly = ctx.ic_poly_hits();
  out.mega = ctx.ic_mega_lookups();
  out.misses = ctx.ic_misses();
  out.result = ctx.global()->get("result").to_string();
  return out;
}

}  // namespace

TEST(ShapePolymorphism, MonoToMegaSitesMatchOracle) {
  // 1 layout = monomorphic, 2 and 4 fit the ways, 6 overflows to megamorphic.
  for (const int layouts : {1, 2, 4, 6}) {
    expect_equivalent(poly_site_source(layouts, 24, 6));
  }
}

TEST(ShapePolymorphism, IcStateMatchesLayoutCount) {
  const ic_run_stats mono = run_vm_ic_stats(poly_site_source(1, 24, 6));
  EXPECT_GT(mono.mono, 0u);
  EXPECT_EQ(mono.mega, 0u);

  const ic_run_stats poly = run_vm_ic_stats(poly_site_source(4, 24, 6));
  EXPECT_GT(poly.poly, 0u);
  EXPECT_EQ(poly.mega, 0u);

  // 6 layouts through one site: the 4 ways overflow and the site goes (and
  // stays) megamorphic.
  const ic_run_stats mega = run_vm_ic_stats(poly_site_source(6, 24, 6));
  EXPECT_GT(mega.mega, 0u);
}

TEST(ShapePolymorphism, DeleteDemotesToDictionaryWithSameResults) {
  expect_equivalent(R"JS(
    var o = {a: 1, b: 2, c: 3};
    var total = 0;
    for (var i = 0; i < 20; i++) {
      total += o.a + o.c;
      if (i == 10) { delete o.b; }   // demotes o to dictionary mode mid-loop
      if (i == 12) { o.d = 4; }      // dictionary-mode append still works
    }
    result = total + ':' + o.d + ':' + (o.b === undefined);
  )JS");
}

TEST(ShapePolymorphism, PrototypeShadowingParity) {
  expect_equivalent(R"JS(
    function C(i) { this.idx = i; }
    C.prototype.kind = 'base';
    var objs = [];
    for (var i = 0; i < 8; i++) objs.push(new C(i));
    var log = '';
    for (var r = 0; r < 4; r++) {
      for (var j = 0; j < objs.length; j++) {
        log += objs[j].kind;
        if (r == 1 && j == 3) { objs[3].kind = 'own'; }  // shadow mid-stream
      }
      log += ';';
    }
    result = log.length + ':' + objs[3].kind + ':' + objs[4].kind;
  )JS");
}

TEST(ShapePolymorphism, DictionaryModeProducesIdenticalResults) {
  // shape_table_max = 0 disables the shape layer entirely; every program must
  // behave identically (the shapes are an accelerator, not semantics).
  context_limits no_shapes;
  no_shapes.shape_table_max = 0;
  for (const int layouts : {1, 3, 6}) {
    const std::string src = poly_site_source(layouts, 16, 4);
    const eval_outcome shaped = run_engine(src, engine_kind::bytecode);
    const eval_outcome dict = run_engine(src, engine_kind::bytecode, no_shapes);
    EXPECT_EQ(shaped.result, dict.result) << src;
    EXPECT_EQ(shaped.trace, dict.trace) << src;
    expect_equivalent(src, no_shapes);
  }
}

TEST(ShapePolymorphism, TinyShapeTableFallsBackGracefully) {
  // A table bound small enough to overflow mid-program: late objects demote
  // to dictionary mode but results stay identical to the oracle.
  context_limits tiny;
  tiny.shape_table_max = 4;
  expect_equivalent(poly_site_source(4, 16, 4), tiny);
  expect_equivalent(R"JS(
    var table = {};
    for (var i = 0; i < 40; i++) table['k' + i] = i;
    var total = 0;
    for (var k in table) total += table[k];
    result = total;
  )JS",
                    tiny);
}

TEST(ShapePolymorphism, GrownObjectDoesNotGoCold) {
  // Appending a property moves the object to a CHILD shape; caches filled at
  // the parent must keep hitting (ancestor promotion), not cold-miss per
  // access. Misses are warmup-only, so they must not scale with iterations:
  // a per-access miss after the growth would add ~iters/2 misses.
  const auto grown_src = [](int iters) {
    return "var o = {a: 1};\n"
           "var total = 0;\n"
           "for (var i = 0; i < " +
           std::to_string(iters) +
           "; i++) {\n"
           "  total += o.a;\n"
           "  if (i == 5) { o.grown = 7; }\n"
           "}\n"
           "result = total;\n";
  };
  const ic_run_stats short_run = run_vm_ic_stats(grown_src(40));
  const ic_run_stats long_run = run_vm_ic_stats(grown_src(400));
  EXPECT_EQ(short_run.misses, long_run.misses)
      << "IC misses scaled with iteration count: the grown object's accesses "
         "are cold-missing instead of riding ancestor promotion";
  EXPECT_GT(long_run.mono + long_run.poly, 390u);
  expect_equivalent(grown_src(40));
}

TEST(ShapePolymorphism, DeterministicFuzzAgainstOracle) {
  // Deterministic generator (fixed LCG): random-ish mixes of layout count,
  // object count, deletes, and growth, every one checked against the tree
  // oracle. No wall-clock or real randomness — failures reproduce exactly.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  const auto next = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(seed >> 33);
  };
  for (int round = 0; round < 10; ++round) {
    const int layouts = 1 + static_cast<int>(next() % 6);
    const int objects = 4 + static_cast<int>(next() % 20);
    const int rounds = 2 + static_cast<int>(next() % 4);
    std::string src = poly_site_source(layouts, objects, rounds);
    if (next() % 2 == 0) {
      src += "delete objs[0].v; objs[0].v = -1;\n";
      src += "var extra = 0;\n"
             "for (var q = 0; q < objs.length; q++) extra += objs[q].v;\n"
             "result = result + ':' + extra;\n";
    }
    expect_equivalent(src);
  }
}

TEST(ShapePolymorphism, SharedChunkAcrossThreads) {
  // One immutable compiled chunk, eight workers each with a private context
  // (own shape table, own ICs): results must agree and no worker may observe
  // another's shapes. Run under TSan in the sanitizer matrix.
  const std::string src = poly_site_source(3, 24, 4);
  const program_ptr prog = parse_program(src, "<shared>");
  const compiled_program_ptr chunk = compile_program(prog);
  std::vector<std::string> results(8);
  std::vector<std::thread> workers;
  workers.reserve(results.size());
  for (std::size_t w = 0; w < results.size(); ++w) {
    workers.emplace_back([&, w] {
      context ctx{context_limits{}};
      run_program(ctx, chunk);
      results[w] = ctx.global()->get("result").to_string();
    });
  }
  for (auto& t : workers) t.join();
  const eval_outcome oracle = run_engine(src, engine_kind::tree_walker);
  for (const std::string& r : results) EXPECT_EQ(r, oracle.result);
}

}  // namespace
}  // namespace nakika::js
