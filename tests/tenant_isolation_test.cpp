// Scenario tier: multi-tenant isolation. Per-tenant cache quotas (cap AND
// eviction protection) in http_cache, weighted congestion-control shares in
// resource_manager, and the end-to-end starvation bound: an adversarial
// storm tenant sweeping a cluster cannot evict a polite tenant's working set
// or starve it back to origin.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/http_cache.hpp"
#include "core/resource_manager.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace nakika;
using cache::http_cache;

http::response body_of(std::size_t bytes, char fill = 'x') {
  return http::make_response(200, "text/plain", util::make_body(std::string(bytes, fill)));
}

std::string url_for(const std::string& host, int i) {
  return "http://" + host + "/obj/" + std::to_string(i);
}

// ---------------------------------------------------------------------------
// http_cache: quota as a cap.
// ---------------------------------------------------------------------------

TEST(TenantQuota, TenantOfParsesHost) {
  EXPECT_EQ(http_cache::tenant_of("http://a.org/x/y?z=1"), "a.org");
  EXPECT_EQ(http_cache::tenant_of("http://b.example.net:8080/"), "b.example.net");
}

TEST(TenantQuota, CapsTenantBytesByEvictingItsOwnEntries) {
  http_cache c(/*capacity=*/64 * 1024);
  c.set_tenant_quota("a.org", 4 * 1024);

  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(c.put_with_expiry(url_for("a.org", i), body_of(1024), 100, 0));
    EXPECT_LE(c.tenant_bytes("a.org"), 4u * 1024) << "after insert " << i;
  }
  // The newest entries are resident; the oldest were evicted to make room.
  EXPECT_TRUE(c.get(url_for("a.org", 19), 0).has_value());
  EXPECT_FALSE(c.get(url_for("a.org", 0), 0).has_value());
  EXPECT_GT(c.stats().evictions, 0u);
  EXPECT_EQ(c.tenant_quota("a.org"), 4u * 1024);
}

TEST(TenantQuota, QuotaEvictionsNeverTouchOtherTenants) {
  http_cache c(64 * 1024);
  c.set_tenant_quota("storm.org", 4 * 1024);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(c.put_with_expiry(url_for("victim.org", i), body_of(512), 100, 0));
  }
  const std::size_t victim_bytes = c.bytes_used();

  // The capped tenant churns far past its quota: only its own entries cycle.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(c.put_with_expiry(url_for("storm.org", i), body_of(1024), 100, 0));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(c.get(url_for("victim.org", i), 0).has_value()) << "victim entry " << i;
  }
  EXPECT_LE(c.tenant_bytes("storm.org"), 4u * 1024);
  EXPECT_GE(c.bytes_used(), victim_bytes);
}

TEST(TenantQuota, EntryLargerThanQuotaIsRejectedAndCounted) {
  // An entry's charge is its body plus a fixed headers-overhead estimate, so
  // a 4 KiB body can never fit a 2 KiB quota no matter what gets evicted.
  http_cache c(64 * 1024);
  c.set_tenant_quota("small.org", 2 * 1024);
  EXPECT_FALSE(c.put_with_expiry(url_for("small.org", 0), body_of(4096), 100, 0));
  EXPECT_EQ(c.stats().quota_rejections, 1u);
  EXPECT_EQ(c.tenant_bytes("small.org"), 0u);
  // Entries whose charge fits the quota still land.
  EXPECT_TRUE(c.put_with_expiry(url_for("small.org", 1), body_of(1024), 100, 0));
}

// ---------------------------------------------------------------------------
// http_cache: quota as a reservation (eviction protection).
// ---------------------------------------------------------------------------

TEST(TenantQuota, ReservationProtectsTenantFromCapacityPressure) {
  // Small cache, one configured tenant holding its working set, then an
  // unconfigured tenant floods the cache well past capacity. Capacity
  // evictions must only ever hit the flooder (and unconfigured entries) —
  // the configured tenant's working set survives byte for byte.
  http_cache c(/*capacity=*/16 * 1024, /*shard_count=*/2, /*shard_borrowing=*/true);
  c.set_tenant_quota("polite.org", 8 * 1024);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.put_with_expiry(url_for("polite.org", i), body_of(512), 100, 0));
  }
  const std::size_t polite_before = c.tenant_bytes("polite.org");
  ASSERT_GE(polite_before, 10u * 512);  // charges include per-entry overhead
  ASSERT_LE(polite_before, 8u * 1024);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(c.put_with_expiry(url_for("storm.org", i), body_of(1024), 100, 0));
  }

  EXPECT_EQ(c.tenant_bytes("polite.org"), polite_before)
      << "capacity pressure from another tenant must not evict protected bytes";
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(c.get(url_for("polite.org", i), 0).has_value()) << "polite entry " << i;
  }
  EXPECT_LE(c.bytes_used(), 16u * 1024);
  EXPECT_GT(c.stats().evictions, 0u) << "the storm itself must have been evicted";
}

TEST(TenantQuota, StrictShardModeAlsoHonorsQuotas) {
  // Quotas are orthogonal to the borrowing/strict shard mode.
  http_cache c(16 * 1024, 2, /*shard_borrowing=*/false);
  c.set_tenant_quota("a.org", 2 * 1024);
  for (int i = 0; i < 12; ++i) {
    (void)c.put_with_expiry(url_for("a.org", i), body_of(512), 100, 0);
  }
  EXPECT_LE(c.tenant_bytes("a.org"), 2u * 1024);
}

// ---------------------------------------------------------------------------
// resource_manager: weighted scheduling shares.
// ---------------------------------------------------------------------------

core::resource_capacities one_cpu() {
  core::resource_capacities caps;
  caps.cpu_seconds_per_second = 1.0;
  caps.congestion_threshold = 0.9;
  return caps;
}

TEST(TenantWeights, DefaultWeightIsOneAndClamped) {
  core::resource_manager rm(one_cpu());
  EXPECT_DOUBLE_EQ(rm.site_weight("unknown.org"), 1.0);
  rm.set_site_weight("a.org", 4.0);
  EXPECT_DOUBLE_EQ(rm.site_weight("a.org"), 4.0);
  rm.set_site_weight("b.org", -3.0);  // nonsense weights clamp to a positive floor
  EXPECT_GT(rm.site_weight("b.org"), 0.0);
}

TEST(TenantWeights, HighWeightTenantIsThrottledLessAtHigherUsage) {
  // heavy.org pays for weight 8 and uses 4x the CPU of light.org. Unweighted,
  // heavy would absorb ~80% of the rejections; weighted, its share is
  // (1.6/8) / (1.6/8 + 0.4/1) = 1/3 vs light's 2/3 — so the LIGHT tenant is
  // now the one throttled harder despite using a quarter of the CPU.
  core::resource_manager rm(one_cpu());
  rm.set_site_weight("heavy.org", 8.0);
  rm.record("heavy.org", core::resource_kind::cpu, 1.6);
  rm.record("light.org", core::resource_kind::cpu, 0.4);
  ASSERT_TRUE(rm.control_phase1(core::resource_kind::cpu, 1.0));  // 200% busy

  util::rng rng(7);
  int heavy_rejected = 0;
  int light_rejected = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!rm.admit("heavy.org", rng)) ++heavy_rejected;
    if (!rm.admit("light.org", rng)) ++light_rejected;
  }
  EXPECT_GT(light_rejected, heavy_rejected)
      << "weighted shares must invert the throttle order: heavy=" << heavy_rejected
      << " light=" << light_rejected;
  EXPECT_GT(light_rejected, 450);  // ~2/3 share
  EXPECT_LT(heavy_rejected, 550);  // ~1/3 share
}

TEST(TenantWeights, EqualWeightsReduceToUnweightedShares) {
  // Sanity: with no weights configured the arithmetic is the historical one —
  // the 90%-contribution hog is rejected far more than the 10% site.
  core::resource_manager rm(one_cpu());
  rm.record("hog", core::resource_kind::cpu, 1.8);
  rm.record("small", core::resource_kind::cpu, 0.2);
  ASSERT_TRUE(rm.control_phase1(core::resource_kind::cpu, 1.0));
  util::rng rng(9);
  int hog_rejected = 0;
  int small_rejected = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!rm.admit("hog", rng)) ++hog_rejected;
    if (!rm.admit("small", rng)) ++small_rejected;
  }
  EXPECT_GT(hog_rejected, 800);
  EXPECT_LT(small_rejected, 250);
}

TEST(TenantWeights, Phase2TerminatesTheLowWeightTenantAtEqualUsage) {
  // Both tenants burn the same raw CPU, but light.org's weighted share is
  // ~10x heavy.org's — the termination (phase 2) must pick light.org.
  core::resource_manager rm(one_cpu());
  rm.set_site_weight("heavy.org", 10.0);
  auto heavy_flag = std::make_shared<std::atomic<bool>>(false);
  auto light_flag = std::make_shared<std::atomic<bool>>(false);
  rm.pipeline_started("heavy.org", heavy_flag);
  rm.pipeline_started("light.org", light_flag);

  rm.record("heavy.org", core::resource_kind::cpu, 1.0);
  rm.record("light.org", core::resource_kind::cpu, 1.0);
  ASSERT_TRUE(rm.control_phase1(core::resource_kind::cpu, 1.0));

  // Still congested while phase 2 re-measures.
  rm.record("heavy.org", core::resource_kind::cpu, 0.6);
  rm.record("light.org", core::resource_kind::cpu, 0.6);
  const core::control_outcome outcome =
      rm.control_phase2(core::resource_kind::cpu, 1.5);
  ASSERT_TRUE(outcome.congested_after);
  EXPECT_EQ(outcome.terminated_site, "light.org");
  EXPECT_TRUE(light_flag->load());
  EXPECT_FALSE(heavy_flag->load());
}

// ---------------------------------------------------------------------------
// End to end: the starvation bound under an adversarial storm.
// ---------------------------------------------------------------------------

TEST(TenantIsolationCluster, StormTenantCannotEvictPoliteWorkingSet) {
  using workload::batch_metrics;
  workload::scenario_config cfg;
  cfg.nodes = 1;  // pin everything to one node so cache state is conclusive
  cfg.workers = 2;
  cfg.seed = 31;
  cfg.cache_bytes = 64 * 1024;  // far smaller than the storm's footprint

  workload::tenant_spec polite;
  polite.site = "polite.org";
  polite.objects = 16;
  polite.object_bytes = 512;
  polite.cache_quota_bytes = 16 * 1024;
  cfg.tenants.push_back(polite);

  workload::tenant_spec storm;
  storm.site = "storm.org";
  storm.objects = 400;  // ~200 KiB sweep through a 64 KiB cache
  storm.object_bytes = 512;
  storm.cache_quota_bytes = 32 * 1024;
  cfg.tenants.push_back(storm);

  workload::cluster_scenario s(cfg);
  s.warm_script_probes();

  // Polite tenant loads its working set.
  ASSERT_TRUE(s.run_batch(s.all_objects(0), 0).lossless());
  const std::size_t polite_bytes =
      s.node(0).content_cache().tenant_bytes("polite.org");
  ASSERT_GE(polite_bytes, 16u * 512);  // working set + per-entry overhead
  ASSERT_LE(polite_bytes, 16u * 1024);  // still inside the quota: no self-eviction

  // The storm sweeps 400 distinct objects — several times the whole cache.
  const batch_metrics storm_m = s.run_batch(s.all_objects(1), 0);
  ASSERT_TRUE(storm_m.lossless());

  // Starvation bound: the polite tenant's working set survived untouched.
  EXPECT_EQ(s.node(0).content_cache().tenant_bytes("polite.org"), polite_bytes);
  for (std::size_t obj = 0; obj < 16; ++obj) {
    EXPECT_TRUE(s.node(0).lookup_cache_only(s.url_of(0, obj)).has_value())
        << "polite object " << obj << " was evicted by the storm";
  }
  // The storm stayed inside its own budget...
  EXPECT_LE(s.node(0).content_cache().tenant_bytes("storm.org"), 32u * 1024);
  // ...and the cache as a whole inside capacity.
  EXPECT_LE(s.node(0).content_cache().bytes_used(), cfg.cache_bytes);

  // The polite tenant re-reads its working set without a single origin fetch.
  const batch_metrics polite_again = s.run_batch(s.all_objects(0), 0);
  EXPECT_TRUE(polite_again.lossless());
  EXPECT_EQ(polite_again.origin_fetches, 0u)
      << "the storm must not have pushed the polite tenant back to origin";
}

}  // namespace
