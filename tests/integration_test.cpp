// Cross-module integration: emission control via the server wall, content
// integrity flowing through the pipeline, probabilistic verification of
// processed content, and sandbox-pool hygiene after failures.
#include <gtest/gtest.h>

#include "integrity/content_integrity.hpp"
#include "util/strings.hpp"
#include "integrity/verification.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

namespace nakika {
namespace {

struct integration_fixture : ::testing::Test {
  sim::event_loop loop;
  sim::network net{loop};
  sim::three_tier topo;
  std::unique_ptr<proxy::deployment> dep;
  proxy::origin_server* origin = nullptr;

  void SetUp() override {
    topo = sim::build_lan(net);
    dep = std::make_unique<proxy::deployment>(net);
    origin = &dep->create_origin(topo.origin);
  }

  http::response fetch(proxy::nakika_node& node, const std::string& url,
                       http::method m = http::method::get) {
    http::request r;
    r.method = m;
    r.url = http::url::parse(url);
    r.client_ip = "10.0.0.1";
    http::response out;
    proxy::forward_request(net, topo.client, node, r,
                           [&](http::response resp) { out = std::move(resp); });
    loop.run();
    return out;
  }
};

// --- emission control: the server wall guards *outbound* requests -----------------

TEST_F(integration_fixture, ServerWallBlocksOutboundTargets) {
  // Paper §3.2: the server-side administrative stage protects other web
  // servers against exploits carried through the architecture. A hosted
  // script redirects requests at an internal service; the wall stops it.
  proxy::node_config cfg;
  cfg.serverwall_source = R"JS(
    var wall = new Policy();
    wall.url = [ "internal.corp.example" ];
    wall.onRequest = function() { Request.terminate(403); };
    wall.register();
  )JS";
  dep->map_host("evil-site.example", *origin);
  dep->map_host("internal.corp.example", *origin);
  origin->add_static_text("internal.corp.example", "/secrets", "text/plain", "keys");
  origin->add_static_text("evil-site.example", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "evil-site.example" ];
    p.onRequest = function() {
      Request.setUrl("http://internal.corp.example/secrets");
    };
    p.register();
  )JS");
  proxy::nakika_node& node = dep->create_node(topo.proxy, std::move(cfg));

  const http::response blocked = fetch(node, "http://evil-site.example/anything");
  EXPECT_EQ(blocked.status, 403);  // the wall saw the rewritten request
}

// --- cache observability: IC + chunk-cache counters surface per node/site ---------

TEST_F(integration_fixture, CacheCountersObservableThroughNodeStats) {
  dep->map_host("stats-site.example", *origin);
  origin->add_static_text("stats-site.example", "/page", "text/plain", "body");
  origin->add_static_text("stats-site.example", "/nakika.js", "application/javascript", R"JS(
    var state = {seen: 0};
    var p = new Policy();
    p.url = [ "stats-site.example" ];
    p.onRequest = function() {
      for (var i = 0; i < 200; i++) state.seen = state.seen + 1;
    };
    p.register();
  )JS");
  proxy::nakika_node& node = dep->create_node(topo.proxy);

  for (int i = 0; i < 3; ++i) {
    const http::response r = fetch(node, "http://stats-site.example/page");
    ASSERT_EQ(r.status, 200);
  }

  const auto times = node.script_times();
  EXPECT_GT(times.stages_executed, 0u);
  // The handler's global/property loop runs through warm inline caches...
  EXPECT_GT(times.ic_hits, 200u);
  EXPECT_GT(times.ic_misses, 0u);  // ...after first-touch misses
  // ...and the same numbers are attributable to the site (keyed the way the
  // node keys all per-site state: url::site(), scheme://host).
  const auto site = node.site_cache("http://stats-site.example");
  EXPECT_EQ(site.ic_hits, times.ic_hits);
  EXPECT_EQ(site.ic_misses, times.ic_misses);
  EXPECT_EQ(node.site_cache("http://other.example").ic_hits, 0u);
  // Chunk-cache probes: first load misses, per-sandbox stage cache absorbs
  // repeats, so misses are non-zero and tracked next to hits.
  EXPECT_GT(times.chunk_cache_misses, 0u);
}

// --- content integrity through the pipeline ----------------------------------------

TEST_F(integration_fixture, SignedContentSurvivesPassThrough) {
  const std::string key = "origin-registry-shared-key";
  dep->map_host("signed.example", *origin);
  // The origin signs its responses (precomputed X-Content-SHA256 + signed
  // absolute Expires, paper §6).
  origin->add_dynamic("signed.example", "/doc", [&](const http::request&) {
    proxy::origin_server::dynamic_result out;
    out.response =
        http::make_response(200, "text/html", util::make_body("<p>authentic</p>"));
    integrity::sign_response(out.response, key,
                             static_cast<std::int64_t>(net.loop().now()), 600);
    return out;
  });
  proxy::nakika_node& node = dep->create_node(topo.proxy);

  const http::response r = fetch(node, "http://signed.example/doc");
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(integrity::verify_response(r, key, static_cast<std::int64_t>(loop.now())),
            integrity::verify_result::ok);
}

TEST_F(integration_fixture, EdgeProcessingBreaksStaticSignatures) {
  // Processed content cannot be covered by origin signatures (paper §6 —
  // which is why the probabilistic model exists). The transformation is
  // detected as a hash mismatch by the client.
  const std::string key = "origin-registry-shared-key";
  dep->map_host("signed.example", *origin);
  origin->add_dynamic("signed.example", "/doc", [&](const http::request&) {
    proxy::origin_server::dynamic_result out;
    out.response = http::make_response(200, "text/html", util::make_body("<p>orig</p>"));
    integrity::sign_response(out.response, key,
                             static_cast<std::int64_t>(net.loop().now()), 600);
    return out;
  });
  origin->add_static_text("signed.example", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "signed.example" ];
    p.onResponse = function() { Response.write("<p>transformed</p>"); };
    p.register();
  )JS");
  proxy::nakika_node& node = dep->create_node(topo.proxy);

  const http::response r = fetch(node, "http://signed.example/doc");
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.body->view(), "<p>transformed</p>");
  EXPECT_EQ(integrity::verify_response(r, key, static_cast<std::int64_t>(loop.now())),
            integrity::verify_result::hash_mismatch);
}

TEST_F(integration_fixture, ProbabilisticVerificationCatchesFalsifyingNode) {
  // Two nodes run the same pipeline; one is honest, one falsifies content.
  // Clients re-execute a sample on the honest node and report mismatches to
  // the registry, which evicts the bad node (paper §6).
  integrity::verification_registry registry(2);
  registry.register_node("bad-proxy");
  registry.register_node("good-proxy");
  util::rng rng(5);
  integrity::probabilistic_verifier verifier(registry, 1.0, rng);

  const std::string honest = "<p>result of processing</p>";
  const std::string falsified = "<p>falsified medical study</p>";
  for (int client = 0; client < 2; ++client) {
    if (verifier.should_verify()) {
      verifier.check("bad-proxy", "client-" + std::to_string(client), falsified, honest);
    }
  }
  EXPECT_FALSE(registry.is_member("bad-proxy"));
  EXPECT_TRUE(registry.is_member("good-proxy"));
}

// --- sandbox hygiene -----------------------------------------------------------------

TEST_F(integration_fixture, FailedSandboxNotReused) {
  dep->map_host("flaky.example", *origin);
  origin->add_static_text("flaky.example", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "flaky.example/boom" ];
    p.onResponse = function() { while (true) {} };
    p.register();
  )JS");
  origin->add_static_text("flaky.example", "/boom", "text/plain", "x", 0);
  origin->add_static_text("flaky.example", "/ok", "text/plain", "fine", 0);
  proxy::node_config cfg;
  cfg.script_limits.ops = 200000;  // the spin trips the ops budget
  proxy::nakika_node& node = dep->create_node(topo.proxy, std::move(cfg));

  EXPECT_EQ(fetch(node, "http://flaky.example/boom").status, 500);
  const std::size_t after_failure = node.sandboxes_created();
  // The poisoned sandbox was discarded; the next request builds a new one
  // and succeeds.
  EXPECT_EQ(fetch(node, "http://flaky.example/ok").status, 200);
  EXPECT_GT(node.sandboxes_created(), after_failure);
  // Healthy sandboxes keep being reused afterwards.
  const std::size_t stable = node.sandboxes_created();
  EXPECT_EQ(fetch(node, "http://flaky.example/ok?2").status, 200);
  EXPECT_EQ(node.sandboxes_created(), stable);
}

TEST_F(integration_fixture, SitesAreIsolatedFromEachOther) {
  // One site's global-state pollution and failures never leak into another
  // site's sandbox (per-site pools).
  dep->map_host("site-a.example", *origin);
  dep->map_host("site-b.example", *origin);
  origin->add_static_text("site-a.example", "/nakika.js", "application/javascript", R"JS(
    leak = "site-a secret";
    var p = new Policy();
    p.url = [ "site-a.example" ];
    p.onResponse = function() { Response.setHeader("X-A", "1"); };
    p.register();
  )JS");
  origin->add_static_text("site-b.example", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "site-b.example" ];
    p.onResponse = function() {
      Response.setHeader("X-Leak", typeof leak);  // must be undefined
    };
    p.register();
  )JS");
  origin->add_static_text("site-a.example", "/x", "text/plain", "a");
  origin->add_static_text("site-b.example", "/x", "text/plain", "b");
  proxy::nakika_node& node = dep->create_node(topo.proxy);

  EXPECT_EQ(fetch(node, "http://site-a.example/x").headers.get("X-A"), "1");
  EXPECT_EQ(fetch(node, "http://site-b.example/x").headers.get("X-Leak"), "undefined");
}

TEST_F(integration_fixture, HardStateQuotaEnforcedThroughPipeline) {
  // Paper §3.3: "enforces resource constraints on persistent storage".
  dep->map_host("greedy.example", *origin);
  origin->add_static_text("greedy.example", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "greedy.example" ];
    p.onRequest = function() {
      var big = "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
      for (var i = 0; i < 10; i++) { big = big + big; }   // 32 KB
      var stored = 0;
      for (var i = 0; i < 40; i++) {
        if (HardState.put("blob" + i, big)) { stored++; }
      }
      Request.respond(200, "text/plain", "" + stored);
    };
    p.register();
  )JS");
  proxy::nakika_node& node = dep->create_node(topo.proxy);
  // Default local-store quota is 16 MB/site; 40 x 32 KB fits. Shrink it.
  // The store reference is fixed per node, so rebuild a node with the limit.
  // (local_store quota is a constructor parameter; verify through the store.)
  const http::response r = fetch(node, "http://greedy.example/");
  ASSERT_EQ(r.status, 200);
  const auto stored = util::parse_int(r.body->view());
  ASSERT_TRUE(stored.has_value());
  EXPECT_GT(*stored, 0);
  EXPECT_EQ(node.store().site_keys("http://greedy.example"),
            static_cast<std::size_t>(*stored));
}

}  // namespace
}  // namespace nakika
