// Workload generators and measurement plumbing, plus a small end-to-end run
// of the SIMM workload against both deployments.
#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "js/parser.hpp"
#include "media/xsl.hpp"
#include "sim/topology.hpp"
#include "workload/arrivals.hpp"
#include "workload/simm.hpp"
#include "workload/specweb.hpp"

namespace nakika::workload {
namespace {

TEST(Measurement, ClassifiesContentTypes) {
  EXPECT_EQ(classify_content("text/html"), content_class::html);
  EXPECT_EQ(classify_content("text/xml"), content_class::html);
  EXPECT_EQ(classify_content("image/jpeg"), content_class::image);
  EXPECT_EQ(classify_content("video/mp4"), content_class::video);
  EXPECT_EQ(classify_content("application/json"), content_class::other);
}

TEST(Measurement, RecordsPerClassSamples) {
  measurement m;
  m.record(0.1, 1000, 200, "text/html");
  m.record(2.0, 350000, 200, "video/mp4");
  m.record(0.5, 100, 503, "text/plain");  // errors excluded from classes
  m.record_failure();
  EXPECT_EQ(m.completed(), 3u);
  EXPECT_EQ(m.failures(), 1u);
  EXPECT_EQ(m.status_count(503), 1u);
  EXPECT_EQ(m.latency_of(content_class::html).count(), 1u);
  EXPECT_EQ(m.bandwidth_of(content_class::video).count(), 1u);
  EXPECT_DOUBLE_EQ(m.bandwidth_of(content_class::video).mean(), 350000 * 8 / 2.0);
  EXPECT_DOUBLE_EQ(m.failure_rate(), 0.5);  // 503 + transport failure of 4 attempts
  m.set_window(10, 20);
  EXPECT_DOUBLE_EQ(m.requests_per_second(), 0.3);
}

TEST(SimmSite, PageXmlIsValidPersonalizedXml) {
  simm_site site;
  const std::string xml = site.page_xml(2, 7, "s42");
  const auto doc = media::parse_xml(xml);
  EXPECT_EQ(doc->name, "simm");
  EXPECT_EQ(*doc->attr("module"), "m2");
  EXPECT_EQ(doc->children_named("section").size(), 6u);
  EXPECT_EQ(*doc->child("student")->attr("id"), "s42");
  // Deterministic and personalized.
  EXPECT_EQ(site.page_xml(2, 7, "s42"), xml);
  EXPECT_NE(site.page_xml(2, 7, "s43"), xml);
}

TEST(SimmSite, StylesheetRendersPages) {
  simm_site site;
  const std::string html =
      media::xsl_transform(simm_site::stylesheet(), site.page_xml(0, 0, "s1"));
  EXPECT_NE(html.find("<html>"), std::string::npos);
  EXPECT_NE(html.find("class=\"section\""), std::string::npos);
  EXPECT_NE(html.find("Module 0"), std::string::npos);
}

TEST(SimmSite, NakikaScriptParses) {
  EXPECT_NO_THROW((void)js::parse_program(simm_site::nakika_script(), "nakika.js"));
}

TEST(SimmSite, GeneratorProducesSessionStructure) {
  simm_site site;
  auto gen = site.make_generator(/*edge_mode=*/false, /*client_seed=*/1);
  int html = 0;
  int images = 0;
  int videos = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    const auto r = gen(0, i);
    ASSERT_TRUE(r.has_value());
    const std::string path = r->url.path();
    if (path.find("/content/") == 0) {
      ++html;
      EXPECT_NE(path.find(".html"), std::string::npos);
      EXPECT_EQ(r->url.query(), "student=s0");
    } else if (path.find("-img") != std::string::npos) {
      ++images;
    } else if (path.find("/vid") != std::string::npos) {
      ++videos;
    } else {
      FAIL() << "unexpected url " << r->url.str();
    }
  }
  // Page views follow html -> 2 images (+ sometimes a video).
  EXPECT_NEAR(images, html * 2, html);
  EXPECT_GT(videos, 0);
  EXPECT_LT(videos, html);
}

TEST(SimmSite, EdgeModeRequestsXml) {
  simm_site site;
  auto gen = site.make_generator(/*edge_mode=*/true, 1);
  const auto r = gen(0, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->url.path().find(".xml"), std::string::npos);
}

TEST(SpecwebSite, GeneratorHonorsMix) {
  specweb_site site;
  auto gen = site.make_generator(/*edge_mode=*/true, 2);
  int dynamic = 0;
  int posts = 0;
  int statics = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    const auto r = gen(i % 16, i);
    ASSERT_TRUE(r.has_value());
    if (r->method == http::method::post) {
      ++posts;
      EXPECT_EQ(r->url.path(), "/register");
    } else if (r->url.path() == "/dynamic.nkp") {
      ++dynamic;
    } else {
      ++statics;
      EXPECT_EQ(r->url.path().find("/file_set/"), 0u);
    }
  }
  // 80% dynamic (including 12.5% of those as POSTs).
  EXPECT_NEAR(dynamic + posts, 800, 60);
  EXPECT_NEAR(posts, 100, 40);
  EXPECT_NEAR(statics, 200, 60);
}

TEST(SpecwebSite, NkpPageParsesAndScriptParses) {
  EXPECT_NO_THROW((void)core::compile_nkp(specweb_site::dynamic_page_nkp()));
  EXPECT_NO_THROW((void)js::parse_program(specweb_site::nakika_script()));
}

// End-to-end smoke: 8 clients against the SIMM single server vs a Na Kika
// node on the constrained WAN; the edge deployment must win on HTML latency
// once warm (the §5.2 local experiment's shape).
TEST(EndToEnd, SimmConstrainedWanShape) {
  simm_config cfg;
  cfg.modules = 2;
  cfg.pages_per_module = 6;
  cfg.videos_per_module = 2;
  cfg.video_bytes = 80 * 1024;

  // --- single server ---
  double server_html_p90 = 0;
  {
    sim::event_loop loop;
    sim::network net(loop);
    const auto topo = sim::build_constrained_wan(net);
    proxy::deployment dep(net);
    proxy::origin_server& origin = dep.create_origin(topo.origin);
    dep.map_host(simm_site::host_name, origin);
    simm_site site(cfg);
    site.install_single_server(origin);

    measurement m;
    load_driver driver(
        net, topo.client, [&](std::size_t) -> proxy::http_endpoint* { return &origin; },
        site.make_generator(false, 7));
    driver_options opts;
    opts.clients = 8;
    opts.requests_per_client = 40;
    driver.start(opts, m);
    loop.run();
    server_html_p90 = m.latency_of(content_class::html).percentile(90);
  }

  // --- Na Kika proxy (warm it with one pass first) ---
  double nakika_html_p90 = 0;
  {
    sim::event_loop loop;
    sim::network net(loop);
    const auto topo = sim::build_constrained_wan(net);
    proxy::deployment dep(net);
    proxy::origin_server& origin = dep.create_origin(topo.origin);
    dep.map_host(simm_site::host_name, origin);
    simm_site site(cfg);
    site.install_edge(origin);
    proxy::nakika_node& node = dep.create_node(topo.proxy);

    measurement warmup;
    load_driver warm(net, topo.client,
                     [&](std::size_t) -> proxy::http_endpoint* { return &node; },
                     site.make_generator(true, 7));
    driver_options warm_opts;
    warm_opts.clients = 8;
    warm_opts.requests_per_client = 40;
    warm.start(warm_opts, warmup);
    loop.run();

    measurement m;
    load_driver driver(net, topo.client,
                       [&](std::size_t) -> proxy::http_endpoint* { return &node; },
                       site.make_generator(true, 8));
    driver.start(warm_opts, m);
    loop.run();
    nakika_html_p90 = m.latency_of(content_class::html).percentile(90);
    EXPECT_EQ(m.failures(), 0u);
  }

  // The paper's shape: behind an 80 ms / 8 Mbps bottleneck, the edge
  // deployment beats the single server on client-perceived HTML latency.
  EXPECT_LT(nakika_html_p90, server_html_p90);
}

// --- scenario-tier arrival generators (workload/arrivals.hpp) ---------------

TEST(ZipfStream, PmfIsNormalizedAndMonotone) {
  zipf_stream z(16, 1.1, 5);
  double sum = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    sum += z.probability(i);
    if (i > 0) {
      EXPECT_LT(z.probability(i), z.probability(i - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(z.probability(16), 0.0);  // out of range
  EXPECT_THROW(zipf_stream(0, 1.1, 1), std::invalid_argument);
}

TEST(ZipfStream, SameSeedSameDraws) {
  zipf_stream a(32, 1.2, 99);
  zipf_stream b(32, 1.2, 99);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(ZipfStream, ChiSquaredShapeMatchesDeclaredPmf) {
  // 20k draws over 16 objects vs the exact pmf. With 15 degrees of freedom
  // the 99.9th-percentile chi-squared critical value is 37.70 — a correct
  // sampler fails this roughly one run in a thousand, and the seed is fixed,
  // so the test is deterministic in practice.
  constexpr std::size_t k_objects = 16;
  constexpr std::size_t k_draws = 20000;
  zipf_stream z(k_objects, 1.1, 4242);

  std::array<std::size_t, k_objects> observed{};
  for (std::size_t i = 0; i < k_draws; ++i) {
    const std::size_t obj = z.next();
    ASSERT_LT(obj, k_objects);
    ++observed[obj];
  }

  double chi2 = 0.0;
  for (std::size_t i = 0; i < k_objects; ++i) {
    const double expected = z.probability(i) * static_cast<double>(k_draws);
    ASSERT_GT(expected, 5.0) << "chi-squared needs expected counts > 5";
    const double d = static_cast<double>(observed[i]) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 37.70) << "draws do not match the declared Zipf pmf";
  // And the head really is hot: rank 0 should dominate.
  EXPECT_GT(observed[0], observed[k_objects - 1] * 4);
}

TEST(BurstArrivals, TimestampsAreNondecreasingAndDeterministic) {
  burst_config cfg;
  cfg.base_rate = 100.0;
  cfg.seed = 77;
  burst_arrivals a(cfg);
  burst_arrivals b(cfg);
  double prev = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double t = a.next();
    EXPECT_GE(t, prev);
    EXPECT_DOUBLE_EQ(t, b.next());
    prev = t;
  }
  burst_config bad;
  bad.base_rate = 0.0;
  EXPECT_THROW(burst_arrivals{bad}, std::invalid_argument);
}

TEST(BurstArrivals, BurstWindowConcentratesArrivals) {
  // 10 arrivals/s baseline with a 1000/s spike in [1, 2): the burst second
  // must hold far more arrivals per unit time than the quiet seconds.
  burst_config cfg;
  cfg.base_rate = 10.0;
  cfg.burst_rate = 1000.0;
  cfg.burst_start = 1.0;
  cfg.burst_duration = 1.0;
  cfg.seed = 21;
  burst_arrivals gen(cfg);

  std::size_t quiet = 0;
  std::size_t burst = 0;
  const std::vector<double> times = gen.take(1200);
  for (const double t : times) {
    if (t >= 1.0 && t < 2.0) {
      ++burst;
    } else if (t < 3.0) {
      ++quiet;
    }
  }
  ASSERT_GT(burst, 0u);
  EXPECT_GT(burst, quiet * 10) << "burst window should dominate: burst=" << burst
                               << " quiet=" << quiet;
}

}  // namespace
}  // namespace nakika::workload
