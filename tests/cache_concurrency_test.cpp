// Multi-threaded stress over the sharded http_cache: 8 workers × 100k mixed
// get/put/remove ops against a capacity-bounded cache, with a concurrent
// observer thread. Run under -DNAKIKA_SANITIZE=thread this is the data-race
// gate for the cache; the assertions here are the accounting invariants —
// no lost bytes (per-shard bytes_used equals the sum of resident entries'
// charged_bytes), capacity never violated, and monotonic stats counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/http_cache.hpp"
#include "cache/script_cache.hpp"
#include "util/random.hpp"

namespace nakika::cache {
namespace {

constexpr std::size_t k_threads = 8;
constexpr std::size_t k_ops_per_thread = 100'000;
constexpr std::size_t k_url_space = 512;
constexpr std::size_t k_capacity = 2 * 1024 * 1024;
constexpr std::size_t k_shards = 16;

std::string url_for(std::size_t i) { return "http://stress.example/obj/" + std::to_string(i); }

http::response body_of(std::size_t size) {
  return http::make_response(200, "application/octet-stream",
                             util::make_body(std::string(size, 'x')));
}

TEST(CacheConcurrency, EightThreadStressKeepsAccountingExact) {
  http_cache c(k_capacity, k_shards);
  ASSERT_EQ(c.shard_count(), k_shards);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> puts{0};

  // Observer: while workers mutate, stats counters must only grow and the
  // capacity bound must hold (borrowing mode CAS-reserves against the
  // global atomic total, so the bound is strict even across shards).
  std::thread observer([&] {
    cache_stats prev;
    while (!done.load(std::memory_order_acquire)) {
      const cache_stats cur = c.stats();
      EXPECT_GE(cur.hits, prev.hits);
      EXPECT_GE(cur.misses, prev.misses);
      EXPECT_GE(cur.insertions, prev.insertions);
      EXPECT_GE(cur.evictions, prev.evictions);
      EXPECT_GE(cur.expirations, prev.expirations);
      EXPECT_LE(c.bytes_used(), k_capacity);
      prev = cur;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(k_threads);
  for (std::size_t t = 0; t < k_threads; ++t) {
    workers.emplace_back([&, t] {
      util::rng rng{0x9e3779b97f4a7c15ull ^ (t * 0x100000001b3ull + 7)};
      std::uint64_t local_gets = 0;
      std::uint64_t local_puts = 0;
      for (std::size_t op = 0; op < k_ops_per_thread; ++op) {
        const std::string url = url_for(rng.next(k_url_space));
        const std::int64_t now = static_cast<std::int64_t>(op);
        const double action = rng.next_double();
        if (action < 0.5) {
          (void)c.get(url, now);
          ++local_gets;
        } else if (action < 0.9) {
          // Some entries expire mid-run to exercise the drop-on-access path.
          const std::int64_t ttl = rng.chance(0.1) ? 1 : 1'000'000;
          c.put_with_expiry(url, body_of(1 + rng.next(4000)), now + ttl, now);
          ++local_puts;
        } else {
          (void)c.remove(url);
        }
      }
      gets.fetch_add(local_gets);
      puts.fetch_add(local_puts);
    });
  }
  for (auto& w : workers) w.join();
  done.store(true, std::memory_order_release);
  observer.join();

  // No lost byte accounting: per shard, the running bytes_used must equal
  // the recomputed sum of resident entries' charged_bytes, and the LRU list
  // must track the map exactly.
  std::size_t bytes_total = 0;
  std::size_t entries_total = 0;
  for (const auto& s : c.snapshot_shards()) {
    EXPECT_EQ(s.bytes_used, s.charged_bytes);
    EXPECT_EQ(s.entries, s.lru_length);
    bytes_total += s.bytes_used;
    entries_total += s.entries;
  }
  EXPECT_EQ(bytes_total, c.bytes_used());
  EXPECT_EQ(entries_total, c.entry_count());
  EXPECT_LE(c.bytes_used(), k_capacity);

  // Every op is accounted for exactly once in the aggregated stats.
  const cache_stats st = c.stats();
  EXPECT_EQ(st.hits + st.misses, gets.load());
  // All puts used small bodies and future expiries, so each one inserted.
  EXPECT_EQ(st.insertions, puts.load());
  EXPECT_LE(st.evictions, st.insertions);
  EXPECT_LE(st.expirations, st.misses);

  // remove/clear leave accounting at zero.
  c.clear();
  EXPECT_EQ(c.entry_count(), 0u);
  EXPECT_EQ(c.bytes_used(), 0u);
}

// Writers racing on the SAME key from all threads: replacement must never
// double-charge or leak bytes.
TEST(CacheConcurrency, SingleKeyReplacementRaceKeepsBytesExact) {
  http_cache c(1024 * 1024, 8);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < k_threads; ++t) {
    workers.emplace_back([&, t] {
      util::rng rng{t * 1000003ull + 1};
      for (std::size_t op = 0; op < 20'000; ++op) {
        c.put_with_expiry("http://hot/key", body_of(1 + rng.next(512)), 1'000'000, 0);
        if (rng.chance(0.2)) (void)c.remove("http://hot/key");
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto shards = c.snapshot_shards();
  std::size_t resident = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.bytes_used, s.charged_bytes);
    resident += s.entries;
  }
  EXPECT_LE(resident, 1u);  // at most the one key survives
  EXPECT_EQ(c.entry_count(), resident);
}

// The script-loading caches are shared by every worker on the multi-worker
// node path: hammer ttl_cache, negative_cache, and the compiled-chunk LRU
// from 8 threads. Bounds must hold throughout; under TSan this is the
// data-race gate for cache/script_cache.hpp.
TEST(CacheConcurrency, ScriptCachesAreThreadSafeAndBounded) {
  constexpr std::size_t k_bound = 64;
  ttl_cache<std::string> sources(k_bound);
  negative_cache negatives(100, k_bound);
  lru_cache<std::shared_ptr<const std::string>> chunks(k_bound);

  std::vector<std::thread> workers;
  workers.reserve(k_threads);
  for (std::size_t t = 0; t < k_threads; ++t) {
    workers.emplace_back([&, t] {
      util::rng rng{0xabcdef12345ull + t * 977};
      for (std::size_t op = 0; op < 50'000; ++op) {
        const std::string key = "k" + std::to_string(rng.next(256));
        const auto now = static_cast<std::int64_t>(op % 1000);
        const double action = rng.next_double();
        if (action < 0.35) {
          (void)sources.get(key, now);
          (void)chunks.get(key);
        } else if (action < 0.7) {
          sources.put(key, "src-" + key, now + static_cast<std::int64_t>(rng.next(500)) + 1);
          chunks.put(key, std::make_shared<const std::string>("chunk-" + key));
        } else if (action < 0.85) {
          (void)negatives.contains(key, now);
          negatives.insert(key, now);
        } else if (action < 0.95) {
          (void)sources.remove(key);
          (void)negatives.remove(key);
        } else {
          (void)sources.purge_expired(now);
          (void)negatives.purge_expired(now);
        }
        EXPECT_LE(sources.size(), k_bound);
        EXPECT_LE(negatives.size(), k_bound);
        EXPECT_LE(chunks.size(), k_bound);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_LE(sources.size(), k_bound);
  EXPECT_LE(chunks.size(), k_bound);
  EXPECT_GT(sources.hits() + sources.misses(), 0u);
  EXPECT_GT(chunks.hits() + chunks.misses(), 0u);
}

}  // namespace
}  // namespace nakika::cache
