#include <gtest/gtest.h>

#include "http/cache_control.hpp"
#include "http/cookies.hpp"
#include "http/date.hpp"
#include "http/message.hpp"
#include "http/url.hpp"
#include "http/wire.hpp"

namespace nakika::http {
namespace {

// ----- url ------------------------------------------------------------------

TEST(Url, ParsesAbsolute) {
  const url u = url::parse("http://www.Med.NYU.edu:8080/a/b?x=1");
  EXPECT_EQ(u.scheme(), "http");
  EXPECT_EQ(u.host(), "www.med.nyu.edu");
  EXPECT_EQ(u.port(), 8080);
  EXPECT_EQ(u.path(), "/a/b");
  EXPECT_EQ(u.query(), "x=1");
  EXPECT_EQ(u.str(), "http://www.med.nyu.edu:8080/a/b?x=1");
}

TEST(Url, DefaultsAndOriginForm) {
  const url u = url::parse("http://example.org");
  EXPECT_EQ(u.port(), 80);
  EXPECT_EQ(u.path(), "/");
  const url o = url::parse("/just/path?q");
  EXPECT_EQ(o.path(), "/just/path");
  EXPECT_EQ(o.query(), "q");
}

TEST(Url, LenientPredicateForm) {
  const url u = url::parse_lenient("med.nyu.edu/simms");
  EXPECT_EQ(u.host(), "med.nyu.edu");
  EXPECT_EQ(u.path(), "/simms");
  const url full = url::parse_lenient("http://a.b/c");
  EXPECT_EQ(full.host(), "a.b");
}

TEST(Url, RejectsMalformed) {
  EXPECT_THROW(url::parse(""), std::invalid_argument);
  EXPECT_THROW(url::parse("ftp://x/"), std::invalid_argument);
  EXPECT_THROW(url::parse("http:///path"), std::invalid_argument);
  EXPECT_THROW(url::parse("http://host:notaport/"), std::invalid_argument);
  EXPECT_THROW(url::parse("http://host:70000/"), std::invalid_argument);
}

TEST(Url, Components) {
  const url u = url::parse("http://www.med.nyu.edu/a/b/c.html");
  const auto hosts = u.host_components_reversed();
  ASSERT_EQ(hosts.size(), 4u);
  EXPECT_EQ(hosts[0], "edu");
  EXPECT_EQ(hosts[3], "www");
  const auto paths = u.path_components();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[2], "c.html");
}

TEST(Url, SiteIdentity) {
  EXPECT_EQ(url::parse("http://a.b/x/y").site(), "http://a.b");
  EXPECT_EQ(url::parse("http://a.b:81/x").site(), "http://a.b:81");
}

TEST(Url, IpComponents) {
  const auto parts = ip_components("192.168.7.9");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "192");
  EXPECT_TRUE(ip_components("not.an.ip.x").empty());
  EXPECT_TRUE(ip_components("1.2.3").empty());
  EXPECT_TRUE(ip_components("1.2.3.256").empty());
}

TEST(Url, CidrContains) {
  EXPECT_TRUE(cidr_contains("192.168.0.0/16", "192.168.7.9"));
  EXPECT_FALSE(cidr_contains("192.168.0.0/16", "192.169.0.1"));
  EXPECT_TRUE(cidr_contains("10.0.0.0/8", "10.255.255.255"));
  EXPECT_TRUE(cidr_contains("1.2.3.4", "1.2.3.4"));   // /32 implied
  EXPECT_FALSE(cidr_contains("1.2.3.4", "1.2.3.5"));
  EXPECT_TRUE(cidr_contains("0.0.0.0/0", "8.8.8.8"));
  EXPECT_FALSE(cidr_contains("bad/16", "1.2.3.4"));
  EXPECT_FALSE(cidr_contains("1.2.3.0/33", "1.2.3.4"));
}

// ----- message ----------------------------------------------------------------

TEST(Message, MethodRoundTrip) {
  EXPECT_EQ(parse_method("GET"), method::get);
  EXPECT_EQ(parse_method("post"), method::post);
  EXPECT_EQ(parse_method("DELETE"), method::del);
  EXPECT_FALSE(parse_method("FROB").has_value());
  EXPECT_EQ(to_string(method::head), "HEAD");
}

TEST(Message, HeaderMapCaseInsensitive) {
  header_map h;
  h.set("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_TRUE(h.has("CONTENT-TYPE"));
  h.set("content-TYPE", "text/plain");
  EXPECT_EQ(h.get_all("Content-Type").size(), 1u);
  EXPECT_EQ(h.get("Content-Type"), "text/plain");
}

TEST(Message, HeaderMapMultiValue) {
  header_map h;
  h.add("Via", "a");
  h.add("Via", "b");
  EXPECT_EQ(h.get_all("via").size(), 2u);
  EXPECT_EQ(h.get("Via"), "a");  // first value
  EXPECT_EQ(h.remove("VIA"), 2u);
  EXPECT_FALSE(h.has("Via"));
}

TEST(Message, ContentLength) {
  header_map h;
  EXPECT_FALSE(h.content_length().has_value());
  h.set("Content-Length", "123");
  EXPECT_EQ(h.content_length(), 123);
  h.set("Content-Length", "-1");
  EXPECT_FALSE(h.content_length().has_value());
  h.set("Content-Length", "abc");
  EXPECT_FALSE(h.content_length().has_value());
}

TEST(Message, MakeResponse) {
  const response r = make_response(200, "text/plain", util::make_body("hi"));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.headers.get("Content-Length"), "2");
  EXPECT_EQ(r.body_size(), 2u);
  const response e = make_error_response(404, "gone");
  EXPECT_EQ(e.status, 404);
  EXPECT_NE(e.body->view().find("gone"), std::string_view::npos);
}

// ----- date -----------------------------------------------------------------

TEST(Date, FormatKnownInstant) {
  // 784111777 = Sun, 06 Nov 1994 08:49:37 GMT (the RFC example).
  EXPECT_EQ(format_http_date(784111777), "Sun, 06 Nov 1994 08:49:37 GMT");
  EXPECT_EQ(format_http_date(0), "Thu, 01 Jan 1970 00:00:00 GMT");
}

TEST(Date, ParseInverseOfFormat) {
  for (const std::int64_t t : {0LL, 784111777LL, 1700000000LL, 86399LL, 86400LL}) {
    EXPECT_EQ(parse_http_date(format_http_date(t)), t);
  }
}

TEST(Date, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_http_date("").has_value());
  EXPECT_FALSE(parse_http_date("Sun, 06 Nope 1994 08:49:37 GMT").has_value());
  EXPECT_FALSE(parse_http_date("Sun, 06 Nov 1994 08:49 GMT").has_value());
  EXPECT_FALSE(parse_http_date("Sun, 99 Nov 1994 08:49:37 GMT").has_value());
}

// ----- cache-control -----------------------------------------------------------

TEST(CacheControl, ParsesDirectives) {
  const auto d = parse_cache_control("no-cache, max-age=60, s-maxage=\"30\", private");
  EXPECT_TRUE(d.no_cache);
  EXPECT_TRUE(d.is_private);
  EXPECT_EQ(d.max_age, 60);
  EXPECT_EQ(d.s_maxage, 30);
  EXPECT_FALSE(d.no_store);
}

TEST(CacheControl, FreshnessFromMaxAge) {
  response r = make_response(200, "text/plain", util::make_body("x"));
  r.headers.set("Cache-Control", "max-age=100");
  const auto f = compute_freshness(r, 1000);
  EXPECT_TRUE(f.cacheable);
  EXPECT_EQ(f.expires_at, 1100);
}

TEST(CacheControl, SMaxAgeWins) {
  response r = make_response(200, "text/plain", util::make_body("x"));
  r.headers.set("Cache-Control", "max-age=100, s-maxage=10");
  EXPECT_EQ(compute_freshness(r, 0).expires_at, 10);
}

TEST(CacheControl, NoStoreBlocksCaching) {
  response r = make_response(200, "text/plain", util::make_body("x"));
  r.headers.set("Cache-Control", "no-store");
  EXPECT_FALSE(compute_freshness(r, 0).cacheable);
  r.headers.set("Cache-Control", "private");
  EXPECT_FALSE(compute_freshness(r, 0).cacheable);
}

TEST(CacheControl, ExpiresHeader) {
  response r = make_response(200, "text/plain", util::make_body("x"));
  r.headers.set("Expires", format_http_date(5000));
  const auto f = compute_freshness(r, 1000);
  EXPECT_TRUE(f.cacheable);
  EXPECT_EQ(f.expires_at, 5000);
  EXPECT_FALSE(compute_freshness(r, 6000).cacheable);  // already stale
}

TEST(CacheControl, HeuristicFromLastModified) {
  response r = make_response(200, "text/plain", util::make_body("x"));
  r.headers.set("Last-Modified", format_http_date(0));
  const auto f = compute_freshness(r, 1000);
  EXPECT_TRUE(f.cacheable);
  EXPECT_EQ(f.expires_at, 1100);  // 10% of age
}

TEST(CacheControl, UncacheableStatuses) {
  response r = make_response(500, "text/plain", util::make_body("x"));
  r.headers.set("Cache-Control", "max-age=100");
  EXPECT_FALSE(compute_freshness(r, 0).cacheable);
}

// ----- cookies -----------------------------------------------------------------

TEST(Cookies, ParseHeader) {
  const auto cookies = parse_cookie_header("session=abc; user=n1; flag");
  ASSERT_EQ(cookies.size(), 2u);
  EXPECT_EQ(cookies[0].name, "session");
  EXPECT_EQ(cookies[0].value, "abc");
  EXPECT_EQ(get_cookie("a=1; b=2", "b"), "2");
  EXPECT_FALSE(get_cookie("a=1", "c").has_value());
}

TEST(Cookies, FormatSetCookie) {
  EXPECT_EQ(format_set_cookie({"sid", "xyz"}, "/app", 60), "sid=xyz; Path=/app; Max-Age=60");
  EXPECT_EQ(format_set_cookie({"sid", "xyz"}), "sid=xyz; Path=/");
}

// ----- wire --------------------------------------------------------------------

TEST(Wire, RequestRoundTrip) {
  request r;
  r.method = method::post;
  r.url = url::parse("http://example.org/submit?x=1");
  r.headers.set("X-Custom", "v");
  r.body = util::make_body("payload");
  r.headers.set("Content-Length", "7");

  const auto bytes = serialize(r);
  const auto parsed = parse_request(bytes.view());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.method, method::post);
  EXPECT_EQ(parsed.value.url.host(), "example.org");
  EXPECT_EQ(parsed.value.url.path(), "/submit");
  EXPECT_EQ(parsed.value.headers.get("X-Custom"), "v");
  EXPECT_EQ(parsed.value.body->view(), "payload");
}

TEST(Wire, ResponseRoundTrip) {
  const response r = make_response(200, "text/html", util::make_body("<p>hi</p>"));
  const auto bytes = serialize(r);
  const auto parsed = parse_response(bytes.view());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.status, 200);
  EXPECT_EQ(parsed.value.body->view(), "<p>hi</p>");
}

TEST(Wire, ChunkedBody) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
  const auto parsed = parse_response(wire);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.body->view(), "Wikipedia");
}

TEST(Wire, MalformedInputsReportErrors) {
  EXPECT_FALSE(parse_request("GARBAGE").ok);
  EXPECT_FALSE(parse_request("GET /\r\n\r\n").ok);  // missing version
  EXPECT_FALSE(parse_response("HTTP/1.1 9999 X\r\n\r\n").ok);
  EXPECT_FALSE(parse_response("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc").ok);
  const std::string bad_chunk =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n";
  EXPECT_FALSE(parse_response(bad_chunk).ok);
}

TEST(Wire, WireSizeTracksSerialization) {
  const response r = make_response(200, "text/html", util::make_body(std::string(500, 'x')));
  const std::size_t estimate = wire_size(r);
  const std::size_t actual = serialize(r).size();
  EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(actual), 32.0);
}

}  // namespace
}  // namespace nakika::http
