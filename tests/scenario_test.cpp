// Scenario tier: churn fault injection and flash-crowd adversarial workloads
// driven through workload::cluster_scenario (multi-tenant isolation scenarios
// live in tenant_isolation_test.cpp). These are end-to-end cluster tests:
// worker-mode nodes, the real overlay, real peer transports, and the
// deployment's fault injector.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/single_flight.hpp"
#include "util/bytes.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace nakika;
using workload::batch_metrics;
using workload::cluster_scenario;
using workload::request_ref;
using workload::scenario_config;
using workload::tenant_spec;

scenario_config base_config(std::size_t nodes, std::size_t workers, std::uint64_t seed) {
  scenario_config cfg;
  cfg.nodes = nodes;
  cfg.workers = workers;
  cfg.seed = seed;
  return cfg;
}

tenant_spec make_tenant(std::string site, std::size_t objects, std::size_t object_bytes = 512) {
  tenant_spec t;
  t.site = std::move(site);
  t.objects = objects;
  t.object_bytes = object_bytes;
  return t;
}

// ---------------------------------------------------------------------------
// Flash crowd: a Zipf burst against a cold cluster must cost the origin at
// most ONE fetch per distinct hot object (single-flight coalescing per node +
// URL-affinity routing + cooperative peer caching). This is the paper's
// flash-crowd collapse claim, stated as an exact invariant.
// ---------------------------------------------------------------------------

TEST(FlashCrowd, ZipfBurstOnColdClusterIsO1PerObject) {
  scenario_config cfg = base_config(4, 2, 7);
  cfg.tenants.push_back(make_tenant("flash.org", 16, 600));
  cluster_scenario s(cfg);
  s.warm_script_probes();

  const std::vector<request_ref> burst = s.zipf_batch(/*tenant=*/0, /*count=*/64);
  std::set<std::size_t> distinct;
  for (const request_ref& ref : burst) distinct.insert(ref.object);
  ASSERT_GT(distinct.size(), 1u);
  ASSERT_LT(distinct.size(), 64u) << "Zipf draw should repeat hot objects";

  const batch_metrics m = s.run_batch(burst);
  EXPECT_TRUE(m.lossless()) << "answered=" << m.answered << " failed=" << m.failed
                            << " bad_body=" << m.bad_body;
  EXPECT_EQ(m.busy, 0u);
  EXPECT_LE(m.origin_fetches, distinct.size())
      << "origin saw " << m.origin_fetches << " fetches for " << distinct.size()
      << " distinct objects";

  // Replaying the exact same burst against the now-warm cluster is absorbed
  // entirely by the caches: the origin must not be touched at all.
  const batch_metrics m2 = s.run_batch(burst);
  EXPECT_TRUE(m2.lossless());
  EXPECT_EQ(m2.origin_fetches, 0u)
      << "warm cluster should never re-fetch a cached hot object";
}

TEST(FlashCrowd, PacedBurstScheduleStaysO1) {
  // Same invariant with arrivals paced by the burst schedule instead of
  // submitted back-to-back — open-loop timing must not change the bound.
  scenario_config cfg = base_config(3, 2, 11);
  cfg.tenants.push_back(make_tenant("spike.net", 8, 256));
  cluster_scenario s(cfg);
  s.warm_script_probes();

  workload::burst_config bc;
  bc.base_rate = 200.0;
  bc.burst_rate = 4000.0;
  bc.burst_start = 0.05;
  bc.burst_duration = 0.2;
  bc.seed = 3;
  workload::burst_arrivals schedule(bc);
  const std::vector<double> times = schedule.take(48);

  const std::vector<request_ref> reqs = s.zipf_batch(0, 48);
  std::set<std::size_t> distinct;
  for (const request_ref& ref : reqs) distinct.insert(ref.object);

  // Scale virtual seconds down hard so the test stays fast.
  const batch_metrics m = s.run_batch(reqs, std::nullopt, &times, /*time_scale=*/0.01);
  EXPECT_TRUE(m.lossless());
  EXPECT_LE(m.origin_fetches, distinct.size());
}

// ---------------------------------------------------------------------------
// Churn: crash a node mid-workload. Every request completes (zero lost), the
// cluster falls back to origin only for objects the dead node exclusively
// held, and after recovery the peer-hit ratio is back at its pre-crash level.
// ---------------------------------------------------------------------------

TEST(Churn, CrashRecoveryLosesNoRequestsAndPeerRatioRecovers) {
  scenario_config cfg = base_config(4, 2, 13);
  cfg.tenants.push_back(make_tenant("warm.org", 24));  // tenant 0: replicated
  cfg.tenants.push_back(make_tenant("solo.org", 12));  // tenant 1: node 0 only
  cluster_scenario s(cfg);
  s.warm_script_probes();

  // Warm node 0 with both tenants' full object sets from origin.
  ASSERT_TRUE(s.run_batch(s.all_objects(0), 0).lossless());
  ASSERT_TRUE(s.run_batch(s.all_objects(1), 0).lossless());

  // Pre-crash: every other node pulls warm.org cooperatively. All misses must
  // resolve via peers (node 0 holds and advertises everything).
  std::size_t pre_hits = 0;
  std::size_t pre_misses = 0;
  for (std::size_t n = 1; n < s.node_count(); ++n) {
    const batch_metrics m = s.run_batch(s.all_objects(0), n);
    ASSERT_TRUE(m.lossless());
    pre_hits += m.peer_hits;
    pre_misses += m.peer_misses;
  }
  ASSERT_GT(pre_hits, 0u);
  const double ratio_pre =
      static_cast<double>(pre_hits) / static_cast<double>(pre_hits + pre_misses);
  EXPECT_EQ(pre_misses, 0u) << "warm objects should always be found at a peer";

  // Crash node 0: overlay rings, peer directory, and redirector all drop it;
  // its caches are gone like a real process death.
  s.crash_node(0);
  ASSERT_FALSE(s.node_alive(0));
  ASSERT_EQ(s.live_nodes(), s.node_count() - 1);

  // During the outage: warm.org is served from the survivors' caches and
  // solo.org — whose only replica died — falls through to origin. The DHT
  // still advertises the dead node as a holder; those dangling entries must
  // be scrubbed, not probed forever, and nothing may be lost or wrong.
  std::vector<request_ref> during = s.all_objects(0);
  const std::vector<request_ref> lost = s.all_objects(1);
  during.insert(during.end(), lost.begin(), lost.end());
  const batch_metrics m_during = s.run_batch(during);
  EXPECT_TRUE(m_during.lossless())
      << "failed=" << m_during.failed << " bad_body=" << m_during.bad_body;
  EXPECT_EQ(m_during.busy, 0u);
  EXPECT_LE(m_during.origin_fetches, lost.size())
      << "origin fallback must be bounded by the objects that died with node 0";

  // Recover node 0 and re-warm it: its cold cache refills from live peers
  // (and origin for anything the DHT lost with the crash).
  s.recover_node(0);
  ASSERT_TRUE(s.node_alive(0));
  std::vector<request_ref> rewarm = s.all_objects(0);
  rewarm.insert(rewarm.end(), lost.begin(), lost.end());
  ASSERT_TRUE(s.run_batch(rewarm, 0).lossless());

  // Post-recovery measurement, symmetric with the pre-crash one: the other
  // nodes sweep solo.org. Every object now has at least one live advertised
  // holder (its during-crash fetcher plus the recovered node 0), so the
  // peer-hit ratio must be back at the pre-crash level.
  std::size_t post_hits = 0;
  std::size_t post_misses = 0;
  for (std::size_t n = 1; n < s.node_count(); ++n) {
    const batch_metrics m = s.run_batch(s.all_objects(1), n);
    ASSERT_TRUE(m.lossless());
    post_hits += m.peer_hits;
    post_misses += m.peer_misses;
  }
  ASSERT_GT(post_hits + post_misses, 0u);
  const double ratio_post =
      static_cast<double>(post_hits) / static_cast<double>(post_hits + post_misses);
  EXPECT_GE(ratio_post, ratio_pre)
      << "peer-hit ratio must recover: pre=" << ratio_pre << " post=" << ratio_post;
}

TEST(Churn, MidBatchCrashIsLossless) {
  // Crash the holder node from another thread WHILE a survivor is pulling its
  // objects: fetches race the crash, some resolve via the peer before it
  // dies, the rest fall back to origin. Every request must still complete
  // with the right bytes.
  scenario_config cfg = base_config(3, 2, 17);
  cfg.tenants.push_back(make_tenant("race.org", 32));
  cluster_scenario s(cfg);
  s.warm_script_probes();
  ASSERT_TRUE(s.run_batch(s.all_objects(0), 0).lossless());

  std::thread crasher([&s] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    s.crash_node(0);
  });
  const batch_metrics m = s.run_batch(s.all_objects(0), 1);
  crasher.join();

  EXPECT_TRUE(m.lossless()) << "failed=" << m.failed << " bad_body=" << m.bad_body;
  EXPECT_EQ(m.busy, 0u);
  EXPECT_EQ(m.ok, 32u);
}

TEST(Churn, InjectedFetchFailuresFallBackToOrigin) {
  // Force every peer fetch to fail (probabilistically, rate 1.0) and slow the
  // path down: the cluster must degrade to origin fetches, never to errors.
  scenario_config cfg = base_config(2, 2, 19);
  cfg.tenants.push_back(make_tenant("lossy.io", 16));
  cluster_scenario s(cfg);
  s.warm_script_probes();
  ASSERT_TRUE(s.run_batch(s.all_objects(0), 0).lossless());

  s.dep().faults().set_fetch_failure_rate(1.0);
  s.dep().faults().set_added_fetch_latency(0.010);
  const batch_metrics m = s.run_batch(s.all_objects(0), 1);
  s.dep().faults().set_fetch_failure_rate(0.0);
  s.dep().faults().set_added_fetch_latency(0.0);

  EXPECT_TRUE(m.lossless());
  EXPECT_EQ(m.peer_hits, 0u) << "every peer fetch was told to fail";
  EXPECT_EQ(m.origin_fetches, 16u) << "each object falls through to origin exactly once";
  EXPECT_GT(s.dep().faults().injected_failures(), 0u);
}

TEST(Churn, TransportSkipsCrashedHolderAndFallsBack) {
  // Crash the holder at the fault-injector level ONLY (no overlay leave), so
  // the DHT still names it as a holder: the threaded transport must skip the
  // crashed peer instead of probing a dead endpoint, and the request falls
  // back to origin.
  scenario_config cfg = base_config(2, 2, 23);
  cfg.tenants.push_back(make_tenant("dead-peer.org", 8));
  cluster_scenario s(cfg);
  s.warm_script_probes();
  ASSERT_TRUE(s.run_batch(s.all_objects(0), 0).lossless());

  s.dep().faults().crash(s.dep().node_name_of(s.node(0)));
  const batch_metrics m = s.run_batch(s.all_objects(0), 1);
  s.dep().faults().revive(s.dep().node_name_of(s.node(0)));

  EXPECT_TRUE(m.lossless());
  EXPECT_EQ(m.peer_hits, 0u);
  EXPECT_EQ(m.origin_fetches, 8u);
  EXPECT_GT(s.dep().faults().skipped_crashed_probes(), 0u)
      << "the transport should have skipped the crashed holder explicitly";
}

TEST(Churn, RecoverIsIdempotentAndCrashedRoutingAvoidsDeadNodes) {
  scenario_config cfg = base_config(3, 1, 29);
  cfg.tenants.push_back(make_tenant("tiny.org", 4));
  cluster_scenario s(cfg);

  // recover on a live node is a no-op (no duplicate redirector entries).
  s.recover_node(1);
  EXPECT_TRUE(s.node_alive(1));

  s.crash_node(2);
  // URL-affinity routing must only ever pick live nodes.
  for (std::size_t obj = 0; obj < 4; ++obj) {
    EXPECT_NE(s.route_index(s.url_of(0, obj)), 2u);
  }
  s.recover_node(2);
  EXPECT_EQ(s.live_nodes(), 3u);
}

// ---------------------------------------------------------------------------
// Single-flight leader failure (satellite: the coalescing layer under churn).
// The leader's upstream fetch dies while followers are parked on its flight:
// every follower must be released with a 502 — never hang — and the key must
// be immediately usable for a fresh, successful flight.
// ---------------------------------------------------------------------------

TEST(SingleFlightChurn, LeaderFailureReleasesParkedWaitersWith502) {
  net::single_flight sf;
  constexpr int k_followers = 4;
  const std::uint64_t waiters_before = sf.snapshot().waiters;

  std::atomic<int> got_502{0};
  std::atomic<int> got_other{0};
  std::atomic<bool> leader_threw{false};

  std::thread leader([&] {
    try {
      (void)sf.run("http://hot/obj", [&]() -> http::response {
        // Hold the flight until all followers are parked (bounded wait), then
        // die. This makes "followers were parked when the leader failed"
        // deterministic rather than timing-dependent.
        for (int spin = 0; spin < 20000; ++spin) {
          if (sf.snapshot().waiters >= waiters_before + k_followers) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        throw std::runtime_error("upstream died mid-flight");
      });
      ADD_FAILURE() << "leader must propagate its fetch exception";
    } catch (const std::runtime_error&) {
      leader_threw.store(true);
    }
  });

  // Don't start followers until the leader owns the flight.
  while (sf.in_flight() == 0) std::this_thread::yield();

  std::vector<std::thread> followers;
  followers.reserve(k_followers);
  for (int i = 0; i < k_followers; ++i) {
    followers.emplace_back([&] {
      bool coalesced = false;
      const http::response r = sf.run(
          "http://hot/obj",
          [] { return http::make_response(200, "text/plain", util::make_body("late")); },
          &coalesced);
      if (coalesced && r.status == 502) {
        got_502.fetch_add(1);
      } else {
        got_other.fetch_add(1);
      }
    });
  }
  for (std::thread& t : followers) t.join();
  leader.join();

  EXPECT_TRUE(leader_threw.load());
  EXPECT_EQ(got_502.load(), k_followers)
      << "every parked follower must get the leader's 502, got_other="
      << got_other.load();
  EXPECT_EQ(sf.in_flight(), 0u) << "the failed flight must be retired";

  // The key is not poisoned: the next run leads a fresh, successful flight.
  const http::response retry = sf.run("http://hot/obj", [] {
    return http::make_response(200, "text/plain", util::make_body("fresh"));
  });
  EXPECT_EQ(retry.status, 200);
  ASSERT_NE(retry.body, nullptr);
  EXPECT_EQ(retry.body->str(), "fresh");
}

// ---------------------------------------------------------------------------
// Harness self-checks.
// ---------------------------------------------------------------------------

TEST(ScenarioHarness, RejectsDegenerateConfigs) {
  scenario_config no_tenants = base_config(2, 1, 1);
  EXPECT_THROW(cluster_scenario{no_tenants}, std::invalid_argument);

  scenario_config no_workers = base_config(2, 0, 1);
  no_workers.tenants.push_back(make_tenant("a.org", 1));
  EXPECT_THROW(cluster_scenario{no_workers}, std::invalid_argument);

  scenario_config no_nodes = base_config(0, 1, 1);
  no_nodes.tenants.push_back(make_tenant("a.org", 1));
  EXPECT_THROW(cluster_scenario{no_nodes}, std::invalid_argument);
}

TEST(ScenarioHarness, BodiesAreDeterministicAndSized) {
  scenario_config cfg = base_config(1, 1, 3);
  cfg.tenants.push_back(make_tenant("det.org", 3, 128));
  cluster_scenario s(cfg);
  EXPECT_EQ(s.expected_body(0, 1).size(), 128u);
  EXPECT_EQ(s.expected_body(0, 1), s.expected_body(0, 1));
  EXPECT_NE(s.expected_body(0, 1), s.expected_body(0, 2));
  EXPECT_EQ(s.url_of(0, 2), "http://det.org/obj/2");
}

}  // namespace
