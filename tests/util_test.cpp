#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/glob.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace nakika::util {
namespace {

// ----- bytes -------------------------------------------------------------------

TEST(Bytes, RoundTripsText) {
  byte_buffer b("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.view(), "hello");
  b.append(std::string_view(" world"));
  EXPECT_EQ(b.str(), "hello world");
}

TEST(Bytes, SliceBounds) {
  byte_buffer b("abcdef");
  EXPECT_EQ(b.slice(2, 3).view(), "cde");
  EXPECT_EQ(b.slice(4, 100).view(), "ef");
  EXPECT_EQ(b.slice(6, 1).size(), 0u);
  EXPECT_THROW((void)b.slice(7, 1), std::out_of_range);
}

TEST(Bytes, HexRoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0xff, 0x10, 0xab};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "00ff10ab");
  EXPECT_EQ(from_hex(hex), data);
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, Base64KnownVectors) {
  // RFC 4648 vectors.
  const std::pair<const char*, const char*> vectors[] = {
      {"", ""},      {"f", "Zg=="},     {"fo", "Zm8="},     {"foo", "Zm9v"},
      {"foob", "Zm9vYg=="}, {"fooba", "Zm9vYmE="}, {"foobar", "Zm9vYmFy"},
  };
  for (const auto& [plain, encoded] : vectors) {
    const byte_buffer b{std::string_view(plain)};
    EXPECT_EQ(base64_encode(b.span()), encoded) << plain;
    const auto decoded = base64_decode(encoded);
    EXPECT_EQ(std::string(decoded.begin(), decoded.end()), plain);
  }
}

// ----- strings -----------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b \t\r\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("aBc"), "ABC");
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_TRUE(istarts_with("Content-Type: x", "content-type"));
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitTrimmedDropsEmpties) {
  const auto parts = split_trimmed(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(parse_int(" 42 "), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_FALSE(parse_double("x").has_value());
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
}

TEST(Strings, DomainMatches) {
  EXPECT_TRUE(domain_matches("www.nyu.edu", "nyu.edu"));
  EXPECT_TRUE(domain_matches("nyu.edu", "nyu.edu"));
  EXPECT_FALSE(domain_matches("notnyu.edu", "nyu.edu"));
  EXPECT_FALSE(domain_matches("edu", "nyu.edu"));
  EXPECT_FALSE(domain_matches("www.nyu.edu", ""));
}

// ----- stats --------------------------------------------------------------------

TEST(Stats, PercentileNearestRank) {
  sample_set s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50);
  EXPECT_DOUBLE_EQ(s.percentile(90), 90);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 100);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Stats, PercentileOnEmptyThrows) {
  sample_set s;
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(Stats, CdfAndFractions) {
  sample_set s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_least(3.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_least(0.0), 1.0);
}

TEST(Stats, CdfPointsAreMonotonic) {
  sample_set s;
  util::rng r(1);
  for (int i = 0; i < 500; ++i) s.add(r.next_double() * 10);
  const auto points = s.cdf_points(20);
  ASSERT_EQ(points.size(), 20u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].second, points[i].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Stats, EwmaConverges) {
  ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.update(10);
  EXPECT_DOUBLE_EQ(e.value(), 10);
  e.update(0);
  EXPECT_DOUBLE_EQ(e.value(), 5);
  e.update(0);
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

TEST(Stats, RunCounters) {
  run_counters c;
  c.offered = 200;
  c.throttled = 1;
  EXPECT_DOUBLE_EQ(c.throttled_fraction(), 0.005);
  EXPECT_DOUBLE_EQ(c.terminated_fraction(), 0.0);
}

// ----- random -------------------------------------------------------------------

TEST(Random, DeterministicWithSeed) {
  rng a(7);
  rng b(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next(1000), b.next(1000));
  }
}

TEST(Random, NextRange) {
  rng r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next(10), 10u);
  }
  EXPECT_THROW((void)r.next(0), std::invalid_argument);
}

TEST(Random, ZipfIsSkewed) {
  zipf_distribution z(100, 1.0);
  rng r(11);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(r)];
  // Rank 0 should dominate rank 50 heavily.
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_THROW(zipf_distribution(0, 1.0), std::invalid_argument);
}

TEST(Random, ExponentialMean) {
  rng r(5);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += r.exponential(2.0);
  EXPECT_NEAR(total / n, 2.0, 0.1);
}

// ----- glob ---------------------------------------------------------------------

TEST(Glob, Wildcards) {
  EXPECT_TRUE(glob_match("*.js", "nakika.js"));
  EXPECT_TRUE(glob_match("a*b", "ab"));
  EXPECT_TRUE(glob_match("a*b", "aXXb"));
  EXPECT_FALSE(glob_match("a*b", "aXXc"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("**", ""));
}

// ----- regex-lite ----------------------------------------------------------------

TEST(Pattern, Literals) {
  pattern p("abc");
  EXPECT_TRUE(p.full_match("abc"));
  EXPECT_FALSE(p.full_match("abcd"));
  EXPECT_TRUE(p.search("xxabcxx"));
}

TEST(Pattern, Quantifiers) {
  EXPECT_TRUE(pattern("ab*c").full_match("ac"));
  EXPECT_TRUE(pattern("ab*c").full_match("abbbc"));
  EXPECT_FALSE(pattern("ab+c").full_match("ac"));
  EXPECT_TRUE(pattern("ab+c").full_match("abc"));
  EXPECT_TRUE(pattern("ab?c").full_match("ac"));
  EXPECT_TRUE(pattern("ab?c").full_match("abc"));
  EXPECT_FALSE(pattern("ab?c").full_match("abbc"));
}

TEST(Pattern, ClassesAndEscapes) {
  EXPECT_TRUE(pattern("[a-c]+").full_match("abcba"));
  EXPECT_FALSE(pattern("[a-c]+").full_match("abd"));
  EXPECT_TRUE(pattern("[^0-9]+").full_match("abc"));
  EXPECT_FALSE(pattern("[^0-9]+").full_match("a1c"));
  EXPECT_TRUE(pattern("\\d+").full_match("123"));
  EXPECT_TRUE(pattern("\\w+").full_match("ab_1"));
  EXPECT_TRUE(pattern("a\\.b").full_match("a.b"));
  EXPECT_FALSE(pattern("a\\.b").full_match("axb"));
}

TEST(Pattern, AnchorsAndAlternation) {
  EXPECT_TRUE(pattern("^Mozilla").search("Mozilla/5.0"));
  EXPECT_FALSE(pattern("^Mozilla").search("x Mozilla"));
  EXPECT_TRUE(pattern("gif|jpe?g|png").full_match("jpeg"));
  EXPECT_TRUE(pattern("gif|jpe?g|png").full_match("jpg"));
  EXPECT_TRUE(pattern("gif|jpe?g|png").full_match("png"));
  EXPECT_FALSE(pattern("gif|jpe?g|png").full_match("bmp"));
  EXPECT_TRUE(pattern("(ab)+c$").search("zababc"));
}

TEST(Pattern, FindReportsPositionAndLength) {
  pattern p("b+");
  std::size_t len = 0;
  EXPECT_EQ(p.find("aabbba", &len), 2u);
  EXPECT_EQ(len, 3u);
  EXPECT_EQ(p.find("xyz"), std::string_view::npos);
}

TEST(Pattern, RejectsMalformed) {
  EXPECT_THROW(pattern("a("), std::invalid_argument);
  EXPECT_THROW(pattern("[a"), std::invalid_argument);
  EXPECT_THROW(pattern("*a"), std::invalid_argument);
  EXPECT_THROW(pattern("a\\"), std::invalid_argument);
  EXPECT_THROW(pattern("[z-a]"), std::invalid_argument);
}

TEST(Pattern, ZeroWidthRepeatTerminates) {
  // (a?)* could loop forever without the zero-width guard.
  pattern p("(a?)*b");
  EXPECT_TRUE(p.full_match("aaab"));
  EXPECT_TRUE(p.full_match("b"));
  EXPECT_FALSE(p.full_match("c"));
}

// Property sweep: glob star subsumes any infix.
class GlobProperty : public ::testing::TestWithParam<const char*> {};
TEST_P(GlobProperty, StarMatchesAnyInfix) {
  const std::string text = GetParam();
  EXPECT_TRUE(glob_match("*", text));
  EXPECT_TRUE(glob_match(("*" + text).c_str(), text));
  EXPECT_TRUE(glob_match((text + "*").c_str(), text));
}
INSTANTIATE_TEST_SUITE_P(Texts, GlobProperty,
                         ::testing::Values("", "a", "nakika", "a.b.c", "xyz123"));

}  // namespace
}  // namespace nakika::util
