#include <gtest/gtest.h>

#include "http/date.hpp"
#include "integrity/content_integrity.hpp"
#include "integrity/hmac.hpp"
#include "integrity/sha256.hpp"
#include "integrity/verification.hpp"

namespace nakika::integrity {
namespace {

// ----- sha256 (FIPS 180-4 vectors) -------------------------------------------------

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(sha256_hex(std::string_view("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex(std::string_view("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex(std::string_view(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto digest = h.finish();
  EXPECT_EQ(util::to_hex({digest.data(), digest.size()}),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  sha256 h;
  for (char c : msg) h.update(std::string_view(&c, 1));
  const auto incremental = h.finish();
  EXPECT_EQ(incremental, sha256_hash(msg));
}

TEST(Sha256, BoundaryLengths) {
  // Pad-boundary cases: 55, 56, 63, 64, 65 bytes.
  for (const std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string msg(n, 'x');
    sha256 split;
    split.update(std::string_view(msg).substr(0, n / 2));
    split.update(std::string_view(msg).substr(n / 2));
    EXPECT_EQ(split.finish(), sha256_hash(msg)) << n;
  }
}

TEST(Sha256, ReuseAfterFinishThrows) {
  sha256 h;
  h.update(std::string_view("x"));
  (void)h.finish();
  EXPECT_THROW(h.update(std::string_view("y")), std::logic_error);
  EXPECT_THROW((void)h.finish(), std::logic_error);
}

// ----- hmac (RFC 4231 vectors) ------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(hmac_sha256_hex(key, "Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hmac_sha256_hex("Jefe", "what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(hmac_sha256_hex(key, "Test Using Larger Than Block-Size Key - Hash Key First"),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestComparisonConstantTimeSemantics) {
  const auto a = hmac_sha256("k", std::string_view("m"));
  const auto b = hmac_sha256("k", std::string_view("m"));
  const auto c = hmac_sha256("k", std::string_view("n"));
  EXPECT_TRUE(digests_equal(a, b));
  EXPECT_FALSE(digests_equal(a, c));
}

// ----- content integrity -------------------------------------------------------------

http::response signed_response(const std::string& body, std::int64_t now,
                               std::int64_t lifetime = 3600) {
  http::response r = http::make_response(200, "text/html", util::make_body(body));
  sign_response(r, "shared-key", now, lifetime);
  return r;
}

TEST(ContentIntegrity, SignedResponseVerifies) {
  const http::response r = signed_response("content", 1000);
  EXPECT_EQ(verify_response(r, "shared-key", 1001), verify_result::ok);
  EXPECT_TRUE(r.headers.has("X-Content-SHA256"));
  EXPECT_TRUE(r.headers.has("X-Signature"));
  EXPECT_TRUE(r.headers.has("Expires"));
}

TEST(ContentIntegrity, TamperedBodyDetected) {
  http::response r = signed_response("content", 1000);
  r.body = util::make_body("tampered by a malicious edge node");
  EXPECT_EQ(verify_response(r, "shared-key", 1001), verify_result::hash_mismatch);
}

TEST(ContentIntegrity, TamperedExpiryDetected) {
  // A bad node extending freshness must invalidate the signature.
  http::response r = signed_response("content", 1000, 10);
  r.headers.set("Expires", http::format_http_date(999999));
  EXPECT_EQ(verify_response(r, "shared-key", 1001), verify_result::signature_mismatch);
}

TEST(ContentIntegrity, StaleContentRejected) {
  const http::response r = signed_response("content", 1000, 10);
  EXPECT_EQ(verify_response(r, "shared-key", 1009), verify_result::ok);
  EXPECT_EQ(verify_response(r, "shared-key", 1010), verify_result::stale);
}

TEST(ContentIntegrity, WrongKeyRejected) {
  const http::response r = signed_response("content", 1000);
  EXPECT_EQ(verify_response(r, "other-key", 1001), verify_result::signature_mismatch);
}

TEST(ContentIntegrity, MissingHeadersReported) {
  const http::response r = http::make_response(200, "text/html", util::make_body("x"));
  EXPECT_EQ(verify_response(r, "shared-key", 0), verify_result::missing_headers);
}

TEST(ContentIntegrity, RelativeExpiryForbidden) {
  // Paper §6: relative times cannot be trusted on untrusted nodes.
  http::response r = signed_response("content", 1000);
  r.headers.set("Cache-Control", "max-age=60");
  EXPECT_EQ(verify_response(r, "shared-key", 1001), verify_result::relative_expiry);
  // And sign_response strips max-age in the first place.
  http::response r2 = http::make_response(200, "text/html", util::make_body("y"));
  r2.headers.set("Cache-Control", "max-age=60");
  sign_response(r2, "k", 0);
  EXPECT_FALSE(r2.headers.has("Cache-Control"));
}

TEST(ContentIntegrity, PreservesExistingAbsoluteExpiry) {
  http::response r = http::make_response(200, "text/html", util::make_body("z"));
  r.headers.set("Expires", http::format_http_date(5000));
  sign_response(r, "k", 1000);
  EXPECT_EQ(r.headers.get("Expires"), http::format_http_date(5000));
  EXPECT_EQ(verify_response(r, "k", 4999), verify_result::ok);
}

// ----- probabilistic verification (paper §6) --------------------------------------------

TEST(Verification, EvictsAfterThresholdDistinctReporters) {
  verification_registry registry(3);
  registry.register_node("bad-node");
  registry.register_node("good-node");
  EXPECT_FALSE(registry.report_mismatch("bad-node", "client-1"));
  EXPECT_FALSE(registry.report_mismatch("bad-node", "client-1"));  // duplicate reporter
  EXPECT_EQ(registry.report_count("bad-node"), 1u);
  EXPECT_FALSE(registry.report_mismatch("bad-node", "client-2"));
  EXPECT_TRUE(registry.report_mismatch("bad-node", "client-3"));
  EXPECT_FALSE(registry.is_member("bad-node"));
  EXPECT_TRUE(registry.is_member("good-node"));
  ASSERT_EQ(registry.evicted().size(), 1u);
  EXPECT_EQ(registry.evicted()[0], "bad-node");
  // Reports against non-members are ignored.
  EXPECT_FALSE(registry.report_mismatch("bad-node", "client-4"));
  EXPECT_THROW(verification_registry(0), std::invalid_argument);
}

TEST(Verification, SamplerHonorsProbability) {
  verification_registry registry(3);
  util::rng rng(9);
  probabilistic_verifier always(registry, 1.0, rng);
  probabilistic_verifier never(registry, 0.0, rng);
  int yes = 0;
  for (int i = 0; i < 100; ++i) {
    if (always.should_verify()) ++yes;
    EXPECT_FALSE(never.should_verify());
  }
  EXPECT_EQ(yes, 100);
  EXPECT_THROW(probabilistic_verifier(registry, 1.5, rng), std::invalid_argument);
}

TEST(Verification, MismatchReportsAccusedNode) {
  verification_registry registry(1);  // single report evicts
  registry.register_node("proxy-x");
  util::rng rng(4);
  probabilistic_verifier verifier(registry, 0.5, rng);
  EXPECT_TRUE(verifier.check("proxy-x", "client", "same", "same"));
  EXPECT_TRUE(registry.is_member("proxy-x"));
  EXPECT_FALSE(verifier.check("proxy-x", "client", "original", "falsified"));
  EXPECT_FALSE(registry.is_member("proxy-x"));
  EXPECT_EQ(verifier.checks_performed(), 2u);
  EXPECT_EQ(verifier.mismatches_found(), 1u);
}

}  // namespace
}  // namespace nakika::integrity
