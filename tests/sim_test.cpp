#include <gtest/gtest.h>

#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace nakika::sim {
namespace {

TEST(EventLoop, OrdersByTimeThenSequence) {
  event_loop loop;
  std::string order;
  loop.schedule(2.0, [&] { order += "c"; });
  loop.schedule(1.0, [&] { order += "a"; });
  loop.schedule(1.0, [&] { order += "b"; });  // same time: FIFO by sequence
  loop.run();
  EXPECT_EQ(order, "abc");
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
}

TEST(EventLoop, NestedScheduling) {
  event_loop loop;
  double fired_at = -1;
  loop.schedule(1.0, [&] {
    loop.schedule(0.5, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(EventLoop, RunUntilAdvancesClock) {
  event_loop loop;
  int fired = 0;
  loop.schedule(1.0, [&] { ++fired; });
  loop.schedule(5.0, [&] { ++fired; });
  loop.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RejectsPastScheduling) {
  event_loop loop;
  loop.schedule(1.0, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(loop.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Network, TransferTimeIsLatencyPlusSerialization) {
  event_loop loop;
  network net(loop);
  const node_id a = net.add_node("a");
  const node_id b = net.add_node("b");
  const link_id l = net.add_link(1e6);  // 1 MB/s
  net.set_route(a, b, 0.010, {l});

  double delivered = -1;
  net.transfer(a, b, 100000, [&] { delivered = loop.now(); });
  loop.run();
  EXPECT_NEAR(delivered, 0.010 + 0.1, 1e-9);  // 100 KB at 1 MB/s + 10 ms
}

TEST(Network, SharedLinkSerializesTransfers) {
  event_loop loop;
  network net(loop);
  const node_id a = net.add_node("a");
  const node_id b = net.add_node("b");
  const link_id l = net.add_link(1e6);
  net.set_route(a, b, 0.0, {l});

  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    net.transfer(a, b, 1000000, [&] { done.push_back(loop.now()); });
  }
  loop.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);  // queued behind the first
  EXPECT_NEAR(done[2], 3.0, 1e-9);
  EXPECT_EQ(net.link_bytes(l), 3000000u);
}

TEST(Network, SelfTransferIsImmediate) {
  event_loop loop;
  network net(loop);
  const node_id a = net.add_node("a");
  bool done = false;
  net.transfer(a, a, 100, [&] { done = true; });
  loop.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(loop.now(), 0.0);
}

TEST(Network, MissingRouteThrows) {
  event_loop loop;
  network net(loop);
  const node_id a = net.add_node("a");
  const node_id b = net.add_node("b");
  EXPECT_THROW(net.transfer(a, b, 1, [] {}), std::logic_error);
  EXPECT_THROW((void)net.route_latency(a, b), std::logic_error);
  EXPECT_FALSE(net.has_route(a, b));
  EXPECT_TRUE(net.has_route(a, a));
}

TEST(Network, CpuQueueIsFifoPerCore) {
  event_loop loop;
  network net(loop);
  const node_id a = net.add_node("a", 1);
  std::vector<double> done;
  net.run_cpu(a, 0.5, [&] { done.push_back(loop.now()); });
  net.run_cpu(a, 0.5, [&] { done.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 0.5, 1e-9);
  EXPECT_NEAR(done[1], 1.0, 1e-9);  // serialized on the single core
}

TEST(Network, MultiCoreRunsInParallel) {
  event_loop loop;
  network net(loop);
  const node_id a = net.add_node("a", 2);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) net.run_cpu(a, 1.0, [&] { done.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_NEAR(done[1], 1.0, 1e-9);  // two finish at t=1
  EXPECT_NEAR(done[3], 2.0, 1e-9);  // two more at t=2
}

TEST(Network, ValidatesArguments) {
  event_loop loop;
  network net(loop);
  const node_id a = net.add_node("a");
  EXPECT_THROW(net.add_node("bad", 0), std::invalid_argument);
  EXPECT_THROW(net.add_link(0.0), std::invalid_argument);
  EXPECT_THROW(net.run_cpu(a, -1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(net.run_cpu(99, 1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(net.set_route(0, 99, 0.1), std::invalid_argument);
}

TEST(Topology, LanHasSymmetricLowLatency) {
  event_loop loop;
  network net(loop);
  const three_tier t = build_lan(net);
  EXPECT_NEAR(net.route_latency(t.client, t.proxy), 0.0002, 1e-9);
  EXPECT_NEAR(net.route_latency(t.proxy, t.origin), 0.0002, 1e-9);
}

TEST(Topology, ConstrainedWanBottleneckIsShared) {
  event_loop loop;
  network net(loop);
  const three_tier t = build_constrained_wan(net);
  EXPECT_NEAR(net.route_latency(t.proxy, t.origin), 0.080, 1e-9);
  // Two 1 MB transfers through the 8 Mbps bottleneck must serialize.
  std::vector<double> done;
  net.transfer(t.origin, t.proxy, 1000000, [&] { done.push_back(loop.now()); });
  net.transfer(t.origin, t.client, 1000000, [&] { done.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_GT(done[1], 1.9);  // ~1 s each through the shared 1 MB/s link
}

TEST(Topology, GeoBuildsAllRoutes) {
  event_loop loop;
  network net(loop);
  const geo_deployment g = build_geo(net, 2);
  ASSERT_EQ(g.sites.size(), 6u);
  for (const auto& site : g.sites) {
    EXPECT_TRUE(net.has_route(site.client, site.proxy));
    EXPECT_TRUE(net.has_route(site.client, g.origin));
    EXPECT_TRUE(net.has_route(site.proxy, g.origin));
  }
  // Proxy mesh is complete.
  for (std::size_t i = 0; i < g.sites.size(); ++i) {
    for (std::size_t j = 0; j < g.sites.size(); ++j) {
      EXPECT_TRUE(net.has_route(g.sites[i].proxy, g.sites[j].proxy));
    }
  }
  // Asia is farther from the New York origin than the East Coast.
  double asia = 0;
  double east = 0;
  for (const auto& site : g.sites) {
    if (site.region == "asia") asia = net.route_latency(site.client, g.origin);
    if (site.region == "us-east") east = net.route_latency(site.client, g.origin);
  }
  EXPECT_GT(asia, east);
}

TEST(Topology, GeoRejectsBadArguments) {
  event_loop loop;
  network net(loop);
  EXPECT_THROW(build_geo(net, 0), std::invalid_argument);
}

}  // namespace
}  // namespace nakika::sim
