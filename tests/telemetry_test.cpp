// Telemetry tier tests: histogram bucket math and percentile units, the
// lock-free registry under concurrent record/snapshot (the TSan target for
// the retired stats mutex), span-ring overflow accounting, fault-injector
// counters, the node's telemetry_json/stats_report export with per-stage and
// per-tenant breakdowns, bounded site logs, and the workers=0 determinism
// regression (telemetry on/off must not perturb a fixed-seed run).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

namespace nakika {
namespace {

// ----- histogram bucket math ---------------------------------------------------------

TEST(LatencyHistogram, LinearBucketsAreExact) {
  for (std::uint64_t m = 0; m < obs::latency_histogram::linear_buckets; ++m) {
    EXPECT_EQ(obs::latency_histogram::bucket_index(m), m);
    EXPECT_EQ(obs::latency_histogram::bucket_lower_micros(m), m);
    EXPECT_EQ(obs::latency_histogram::bucket_upper_micros(m), m + 1);
  }
}

TEST(LatencyHistogram, BucketBoundsRoundTrip) {
  for (std::size_t i = 0; i < obs::latency_histogram::bucket_count; ++i) {
    const std::uint64_t lower = obs::latency_histogram::bucket_lower_micros(i);
    const std::uint64_t upper = obs::latency_histogram::bucket_upper_micros(i);
    ASSERT_LT(lower, upper);
    EXPECT_EQ(obs::latency_histogram::bucket_index(lower), i) << "lower bound of " << i;
    EXPECT_EQ(obs::latency_histogram::bucket_index(upper - 1), i) << "upper bound of " << i;
  }
  // Values beyond the top octave clamp into the last bucket.
  EXPECT_EQ(obs::latency_histogram::bucket_index(1ULL << 50),
            obs::latency_histogram::bucket_count - 1);
}

TEST(LatencyHistogram, IndexIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t m = 1; m < (1ULL << 22); m = m + 1 + m / 3) {
    const std::size_t idx = obs::latency_histogram::bucket_index(m);
    EXPECT_GE(idx, prev) << "at " << m;
    prev = idx;
  }
}

TEST(LatencyHistogram, PercentilesReportBucketUpperBoundUnits) {
  obs::latency_histogram h;
  for (int i = 0; i < 90; ++i) h.record_seconds(0.001);   // 1 ms
  for (int i = 0; i < 10; ++i) h.record_seconds(0.100);   // 100 ms
  const obs::histogram_summary s = obs::summarize(h);
  EXPECT_EQ(s.count, 100u);
  // Log-scale buckets have <= 12.5% width: the quantile is the bucket upper
  // bound, so it is >= the true value and within one bucket of it.
  EXPECT_GE(s.p50, 0.001);
  EXPECT_LE(s.p50, 0.001 * 1.125);
  EXPECT_GE(s.p99, 0.100);
  EXPECT_LE(s.p99, 0.100 * 1.125);
  EXPECT_GE(s.p999, 0.100);
  EXPECT_GE(s.max, 0.100);
  EXPECT_GT(s.mean, 0.001);
  EXPECT_LT(s.mean, 0.100);
}

TEST(LatencyHistogram, SubMicrosecondRecordsLandInBucketZero) {
  obs::latency_histogram h;
  h.record_seconds(2e-7);
  h.record_seconds(0.0);
  h.record_seconds(-1.0);  // clamped, never UB
  EXPECT_EQ(h.bucket(0), 3u);
}

// ----- registry: concurrent record vs snapshot (TSan target) -------------------------

TEST(MetricsRegistry, ConcurrentRecordAndSnapshotExactTotals) {
  constexpr std::size_t k_threads = 8;
  constexpr std::uint64_t k_iters = 50'000;
  obs::metrics_registry reg(k_threads);
  const auto ops = reg.counter("test.ops");
  const auto lat = reg.histogram("test.latency");

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::metrics_snapshot snap = reg.snapshot();
      // Totals are monotone and never torn beyond the running sum.
      ASSERT_LE(snap.counters.at("test.ops"), k_threads * k_iters);
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < k_threads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < k_iters; ++i) {
        reg.add(t, ops);
        reg.record_micros(t, lat, 100 + t);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(reg.counter_value(ops), k_threads * k_iters);
  EXPECT_EQ(reg.histogram_merged(lat).total, k_threads * k_iters);
}

TEST(MetricsRegistry, RegistrationIsIdempotentAndDegradesAtCapacity) {
  obs::metrics_registry reg(1, /*counter_capacity=*/2, /*histogram_capacity=*/1);
  const auto a = reg.counter("a");
  EXPECT_EQ(reg.counter("a"), a);
  const auto b = reg.counter("b");
  EXPECT_NE(a, b);
  // Capacity exhausted: further names alias the last id instead of crashing.
  EXPECT_EQ(reg.counter("c"), b);
  EXPECT_EQ(reg.histogram("h1"), reg.histogram("h2"));
}

// ----- span ring ---------------------------------------------------------------------

TEST(SpanRing, OverflowKeepsNewestAndCountsDrops) {
  obs::span_ring ring(/*slots=*/1, /*capacity_per_slot=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::span_record rec;
    rec.path = "/r" + std::to_string(i);
    ring.push(0, std::move(rec));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<obs::span_record> spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().path, "/r6");  // oldest retained
  EXPECT_EQ(spans.back().path, "/r9");   // newest
}

// ----- fault injector registry counters ----------------------------------------------

TEST(FaultInjector, ActivityShowsUpAsRegistryCounters) {
  net::fault_injector faults(7);
  faults.crash("nakika-1");
  faults.crash("nakika-1");  // already crashed: not double-counted
  faults.crash("nakika-2");
  faults.revive("nakika-1");
  faults.revive("nakika-9");  // never crashed: no-op
  faults.count_skipped_crashed_probe();
  faults.set_fetch_failure_rate(1.0);
  EXPECT_TRUE(faults.should_fail_fetch());
  EXPECT_TRUE(faults.should_fail_fetch());

  const obs::metrics_snapshot snap = faults.metrics_snapshot();
  EXPECT_EQ(snap.counters.at("faults.crashes"), 2u);
  EXPECT_EQ(snap.counters.at("faults.revives"), 1u);
  EXPECT_EQ(snap.counters.at("faults.skipped_crashed_probes"), 1u);
  EXPECT_EQ(snap.counters.at("faults.injected_failures"), 2u);
  EXPECT_EQ(faults.injected_failures(), 2u);
}

// ----- node telemetry export ---------------------------------------------------------

struct telemetry_fixture : ::testing::Test {
  sim::event_loop loop;
  sim::network net{loop};
  sim::three_tier topo;
  std::unique_ptr<proxy::deployment> dep;
  proxy::origin_server* origin = nullptr;
  proxy::nakika_node* node = nullptr;

  void build(proxy::node_config cfg = {}) {
    topo = sim::build_lan(net);
    dep = std::make_unique<proxy::deployment>(net);
    origin = &dep->create_origin(topo.origin);
    node = &dep->create_node(topo.proxy, std::move(cfg));
  }

  http::response fetch(const std::string& url) {
    http::request r;
    r.url = http::url::parse(url);
    r.client_ip = "10.0.0.1";
    http::response out;
    forward_request(net, topo.client, *node, r, [&](http::response resp) {
      out = std::move(resp);
    });
    loop.run();
    return out;
  }

  void add_logging_site(const std::string& host) {
    dep->map_host(host, *origin);
    origin->add_static_text(host, "/nakika.js", "application/javascript", R"JS(
      var p = new Policy();
      p.url = [ ")JS" + host + R"JS(" ];
      p.onResponse = function() { Log.write("hit " + Request.path); };
      p.register();
    )JS");
  }
};

TEST_F(telemetry_fixture, PerStageAndPerTenantBreakdowns) {
  build();
  add_logging_site("site.org");
  origin->add_static_text("site.org", "/a", "text/plain", "A", 600);
  EXPECT_EQ(fetch("http://site.org/a").status, 200);
  EXPECT_EQ(fetch("http://site.org/a").status, 200);  // second: cache hit

  const obs::telemetry_snapshot snap = node->telemetry();

  // Per-stage rows exist for every stage, in stage order, plus the collector's
  // per-pause series ("gc_pause" — samples are individual GC pauses, not
  // requests) appended after them; the total histogram saw both requests and
  // the sim clock gave them nonzero virtual latency.
  ASSERT_EQ(snap.stages.size(), obs::stage_count + 1);
  EXPECT_EQ(snap.stages.back().name, "gc_pause");
  EXPECT_EQ(snap.stages[0].name, "total");
  EXPECT_EQ(snap.stages[0].latency.count, 2u);
  EXPECT_GT(snap.stages[0].latency.p50, 0.0);
  // First request missed (origin fetch), second hit the content cache.
  EXPECT_EQ(snap.counters.at("outcome.cache_hit"), 1u);
  EXPECT_GE(snap.counters.at("outcome.origin_fetch"), 1u);
  EXPECT_EQ(snap.counters.at("requests.completed"), 2u);

  // Per-tenant row joins observed requests with the per-site log state.
  ASSERT_EQ(snap.tenants.size(), 1u);
  const obs::tenant_stats& t = snap.tenants[0];
  EXPECT_EQ(t.site, "http://site.org");
  EXPECT_EQ(t.requests, 2u);
  EXPECT_EQ(t.log_lines, 2u);
  EXPECT_EQ(t.log_dropped, 0u);

  // The aggregate script-time view equals the tenant view (single tenant).
  const proxy::nakika_node::script_time_stats st = node->script_times();
  EXPECT_EQ(st.ic_hits, t.ic_hits);
  EXPECT_EQ(st.ic_misses, t.ic_misses);
  EXPECT_GT(st.stages_executed, 0u);

  // Spans: one per completed request, virtual-time stamped.
  const std::vector<obs::span_record> spans = node->recent_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].site, "http://site.org");
  EXPECT_EQ(spans[0].status, 200);
  EXPECT_FALSE(spans[0].has(obs::span_flag::cache_hit));
  EXPECT_TRUE(spans[1].has(obs::span_flag::cache_hit));
  EXPECT_GT(spans[1].start, spans[0].start);

  // Export renders both breakdowns.
  const std::string json = node->telemetry_json();
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"script_exec\""), std::string::npos);
  EXPECT_NE(json.find("\"http://site.org\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome.cache_hit\":1"), std::string::npos);
  const std::string text = node->stats_text();
  EXPECT_NE(text.find("total"), std::string::npos);
  EXPECT_NE(text.find("http://site.org"), std::string::npos);
}

TEST_F(telemetry_fixture, SiteLogsAreBoundedWithDropCounter) {
  proxy::node_config cfg;
  cfg.site_log_capacity = 4;
  build(std::move(cfg));
  add_logging_site("chatty.org");
  for (int i = 0; i < 10; ++i) {
    origin->add_static_text("chatty.org", "/p" + std::to_string(i), "text/plain", "x", 600);
    EXPECT_EQ(fetch("http://chatty.org/p" + std::to_string(i)).status, 200);
  }

  const std::vector<std::string> log = node->site_log("http://chatty.org");
  ASSERT_EQ(log.size(), 4u);  // bounded at capacity, oldest dropped
  EXPECT_EQ(log.front(), "hit /p6");
  EXPECT_EQ(log.back(), "hit /p9");

  ASSERT_EQ(node->telemetry().tenants.size(), 1u);
  const obs::tenant_stats t = node->telemetry().tenants[0];
  EXPECT_EQ(t.log_lines, 10u);
  EXPECT_EQ(t.log_dropped, 6u);
}

TEST_F(telemetry_fixture, TenantQuotaRejectionsPerTenant) {
  proxy::node_config cfg;
  cfg.tenant_cache_quota_bytes["greedy.org"] = 1024;
  build(std::move(cfg));
  dep->map_host("greedy.org", *origin);
  // Far over quota: every put is rejected by tenant isolation.
  origin->add_static_text("greedy.org", "/big", "text/plain", std::string(8192, 'g'), 600);
  EXPECT_EQ(fetch("http://greedy.org/big").status, 200);

  ASSERT_EQ(node->telemetry().tenants.size(), 1u);
  const obs::tenant_stats t = node->telemetry().tenants[0];
  EXPECT_EQ(t.cache_quota, 1024u);
  EXPECT_GE(t.quota_rejections, 1u);
  EXPECT_EQ(t.cache_bytes, 0u);
}

TEST_F(telemetry_fixture, SpanRingOverflowOnNode) {
  proxy::node_config cfg;
  cfg.span_ring_capacity = 3;
  build(std::move(cfg));
  dep->map_host("site.org", *origin);
  for (int i = 0; i < 8; ++i) {
    origin->add_static_text("site.org", "/o" + std::to_string(i), "text/plain", "x", 600);
    fetch("http://site.org/o" + std::to_string(i));
  }
  EXPECT_EQ(node->recent_spans().size(), 3u);
  EXPECT_EQ(node->spans_dropped(), 5u);
  const obs::telemetry_snapshot snap = node->telemetry();
  EXPECT_EQ(snap.spans_retained, 3u);
  EXPECT_EQ(snap.spans_dropped, 5u);
  EXPECT_EQ(snap.spans_recorded, 8u);
  EXPECT_EQ(snap.span_capacity, 3u);
}

// ----- workers=0 determinism regression ----------------------------------------------

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct sim_run {
  std::uint64_t digest = 14695981039346656037ULL;
  std::vector<obs::span_record> spans;
};

// One fixed-seed sim experiment: scripted site + cacheable objects, two
// rounds so both the miss and hit paths run. Returns a completion-order
// digest of every response and the node's retained spans.
sim_run run_fixed_sim(bool telemetry) {
  sim::event_loop loop;
  sim::network net{loop};
  sim::three_tier topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  proxy::node_config cfg;
  cfg.telemetry = telemetry;
  proxy::nakika_node& node = dep.create_node(topo.proxy, std::move(cfg));
  dep.map_host("det.org", origin);
  origin.add_static_text("det.org", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "det.org" ];
    p.onResponse = function() {
      var n = 0;
      for (var i = 0; i < 200; i++) { n += i * i; }
      Response.setHeader("X-Work", "" + n);
    };
    p.register();
  )JS");
  for (int i = 0; i < 6; ++i) {
    origin.add_static_text("det.org", "/d" + std::to_string(i), "text/plain",
                           "body-" + std::to_string(i), 600);
  }

  sim_run out;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 6; ++i) {
      http::request r;
      r.url = http::url::parse("http://det.org/d" + std::to_string(i));
      r.client_ip = "10.0.0.1";
      forward_request(net, topo.client, node, r, [&out](http::response resp) {
        out.digest = fnv1a(out.digest, std::to_string(resp.status));
        out.digest = fnv1a(out.digest, resp.headers.get("X-Work").value_or(""));
        out.digest = fnv1a(out.digest, resp.body ? resp.body->str() : "");
      });
      loop.run();
    }
  }
  out.spans = node.recent_spans();
  return out;
}

TEST(TelemetryDeterminism, TelemetryDoesNotPerturbFixedSeedRuns) {
  const sim_run off = run_fixed_sim(false);
  const sim_run on = run_fixed_sim(true);
  // Same seed, same workload: byte-identical responses with telemetry on/off.
  EXPECT_EQ(off.digest, on.digest);
  EXPECT_TRUE(off.spans.empty());
  EXPECT_EQ(on.spans.size(), 12u);
}

TEST(TelemetryDeterminism, SpanStructureIsDeterministic) {
  const sim_run a = run_fixed_sim(true);
  const sim_run b = run_fixed_sim(true);
  EXPECT_EQ(a.digest, b.digest);
  // Span order, attribution, outcome flags, and status are reproducible for
  // a fixed seed. The virtual timestamps are monotone but not bit-identical:
  // the sim bills *measured* script CPU into virtual time (the thrash model
  // needs real costs), so only the event-loop component repeats exactly.
  ASSERT_EQ(a.spans.size(), b.spans.size());
  double prev_start = -1.0;
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].site, b.spans[i].site);
    EXPECT_EQ(a.spans[i].path, b.spans[i].path);
    EXPECT_EQ(a.spans[i].status, b.spans[i].status);
    EXPECT_EQ(a.spans[i].flags, b.spans[i].flags);
    EXPECT_EQ(a.spans[i].ic_hits, b.spans[i].ic_hits);
    EXPECT_GT(a.spans[i].start, prev_start);
    prev_start = a.spans[i].start;
  }
}

// ----- worker-mode span sampling -----------------------------------------------------

// Builds a 1-worker node, serves `total` cache-hit requests against one hot
// object, and returns (span count, total-histogram count).
std::pair<std::size_t, std::uint64_t> run_sampled(std::size_t total,
                                                  std::size_t sample_every) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::node_id origin_host = net.add_node("origin");
  const sim::node_id proxy_host = net.add_node("proxy");
  net.set_route(origin_host, proxy_host, 0.0005);
  proxy::origin_server origin(net, origin_host);
  origin.add_static_text("hot.org", "/obj", "text/plain", "hot body", 3600);

  proxy::node_config cfg;
  cfg.workers = 1;
  cfg.resource_controls = false;
  cfg.trace_sample_every = sample_every;
  proxy::nakika_node node(
      net, proxy_host,
      [&origin](const std::string&) -> proxy::http_endpoint* { return &origin; },
      std::move(cfg));

  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < total; ++i) {
    http::request r;
    r.url = http::url::parse("http://hot.org/obj");
    r.client_ip = "10.0.0.1";
    node.handle(r, [&](http::response resp) {
      EXPECT_EQ(resp.status, 200);
      done.fetch_add(1);
    });
  }
  node.drain();
  EXPECT_EQ(done.load(), total);
  return {node.recent_spans().size(),
          node.stage_latency(obs::stage::total).count};
}

TEST(TelemetrySampling, WorkerModeSamplesSpansButRecordsEveryLatency) {
  // Default-style decimation: every 16th request per worker gets a span, but
  // the end-to-end latency histogram stays exact (it reuses the billing
  // clock, not span stamps).
  const auto [spans_16, count_16] = run_sampled(/*total=*/32, /*sample_every=*/16);
  EXPECT_EQ(spans_16, 2u);  // requests 0 and 16
  EXPECT_EQ(count_16, 32u);

  // sample_every=1 traces every request, like the sim path does.
  const auto [spans_1, count_1] = run_sampled(/*total=*/8, /*sample_every=*/1);
  EXPECT_EQ(spans_1, 8u);
  EXPECT_EQ(count_1, 8u);
}

}  // namespace
}  // namespace nakika
