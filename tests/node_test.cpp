// Integration tests for a single Na Kika node on a simulated LAN: caching,
// nakika.js discovery and negative caching, NKP rendering, throttling and
// termination, logging, and the sandbox pool.
#include <gtest/gtest.h>

#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

namespace nakika::proxy {
namespace {

struct node_fixture : ::testing::Test {
  sim::event_loop loop;
  sim::network net{loop};
  sim::three_tier topo;
  std::unique_ptr<deployment> dep;
  origin_server* origin = nullptr;
  nakika_node* node = nullptr;

  void build(node_config cfg = {}) {
    topo = sim::build_lan(net);
    dep = std::make_unique<deployment>(net);
    origin = &dep->create_origin(topo.origin);
    node = &dep->create_node(topo.proxy, std::move(cfg));
  }

  http::response fetch(const std::string& url, const std::string& client_ip = "10.0.0.1") {
    http::request r;
    r.url = http::url::parse(url);
    r.client_ip = client_ip;
    http::response out;
    bool done = false;
    forward_request(net, topo.client, *node, r, [&](http::response resp) {
      out = std::move(resp);
      done = true;
    });
    loop.run();
    EXPECT_TRUE(done);
    return out;
  }
};

TEST_F(node_fixture, ServesStaticContentAndCaches) {
  build();
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/page", "text/html", "<p>hello</p>", 600);

  const http::response first = fetch("http://site.org/page");
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.body->view(), "<p>hello</p>");
  EXPECT_EQ(origin->requests_served(), 2u);  // page + nakika.js probe

  const http::response second = fetch("http://site.org/page");
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(origin->requests_served(), 2u);  // served from the proxy cache
  EXPECT_GT(node->content_cache().stats().hits, 0u);
}

TEST_F(node_fixture, NakikaHostSuffixStripped) {
  build();
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/x", "text/plain", "ok");
  const http::response r = fetch("http://site.org.nakika.net/x");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body->view(), "ok");
}

TEST_F(node_fixture, SiteScriptTransformsResponses) {
  build();
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "site.org" ];
    p.onResponse = function() {
      Response.setHeader("X-Edge", "nakika");
    };
    p.register();
  )JS");
  origin->add_static_text("site.org", "/doc", "text/plain", "body");

  const http::response r = fetch("http://site.org/doc");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.headers.get("X-Edge"), "nakika");
}

TEST_F(node_fixture, MissingSiteScriptNegativeCached) {
  build();
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/a", "text/plain", "A", 0);  // uncacheable
  fetch("http://site.org/a");
  const std::uint64_t after_first = origin->requests_served();
  fetch("http://site.org/a");
  // Second request refetches /a (uncacheable) but NOT nakika.js: exactly one
  // more origin hit.
  EXPECT_EQ(origin->requests_served(), after_first + 1);
}

TEST_F(node_fixture, WallScriptsEnforceAdmission) {
  node_config cfg;
  cfg.clientwall_source = R"JS(
    var wall = new Policy();
    wall.url = [ "forbidden.org" ];
    wall.onRequest = function() { Request.terminate(403); };
    wall.register();
  )JS";
  build(std::move(cfg));
  dep->map_host("forbidden.org", *origin);
  dep->map_host("open.org", *origin);
  origin->add_static_text("forbidden.org", "/x", "text/plain", "secret");
  origin->add_static_text("open.org", "/x", "text/plain", "public");

  EXPECT_EQ(fetch("http://forbidden.org/x").status, 403);
  EXPECT_EQ(fetch("http://open.org/x").status, 200);
  EXPECT_EQ(node->counters().completed, 2u);  // both pipelines completed
}

TEST_F(node_fixture, NkpPagesRenderedAtEdge) {
  build();
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/hello.nkp", "text/nkp",
                          "Sum: <?nkp Response.write(6 * 7); ?>!");
  const http::response r = fetch("http://site.org/hello.nkp");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body->view(), "Sum: 42!");
  EXPECT_EQ(r.headers.get("Content-Type"), "text/html");
}

TEST_F(node_fixture, NkpSeesRequestQuery) {
  build();
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/greet.nkp", "text/nkp",
                          "Hi <?nkp Response.write(Request.query); ?>", 0);
  EXPECT_EQ(fetch("http://site.org/greet.nkp?alice").body->view(), "Hi alice");
}

TEST_F(node_fixture, ThrottledSiteRejectedWith503) {
  build();
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/x", "text/plain", "x");
  // Force the resource manager into a throttled state for the site.
  node->resources().record("http://site.org", core::resource_kind::cpu, 100.0);
  node->resources().control_phase1(core::resource_kind::cpu, 1.0);
  ASSERT_TRUE(node->resources().is_throttled("http://site.org"));

  int rejected = 0;
  for (int i = 0; i < 20; ++i) {
    if (fetch("http://site.org/x").status == 503) ++rejected;
  }
  EXPECT_GT(rejected, 15);  // contribution ~1.0 -> nearly always rejected
  EXPECT_EQ(node->counters().throttled, static_cast<std::size_t>(rejected));
}

TEST_F(node_fixture, ResourceControlsDisabled) {
  node_config cfg;
  cfg.resource_controls = false;
  build(std::move(cfg));
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/x", "text/plain", "x");
  node->resources().record("http://site.org", core::resource_kind::cpu, 100.0);
  node->resources().control_phase1(core::resource_kind::cpu, 1.0);
  EXPECT_EQ(fetch("http://site.org/x").status, 200);  // admission skipped
}

TEST_F(node_fixture, MonitorTerminatesMemoryHog) {
  node_config cfg;
  cfg.control_interval = 0.2;
  cfg.control_timeout = 0.1;
  cfg.capacities.memory_bytes_per_second = 64 * 1024;  // tiny budget
  cfg.script_limits.heap_bytes = 0;                    // no per-context cap:
  cfg.script_limits.ops = 0;                           // the monitor must act
  build(std::move(cfg));
  dep->map_host("hog.org", *origin);
  origin->add_static_text("hog.org", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "hog.org" ];
    p.onResponse = function() {
      var s = "xxxxxxxxxxxxxxxx";
      for (var i = 0; i < 14; i++) { s = s + s; }   // ~1 MB of churn
      Response.setHeader("X-Len", s.length);
    };
    p.register();
  )JS");
  origin->add_static_text("hog.org", "/x", "text/plain", "x", 0);
  node->start_monitor();

  // Issue a stream of hog requests; the monitor should eventually throttle.
  for (int i = 0; i < 12; ++i) {
    http::request r;
    r.url = http::url::parse("http://hog.org/x?" + std::to_string(i));
    r.client_ip = "10.0.0.1";
    loop.schedule(0.1 * i, [this, r]() {
      forward_request(net, topo.client, *node, r, [](http::response) {});
    });
  }
  loop.run_until(10.0);
  // The monitor must have intervened at least once: requests rejected with
  // server-busy (throttling), or the site's pipelines terminated. By the end
  // of the run the hog has gone quiet, so the *state* is unthrottled again
  // (Fig. 6 restores normal operation) — only the intervention is asserted.
  EXPECT_TRUE(node->counters().throttled > 0 || node->resources().terminations() > 0)
      << "monitor never reacted to the hog";
  EXPECT_GT(node->resources().contribution("http://hog.org",
                                           core::resource_kind::memory),
            0.5);
}

TEST_F(node_fixture, SiteLogsAccumulate) {
  build();
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "site.org" ];
    p.onResponse = function() { Log.write("hit " + Request.path); };
    p.register();
  )JS");
  origin->add_static_text("site.org", "/a", "text/plain", "A");
  origin->add_static_text("site.org", "/b", "text/plain", "B");
  fetch("http://site.org/a");
  fetch("http://site.org/b");
  const auto& log = node->site_log("http://site.org");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "hit /a");
  EXPECT_EQ(log[1], "hit /b");
  EXPECT_TRUE(node->site_log("http://other.org").empty());
}

TEST_F(node_fixture, SandboxPoolReusesContexts) {
  build();
  dep->map_host("site.org", *origin);
  origin->add_static_text("site.org", "/x", "text/plain", "x", 0);
  for (int i = 0; i < 5; ++i) fetch("http://site.org/x?" + std::to_string(i));
  // Sequential requests reuse one sandbox; creation happened once.
  EXPECT_EQ(node->sandboxes_created(), 1u);
}

TEST_F(node_fixture, UnresolvableHostYields502) {
  build();
  EXPECT_EQ(fetch("http://unknown.example/").status, 502);
}

TEST_F(node_fixture, DynamicContentRespectsNoStore) {
  build();
  dep->map_host("site.org", *origin);
  int calls = 0;
  origin->add_dynamic("site.org", "/dyn", [&](const http::request&) {
    origin_server::dynamic_result out;
    ++calls;
    out.response = http::make_response(200, "text/plain",
                                       util::make_body("call" + std::to_string(calls)));
    out.response.headers.set("Cache-Control", "no-store");
    return out;
  });
  EXPECT_EQ(fetch("http://site.org/dyn").body->view(), "call1");
  EXPECT_EQ(fetch("http://site.org/dyn").body->view(), "call2");
}

// --- cooperative caching across nodes --------------------------------------------

TEST(CooperativeCaching, PeerCacheShieldsOrigin) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment geo = sim::build_geo(net, 2);
  deployment dep(net);
  origin_server& origin = dep.create_origin(geo.origin);
  dep.map_host("site.org", origin);
  origin.add_static_text("site.org", "/big", "video/mp4", std::string(100000, 'v'), 3600);

  dep.enable_overlay();
  std::vector<nakika_node*> nodes;
  for (const auto& site : geo.sites) {
    nodes.push_back(&dep.create_node(site.proxy));
  }
  loop.run();  // let overlay joins settle

  auto fetch_via = [&](nakika_node& node, sim::node_id client) {
    http::request r;
    r.url = http::url::parse("http://site.org/big");
    r.client_ip = "10.0.0.1";
    http::response out;
    forward_request(net, client, node, r, [&](http::response resp) { out = std::move(resp); });
    loop.run();
    return out;
  };

  // First fetch through node 0 populates its cache and advertises in the DHT.
  EXPECT_EQ(fetch_via(*nodes[0], geo.sites[0].client).status, 200);
  const std::uint64_t origin_hits = origin.requests_served();

  // A different node should find the copy via the overlay, not the origin.
  EXPECT_EQ(fetch_via(*nodes[1], geo.sites[1].client).status, 200);
  EXPECT_EQ(origin.requests_served(), origin_hits + 1)  // only its nakika.js probe
      << "second node should fetch the body from its peer";
}

TEST(CooperativeCaching, RedirectorSendsClientsToNearbyNodes) {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment geo = sim::build_geo(net, 1);
  deployment dep(net);
  for (const auto& site : geo.sites) dep.create_node(site.proxy);
  util::rng rng(3);
  nakika_node* picked = dep.pick_node(geo.sites[0].client, rng);
  ASSERT_NE(picked, nullptr);
  EXPECT_EQ(picked->host(), geo.sites[0].proxy);
}

}  // namespace
}  // namespace nakika::proxy
