// Concurrency tier for the multi-worker node (run under TSan in CI):
//   - 8-worker x 10k-request stress over mixed cache-hit/miss + script
//     workloads, asserting no lost or duplicated responses and per-URL
//     response correctness,
//   - stats totals equal between the 8-worker and 1-worker runs,
//   - queue-full backpressure rejecting with 503,
//   - throttling penalties enforced across workers,
//   - and the workers=0 determinism regression: a fixed-seed sim run is
//     byte-identical across repetitions (the oracle path the worker mode is
//     measured against).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

namespace nakika::proxy {
namespace {

constexpr std::size_t k_static_urls = 64;

const char* k_site_script = R"JS(
  var p = new Policy();
  p.url = [ "scripted.org" ];
  p.onResponse = function () {
    var n = 0;
    for (var i = 0; i < 500; i++) { n += i; }
    Response.setHeader("X-Work", "" + n);
    HardState.put("seen:" + Request.url, "1");
  };
  p.register();
)JS";

// A self-contained single-node serving environment. The sim network exists
// only to satisfy construction; in worker mode all traffic goes through the
// synchronous direct path.
struct serving_env {
  sim::event_loop loop;
  std::unique_ptr<sim::network> net;
  std::unique_ptr<origin_server> origin;
  std::unique_ptr<nakika_node> node;

  explicit serving_env(node_config cfg) {
    net = std::make_unique<sim::network>(loop);
    const sim::node_id origin_host = net->add_node("origin");
    const sim::node_id proxy_host = net->add_node("proxy");
    net->set_route(origin_host, proxy_host, 0.0005);
    origin = std::make_unique<origin_server>(*net, origin_host);

    for (std::size_t i = 0; i < k_static_urls; ++i) {
      origin->add_static_text("static.org", "/obj/" + std::to_string(i), "text/plain",
                              "body-" + std::to_string(i), 3600);
    }
    origin->add_dynamic("static.org", "/uniq/", [](const http::request& r) {
      origin_server::dynamic_result out;
      out.response =
          http::make_response(200, "text/plain", util::make_body("uniq:" + r.url.path()));
      return out;
    });
    origin->add_static_text("scripted.org", "/nakika.js", "application/javascript",
                            k_site_script, 3600);
    for (std::size_t i = 0; i < k_static_urls; ++i) {
      origin->add_static_text("scripted.org", "/doc/" + std::to_string(i), "text/plain",
                              "doc-" + std::to_string(i), 3600);
    }

    origin_server* raw = origin.get();
    node = std::make_unique<nakika_node>(
        *net, proxy_host, [raw](const std::string&) -> http_endpoint* { return raw; },
        std::move(cfg));
  }
};

std::string url_for(std::size_t i) {
  switch (i % 3) {
    case 0: return "http://static.org/obj/" + std::to_string(i % k_static_urls);
    case 1: return "http://static.org/uniq/" + std::to_string(i);
    default: return "http://scripted.org/doc/" + std::to_string(i % k_static_urls);
  }
}

bool response_matches(std::size_t i, const http::response& resp) {
  if (resp.status != 200 || !resp.body) return false;
  switch (i % 3) {
    case 0:
      return resp.body->view() == "body-" + std::to_string(i % k_static_urls);
    case 1:
      return resp.body->view() == "uniq:/uniq/" + std::to_string(i);
    default:
      return resp.body->view() == "doc-" + std::to_string(i % k_static_urls) &&
             resp.headers.get("X-Work") == "124750";
  }
}

// Runs `total` mixed requests through a node with `workers` workers, driven
// by two producer threads (the queue is MPMC on both ends). Returns the
// node's counters snapshot after everything drained.
util::run_counters run_stress(std::size_t workers, std::size_t total,
                              std::size_t* sandboxes_created = nullptr) {
  node_config cfg;
  cfg.workers = workers;
  cfg.queue_capacity = total + 16;  // no backpressure in this test
  cfg.resource_controls = false;    // counts must be exact, not probabilistic
  serving_env env(std::move(cfg));

  std::vector<std::atomic<int>> completions(total);
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> done_count{0};

  const auto produce = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      http::request r;
      r.url = http::url::parse(url_for(i));
      r.client_ip = "10.0.0.1";
      env.node->handle(r, [&, i](http::response resp) {
        if (!response_matches(i, resp)) mismatches.fetch_add(1);
        completions[i].fetch_add(1);
        done_count.fetch_add(1);
      });
    }
  };
  std::thread producer_a(produce, 0, total / 2);
  std::thread producer_b(produce, total / 2, total);
  producer_a.join();
  producer_b.join();
  env.node->drain();

  EXPECT_EQ(done_count.load(), total) << "lost responses";
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(completions[i].load(), 1) << "lost or duplicated response for request " << i;
  }
  EXPECT_EQ(mismatches.load(), 0u);
  // Cross-worker HardState writes must all have landed (store is locked).
  EXPECT_GT(env.node->store().site_keys("http://scripted.org"), 0u);
  EXPECT_EQ(env.node->pool()->job_exceptions(), 0u);
  if (sandboxes_created != nullptr) *sandboxes_created = env.node->sandboxes_created();
  return env.node->counters();
}

TEST(NodeConcurrency, EightWorkerStressNoLostOrDuplicatedResponses) {
  constexpr std::size_t k_total = 10'000;
  std::size_t sandboxes = 0;
  const util::run_counters c = run_stress(8, k_total, &sandboxes);
  EXPECT_EQ(c.offered, k_total);
  EXPECT_EQ(c.completed, k_total);
  EXPECT_EQ(c.rejected, 0u);
  EXPECT_EQ(c.throttled, 0u);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_EQ(c.terminated, 0u);
  // Per-worker pools reuse sandboxes: at most a handful per worker per site,
  // not one per request.
  EXPECT_GE(sandboxes, 1u);
  EXPECT_LE(sandboxes, 8u * 4u);
}

TEST(NodeConcurrency, StatsTotalsEqualSingleWorkerRun) {
  constexpr std::size_t k_total = 3'000;
  const util::run_counters one = run_stress(1, k_total);
  const util::run_counters eight = run_stress(8, k_total);
  EXPECT_EQ(one.offered, eight.offered);
  EXPECT_EQ(one.completed, eight.completed);
  EXPECT_EQ(one.failed, eight.failed);
  EXPECT_EQ(one.terminated, eight.terminated);
  EXPECT_EQ(one.rejected, eight.rejected);
}

TEST(NodeConcurrency, QueueFullRejectsWith503) {
  node_config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.resource_controls = false;
  serving_env env(std::move(cfg));
  // Make each request slow enough that the single worker cannot drain a
  // burst: a busy loop in the site script.
  env.origin->add_static_text("slow.org", "/nakika.js", "application/javascript", R"JS(
    var p = new Policy();
    p.url = [ "slow.org" ];
    p.onResponse = function () {
      var n = 0;
      for (var i = 0; i < 200000; i++) { n += i; }
      Response.setHeader("X-N", "" + n);
    };
    p.register();
  )JS",
                              3600);
  env.origin->add_static_text("slow.org", "/page", "text/plain", "slow", 0);

  constexpr std::size_t k_burst = 40;
  std::atomic<std::size_t> done_count{0};
  std::atomic<std::size_t> busy_503{0};
  for (std::size_t i = 0; i < k_burst; ++i) {
    http::request r;
    r.url = http::url::parse("http://slow.org/page?i=" + std::to_string(i));
    r.client_ip = "10.0.0.1";
    env.node->handle(r, [&](http::response resp) {
      if (resp.status == 503) busy_503.fetch_add(1);
      done_count.fetch_add(1);
    });
  }
  env.node->drain();

  EXPECT_EQ(done_count.load(), k_burst);  // rejected requests still answered
  const util::run_counters c = env.node->counters();
  EXPECT_EQ(c.offered, k_burst);
  EXPECT_GT(c.rejected, 0u) << "burst never hit the queue bound";
  EXPECT_EQ(c.rejected, busy_503.load());
  EXPECT_EQ(c.completed + c.rejected + c.failed + c.terminated + c.throttled, k_burst);
  EXPECT_EQ(env.node->pool()->rejected(), c.rejected);
}

TEST(NodeConcurrency, ThrottlePenaltyAppliesAcrossWorkers) {
  node_config cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 256;
  cfg.resource_controls = true;
  serving_env env(std::move(cfg));
  env.origin->add_static_text("bad.org", "/x", "text/plain", "never served", 3600);

  // Terminate bad.org via the CONTROL procedure before serving: the penalty
  // blocks admission on every worker (shared atomic state).
  auto& rm = env.node->resources();
  rm.record("http://bad.org", core::resource_kind::cpu, 10.0);
  ASSERT_TRUE(rm.control_phase1(core::resource_kind::cpu, 1.0));
  rm.record("http://bad.org", core::resource_kind::cpu, 10.0);
  const core::control_outcome outcome =
      rm.control_phase2(core::resource_kind::cpu, 1.5);
  ASSERT_EQ(outcome.terminated_site, "http://bad.org");

  constexpr std::size_t k_requests = 100;
  std::atomic<std::size_t> rejected_503{0};
  std::atomic<std::size_t> done_count{0};
  for (std::size_t i = 0; i < k_requests; ++i) {
    http::request r;
    r.url = http::url::parse("http://bad.org/x");
    r.client_ip = "10.0.0.1";
    env.node->handle(r, [&](http::response resp) {
      if (resp.status == 503) rejected_503.fetch_add(1);
      done_count.fetch_add(1);
    });
  }
  env.node->drain();
  EXPECT_EQ(done_count.load(), k_requests);
  EXPECT_EQ(rejected_503.load(), k_requests);
  EXPECT_EQ(env.node->counters().throttled, k_requests);
}

// ----- worker mode vs sim oracle -----------------------------------------------

// Runs one URL through a workers=0 node on the event loop (the oracle path).
http::response sim_fetch(sim::event_loop& loop, sim::network& net, sim::node_id client,
                         nakika_node& node, const std::string& url) {
  http::request r;
  r.url = http::url::parse(url);
  r.client_ip = "10.0.0.1";
  http::response out;
  forward_request(net, client, node, r, [&](http::response resp) { out = std::move(resp); });
  loop.run();
  return out;
}

TEST(NodeConcurrency, WorkerResponsesMatchSimOracle) {
  std::vector<std::string> urls;
  for (std::size_t i = 0; i < 30; ++i) urls.push_back(url_for(i));

  // Oracle: deterministic single-threaded sim path.
  std::vector<std::pair<int, std::string>> oracle;
  {
    node_config cfg;
    cfg.resource_controls = false;
    serving_env env(std::move(cfg));
    const sim::node_id client = env.net->add_node("client");
    env.net->set_route(client, env.node->host(), 0.0005);
    for (const auto& url : urls) {
      const http::response resp =
          sim_fetch(env.loop, *env.net, client, *env.node, url);
      oracle.emplace_back(resp.status, std::string(resp.body ? resp.body->view() : ""));
    }
  }

  // Worker mode must serve byte-identical bodies for the same URLs.
  node_config cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 256;
  cfg.resource_controls = false;
  serving_env env(std::move(cfg));
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> done_count{0};
  for (std::size_t i = 0; i < urls.size(); ++i) {
    http::request r;
    r.url = http::url::parse(urls[i]);
    r.client_ip = "10.0.0.1";
    env.node->handle(r, [&, i](http::response resp) {
      const std::string body(resp.body ? resp.body->view() : "");
      if (resp.status != oracle[i].first || body != oracle[i].second) {
        mismatches.fetch_add(1);
      }
      done_count.fetch_add(1);
    });
  }
  env.node->drain();
  EXPECT_EQ(done_count.load(), urls.size());
  EXPECT_EQ(mismatches.load(), 0u);
}

// ----- workers=0 determinism regression ----------------------------------------

// Digest of a full fixed-seed sim run: every response byte plus the final
// counter state. Two runs must agree exactly — this locks the oracle path's
// behavior before (and after) any parallel-path change.
std::string sim_run_digest(std::size_t shape_table_max = js::context_limits{}.shape_table_max) {
  sim::event_loop loop;
  sim::network net{loop};
  sim::three_tier topo = sim::build_lan(net);
  deployment dep(net);
  origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host("static.org", origin);
  dep.map_host("scripted.org", origin);
  for (std::size_t i = 0; i < k_static_urls; ++i) {
    origin.add_static_text("static.org", "/obj/" + std::to_string(i), "text/plain",
                           "body-" + std::to_string(i), 3600);
  }
  origin.add_static_text("scripted.org", "/nakika.js", "application/javascript",
                         k_site_script, 3600);
  for (std::size_t i = 0; i < k_static_urls; ++i) {
    origin.add_static_text("scripted.org", "/doc/" + std::to_string(i), "text/plain",
                           "doc-" + std::to_string(i), 3600);
  }

  node_config cfg;
  cfg.rng_seed = 1234;
  cfg.capacities.cpu_seconds_per_second = 0.001;  // force throttling activity
  cfg.control_interval = 0.05;
  cfg.control_timeout = 0.02;
  cfg.script_limits.shape_table_max = shape_table_max;
  nakika_node& node = dep.create_node(topo.proxy, std::move(cfg));
  node.start_monitor();

  std::string digest;
  for (std::size_t i = 0; i < 300; ++i) {
    http::request r;
    r.url = http::url::parse(url_for(i % 90));
    r.client_ip = "10.0.0.1";
    http::response out;
    forward_request(net, topo.client, node, r, [&](http::response resp) {
      out = std::move(resp);
    });
    loop.run_until(loop.now() + 0.2);
    digest += std::to_string(out.status);
    digest += '|';
    digest += out.headers.get_or("X-Work", "-");
    digest += '|';
    if (out.body) digest += out.body->str();
    digest += '\n';
  }
  const util::run_counters c = node.counters();
  digest += "offered=" + std::to_string(c.offered);
  digest += " completed=" + std::to_string(c.completed);
  digest += " throttled=" + std::to_string(c.throttled);
  digest += " terminated=" + std::to_string(c.terminated);
  digest += " failed=" + std::to_string(c.failed);
  digest += " terminations=" + std::to_string(node.resources().terminations());
  digest += " rejections=" + std::to_string(node.resources().throttle_rejections());
  return digest;
}

TEST(NodeConcurrency, SimPathDeterministicWithWorkersDisabled) {
  const std::string first = sim_run_digest();
  const std::string second = sim_run_digest();
  EXPECT_EQ(first, second);
  // The run exercised real traffic, not a degenerate empty loop.
  EXPECT_GT(first.size(), 300u * 3u);
}

// The shape/IC layer is an accelerator, never semantics: the same fixed-seed
// run with the shape tables disabled (dictionary mode everywhere, the
// pre-shape caching behavior) must produce a byte-identical digest — every
// response byte, billing counter, and throttle decision included.
TEST(NodeConcurrency, ShapesOnVsOffDigestByteIdentical) {
  const std::string shaped = sim_run_digest();
  const std::string dictionary = sim_run_digest(/*shape_table_max=*/0);
  EXPECT_EQ(shaped, dictionary);
}

// ----- work-stealing pool unit tier ---------------------------------------------

// queue_depth() is the admission count; the per-ring depths plus the
// overflow deque must account for exactly the same jobs, and the peak
// watermark must have seen the full backlog.
TEST(WorkerPool, DepthAggregationAcrossRingsAndOverflow) {
  core::worker_pool_config cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  core::worker_pool pool(cfg);

  // Pin both workers inside long-running jobs so later submits stay queued.
  std::atomic<bool> release{false};
  std::atomic<int> running{0};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.try_submit([&](core::worker_context&) {
      running.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    }));
  }
  while (running.load() < 2) std::this_thread::yield();

  constexpr std::size_t k_backlog = 40;
  for (std::size_t i = 0; i < k_backlog; ++i) {
    ASSERT_TRUE(pool.try_submit([](core::worker_context&) {}, /*affinity=*/i));
  }
  EXPECT_EQ(pool.queue_depth(), k_backlog);
  EXPECT_EQ(pool.queue_depth(0) + pool.queue_depth(1) + pool.overflow_depth(), k_backlog)
      << "per-ring depths plus overflow must equal the aggregate";
  EXPECT_GE(pool.peak_queue_depth(), k_backlog);
  EXPECT_LE(pool.peak_queue_depth(), k_backlog + 2);  // + the two pinned jobs

  release.store(true);
  pool.drain();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.queue_depth(0) + pool.queue_depth(1) + pool.overflow_depth(), 0u);
  EXPECT_EQ(pool.executed(), k_backlog + 2);
  EXPECT_EQ(pool.job_exceptions(), 0u);
}

// Deterministic steal scenario: one worker is pinned inside a job, every
// subsequent submit targets the pinned worker's ring — the only way the idle
// sibling can run them is by stealing.
TEST(WorkerPool, IdleWorkerStealsFromPinnedSiblingsRing) {
  core::worker_pool_config cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 128;
  core::worker_pool pool(cfg);

  std::atomic<bool> release{false};
  std::atomic<int> pinned_index{-1};
  ASSERT_TRUE(pool.try_submit([&](core::worker_context& wc) {
    pinned_index.store(static_cast<int>(wc.index()));
    while (!release.load()) std::this_thread::yield();
  }));
  while (pinned_index.load() < 0) std::this_thread::yield();
  const auto hot = static_cast<std::uint64_t>(pinned_index.load());
  const std::size_t thief = 1 - static_cast<std::size_t>(hot);

  constexpr std::size_t k_jobs = 32;
  std::atomic<std::size_t> ran{0};
  for (std::size_t i = 0; i < k_jobs; ++i) {
    ASSERT_TRUE(pool.try_submit([&ran](core::worker_context&) { ran.fetch_add(1); }, hot));
  }
  while (ran.load() < k_jobs) std::this_thread::yield();
  EXPECT_GE(pool.steals(thief), k_jobs)
      << "every job the idle sibling ran had to come from the hot ring";
  EXPECT_GE(pool.total_steals(), k_jobs);

  release.store(true);
  pool.drain();
  EXPECT_EQ(pool.executed(), k_jobs + 1);
  EXPECT_EQ(pool.job_exceptions(), 0u);
}

// 8-worker stress with skewed affinities and multi-threaded submitters (run
// under TSan in CI): every job runs exactly once, nothing is lost to a ring,
// the overflow path, or a steal, and the queue fully drains.
TEST(WorkerPool, EightWorkerSkewedAffinityStressRunsEveryJobOnce) {
  core::worker_pool_config cfg;
  cfg.workers = 8;
  cfg.queue_capacity = 512;
  core::worker_pool pool(cfg);

  constexpr std::size_t k_jobs = 20'000;
  std::vector<std::atomic<int>> runs(k_jobs);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < k_jobs; i += 4) {
        // Zipf-ish skew: most jobs share a handful of affinities.
        const std::uint64_t affinity = (i % 16 == 0) ? i : i % 3;
        while (!pool.try_submit([&runs, i](core::worker_context&) {
          runs[i].fetch_add(1);
        }, affinity)) {
          std::this_thread::yield();  // full queue: retry (backpressure)
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.drain();

  for (std::size_t i = 0; i < k_jobs; ++i) {
    ASSERT_EQ(runs[i].load(), 1) << "job " << i << " lost or duplicated";
  }
  EXPECT_EQ(pool.executed(), k_jobs);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.overflow_depth(), 0u);
  EXPECT_EQ(pool.job_exceptions(), 0u);
}

}  // namespace
}  // namespace nakika::proxy
