#include <gtest/gtest.h>

#include "cache/http_cache.hpp"
#include "cache/script_cache.hpp"

namespace nakika::cache {
namespace {

http::response cacheable(std::string body, std::int64_t max_age = 100) {
  http::response r = http::make_response(200, "text/plain", util::make_body(body));
  r.headers.set("Cache-Control", "max-age=" + std::to_string(max_age));
  return r;
}

TEST(HttpCache, HitUntilExpiry) {
  http_cache c;
  EXPECT_TRUE(c.put("http://a/x", cacheable("v", 100), 0));
  ASSERT_TRUE(c.get("http://a/x", 50).has_value());
  EXPECT_EQ(c.get("http://a/x", 50)->body->view(), "v");
  EXPECT_FALSE(c.get("http://a/x", 100).has_value());  // expired exactly at t=100
  EXPECT_EQ(c.stats().expirations, 1u);
}

TEST(HttpCache, UncacheableRejected) {
  http_cache c;
  http::response r = http::make_response(200, "text/plain", util::make_body("x"));
  r.headers.set("Cache-Control", "no-store");
  EXPECT_FALSE(c.put("http://a/ns", r, 0));
  EXPECT_EQ(c.entry_count(), 0u);
}

TEST(HttpCache, PutWithExplicitExpiry) {
  http_cache c;
  http::response r = http::make_response(200, "text/plain", util::make_body("p"));
  c.put_with_expiry("http://a/p", r, 500, 0);
  EXPECT_TRUE(c.get("http://a/p", 499).has_value());
  EXPECT_FALSE(c.get("http://a/p", 500).has_value());
  // Expiry in the past is a no-op.
  c.put_with_expiry("http://a/past", r, 5, 10);
  EXPECT_EQ(c.entry_count(), 0u);
}

TEST(HttpCache, LruEvictionUnderPressure) {
  http_cache c(3000);  // tiny capacity
  for (int i = 0; i < 5; ++i) {
    c.put_with_expiry("http://a/" + std::to_string(i),
                      http::make_response(200, "t", util::make_body(std::string(500, 'x'))),
                      1000, 0);
  }
  EXPECT_LE(c.bytes_used(), 3000u);
  EXPECT_GT(c.stats().evictions, 0u);
  // Most recent entries survive.
  EXPECT_TRUE(c.get("http://a/4", 1).has_value());
  EXPECT_FALSE(c.get("http://a/0", 1).has_value());
}

TEST(HttpCache, TouchKeepsHotEntriesAlive) {
  // Each entry charges body + 256 bytes overhead = 756; two fit in 2000,
  // three do not, so inserting "new" must evict exactly one entry.
  http_cache c(2000);
  c.put_with_expiry("http://a/hot",
                    http::make_response(200, "t", util::make_body(std::string(500, 'h'))),
                    1000, 0);
  c.put_with_expiry("http://a/cold",
                    http::make_response(200, "t", util::make_body(std::string(500, 'c'))),
                    1000, 0);
  ASSERT_TRUE(c.get("http://a/hot", 1).has_value());  // touch hot
  c.put_with_expiry("http://a/new",
                    http::make_response(200, "t", util::make_body(std::string(500, 'n'))),
                    1000, 0);
  EXPECT_TRUE(c.get("http://a/hot", 2).has_value());
  EXPECT_FALSE(c.get("http://a/cold", 2).has_value());  // LRU victim
}

TEST(HttpCache, OversizedBodyNeverStored) {
  http_cache c(1000);
  c.put_with_expiry("http://a/big",
                    http::make_response(200, "t", util::make_body(std::string(5000, 'x'))),
                    1000, 0);
  EXPECT_EQ(c.entry_count(), 0u);
}

TEST(HttpCache, RemoveAndClear) {
  http_cache c;
  c.put("http://a/x", cacheable("v"), 0);
  EXPECT_TRUE(c.remove("http://a/x"));
  EXPECT_FALSE(c.remove("http://a/x"));
  c.put("http://a/y", cacheable("v"), 0);
  c.clear();
  EXPECT_EQ(c.entry_count(), 0u);
  EXPECT_EQ(c.bytes_used(), 0u);
}

TEST(HttpCache, ReplaceUpdatesAccounting) {
  http_cache c;
  c.put_with_expiry("http://a/x", http::make_response(200, "t", util::make_body("small")),
                    1000, 0);
  const std::size_t before = c.bytes_used();
  c.put_with_expiry("http://a/x",
                    http::make_response(200, "t", util::make_body(std::string(1000, 'L'))),
                    1000, 0);
  EXPECT_EQ(c.entry_count(), 1u);
  EXPECT_GT(c.bytes_used(), before);
  EXPECT_EQ(c.get("http://a/x", 1)->body_size(), 1000u);
}

TEST(HttpCache, HitRateStats) {
  http_cache c;
  c.put("http://a/x", cacheable("v"), 0);
  (void)c.get("http://a/x", 1);
  (void)c.get("http://a/missing", 1);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.5);
}

TEST(TtlCache, ExpiresEntries) {
  ttl_cache<int> c;
  c.put("k", 7, 100);
  EXPECT_EQ(c.get("k", 50), 7);
  EXPECT_FALSE(c.get("k", 100).has_value());
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(TtlCache, RemoveAndOverwrite) {
  ttl_cache<std::string> c;
  c.put("k", "v1", 100);
  c.put("k", "v2", 200);
  EXPECT_EQ(c.get("k", 150), "v2");
  EXPECT_TRUE(c.remove("k"));
  EXPECT_FALSE(c.remove("k"));
}

TEST(NegativeCache, RemembersAbsenceWithTtl) {
  negative_cache nc(300);
  EXPECT_FALSE(nc.contains("http://a/nakika.js", 0));
  nc.insert("http://a/nakika.js", 0);
  EXPECT_TRUE(nc.contains("http://a/nakika.js", 299));
  EXPECT_FALSE(nc.contains("http://a/nakika.js", 300));
  EXPECT_EQ(nc.size(), 0u);  // lazily pruned
}

TEST(NegativeCache, RemoveRevalidates) {
  negative_cache nc(300);
  nc.insert("k", 0);
  EXPECT_TRUE(nc.remove("k"));
  EXPECT_FALSE(nc.contains("k", 1));
  EXPECT_THROW(negative_cache(0), std::invalid_argument);
}

TEST(TtlCache, BoundedEvictsNearestExpiry) {
  ttl_cache<int> c(3);
  c.put("soon", 1, 100);
  c.put("later", 2, 500);
  c.put("latest", 3, 900);
  c.put("overflow", 4, 700);  // evicts "soon" (closest to expiry)
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.get("soon", 0).has_value());
  EXPECT_EQ(c.get("later", 0), 2);
  EXPECT_EQ(c.get("latest", 0), 3);
  EXPECT_EQ(c.get("overflow", 0), 4);
}

TEST(TtlCache, OverwriteDoesNotEvict) {
  ttl_cache<int> c(2);
  c.put("a", 1, 100);
  c.put("b", 2, 200);
  c.put("a", 3, 300);  // update in place, no eviction
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.get("a", 0), 3);
  EXPECT_EQ(c.get("b", 0), 2);
}

TEST(TtlCache, PurgeExpiredSweepsStaleKeys) {
  // The bug this guards against: expired entries were only erased when their
  // exact key was re-queried, so never-requeried keys leaked forever.
  ttl_cache<int> c(64);
  for (int i = 0; i < 10; ++i) c.put("stale" + std::to_string(i), i, 100);
  for (int i = 0; i < 5; ++i) c.put("fresh" + std::to_string(i), i, 1000);
  EXPECT_EQ(c.size(), 15u);
  EXPECT_EQ(c.purge_expired(500), 10u);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.get("fresh0", 500), 0);
}

TEST(NegativeCache, BoundedAndPurgeable) {
  negative_cache nc(100, 2);
  nc.insert("a", 0);   // expires 100
  nc.insert("b", 50);  // expires 150
  nc.insert("c", 60);  // evicts "a"
  EXPECT_EQ(nc.size(), 2u);
  EXPECT_FALSE(nc.contains("a", 61));
  EXPECT_TRUE(nc.contains("b", 61));
  EXPECT_TRUE(nc.contains("c", 61));
  EXPECT_EQ(nc.purge_expired(155), 1u);  // "b" swept
  EXPECT_EQ(nc.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  lru_cache<int> c(2);
  c.put("a", 1);
  c.put("b", 2);
  EXPECT_EQ(c.get("a"), 1);  // a is now most recent
  c.put("c", 3);                        // evicts b
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.get("b").has_value());
  EXPECT_EQ(c.get("a"), 1);
  EXPECT_EQ(c.get("c"), 3);
  EXPECT_EQ(c.hits(), 3u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, OverwriteRefreshes) {
  lru_cache<std::string> c(2);
  c.put("a", "v1");
  c.put("b", "v2");
  c.put("a", "v3");  // refresh, a becomes most recent
  c.put("c", "v4");  // evicts b
  EXPECT_EQ(c.get("a"), "v3");
  EXPECT_FALSE(c.get("b").has_value());
  EXPECT_EQ(c.get("c"), "v4");
}

}  // namespace
}  // namespace nakika::cache
