#include <gtest/gtest.h>

#include "state/local_store.hpp"
#include "state/messaging.hpp"
#include "state/replication.hpp"

namespace nakika::state {
namespace {

// ----- local store ------------------------------------------------------------

TEST(LocalStore, PutGetRemove) {
  local_store store;
  EXPECT_TRUE(store.put("siteA", "k", "v"));
  EXPECT_EQ(store.get("siteA", "k"), "v");
  EXPECT_FALSE(store.get("siteB", "k").has_value());  // partitioned
  EXPECT_TRUE(store.remove("siteA", "k"));
  EXPECT_FALSE(store.remove("siteA", "k"));
}

TEST(LocalStore, QuotaEnforcedPerSite) {
  local_store store(100);
  EXPECT_TRUE(store.put("a", "k1", std::string(40, 'x')));   // 42 bytes
  EXPECT_TRUE(store.put("a", "k2", std::string(40, 'x')));   // 84 bytes
  EXPECT_FALSE(store.put("a", "k3", std::string(40, 'x')));  // would exceed
  // Another site has its own quota.
  EXPECT_TRUE(store.put("b", "k1", std::string(40, 'x')));
  EXPECT_EQ(store.site_keys("a"), 2u);
}

TEST(LocalStore, OverwriteReleasesOldBytes) {
  local_store store(100);
  EXPECT_TRUE(store.put("a", "k", std::string(80, 'x')));
  EXPECT_TRUE(store.put("a", "k", std::string(50, 'y')));  // frees 81, uses 51
  EXPECT_EQ(store.site_bytes("a"), 51u);
  EXPECT_TRUE(store.put("a", "k2", std::string(40, 'z')));
}

TEST(LocalStore, ScanByPrefix) {
  local_store store;
  store.put("a", "user:1", "x");
  store.put("a", "user:2", "y");
  store.put("a", "log:1", "z");
  const auto users = store.scan("a", "user:");
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].first, "user:1");
  EXPECT_EQ(store.scan("a", "").size(), 3u);
  EXPECT_TRUE(store.scan("missing", "x").empty());
}

TEST(LocalStore, ClearSite) {
  local_store store;
  store.put("a", "k", "v");
  store.clear_site("a");
  EXPECT_EQ(store.site_bytes("a"), 0u);
  EXPECT_FALSE(store.get("a", "k").has_value());
}

// ----- messaging fixture ---------------------------------------------------------

struct bus_fixture : ::testing::Test {
  sim::event_loop loop;
  sim::network net{loop};
  sim::node_id a = 0;
  sim::node_id b = 0;
  sim::node_id c = 0;

  void SetUp() override {
    a = net.add_node("a");
    b = net.add_node("b");
    c = net.add_node("c");
    net.set_route(a, b, 0.010);
    net.set_route(a, c, 0.010);
    net.set_route(b, c, 0.010);
  }
};

TEST_F(bus_fixture, PublishReachesAllSubscribers) {
  message_bus bus(net);
  int received_b = 0;
  int received_c = 0;
  bus.subscribe("t", b, [&](std::uint64_t, const std::string&, const std::string& p) {
    EXPECT_EQ(p, "hello");
    ++received_b;
  });
  bus.subscribe("t", c, [&](std::uint64_t, const std::string&, const std::string&) {
    ++received_c;
  });
  bus.subscribe("other", c,
                [&](std::uint64_t, const std::string&, const std::string&) { FAIL(); });
  bool acked = false;
  bus.publish(a, "t", "hello", [&] { acked = true; });
  loop.run();
  EXPECT_EQ(received_b, 1);
  EXPECT_EQ(received_c, 1);
  EXPECT_TRUE(acked);
  EXPECT_EQ(bus.stats().deliveries, 2u);
}

TEST_F(bus_fixture, NoSubscribersStillAcks) {
  message_bus bus(net);
  bool acked = false;
  bus.publish(a, "empty", "x", [&] { acked = true; });
  loop.run();
  EXPECT_TRUE(acked);
}

TEST_F(bus_fixture, UnsubscribeStopsDelivery) {
  message_bus bus(net);
  int received = 0;
  const auto sub = bus.subscribe(
      "t", b, [&](std::uint64_t, const std::string&, const std::string&) { ++received; });
  bus.publish(a, "t", "one");
  loop.run();
  bus.unsubscribe(sub);
  bus.publish(a, "t", "two");
  loop.run();
  EXPECT_EQ(received, 1);
  EXPECT_THROW(bus.unsubscribe(999), std::invalid_argument);
}

TEST_F(bus_fixture, LossyLinkRetransmitsUntilDelivered) {
  message_bus bus(net, /*loss_probability=*/0.5, /*retry_timeout=*/0.1);
  int received = 0;
  bus.subscribe("t", b,
                [&](std::uint64_t, const std::string&, const std::string&) { ++received; });
  for (int i = 0; i < 20; ++i) bus.publish(a, "t", "m" + std::to_string(i));
  loop.run();
  EXPECT_EQ(received, 20);  // every message eventually arrives
  EXPECT_GT(bus.stats().retransmissions, 0u);
}

TEST_F(bus_fixture, ValidatesConfiguration) {
  EXPECT_THROW(message_bus(net, 1.0), std::invalid_argument);
  EXPECT_THROW(message_bus(net, -0.1), std::invalid_argument);
  EXPECT_THROW(message_bus(net, 0.0, 0.5, 0), std::invalid_argument);
}

// ----- replication ------------------------------------------------------------------

struct replication_fixture : bus_fixture {
  local_store store_a{0};
  local_store store_b{0};
  local_store store_c{0};
  message_bus bus{net};
};

TEST_F(replication_fixture, BroadcastPropagatesToAllReplicas) {
  replica ra(store_a, bus, a, "node-a", "site", replication_strategy::broadcast);
  replica rb(store_b, bus, b, "node-b", "site", replication_strategy::broadcast);
  replica rc(store_c, bus, c, "node-c", "site", replication_strategy::broadcast);

  bool durable = false;
  ra.put("user:1", "alice", [&] { durable = true; });
  loop.run();
  EXPECT_TRUE(durable);
  EXPECT_EQ(ra.get("user:1"), "alice");
  EXPECT_EQ(rb.get("user:1"), "alice");
  EXPECT_EQ(rc.get("user:1"), "alice");
}

TEST_F(replication_fixture, LastWriterWinsOnConcurrentWrites) {
  replica ra(store_a, bus, a, "node-a", "site", replication_strategy::broadcast);
  replica rb(store_b, bus, b, "node-b", "site", replication_strategy::broadcast);

  // Same virtual instant: the tie breaks on the writer name ("node-b" wins
  // over "node-a" deterministically).
  ra.put("k", "from-a");
  rb.put("k", "from-b");
  loop.run();
  EXPECT_EQ(ra.get("k"), rb.get("k"));  // convergence
  EXPECT_EQ(*ra.get("k"), "from-b");
}

TEST_F(replication_fixture, CustomConflictResolver) {
  replica ra(store_a, bus, a, "node-a", "site", replication_strategy::broadcast);
  replica rb(store_b, bus, b, "node-b", "site", replication_strategy::broadcast);
  const conflict_resolver merge = [](const std::string& mine, const std::string& theirs) {
    return mine < theirs ? mine + "+" + theirs : theirs + "+" + mine;
  };
  ra.set_conflict_resolver(merge);
  rb.set_conflict_resolver(merge);

  ra.put("k", "aaa");
  rb.put("k", "bbb");
  loop.run();
  EXPECT_EQ(ra.get("k"), rb.get("k"));
  EXPECT_EQ(*ra.get("k"), "aaa+bbb");
}

TEST_F(replication_fixture, OriginPrimaryOrdersWrites) {
  replica primary(store_a, bus, a, "origin", "site", replication_strategy::origin_primary,
                  /*is_primary=*/true);
  replica edge1(store_b, bus, b, "edge-1", "site", replication_strategy::origin_primary);
  replica edge2(store_c, bus, c, "edge-2", "site", replication_strategy::origin_primary);

  bool ordered = false;
  edge1.put("k", "v-edge", [&] { ordered = true; });
  loop.run();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(primary.get("k"), "v-edge");
  EXPECT_EQ(edge1.get("k"), "v-edge");
  EXPECT_EQ(edge2.get("k"), "v-edge");
}

TEST_F(replication_fixture, DuplicateMessagesDeduplicated) {
  message_bus lossy(net, 0.4, 0.05);
  replica ra(store_a, lossy, a, "node-a", "site", replication_strategy::broadcast);
  replica rb(store_b, lossy, b, "node-b", "site", replication_strategy::broadcast);
  for (int i = 0; i < 10; ++i) {
    ra.put("k" + std::to_string(i), "v" + std::to_string(i));
  }
  loop.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rb.get("k" + std::to_string(i)), "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace nakika::state
