// Cycle-collector tier. The script heap is shared_ptr-managed, so these
// tests target exactly what refcounting cannot free: reference cycles.
//   - object↔object property cycles, escaped-closure cycles, and
//     self-capture cell cycles reclaimed BEFORE context teardown, in both
//     engines (tree-walker closes cycles through environments, the VM
//     through capture cells — different shapes, same collector),
//   - watermark-triggered collections keeping a hot loop's heap flat,
//   - inline caches being weak: sweeping an object clears its IC entries,
//   - the tracked-node registry staying O(live) over 10k create/drop
//     iterations (the fn_registry_ unbounded-growth regression),
//   - a 10k-request pooled-sandbox soak whose live heap plateaus (this is
//     the LSan canary for the pool-return reclaim path),
//   - the workers=0 fixed-seed digest being byte-identical with the
//     collector on vs off (GC must be invisible to script semantics,
//     scheduling, and billing),
//   - an 8-worker stress run with a tiny watermark (TSan coverage for
//     collections racing the monitor/kill machinery).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sandbox.hpp"
#include "js/interpreter.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

namespace nakika {
namespace {

using js::context;
using js::context_limits;
using js::engine_kind;
using js::eval_script;
using js::gc_cycle_result;

// Builds `n` dead cycles of the given JS shape with the watermark disabled,
// then runs one explicit collection and reports before/after heap plus the
// cycle result. The loop variables are deliberately globals (top-level var),
// so only the final iteration's nodes stay reachable.
struct collect_probe {
  std::size_t heap_before = 0;
  std::size_t heap_after = 0;
  gc_cycle_result result;
};

collect_probe run_and_collect(const std::string& source, engine_kind engine) {
  context_limits limits;
  limits.gc_watermark = 0;  // explicit collect() only
  collect_probe out;
  context ctx(limits);
  eval_script(ctx, source, "<gc>", engine);
  out.heap_before = ctx.heap_used();
  out.result = ctx.gc().collect();
  out.heap_after = ctx.heap_used();
  return out;
}

const char* k_object_cycle = R"JS(
  for (var i = 0; i < 200; i++) {
    var a = { n: i };
    var b = { n: -i };
    a.next = b;
    b.prev = a;
  }
  result = 1;
)JS";

const char* k_closure_cycle = R"JS(
  function make(i) {
    var box = { n: i };
    // box -> fn -> (closure env / capture cell) -> box
    box.fn = function () { return box; };
    return 0;
  }
  for (var i = 0; i < 200; i++) { make(i); }
  result = 1;
)JS";

const char* k_self_capture_cycle = R"JS(
  function make(i) {
    var f = null;
    // f's cell (or env slot) holds the function that captured it.
    f = function () { return f; };
    return 0;
  }
  for (var i = 0; i < 200; i++) { make(i); }
  result = 1;
)JS";

class GcCycles : public ::testing::TestWithParam<engine_kind> {};

TEST_P(GcCycles, ObjectPropertyCyclesReclaimedBeforeTeardown) {
  const collect_probe p = run_and_collect(k_object_cycle, GetParam());
  // 199 dead pairs; only the last {a, b} pair is still rooted by globals.
  EXPECT_GE(p.result.objects_collected, 2u * 199u);
  EXPECT_LT(p.heap_after, p.heap_before);
  EXPECT_GT(p.result.bytes_reclaimed, 0u);
}

TEST_P(GcCycles, EscapedClosureCyclesReclaimedBeforeTeardown) {
  const collect_probe p = run_and_collect(k_closure_cycle, GetParam());
  // Each dead iteration leaks box + the closure's function object (plus its
  // prototype object) — all unreachable, all cyclic.
  EXPECT_GE(p.result.objects_collected, 199u);
  EXPECT_LT(p.heap_after, p.heap_before);
  if (GetParam() == engine_kind::tree_walker) {
    EXPECT_GT(p.result.envs_collected, 0u);
  } else {
    EXPECT_GT(p.result.cells_collected + p.result.envs_collected, 0u);
  }
}

TEST_P(GcCycles, SelfCaptureCellCyclesReclaimedBeforeTeardown) {
  const collect_probe p = run_and_collect(k_self_capture_cycle, GetParam());
  // The tree-walker's break_dead_closure_cycles fast path reclaims this shape
  // on scope exit (by design — the collector is the backstop, not the only
  // mechanism), so heap_before may already be at the live-set baseline there.
  // Either way, after one collection nothing of the 200 cycles may remain.
  if (p.result.objects_collected != 0) {
    EXPECT_GE(p.result.objects_collected, 199u);
    EXPECT_LT(p.heap_after, p.heap_before);
  }
  EXPECT_LE(p.heap_after, 512u);
}

TEST_P(GcCycles, SecondCollectionIsIdempotent) {
  context_limits limits;
  limits.gc_watermark = 0;
  context ctx(limits);
  eval_script(ctx, k_object_cycle, "<gc>", GetParam());
  (void)ctx.gc().collect();
  const std::size_t settled = ctx.heap_used();
  const gc_cycle_result again = ctx.gc().collect();
  EXPECT_EQ(again.objects_collected, 0u);
  EXPECT_EQ(ctx.heap_used(), settled);
}

TEST_P(GcCycles, LiveCyclesSurviveCollection) {
  context_limits limits;
  limits.gc_watermark = 0;
  context ctx(limits);
  // One reachable cycle: the collector must count the global reference as
  // external and keep the whole loop alive and intact.
  eval_script(ctx, R"JS(
    var ring = { name: "head" };
    ring.next = { name: "tail", prev: ring };
    result = 1;
  )JS",
              "<gc>", GetParam());
  (void)ctx.gc().collect();
  eval_script(ctx, "result = ring.next.prev.name + '/' + ring.next.name;", "<gc>",
              GetParam());
  EXPECT_EQ(ctx.global()->get("result").to_string(), "head/tail");
}

INSTANTIATE_TEST_SUITE_P(BothEngines, GcCycles,
                         ::testing::Values(engine_kind::tree_walker,
                                           engine_kind::bytecode),
                         [](const ::testing::TestParamInfo<engine_kind>& info) {
                           return info.param == engine_kind::tree_walker ? "TreeWalker"
                                                                         : "Bytecode";
                         });

// ----- watermark trigger ---------------------------------------------------------

TEST(GcWatermark, CollectionsFireMidRunAndBoundTheHeap) {
  const char* churn = R"JS(
    for (var i = 0; i < 5000; i++) {
      var a = { n: i };
      a.self = a;
    }
    result = 1;
  )JS";

  context_limits off;
  off.gc_watermark = 0;
  context leaky(off);
  eval_script(leaky, churn, "<gc>", engine_kind::bytecode);
  const std::size_t leaked = leaky.heap_used();

  context_limits on;
  on.gc_watermark = 256;
  on.gc_slice = 64;
  context collected(on);
  eval_script(collected, churn, "<gc>", engine_kind::bytecode);
  EXPECT_GE(collected.gc().collections_total(), 1u);
  // Same program, collector armed: the live heap must stay far below the
  // leak-everything baseline (plateau, not proportional growth).
  EXPECT_LT(collected.heap_used(), leaked / 4);
  const js::gc_run_stats& rs = collected.gc().run_stats();
  EXPECT_EQ(rs.collections, collected.gc().collections_total());
  EXPECT_GT(rs.bytes_reclaimed, 0u);
  EXPECT_FALSE(rs.pauses.empty());
}

// ----- inline caches are weak ----------------------------------------------------

TEST(GcInlineCache, SweptObjectEntriesClearedAndNextAccessMisses) {
  context_limits limits;
  limits.gc_watermark = 0;
  context ctx(limits);
  // `probe` warms a property-load IC on t; t then becomes cyclic garbage.
  eval_script(ctx, R"JS(
    function probe(o) { return o.x + o.x + o.x; }
    var t = { x: 1 };
    t.self = t;
    probe(t);
    probe(t);
    t = null;
    result = 1;
  )JS",
              "<gc>", engine_kind::bytecode);
  ASSERT_GT(ctx.ic_hits(), 0u) << "test premise: the IC never warmed";

  const gc_cycle_result r = ctx.gc().collect();
  EXPECT_GT(r.objects_collected, 0u);
  EXPECT_GE(r.ic_entries_cleared, 1u) << "swept object left stale IC entries behind";

  // The same call site must take the miss path (and stay correct) now that
  // its cached target is gone.
  const std::uint64_t misses_before = ctx.ic_misses();
  eval_script(ctx, "result = probe({ x: 2, self: null });", "<gc>",
              engine_kind::bytecode);
  EXPECT_GT(ctx.ic_misses(), misses_before);
  EXPECT_EQ(ctx.global()->get("result").to_number(), 6.0);
}

// ----- registry stays O(live) ----------------------------------------------------

TEST(GcRegistry, StaysBoundedOverTenThousandCreateDropIterations) {
  context_limits limits;
  limits.gc_watermark = 256;
  limits.gc_slice = 64;
  context ctx(limits);
  // Every iteration mints a closure, its prototype object, a cyclic object,
  // and (in the VM) a capture cell — then drops them all.
  eval_script(ctx, R"JS(
    for (var i = 0; i < 10000; i++) {
      var f = (function () {
        var o = { n: i };
        o.self = o;
        return function () { return o; };
      })();
    }
    result = 1;
  )JS",
              "<gc>", engine_kind::bytecode);
  EXPECT_GE(ctx.gc().collections_total(), 10u);
  // Registry footprint is bounded by live set + at most one watermark's worth
  // of fresh allocations (each allocation contributes a handful of tracked
  // nodes), NOT by the 10k iterations.
  EXPECT_LT(ctx.gc().registry_size(), 8u * 256u);
  const gc_cycle_result final_pass = ctx.gc().collect();
  (void)final_pass;
  EXPECT_LT(ctx.gc().registry_size(), 64u);
}

TEST(GcRegistry, ShapeTableStaysBoundedUnderLayoutChurn) {
  // Every iteration builds an object with a DISTINCT property sequence, so a
  // naive transition tree would intern one chain per iteration and grow
  // without bound. The table cap + post-sweep compaction must keep the
  // interned-shape count at O(bound), not O(iterations).
  context_limits limits;
  limits.gc_watermark = 256;
  limits.gc_slice = 64;
  limits.shape_table_max = 128;
  context ctx(limits);
  eval_script(ctx, R"JS(
    for (var i = 0; i < 3000; i++) {
      var o = {};
      o['u' + i] = i;      // unique first key: a fresh transition chain
      o['w' + i] = i + 1;
      o.last = i;
    }
    result = 1;
  )JS",
              "<gc>", engine_kind::bytecode);
  EXPECT_GE(ctx.gc().collections_total(), 1u);
  EXPECT_LE(ctx.shapes_live(), limits.shape_table_max);
  // The cap was actually hit (the workload was shape-hostile, and overflowing
  // objects recorded their fall back to dictionary mode).
  EXPECT_GT(ctx.shape_dict_fallbacks_run(), 0u);
  EXPECT_EQ(ctx.global()->get("result").to_number(), 1.0);
}

// ----- pooled-sandbox soak -------------------------------------------------------

TEST(GcPool, TenThousandRequestSoakHeapPlateaus) {
  const std::string site = "http://soak.org";
  // Top-level vars are frame locals in the VM, so the cyclic batches die with
  // the run; `keep` (no var) lands on the global object and IS the live set —
  // replaced, not accumulated, each request.
  const std::string garbage = R"JS(
    for (var i = 0; i < 40; i++) {
      var a = { n: i };
      var b = function () { return a; };
      a.back = b;
    }
    keep = { tag: "live", last: 40 };
    soak_result = 1;
  )JS";

  core::sandbox_pool pool;
  js::context_limits limits;  // default watermark: mid-run GC stays armed
  std::size_t plateau = 0;
  std::size_t peak = 0;
  constexpr std::size_t k_requests = 10'000;
  for (std::size_t i = 0; i < k_requests; ++i) {
    core::sandbox* sb = pool.acquire(site, limits, js::engine_kind::bytecode, nullptr);
    if (i >= 100) {
      // Post-reclaim heap of a pooled sandbox: must hover at the live set.
      const std::size_t idle_heap = sb->heap_used();
      if (plateau == 0) plateau = idle_heap;
      peak = std::max(peak, idle_heap);
    }
    sb->begin_run();
    eval_script(sb->ctx(), garbage, "<soak>", js::engine_kind::bytecode);
    pool.release(site, sb, /*poisoned=*/false);
  }
  ASSERT_GT(plateau, 0u);
  // Flat plateau: the idle-heap high-water mark over 10k requests stays
  // within 2x of where it settled after warmup. Without pool-return
  // reclamation the cyclic 40-object batches accrete monotonically and this
  // fails by orders of magnitude. (LSan covers the teardown half.)
  EXPECT_LE(peak, plateau * 2);
  EXPECT_EQ(pool.created(), 1u) << "soak must reuse one pooled sandbox";
}

// ----- workers=0 determinism: GC on == GC off ------------------------------------

const char* k_cyclic_site_script = R"JS(
  var p = new Policy();
  p.url = [ "cyclic.org" ];
  p.onResponse = function () {
    var total = 0;
    for (var i = 0; i < 60; i++) {
      var node = { n: i };
      node.self = node;
      node.fn = function () { return node; };
      total += node.n;
    }
    Response.setHeader("X-Work", "" + total);
  };
  p.register();
)JS";

// Full fixed-seed sim run, digested byte-for-byte: statuses, script-derived
// headers, bodies, and the final counters. The collector may only change how
// memory is freed — never what scripts compute, how requests interleave, or
// what the node bills — so the digest must be identical with GC on and off.
std::string sim_digest_with_watermark(std::size_t gc_watermark) {
  sim::event_loop loop;
  sim::network net{loop};
  sim::three_tier topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host("cyclic.org", origin);
  origin.add_static_text("cyclic.org", "/nakika.js", "application/javascript",
                         k_cyclic_site_script, 3600);
  for (std::size_t i = 0; i < 16; ++i) {
    origin.add_static_text("cyclic.org", "/doc/" + std::to_string(i), "text/plain",
                           "doc-" + std::to_string(i), 3600);
  }

  proxy::node_config cfg;
  cfg.rng_seed = 4242;
  cfg.script_limits.gc_watermark = gc_watermark;
  cfg.script_limits.gc_slice = 64;
  proxy::nakika_node& node = dep.create_node(topo.proxy, std::move(cfg));
  node.start_monitor();

  std::string digest;
  for (std::size_t i = 0; i < 200; ++i) {
    http::request r;
    r.url = http::url::parse("http://cyclic.org/doc/" + std::to_string(i % 16));
    r.client_ip = "10.0.0.1";
    http::response out;
    proxy::forward_request(net, topo.client, node, r,
                           [&](http::response resp) { out = std::move(resp); });
    // run_until, not run(): the resource monitor reschedules itself forever,
    // so the loop never goes empty.
    loop.run_until(loop.now() + 0.2);
    digest += std::to_string(out.status);
    digest += '|';
    digest += out.headers.get_or("X-Work", "-");
    digest += '|';
    if (out.body) digest += out.body->str();
    digest += '\n';
  }
  const util::run_counters c = node.counters();
  digest += "offered=" + std::to_string(c.offered);
  digest += " completed=" + std::to_string(c.completed);
  digest += " failed=" + std::to_string(c.failed);
  digest += " terminated=" + std::to_string(c.terminated);
  return digest;
}

TEST(GcDeterminism, SimDigestIdenticalWithCollectorOnAndOff) {
  const std::string gc_off = sim_digest_with_watermark(0);
  const std::string gc_on = sim_digest_with_watermark(128);  // collect aggressively
  EXPECT_EQ(gc_off, gc_on);
  EXPECT_GT(gc_off.size(), 200u * 3u);  // real traffic, not a degenerate run
}

// ----- 8-worker stress with watermark collections (TSan tier) --------------------

TEST(GcConcurrency, EightWorkerStressWithWatermarkCollections) {
  sim::event_loop loop;
  sim::network net{loop};
  const sim::node_id origin_host = net.add_node("origin");
  const sim::node_id proxy_host = net.add_node("proxy");
  net.set_route(origin_host, proxy_host, 0.0005);
  proxy::origin_server origin(net, origin_host);
  origin.add_static_text("cyclic.org", "/nakika.js", "application/javascript",
                         k_cyclic_site_script, 3600);
  for (std::size_t i = 0; i < 16; ++i) {
    origin.add_static_text("cyclic.org", "/doc/" + std::to_string(i), "text/plain",
                           "doc-" + std::to_string(i), 3600);
  }

  proxy::node_config cfg;
  cfg.workers = 8;
  constexpr std::size_t k_total = 4'000;
  cfg.queue_capacity = k_total + 16;
  cfg.resource_controls = false;  // exact counts
  // Tiny watermark: every request's 60 cyclic nodes cross it repeatedly, so
  // collections run on all 8 workers while the soak is in flight.
  cfg.script_limits.gc_watermark = 64;
  cfg.script_limits.gc_slice = 16;
  proxy::nakika_node node(
      net, proxy_host, [&origin](const std::string&) -> proxy::http_endpoint* {
        return &origin;
      },
      std::move(cfg));

  std::atomic<std::size_t> done_count{0};
  std::atomic<std::size_t> mismatches{0};
  const auto produce = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      http::request r;
      r.url = http::url::parse("http://cyclic.org/doc/" + std::to_string(i % 16));
      r.client_ip = "10.0.0.1";
      node.handle(r, [&, i](http::response resp) {
        const std::string body(resp.body ? resp.body->view() : "");
        if (resp.status != 200 || body != "doc-" + std::to_string(i % 16) ||
            resp.headers.get_or("X-Work", "") != "1770") {
          mismatches.fetch_add(1);
        }
        done_count.fetch_add(1);
      });
    }
  };
  std::thread producer_a(produce, 0, k_total / 2);
  std::thread producer_b(produce, k_total / 2, k_total);
  producer_a.join();
  producer_b.join();
  node.drain();

  EXPECT_EQ(done_count.load(), k_total);
  EXPECT_EQ(mismatches.load(), 0u);
  const util::run_counters c = node.counters();
  EXPECT_EQ(c.completed, k_total);
  EXPECT_EQ(c.failed, 0u);
  // The watermark actually fired: collections are visible node-wide.
  const obs::telemetry_snapshot snap = node.telemetry();
  const auto it = snap.counters.find("gc.collections");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_GT(it->second, 0u);
}

}  // namespace
}  // namespace nakika
