// Tests for EXECUTE-PIPELINE (paper Fig. 4) and the script vocabularies. The
// host callbacks are immediate (no simulator) so each scenario is a direct
// check of pipeline semantics: stage order, closest-match selection, dynamic
// scheduling, short-circuiting, and the backward onResponse pass.
#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.hpp"

namespace nakika::core {
namespace {

struct pipeline_fixture : ::testing::Test {
  sandbox sb;
  pipeline_executor executor;
  std::map<std::string, std::string> scripts;  // url -> source
  std::vector<std::string> stage_loads;        // order of stage fetches
  http::response origin_response =
      http::make_response(200, "text/plain", util::make_body("origin-body"));
  int origin_fetches = 0;

  pipeline_fixture()
      : executor(pipeline_config{}) {}

  stage_loader loader() {
    return [this](const std::string& url, std::function<void(stage_fetch_result)> cb) {
      stage_loads.push_back(url);
      stage_fetch_result out;
      const auto it = scripts.find(url);
      if (it != scripts.end()) {
        out.found = true;
        out.source = it->second;
        out.version = 1;
      }
      cb(std::move(out));
    };
  }

  resource_fetcher fetcher() {
    return [this](const http::request&, std::function<void(http::response, double)> cb) {
      ++origin_fetches;
      cb(origin_response, 0.0);
    };
  }

  pipeline_result run(const std::string& url, const std::string& client_ip = "1.2.3.4") {
    http::request r;
    r.url = http::url::parse(url);
    r.client_ip = client_ip;
    exec_state base;
    base.site = r.url.site();
    base.now = 1000;
    pipeline_result out;
    bool done = false;
    executor.execute(std::move(r), sb, r.url.site() + "/nakika.js", loader(), fetcher(),
                     std::move(base), [&](pipeline_result result) {
                       out = std::move(result);
                       done = true;
                     });
    EXPECT_TRUE(done) << "pipeline did not complete synchronously";
    return out;
  }
};

TEST_F(pipeline_fixture, NoScriptsPassesThrough) {
  const pipeline_result result = run("http://plain.org/page");
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.response.body->view(), "origin-body");
  EXPECT_EQ(origin_fetches, 1);
  // Walls + site script probed in Fig. 4 order: client wall, site, server wall.
  ASSERT_EQ(stage_loads.size(), 3u);
  EXPECT_EQ(stage_loads[0], "http://nakika.net/clientwall.js");
  EXPECT_EQ(stage_loads[1], "http://plain.org/nakika.js");
  EXPECT_EQ(stage_loads[2], "http://nakika.net/serverwall.js");
}

TEST_F(pipeline_fixture, OnResponseTransformsBody) {
  scripts["http://site.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.url = [ "site.org" ];
    p.onResponse = function() {
      var body = new ByteArray();
      var chunk = null;
      while (chunk = Response.read()) { body.append(chunk); }
      Response.write("<<" + body.toString() + ">>");
    };
    p.register();
  )JS";
  const pipeline_result result = run("http://site.org/page");
  EXPECT_FALSE(result.failed) << result.error;
  EXPECT_EQ(result.response.body->view(), "<<origin-body>>");
  EXPECT_EQ(result.response.headers.get("Content-Length"), "15");
  EXPECT_EQ(result.handlers_run, 1);
}

TEST_F(pipeline_fixture, OnRequestShortCircuitSkipsOriginAndLaterStages) {
  scripts["http://nakika.net/clientwall.js"] = R"JS(
    var wall = new Policy();
    wall.url = [ "blocked.org" ];
    wall.onRequest = function() { Request.terminate(401); };
    wall.register();
  )JS";
  scripts["http://blocked.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.onResponse = function() { Response.setHeader("X-Should-Not-Run", "1"); };
    p.register();
  )JS";
  const pipeline_result result = run("http://blocked.org/secret");
  EXPECT_EQ(result.response.status, 401);
  EXPECT_EQ(origin_fetches, 0);  // dropped before resources were expended
  EXPECT_FALSE(result.response.headers.has("X-Should-Not-Run"));
  // The site stage was never even loaded: the wall came first.
  ASSERT_EQ(stage_loads.size(), 1u);
}

TEST_F(pipeline_fixture, GeneratingStagesOwnOnResponseStillRuns) {
  // Fig. 4: the stage that generates a response was already pushed onto the
  // backward stack, so its own onResponse executes.
  scripts["http://gen.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.url = [ "gen.org" ];
    p.onRequest = function() { Request.respond(200, "text/plain", "generated"); };
    p.onResponse = function() { Response.setHeader("X-Post", "ran"); };
    p.register();
  )JS";
  const pipeline_result result = run("http://gen.org/");
  EXPECT_EQ(result.response.body->view(), "generated");
  EXPECT_EQ(result.response.headers.get("X-Post"), "ran");
  EXPECT_EQ(origin_fetches, 0);
}

TEST_F(pipeline_fixture, NextStagesArePrependedNotAppended) {
  // Site schedules [extra1, extra2]; they must run before the server wall
  // and in their listed order.
  scripts["http://site.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.nextStages = [ "http://svc.org/extra1.js", "http://svc.org/extra2.js" ];
    p.register();
  )JS";
  scripts["http://svc.org/extra1.js"] = "var q = new Policy(); q.register();";
  scripts["http://svc.org/extra2.js"] = "var q = new Policy(); q.register();";
  run("http://site.org/");
  ASSERT_EQ(stage_loads.size(), 5u);
  EXPECT_EQ(stage_loads[1], "http://site.org/nakika.js");
  EXPECT_EQ(stage_loads[2], "http://svc.org/extra1.js");
  EXPECT_EQ(stage_loads[3], "http://svc.org/extra2.js");
  EXPECT_EQ(stage_loads[4], "http://nakika.net/serverwall.js");
}

TEST_F(pipeline_fixture, OnResponseRunsInReverseStageOrder) {
  scripts["http://site.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.nextStages = [ "http://svc.org/inner.js" ];
    p.onResponse = function() {
      var b = new ByteArray(); var c = null;
      while (c = Response.read()) { b.append(c); }
      Response.write(b.toString() + "+outer");
    };
    p.register();
  )JS";
  scripts["http://svc.org/inner.js"] = R"JS(
    var p = new Policy();
    p.onResponse = function() {
      var b = new ByteArray(); var c = null;
      while (c = Response.read()) { b.append(c); }
      Response.write(b.toString() + "+inner");
    };
    p.register();
  )JS";
  const pipeline_result result = run("http://site.org/");
  // Backward pass pops LIFO: inner first, then the scheduling (outer) stage.
  EXPECT_EQ(result.response.body->view(), "origin-body+inner+outer");
}

TEST_F(pipeline_fixture, RequestRewritingInterposition) {
  // The annotations-extension pattern: rewrite the URL, then the original
  // service's stage sees the rewritten request.
  scripts["http://front.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.url = [ "front.org" ];
    p.onRequest = function() {
      Request.setUrl("http://site.org" + Request.path);
    };
    p.nextStages = [ "http://site.org/nakika.js" ];
    p.register();
  )JS";
  scripts["http://site.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.url = [ "site.org" ];
    p.onResponse = function() { Response.setHeader("X-Backend", "site"); };
    p.register();
  )JS";
  const pipeline_result result = run("http://front.org/doc");
  EXPECT_EQ(result.response.headers.get("X-Backend"), "site");
  EXPECT_EQ(origin_fetches, 1);
}

TEST_F(pipeline_fixture, ClosestMatchSelectsPerStage) {
  scripts["http://site.org/nakika.js"] = R"JS(
    var generic = new Policy();
    generic.url = [ "site.org" ];
    generic.onResponse = function() { Response.setHeader("X-Match", "generic"); };
    generic.register();
    var specific = new Policy();
    specific.url = [ "site.org/api" ];
    specific.onResponse = function() { Response.setHeader("X-Match", "specific"); };
    specific.register();
  )JS";
  EXPECT_EQ(run("http://site.org/api/v1").response.headers.get("X-Match"), "specific");
  EXPECT_EQ(run("http://site.org/other").response.headers.get("X-Match"), "generic");
}

TEST_F(pipeline_fixture, DigitalLibraryPolicyFromPaperFigure5) {
  scripts["http://nakika.net/clientwall.js"] = R"JS(
    bmj = "bmj.bmjjournals.com/cgi/reprint";
    nejm = "content.nejm.org/cgi/reprint";
    p = new Policy();
    p.url = [ bmj, nejm ];
    p.onRequest = function() {
      if (! System.isLocal(Request.clientIP)) {
        Request.terminate(401);
      }
    }
    p.register();
  )JS";
  // Local clients (10.0.0.0/8 below) pass; others get 401.
  http::request r;
  r.url = http::url::parse("http://content.nejm.org/cgi/reprint/paper.pdf");
  r.client_ip = "128.122.1.1";
  exec_state base;
  base.site = "http://content.nejm.org";
  base.local_specs = {"10.0.0.0/8"};
  pipeline_result denied;
  executor.execute(r, sb, "http://content.nejm.org/nakika.js", loader(), fetcher(),
                   base, [&](pipeline_result out) { denied = std::move(out); });
  EXPECT_EQ(denied.response.status, 401);

  r.client_ip = "10.9.9.9";
  pipeline_result allowed;
  executor.execute(r, sb, "http://content.nejm.org/nakika.js", loader(), fetcher(),
                   base, [&](pipeline_result out) { allowed = std::move(out); });
  EXPECT_EQ(allowed.response.status, 200);
}

TEST_F(pipeline_fixture, ScriptErrorYields500) {
  scripts["http://bad.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.url = [ "bad.org" ];
    p.onResponse = function() { undefinedFunction(); };
    p.register();
  )JS";
  const pipeline_result result = run("http://bad.org/");
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.response.status, 500);
}

TEST_F(pipeline_fixture, SyntaxErrorInStageYields500) {
  scripts["http://broken.org/nakika.js"] = "var p = ((;";
  const pipeline_result result = run("http://broken.org/");
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.response.status, 500);
}

TEST_F(pipeline_fixture, RunawayNextStagesBounded) {
  scripts["http://loop.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.nextStages = [ "http://loop.org/nakika.js" ];
    p.register();
  )JS";
  const pipeline_result result = run("http://loop.org/");
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.response.status, 500);
}

TEST_F(pipeline_fixture, StageCacheAvoidsReload) {
  scripts["http://site.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.url = [ "site.org" ];
    p.onResponse = function() { Response.setHeader("X-N", "1"); };
    p.register();
  )JS";
  run("http://site.org/a");
  const auto created = sb.find_stage("http://site.org/nakika.js", 1);
  ASSERT_NE(created, nullptr);
  const decision_tree* tree_before = created->tree.get();
  run("http://site.org/b");
  const auto cached = sb.find_stage("http://site.org/nakika.js", 1);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->tree.get(), tree_before);  // same compiled stage reused
}

TEST_F(pipeline_fixture, StageReloadsOnVersionBump) {
  scripts["http://site.org/nakika.js"] = "var p = new Policy(); p.register();";
  run("http://site.org/a");
  EXPECT_EQ(sb.find_stage("http://site.org/nakika.js", 2), nullptr);
  sb.load_stage("http://site.org/nakika.js", "var q = new Policy(); q.register();", 2);
  EXPECT_NE(sb.find_stage("http://site.org/nakika.js", 2), nullptr);
  EXPECT_EQ(sb.find_stage("http://site.org/nakika.js", 1), nullptr);
}

TEST_F(pipeline_fixture, LogVocabularyCollectsLines) {
  scripts["http://site.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.url = [ "site.org" ];
    p.onResponse = function() { Log.write("served " + Request.path); };
    p.register();
  )JS";
  const pipeline_result result = run("http://site.org/page");
  ASSERT_EQ(result.log_lines.size(), 1u);
  EXPECT_EQ(result.log_lines[0], "served /page");
}

TEST_F(pipeline_fixture, AccountingReportsOpsAndBytes) {
  scripts["http://site.org/nakika.js"] = R"JS(
    var p = new Policy();
    p.url = [ "site.org" ];
    p.onResponse = function() {
      var b = new ByteArray(); var c = null;
      while (c = Response.read()) { b.append(c); }
      Response.write(b);
    };
    p.register();
  )JS";
  const pipeline_result result = run("http://site.org/");
  EXPECT_GT(result.ops, 0u);
  EXPECT_EQ(result.bytes_read, 11u);   // "origin-body"
  EXPECT_EQ(result.bytes_written, 11u);
  EXPECT_EQ(result.stages_executed, 1);
}

}  // namespace
}  // namespace nakika::core
