// Vocabulary behaviours that do not need a full pipeline: ImageTransformer,
// XmlTransformer, Cache, Fetch, HardState, Messages, Na Kika Pages, and the
// policy-object lowering rules.
#include <gtest/gtest.h>

#include "core/pages.hpp"
#include "core/pipeline.hpp"
#include "js/parser.hpp"
#include "media/image.hpp"

namespace nakika::core {
namespace {

// Runs `script` (which should define a global `main` function), then calls
// main() with the exec binding pointed at `exec`.
void run_with_exec(sandbox& sb, exec_state& exec, const std::string& script) {
  sb.begin_run();
  js::eval_script(sb.ctx(), script, "<vocab-test>");
  sb.binding()->current = &exec;
  if (exec.request != nullptr) sync_request_to_script(sb.ctx(), *exec.request);
  if (exec.response != nullptr) sync_response_to_script(sb.ctx(), *exec.response);
  js::interpreter in(sb.ctx());
  in.call(sb.ctx().global()->get("main"), js::value::undefined(), {});
  sb.binding()->current = nullptr;
}

std::string global_str(sandbox& sb, const char* name) {
  return sb.ctx().global()->get(name).to_string();
}

TEST(VocabImage, TranscodeFromScript) {
  // The paper's Fig. 2 handler, exercised end to end with a real image.
  sandbox sb;
  const auto img = media::encode(media::make_test_image(800, 600, 5),
                                 media::image_format::png);
  http::request req;
  req.url = http::url::parse("http://site.org/pic.png");
  http::response resp = http::make_response(200, "image/png",
                                            util::make_body(std::move(img)));
  exec_state exec;
  exec.request = &req;
  exec.response = &resp;

  run_with_exec(sb, exec, R"JS(
    function main() {
      var buff = null, body = new ByteArray();
      while (buff = Response.read()) {
        body.append(buff);
      }
      var type = ImageTransformer.type(Response.contentType);
      var dim = ImageTransformer.dimensions(body, type);
      before = dim.x + "x" + dim.y;
      if (dim.x > 176 || dim.y > 208) {
        var img = ImageTransformer.transform(body, type, "jpeg", 176, 208);
        var d2 = ImageTransformer.dimensions(img, "jpeg");
        after = d2.x + "x" + d2.y;
        outLen = img.length;
      }
    }
  )JS");
  EXPECT_EQ(global_str(sb, "before"), "800x600");
  EXPECT_EQ(global_str(sb, "after"), "176x132");
  EXPECT_GT(sb.ctx().global()->get("outLen").to_number(), 0);
}

TEST(VocabImage, TypeReturnsNullForNonImages) {
  sandbox sb;
  exec_state exec;
  run_with_exec(sb, exec, R"JS(
    function main() {
      isNull = (ImageTransformer.type("text/html") === null) ? "yes" : "no";
    }
  )JS");
  EXPECT_EQ(global_str(sb, "isNull"), "yes");
}

TEST(VocabImage, ErrorsAreScriptCatchable) {
  sandbox sb;
  exec_state exec;
  run_with_exec(sb, exec, R"JS(
    function main() {
      caught = "no";
      try {
        var b = new ByteArray("not an image");
        ImageTransformer.dimensions(b, "jpeg");
      } catch (e) { caught = "yes"; }
    }
  )JS");
  EXPECT_EQ(global_str(sb, "caught"), "yes");
}

TEST(VocabXml, RenderFromScript) {
  sandbox sb;
  exec_state exec;
  run_with_exec(sb, exec, R"JS(
    function main() {
      var xsl = '<xsl:stylesheet version="1.0">' +
        '<xsl:template match="d"><b><xsl:value-of select="."/></b></xsl:template>' +
        '</xsl:stylesheet>';
      html = XmlTransformer.render("<d>text</d>", xsl);
      canonical = XmlTransformer.canonicalize("<a  x='1'><b/></a>");
      caught = "no";
      try { XmlTransformer.render("<broken", xsl); } catch (e) { caught = "yes"; }
    }
  )JS");
  EXPECT_EQ(global_str(sb, "html"), "<b>text</b>");
  EXPECT_EQ(global_str(sb, "canonical"), "<a x=\"1\"><b/></a>");
  EXPECT_EQ(global_str(sb, "caught"), "yes");
}

TEST(VocabCache, PutGetRemoveFromScript) {
  sandbox sb;
  cache::http_cache cache;
  exec_state exec;
  exec.http_cache = &cache;
  exec.now = 100;
  run_with_exec(sb, exec, R"JS(
    function main() {
      missed = (Cache.get("http://x/a") === null) ? "miss" : "hit";
      Cache.put("http://x/a", { status: 200, contentType: "text/plain",
                                body: "cached!", ttl: 60 });
      var r = Cache.get("http://x/a");
      got = r.body.toString() + "/" + r.status + "/" + r.contentType;
      removed = "" + Cache.remove("http://x/a") + Cache.remove("http://x/a");
    }
  )JS");
  EXPECT_EQ(global_str(sb, "missed"), "miss");
  EXPECT_EQ(global_str(sb, "got"), "cached!/200/text/plain");
  EXPECT_EQ(global_str(sb, "removed"), "truefalse");
}

TEST(VocabCache, TtlValidated) {
  sandbox sb;
  cache::http_cache cache;
  exec_state exec;
  exec.http_cache = &cache;
  run_with_exec(sb, exec, R"JS(
    function main() {
      caught = "no";
      try { Cache.put("http://x/a", { body: "b", ttl: -5 }); } catch (e) { caught = "yes"; }
    }
  )JS");
  EXPECT_EQ(global_str(sb, "caught"), "yes");
}

TEST(VocabFetch, SubrequestsGoThroughHostHook) {
  sandbox sb;
  int fetches = 0;
  exec_state exec;
  exec.fetch = [&](const http::request& r) {
    ++fetches;
    fetch_result out;
    out.ok = true;
    out.response = http::make_response(200, "text/css", util::make_body("body{}"));
    out.response.headers.set("X-Origin", r.url.host());
    out.virtual_delay_seconds = 0.25;
    return out;
  };
  run_with_exec(sb, exec, R"JS(
    function main() {
      var r = Fetch.fetch("http://assets.org/site.css");
      got = r.status + "/" + r.body.toString() + "/" + r.getHeader("X-Origin");
      missing = (r.getHeader("Nope") === null) ? "null" : "present";
    }
  )JS");
  EXPECT_EQ(fetches, 1);
  EXPECT_EQ(global_str(sb, "got"), "200/body{}/assets.org");
  EXPECT_EQ(global_str(sb, "missing"), "null");
  EXPECT_DOUBLE_EQ(exec.accumulated_delay, 0.25);
}

TEST(VocabFetch, FailureIsCatchable) {
  sandbox sb;
  exec_state exec;
  exec.fetch = [](const http::request&) { return fetch_result{}; };
  run_with_exec(sb, exec, R"JS(
    function main() {
      caught = "no";
      try { Fetch.fetch("http://down.org/"); } catch (e) { caught = "yes"; }
    }
  )JS");
  EXPECT_EQ(global_str(sb, "caught"), "yes");
}

TEST(VocabHardState, PartitionedBySite) {
  sandbox sb;
  state::local_store store;
  exec_state exec;
  exec.store = &store;
  exec.site = "http://site-a.org";
  run_with_exec(sb, exec, R"JS(
    function main() {
      HardState.put("k", "site-a-value");
      HardState.put("k2", "v2");
      mine = HardState.get("k");
      var all = HardState.scan("");
      count = all.length;
      absent = (HardState.get("zzz") === null) ? "null" : "present";
    }
  )JS");
  EXPECT_EQ(global_str(sb, "mine"), "site-a-value");
  EXPECT_EQ(global_str(sb, "count"), "2");
  EXPECT_EQ(global_str(sb, "absent"), "null");
  // The store is partitioned under the site key.
  EXPECT_EQ(store.get("http://site-a.org", "k"), "site-a-value");
  EXPECT_FALSE(store.get("http://site-b.org", "k").has_value());
}

TEST(VocabMessages, PublishForwardsToHost) {
  sandbox sb;
  std::vector<std::pair<std::string, std::string>> published;
  exec_state exec;
  exec.publish = [&](const std::string& topic, const std::string& payload) {
    published.emplace_back(topic, payload);
  };
  run_with_exec(sb, exec, R"JS(
    function main() { Messages.publish("updates", JSON.stringify({k: 1})); }
  )JS");
  ASSERT_EQ(published.size(), 1u);
  EXPECT_EQ(published[0].first, "updates");
  EXPECT_EQ(published[0].second, "{\"k\":1}");
}

TEST(VocabSystem, CongestionIntrospection) {
  sandbox sb;
  exec_state exec;
  exec.resources.cpu_congestion = 0.75;
  exec.resources.site_contribution = 0.4;
  exec.resources.throttled = true;
  exec.site = "http://s.org";
  run_with_exec(sb, exec, R"JS(
    function main() {
      report = System.congestion("cpu") + "/" + System.contribution() + "/" +
               System.throttled() + "/" + System.site();
      caught = "no";
      try { System.congestion("disk"); } catch (e) { caught = "yes"; }
    }
  )JS");
  EXPECT_EQ(global_str(sb, "report"), "0.75/0.4/true/http://s.org");
  EXPECT_EQ(global_str(sb, "caught"), "yes");
}

// ----- policy lowering validation ----------------------------------------------------

TEST(PolicyLowering, RejectsBadShapes) {
  sandbox sb;
  const char* bad_cases[] = {
      "var p = new Policy(); p.url = [ 42 ]; p.register();",
      "var p = new Policy(); p.method = [ 'FROB' ]; p.register();",
      "var p = new Policy(); p.onRequest = 'not a function'; p.register();",
      "var p = new Policy(); p.headers = { 'User-Agent': '(' }; p.register();",
      "var p = new Policy(); p.url = 42; p.register();",
  };
  for (const char* source : bad_cases) {
    EXPECT_THROW(sb.load_stage(std::string("http://t/") + source, source, 1),
                 js::script_error)
        << source;
  }
}

TEST(PolicyLowering, RegisterOutsideStageLoadFails) {
  sandbox sb;
  sb.load_stage("http://t/ok.js", "var p = new Policy();", 1);
  // Calling register() later (no stage loading) throws a catchable error.
  exec_state exec;
  run_with_exec(sb, exec, R"JS(
    function main() {
      caught = "no";
      try { p.register(); } catch (e) { caught = "yes"; }
    }
  )JS");
  EXPECT_EQ(global_str(sb, "caught"), "yes");
}

TEST(PolicyLowering, AcceptsStringOrList) {
  sandbox sb;
  const auto& stage = sb.load_stage("http://t/s.js", R"JS(
    var p = new Policy();
    p.url = "one.org";
    p.client = [ "10.0.0.0/8", "nyu.edu" ];
    p.method = "GET";
    p.headers = { "User-Agent": [ "Nokia", "Moto" ] };
    p.register();
  )JS",
                                    1);
  EXPECT_EQ(stage.policy_count, 1u);
  // Two header patterns expand the tree but stay one policy.
  EXPECT_GE(stage.tree->node_count(), 4u);
}

// ----- Na Kika Pages -------------------------------------------------------------------

TEST(Pages, CompilesTextAndCode) {
  const std::string script = compile_nkp("Hello <?nkp Response.write(1 + 1); ?> world");
  sandbox sb;
  const auto& stage = sb.load_stage("http://t/p.nkp", script, 1);
  EXPECT_EQ(stage.policy_count, 1u);

  // Run the compiled page against a response.
  http::request req;
  req.url = http::url::parse("http://t/p.nkp");
  http::response resp = http::make_response(200, "text/nkp", util::make_body(""));
  exec_state exec;
  exec.request = &req;
  exec.response = &resp;
  const auto match = stage.tree->match(req);
  ASSERT_TRUE(match.found());
  sb.binding()->current = &exec;
  sync_request_to_script(sb.ctx(), req);
  sync_response_to_script(sb.ctx(), resp);
  js::interpreter in(sb.ctx());
  in.call(match.matched->on_response, js::value::undefined(), {});
  read_back_response(sb.ctx(), exec, resp);
  sb.binding()->current = nullptr;
  EXPECT_EQ(resp.body->view(), "Hello 2 world");
  EXPECT_EQ(resp.headers.get("Content-Type"), "text/html");
}

TEST(Pages, EscapesLiteralText) {
  const std::string script = compile_nkp("a \"quoted\"\nline\\back");
  // Must parse cleanly despite quotes/newlines/backslashes in the text.
  EXPECT_NO_THROW((void)js::parse_program(script));
}

TEST(Pages, MultipleBlocksInterleave) {
  const std::string script =
      compile_nkp("<?nkp var x = 2; ?>x=<?nkp Response.write(x * 21); ?>!");
  sandbox sb;
  EXPECT_NO_THROW(sb.load_stage("http://t/m.nkp", script, 1));
}

TEST(Pages, UnterminatedBlockThrows) {
  EXPECT_THROW((void)compile_nkp("text <?nkp Response.write(1);"), std::invalid_argument);
}

TEST(Pages, ResourceDetection) {
  EXPECT_TRUE(is_nkp_resource("/page.nkp", ""));
  EXPECT_TRUE(is_nkp_resource("/x", "text/nkp"));
  EXPECT_TRUE(is_nkp_resource("/x", "text/nkp; charset=utf-8"));
  EXPECT_FALSE(is_nkp_resource("/page.html", "text/html"));
}

}  // namespace
}  // namespace nakika::core
