// Quickstart: bring up a one-node Na Kika deployment on a simulated LAN,
// publish a site with a nakika.js edge script, and send requests through the
// scripting pipeline.
//
//   origin (www.example.org)  <--->  Na Kika node  <--->  client
//
// The site's script rewrites responses at the edge (adds a banner and an
// X-Edge header). Build & run:  ./build/examples/example_quickstart
#include <cstdio>

#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

using namespace nakika;

int main() {
  // 1. A discrete-event network: client, proxy, and origin on a switched LAN.
  sim::event_loop loop;
  sim::network net(loop);
  const sim::three_tier topo = sim::build_lan(net);

  // 2. A deployment: one origin server and one Na Kika node.
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host("www.example.org", origin);

  // 3. The site publishes content and its edge script at /nakika.js
  //    (paper §3.1: like robots.txt, fetched relative to the server).
  origin.add_static_text("www.example.org", "/hello", "text/html",
                         "<html><body><p>Hello from the origin!</p></body></html>");
  origin.add_static_text("www.example.org", "/nakika.js", "application/javascript", R"JS(
    var edge = new Policy();
    edge.url = [ "www.example.org" ];          // predicate: this site only
    edge.onResponse = function() {
      var body = new ByteArray();
      var chunk = null;
      while (chunk = Response.read()) {        // stream the instance body
        body.append(chunk);
      }
      var html = body.toString().replace(
          "<body>", "<body><div class='banner'>processed at the edge</div>");
      Response.setHeader("X-Edge", "nakika");
      Response.write(html);
      Log.write("transformed " + Request.path);
    };
    edge.register();
  )JS");

  // 4. A Na Kika node in front of it.
  proxy::nakika_node& node = dep.create_node(topo.proxy);
  node.start_monitor();  // congestion-based resource controls (paper Fig. 6)

  // 5. Send two requests from the client; the second hits the edge cache.
  //    (The monitor keeps the event loop non-empty, so step until each
  //    response arrives instead of draining the queue.)
  for (int i = 0; i < 2; ++i) {
    http::request r;
    r.url = http::url::parse("http://www.example.org/hello");
    r.client_ip = "10.0.0.1";
    const double start = loop.now();
    bool done = false;
    proxy::forward_request(net, topo.client, node, r, [&](http::response resp) {
      std::printf("request %d -> %d %s in %.2f ms (X-Edge: %s)\n", i + 1, resp.status,
                  resp.reason.c_str(), (loop.now() - start) * 1000.0,
                  resp.headers.get_or("X-Edge", "-").c_str());
      std::printf("  body: %s\n", resp.body->str().c_str());
      done = true;
    });
    while (!done && loop.step()) {
    }
  }

  std::printf("cache: %zu entries, hit rate %.0f%%\n", node.content_cache().entry_count(),
              node.content_cache().stats().hit_rate() * 100);
  for (const auto& line : node.site_log("http://www.example.org")) {
    std::printf("site log: %s\n", line.c_str());
  }
  return 0;
}
