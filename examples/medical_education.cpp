// The paper's motivating application (§1, §5.2): web-based medical education
// at scale. A SIMM-like site serves personalized XML from the origin while
// Na Kika nodes near three regions render it to HTML, cache the multimedia,
// and cooperate through the overlay. Includes the electronic-annotations
// extension (§5.4, first extension) layered over the SIMMs by a third party.
#include <cstdio>

#include "proxy/deployment.hpp"
#include "sim/topology.hpp"
#include "workload/simm.hpp"

using namespace nakika;

namespace {

const char* annotations_script = R"JS(
// Third-party annotations site: interposes on the SIMMs (50 lines in the
// paper, reusing a 180-line annotation layer).
var notes = new Policy();
notes.url = [ "notes.medstudents.example" ];
// "utilize dynamically scheduled pipeline stages to incorporate the Na Kika
// version of the SIMMs" (§5.4): the rewritten request flows through the
// SIMMs' own rendering stage before annotation.
notes.nextStages = [ "http://simms.med.nyu.edu/nakika.js" ];
notes.onRequest = function() {
  Request.setUrl("http://simms.med.nyu.edu" + Request.path +
                 (Request.query == "" ? "" : "?" + Request.query));
};
notes.onResponse = function() {
  var ct = Response.getHeader("Content-Type");
  if (ct == null || ct.indexOf("text/html") != 0) { return; }
  var body = new ByteArray();
  var c = null;
  while (c = Response.read()) { body.append(c); }
  var note = HardState.get("note:" + Request.path);
  var injected = note == null ? "" : "<div class=\"postit\">" + note + "</div>";
  Response.write(body.toString().replace("</body>", injected + "</body>"));
};
notes.register();

var save = new Policy();
save.url = [ "notes.medstudents.example/annotate" ];
save.method = [ "POST" ];
save.onRequest = function() {
  HardState.put("note:" + Request.query, "remember this case for the exam!");
  Request.respond(200, "text/plain", "annotation saved");
};
save.register();
)JS";

}  // namespace

int main() {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::geo_deployment geo = sim::build_geo(net, 1);  // one site per region

  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(geo.origin);
  dep.map_host(workload::simm_site::host_name, origin);
  dep.map_host("notes.medstudents.example", origin);

  workload::simm_config cfg;
  cfg.modules = 2;
  cfg.pages_per_module = 4;
  workload::simm_site simms(cfg);
  simms.install_edge(origin);  // XML + XSL + nakika.js: render at the edge
  origin.add_static_text("notes.medstudents.example", "/nakika.js",
                         "application/javascript", annotations_script);

  dep.enable_overlay();  // cooperative caching between the three regions
  for (const auto& site : geo.sites) {
    dep.create_node(site.proxy).start_monitor();
  }
  loop.run_until(loop.now() + 5.0);  // settle overlay joins

  util::rng rng(1);
  auto fetch = [&](std::size_t region, const std::string& url, http::method m,
                   const char* who) {
    proxy::nakika_node* node = dep.pick_node(geo.sites[region].client, rng);
    http::request r;
    r.method = m;
    r.url = http::url::parse(url);
    r.client_ip = "10.0.0." + std::to_string(region + 1);
    const double start = loop.now();
    bool done = false;
    proxy::forward_request(net, geo.sites[region].client, *node, r,
                           [&, who](http::response resp) {
                             std::printf("%-28s -> %d, %5zu bytes, %6.1f ms, via %s\n", who,
                                         resp.status, resp.body_size(),
                                         (loop.now() - start) * 1000.0,
                                         net.node_name(node->host()).c_str());
                             done = true;
                           });
    while (!done && loop.step()) {
    }
  };

  std::printf("web-based medical education on Na Kika (paper §1, §5.2, §5.4)\n\n");
  const std::string page =
      std::string("http://") + workload::simm_site::host_name + "/content/m0/p1.xml";
  const std::string video =
      std::string("http://") + workload::simm_site::host_name + "/media/m0/vid0.mp4";

  // Students in three regions read the same module; the edge renders the
  // personalized XML and caches the shared media.
  fetch(0, page + "?student=s1", http::method::get, "us-east student (page)");
  fetch(1, page + "?student=s2", http::method::get, "us-west student (page)");
  fetch(2, page + "?student=s3", http::method::get, "asia student (page)");
  fetch(0, video, http::method::get, "us-east student (video)");
  fetch(0, video, http::method::get, "us-east again (cached)");

  // A third-party site layers annotations over the SIMMs via URL rewriting
  // and dynamically scheduled stages.
  fetch(1, "http://notes.medstudents.example/annotate?/content/m0/p1.xml",
        http::method::post, "save annotation");
  fetch(1, "http://notes.medstudents.example/content/m0/p1.xml?student=s2",
        http::method::get, "annotated page");

  std::printf("\norigin requests served: %llu (everything else came from the edge)\n",
              static_cast<unsigned long long>(origin.requests_served()));
  return 0;
}
