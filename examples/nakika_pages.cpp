// Na Kika Pages (paper §3.1): markup-based dynamic content for developers
// versed in PHP/JSP/ASP.NET. Resources with the .nkp extension are compiled
// at the edge — literal text writes through, <?nkp ... ?> blocks run as
// script with the full vocabulary available.
#include <cstdio>

#include "core/pages.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

using namespace nakika;

int main() {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::three_tier topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host("app.example.org", origin);

  const char* page = R"NKP(<html><head><title>Na Kika Pages</title></head><body>
<h1>Hello, <?nkp Response.write(Request.query == "" ? "anonymous" : Request.query); ?>!</h1>
<ul>
<?nkp
  var seen = HardState.get("visits");
  var visits = seen == null ? 1 : parseInt(seen) + 1;
  HardState.put("visits", "" + visits);
  for (var i = 1; i <= 3; i++) {
    Response.write("<li>item " + i + " squared is " + (i * i) + "</li>");
  }
?>
</ul>
<p>page rendered at the edge; visit number <?nkp Response.write(HardState.get("visits")); ?></p>
</body></html>)NKP";

  origin.add_static_text("app.example.org", "/index.nkp", "text/nkp", page,
                         /*max_age=*/0);  // dynamic: rendered per fetch

  proxy::nakika_node& node = dep.create_node(topo.proxy);

  std::printf("Na Kika Pages (paper §3.1)\n\ncompiled form of the page:\n%s\n",
              core::compile_nkp("Hello <?nkp Response.write(6 * 7); ?>!").c_str());

  for (const char* who : {"", "alice", "bob"}) {
    http::request r;
    r.url = http::url::parse(std::string("http://app.example.org/index.nkp") +
                             (*who ? std::string("?") + who : ""));
    r.client_ip = "10.0.0.1";
    proxy::forward_request(net, topo.client, node, r, [who](http::response resp) {
      std::printf("---- GET /index.nkp%s%s -> %d (%s)\n%s\n", *who ? "?" : "", who,
                  resp.status, resp.headers.get_or("Content-Type", "?").c_str(),
                  resp.body->str().c_str());
    });
    loop.run();
  }
  return 0;
}
