// The paper's third extension (§5.4): content blocking from a blacklist.
// Security policy expressed as ordinary scripts: a static generator stage
// reads the blacklist from a preconfigured URL and dynamically generates the
// policy code for a second stage, which denies access (paper Fig. 5 style).
#include <cstdio>

#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

using namespace nakika;

namespace {

// Stage 1: generate stage-2 code from the blacklist (70 lines in the paper).
const char* generator_script = R"JS(
var BLACKLIST_URL = "http://admin.nakika.example/blacklist.txt";
var GENERATED_URL = "http://nakika.net/generated-blacklist.js";

var gen = new Policy();
gen.onRequest = function() {
  if (Cache.get(GENERATED_URL) != null) {
    return;                                   // still fresh
  }
  var list = Fetch.fetch(BLACKLIST_URL);
  var urls = list.body.toString().split("\n");
  var code = "";
  for (var i = 0; i < urls.length; i++) {
    var entry = urls[i].trim();
    if (entry.length == 0 || entry.startsWith("#")) {
      continue;
    }
    code += "var block" + i + " = new Policy();\n";
    code += "block" + i + ".url = [ \"" + entry + "\" ];\n";
    code += "block" + i + ".onRequest = function() { Request.terminate(403); };\n";
    code += "block" + i + ".register();\n";
  }
  Cache.put(GENERATED_URL,
            { contentType: "application/javascript", body: code, ttl: 300 });
  Log.write("regenerated blacklist policy for " + urls.length + " entries");
};
gen.nextStages = [ GENERATED_URL ];
gen.register();
)JS";

void fetch(sim::network& net, sim::node_id client, proxy::nakika_node& node,
           const std::string& url) {
  http::request r;
  r.url = http::url::parse(url);
  r.client_ip = "10.0.0.1";
  proxy::forward_request(net, client, node, r, [&url](http::response resp) {
    std::printf("%-34s -> %d %s\n", url.c_str(), resp.status, resp.reason.c_str());
  });
  net.loop().run();
}

}  // namespace

int main() {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::three_tier topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host("admin.nakika.example", origin);
  dep.map_host("warez.example", origin);
  dep.map_host("piracy.example", origin);
  dep.map_host("news.example", origin);

  origin.add_static_text("admin.nakika.example", "/blacklist.txt", "text/plain",
                         "# deny access to illegal content through Na Kika\n"
                         "warez.example\n"
                         "piracy.example/downloads\n");
  origin.add_static_text("warez.example", "/anything", "text/html", "bad");
  origin.add_static_text("piracy.example", "/downloads/file", "text/html", "bad");
  origin.add_static_text("piracy.example", "/about", "text/html", "fine");
  origin.add_static_text("news.example", "/today", "text/html", "fine");

  // The node administrator installs the generator as the client wall —
  // administrative control over clients' access (paper §3.1, first stage).
  proxy::node_config cfg;
  cfg.clientwall_source = generator_script;
  proxy::nakika_node& node = dep.create_node(topo.proxy, std::move(cfg));

  std::printf("blacklist-based content blocking (paper §5.4, third extension)\n\n");
  fetch(net, topo.client, node, "http://news.example/today");
  fetch(net, topo.client, node, "http://warez.example/anything");
  fetch(net, topo.client, node, "http://piracy.example/downloads/file");
  fetch(net, topo.client, node, "http://piracy.example/about");

  for (const auto& site : {"http://news.example", "http://warez.example"}) {
    for (const auto& line : node.site_log(site)) {
      std::printf("log [%s]: %s\n", site, line.c_str());
    }
  }
  return 0;
}
