// The paper's Figure 2 scenario as a runnable service: a published extension
// that transcodes images to fit a Nokia cell phone's 176x208 screen,
// selected by a predicate on the User-Agent header and caching the
// transformed content (paper §5.4, second extension).
#include <cstdio>

#include "media/image.hpp"
#include "proxy/deployment.hpp"
#include "sim/topology.hpp"

using namespace nakika;

namespace {

// ~80 lines in the paper; parameterized by screen size as §5.4 suggests.
const char* transcoder_script = R"JS(
var SCREEN_W = 176;
var SCREEN_H = 208;

var phone = new Policy();
phone.headers = { "User-Agent": "Nokia|SonyEricsson|Motorola" };
phone.onResponse = function() {
  var type = ImageTransformer.type(Response.contentType);
  if (type == null) {
    return;                                    // not an image: pass through
  }
  var cacheKey = "http://transcoded.nakika.net/" + SCREEN_W + "x" + SCREEN_H +
                 "/" + Request.url;
  var cached = Cache.get(cacheKey);
  if (cached != null) {
    Response.setHeader("Content-Type", cached.contentType);
    Response.write(cached.body);
    return;
  }
  var body = new ByteArray();
  var buff = null;
  while (buff = Response.read()) {
    body.append(buff);
  }
  var dim = ImageTransformer.dimensions(body, type);
  if (dim.x > SCREEN_W || dim.y > SCREEN_H) {
    var img = ImageTransformer.transform(body, type, "jpeg", SCREEN_W, SCREEN_H);
    Response.setHeader("Content-Type", "image/jpeg");
    Response.setHeader("Content-Length", img.length);
    Response.write(img);
    Cache.put(cacheKey, { contentType: "image/jpeg", body: img, ttl: 3600 });
    Log.write("transcoded " + Request.path + " " + dim.x + "x" + dim.y +
              " -> fits " + SCREEN_W + "x" + SCREEN_H);
  }
};
phone.register();
)JS";

void fetch_as(sim::network& net, sim::node_id client, proxy::nakika_node& node,
              const char* agent, const char* label) {
  http::request r;
  r.url = http::url::parse("http://photos.example.org/vacation.png");
  r.client_ip = "10.0.0.1";
  r.headers.set("User-Agent", agent);
  proxy::forward_request(net, client, node, r, [label](http::response resp) {
    const auto dims = media::read_dimensions(resp.body->span());
    std::printf("%-22s -> %d, %s, %ux%u, %zu bytes\n", label, resp.status,
                resp.headers.get_or("Content-Type", "?").c_str(),
                dims ? dims->width : 0, dims ? dims->height : 0, resp.body_size());
  });
  net.loop().run();
}

}  // namespace

int main() {
  sim::event_loop loop;
  sim::network net(loop);
  const sim::three_tier topo = sim::build_lan(net);
  proxy::deployment dep(net);
  proxy::origin_server& origin = dep.create_origin(topo.origin);
  dep.map_host("photos.example.org", origin);

  // A large photo on the origin (real raster, honest scaling work).
  origin.add_static("photos.example.org", "/vacation.png", "image/png",
                    util::make_body(media::encode(media::make_test_image(1280, 960, 11),
                                                  media::image_format::png)));
  origin.add_static_text("photos.example.org", "/nakika.js", "application/javascript",
                         transcoder_script);

  proxy::nakika_node& node = dep.create_node(topo.proxy);

  std::printf("image transcoding for small devices (paper Fig. 2 / §5.4)\n\n");
  fetch_as(net, topo.client, node, "Mozilla/5.0 (X11; Linux)", "desktop browser");
  fetch_as(net, topo.client, node, "Nokia6600/2.0 Series60", "Nokia phone");
  fetch_as(net, topo.client, node, "Nokia6600/2.0 Series60", "Nokia phone (cached)");
  fetch_as(net, topo.client, node, "SonyEricssonT610", "Sony Ericsson phone");

  for (const auto& line : node.site_log("http://photos.example.org")) {
    std::printf("log: %s\n", line.c_str());
  }
  return 0;
}
