// Cost model tying the scripting engine to the discrete-event simulator.
// Defaults mirror the constants the paper measured on its 2.8 GHz Pentium 4
// (§5.1): page load 2.9 ms, script load 2.5–5.6 ms, context creation 1.5 ms
// vs 3 µs reuse, parse+execute 0.08–17.8 ms by size, cached resource 1.1 ms,
// decision tree from cache 4 µs, predicate evaluation < 38 µs. The simulator
// charges these as CPU service time; `calibrate()` optionally rescales them
// to the host running this reproduction.
#pragma once

#include <cstddef>

namespace nakika::core {

struct cost_model {
  // Origin/server-side costs (seconds).
  double static_page_serve = 0.0029;   // serving the 2,096-byte page, cold
  double cache_hit_serve = 0.0011;     // Apache cache retrieval

  // Scripting engine costs (seconds).
  double context_create = 0.0015;
  double context_reuse = 3e-6;
  double parse_exec_base = 8e-5;       // smallest script parse+execute
  double parse_exec_per_byte = 1.2e-6; // growth with script size
  double tree_cache_hit = 4e-6;
  double predicate_eval_base = 5e-6;
  double predicate_eval_per_policy = 0.33e-6;  // 100 policies < 38 us
  double handler_dispatch = 10e-6;     // invoking an (empty) event handler

  // DHT integration cost per cold lookup beyond network hops.
  double dht_processing = 0.0005;

  // Proxy bookkeeping per request (header parsing, filter plumbing).
  double proxy_overhead = 0.0006;

  // --- derived helpers ---
  [[nodiscard]] double script_load(std::size_t script_bytes) const {
    // Fetching a script from a nearby server: 2.5–5.6 ms depending on size.
    return 0.0025 + static_cast<double>(script_bytes) * 1.5e-7;
  }
  [[nodiscard]] double parse_exec(std::size_t script_bytes) const {
    return parse_exec_base + static_cast<double>(script_bytes) * parse_exec_per_byte;
  }
  [[nodiscard]] double predicate_eval(std::size_t policy_count) const {
    return predicate_eval_base +
           static_cast<double>(policy_count) * predicate_eval_per_policy;
  }

  // Rescales engine costs by measuring this host's actual parse/execute and
  // context-creation times against the defaults. Factor is clamped to
  // [0.05, 20] so a pathological measurement cannot distort experiments.
  void calibrate();
};

}  // namespace nakika::core
