#include "core/resource_manager.hpp"

#include <algorithm>

namespace nakika::core {

namespace {
// fetch_add for atomic<double> predates universal libstdc++ support for the
// C++20 floating-point overload, so spell it as a CAS loop.
void atomic_add(std::atomic<double>& a, double amount) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + amount, std::memory_order_relaxed)) {
  }
}
}  // namespace

const char* to_string(resource_kind k) {
  switch (k) {
    case resource_kind::cpu: return "cpu";
    case resource_kind::memory: return "memory";
    case resource_kind::bandwidth: return "bandwidth";
    case resource_kind::running_time: return "running_time";
    case resource_kind::total_bytes: return "total_bytes";
  }
  return "?";
}

resource_manager::resource_manager(resource_capacities capacities, double ewma_alpha)
    : capacities_(capacities), ewma_alpha_(ewma_alpha) {
  last_phase1_time_.fill(0.0);
  last_utilization_.fill(0.0);
  throttling_.fill(false);
}

resource_manager::site_state& resource_manager::site_locked(const std::string& site) {
  return sites_[site];
}

void resource_manager::record(const std::string& site, resource_kind kind, double amount) {
  if (amount < 0) return;
  site_state* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state = &site_locked(site);
  }
  atomic_add(state->interval_use[static_cast<std::size_t>(kind)], amount);
}

void resource_manager::record_usage(const std::string& site,
                                    const std::array<double, resource_kind_count>& amounts) {
  site_state* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state = &site_locked(site);
  }
  for (std::size_t k = 0; k < resource_kind_count; ++k) {
    if (amounts[k] > 0) atomic_add(state->interval_use[k], amounts[k]);
  }
}

void resource_manager::pipeline_started(const std::string& site,
                                        std::shared_ptr<std::atomic<bool>> kill_flag) {
  std::lock_guard<std::mutex> lock(mu_);
  site_locked(site).active.push_back(kill_flag);
}

void resource_manager::pipeline_finished(const std::string& site,
                                         const std::shared_ptr<std::atomic<bool>>& kill_flag) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return;
  auto& active = it->second.active;
  active.erase(std::remove_if(active.begin(), active.end(),
                              [&](const std::weak_ptr<std::atomic<bool>>& w) {
                                const auto locked = w.lock();
                                return locked == nullptr || locked == kill_flag;
                              }),
               active.end());
}

// Snapshot-and-reset of the per-site interval counters for one resource.
// exchange(0) per counter, not load-then-store: a charge racing in from a
// worker mid-aggregation rolls into the next interval instead of being
// erased by the reset. Returns (site, consumed) pairs in map order so the
// share arithmetic stays deterministic on the single-threaded sim path.
std::vector<std::pair<resource_manager::site_state*, double>>
resource_manager::consume_interval_locked(resource_kind kind, double* total) {
  const auto ki = static_cast<std::size_t>(kind);
  std::vector<std::pair<site_state*, double>> consumed;
  consumed.reserve(sites_.size());
  *total = 0.0;
  for (auto& [_, s] : sites_) {
    const double use = s.interval_use[ki].exchange(0.0, std::memory_order_relaxed);
    consumed.emplace_back(&s, use);
    *total += use;
  }
  return consumed;
}

bool resource_manager::control_phase1(resource_kind kind, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto ki = static_cast<std::size_t>(kind);
  const double interval = std::max(1e-9, now - last_phase1_time_[ki]);
  last_phase1_time_[ki] = now;

  double total = 0.0;
  const auto consumed = consume_interval_locked(kind, &total);
  double capacity = 0.0;
  switch (kind) {
    case resource_kind::cpu: capacity = capacities_.cpu_seconds_per_second; break;
    case resource_kind::memory: capacity = capacities_.memory_bytes_per_second; break;
    case resource_kind::bandwidth: capacity = capacities_.bandwidth_bytes_per_second; break;
    case resource_kind::running_time:
    case resource_kind::total_bytes:
      capacity = 0.0;  // nonrenewable: tracked, never "congested"
      break;
  }
  const double rate = total / interval;
  last_utilization_[ki] = capacity > 0 ? rate / capacity : 0.0;
  const bool congested =
      is_renewable(kind) && last_utilization_[ki] >= capacities_.congestion_threshold;

  // Weighted shares: a site's contribution is its usage normalized by its
  // scheduling weight, so heavily weighted (paying/trusted) tenants are
  // throttled and terminated last at equal raw usage. All weights 1.0
  // reduces exactly to the unweighted share arithmetic.
  double weighted_total = 0.0;
  for (const auto& [s, use] : consumed) weighted_total += use / s->weight;

  if (congested) {
    ++consecutive_congested_[ki];
    // "Track usage and throttle": contributions update only under
    // overutilization for renewable resources; throttling is proportional.
    for (const auto& [s, use] : consumed) {
      const double share = weighted_total > 0 ? (use / s->weight) / weighted_total : 0.0;
      auto& c = s->contribution[ki];
      if (!c.initialized()) c = util::ewma(ewma_alpha_);
      c.update(share);
      const double prob =
          std::max(s->throttle_probability.load(std::memory_order_relaxed), c.value());
      s->throttle_probability.store(prob, std::memory_order_relaxed);
    }
    throttling_[ki] = true;
  } else if (is_renewable(kind)) {
    consecutive_congested_[ki] = 0;
  } else {
    // Nonrenewable: "track usage" unconditionally.
    for (const auto& [s, use] : consumed) {
      const double share = weighted_total > 0 ? (use / s->weight) / weighted_total : 0.0;
      auto& c = s->contribution[ki];
      if (!c.initialized()) c = util::ewma(ewma_alpha_);
      c.update(share);
    }
  }
  return congested;
}

control_outcome resource_manager::control_phase2(resource_kind kind, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto ki = static_cast<std::size_t>(kind);
  control_outcome outcome;
  outcome.congested_before = throttling_[ki];
  if (!throttling_[ki]) return outcome;

  // Re-measure over the timeout window: did throttling relieve congestion?
  const double interval = std::max(1e-9, now - last_phase1_time_[ki]);
  last_phase1_time_[ki] = now;
  double total = 0.0;
  consume_interval_locked(kind, &total);
  double capacity = 0.0;
  switch (kind) {
    case resource_kind::cpu: capacity = capacities_.cpu_seconds_per_second; break;
    case resource_kind::memory: capacity = capacities_.memory_bytes_per_second; break;
    case resource_kind::bandwidth: capacity = capacities_.bandwidth_bytes_per_second; break;
    default: break;
  }
  const double rate = total / interval;
  last_utilization_[ki] = capacity > 0 ? rate / capacity : 0.0;
  const bool chronic =
      consecutive_congested_[ki] >= capacities_.chronic_congestion_cycles;
  outcome.congested_after =
      last_utilization_[ki] >= capacities_.congestion_threshold || chronic;

  if (outcome.congested_after && termination_enabled_) {
    consecutive_congested_[ki] = 0;  // the termination resets the episode
    // TERMINATE(DEQUEUE(priorityq)): kill the top offender's pipelines.
    // Prefer a site with in-flight pipelines to kill; fall back to the top
    // contributor (whose processes the paper's monitor would kill between
    // requests).
    std::string worst;
    double worst_contribution = 0.0;
    bool worst_has_active = false;
    for (const auto& [site, s] : sites_) {
      const double c = s.contribution[ki].value();
      if (c <= 0) continue;
      const bool has_active = !s.active.empty();
      if ((has_active && !worst_has_active) ||
          (has_active == worst_has_active && c > worst_contribution)) {
        worst_contribution = c;
        worst = site;
        worst_has_active = has_active;
      }
    }
    if (!worst.empty()) {
      auto& s = sites_[worst];
      for (const auto& w : s.active) {
        if (const auto flag = w.lock()) {
          flag->store(true);
          ++outcome.pipelines_killed;
        }
      }
      terminations_.fetch_add(1, std::memory_order_relaxed);
      s.kills.fetch_add(1, std::memory_order_relaxed);
      outcome.terminated_site = worst;
      // A terminated site stays maximally blocked until the penalty expires.
      s.throttle_probability.store(1.0, std::memory_order_relaxed);
      s.penalty_until.store(now + capacities_.termination_penalty_seconds,
                            std::memory_order_relaxed);
    }
  } else if (!outcome.congested_after) {
    // UNTHROTTLE(resource): restore normal operation.
    throttling_[ki] = false;
    bool any_throttling = false;
    for (bool t : throttling_) any_throttling |= t;
    if (!any_throttling) {
      for (auto& [_, s] : sites_) {
        s.throttle_probability.store(0.0, std::memory_order_relaxed);
      }
    }
  }
  return outcome;
}

void resource_manager::set_site_weight(const std::string& site, double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  site_locked(site).weight = std::max(weight, 1e-6);
}

double resource_manager::site_weight(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 1.0 : it->second.weight;
}

std::uint64_t resource_manager::site_kills(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.kills.load(std::memory_order_relaxed);
}

bool resource_manager::admit(const std::string& site, util::rng& rng, double now) {
  site_state* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return true;
    state = &it->second;
  }
  if (now < state->penalty_until.load(std::memory_order_relaxed)) {
    throttle_rejections_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const double probability = state->throttle_probability.load(std::memory_order_relaxed);
  if (probability <= 0.0) return true;
  if (rng.chance(probability)) {
    throttle_rejections_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool resource_manager::is_throttled(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it != sites_.end() &&
         it->second.throttle_probability.load(std::memory_order_relaxed) > 0.0;
}

double resource_manager::contribution(const std::string& site, resource_kind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return 0.0;
  return it->second.contribution[static_cast<std::size_t>(kind)].value();
}

double resource_manager::utilization(resource_kind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_utilization_[static_cast<std::size_t>(kind)];
}

resource_view resource_manager::view_for(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  resource_view v;
  v.cpu_congestion = last_utilization_[static_cast<std::size_t>(resource_kind::cpu)];
  v.memory_congestion = last_utilization_[static_cast<std::size_t>(resource_kind::memory)];
  v.bandwidth_congestion =
      last_utilization_[static_cast<std::size_t>(resource_kind::bandwidth)];
  double best = 0.0;
  const auto it = sites_.find(site);
  if (it != sites_.end()) {
    for (const auto& c : it->second.contribution) best = std::max(best, c.value());
    v.throttled = it->second.throttle_probability.load(std::memory_order_relaxed) > 0.0;
  }
  v.site_contribution = best;
  return v;
}

std::size_t resource_manager::active_pipelines(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return 0;
  std::size_t n = 0;
  for (const auto& w : it->second.active) {
    if (!w.expired()) ++n;
  }
  return n;
}

}  // namespace nakika::core
