// Compiles a stage's decision tree into a bytecode chunk evaluated by the
// script VM at match time. The generated function mirrors decision_tree::walk
// exactly — terminals update a best-(specificity, registration-order) triple,
// children become guarded comparisons (host/path/port/method inline, client
// and header predicates through two native callbacks) — so its verdicts agree
// with the tree walk on every request; the walk stays as the differential
// oracle. Matching runs in a dedicated BARE js::context (no stdlib, no
// limits, its own ops/heap counters), so compiled matching never perturbs the
// script sandbox's resource accounting, fuel, or determinism.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/decision_tree.hpp"
#include "core/policy.hpp"
#include "js/bytecode.hpp"
#include "js/interpreter.hpp"

namespace nakika::core {

class compiled_matcher {
 public:
  // Lowers `tree` to bytecode. Returns nullptr when the tree is not
  // compilable (a specificity component overflows the packed encoding); the
  // caller then keeps using the tree walk.
  [[nodiscard]] static std::shared_ptr<const compiled_matcher> build(
      const decision_tree& tree);

  // Evaluates the compiled predicate chunk against `r` inside `ctx` (a bare
  // matcher context owned by the calling sandbox; see sandbox::match_stage).
  // Not thread-safe: one matcher instance belongs to one sandbox, matching
  // the single-owner discipline of sandboxes themselves.
  [[nodiscard]] match_result match(js::context& ctx, const http::request& r) const;

  [[nodiscard]] std::size_t instruction_count() const { return fn_->code.size(); }
  [[nodiscard]] std::size_t terminal_count() const { return terminals_.size(); }

 private:
  friend class matcher_compiler;
  compiled_matcher() = default;

  struct terminal {
    policy_ptr policy;
    specificity score;
  };

  void bind(js::context& ctx) const;

  std::vector<terminal> terminals_;        // chunk returns an index into this
  std::vector<std::string> client_specs_;  // referenced by the clientOk native
  std::vector<header_predicate> header_preds_;  // referenced by headerOk
  js::compiled_fn_ptr fn_;

  // Per-context binding, created lazily on first match (sandboxes are
  // single-owner, so plain mutables are safe).
  mutable js::context* bound_ctx_ = nullptr;
  mutable js::object_ptr fn_obj_;
  mutable js::value client_ok_;
  mutable js::value header_ok_;
  mutable const http::request* current_ = nullptr;
};

}  // namespace nakika::core
