#include "core/pipeline.hpp"

#include <chrono>

#include "obs/trace.hpp"

namespace nakika::core {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
}  // namespace

pipeline_executor::pipeline_executor(pipeline_config config) : config_(std::move(config)) {}

struct pipeline_executor::run {
  http::request request;
  sandbox* sb = nullptr;
  stage_loader load_stage;
  resource_fetcher fetch_resource;
  std::function<void(pipeline_result)> done;

  std::deque<std::string> forward;       // next stage script URLs, front = next
  std::vector<policy_ptr> backward;      // matched policies, back = innermost
  exec_state exec;
  pipeline_result result;
  std::size_t stages_started = 0;
  bool finished = false;
};

void pipeline_executor::execute(http::request request, sandbox& sb,
                                std::string site_script_url, stage_loader load_stage,
                                resource_fetcher fetch_resource, exec_state base,
                                std::function<void(pipeline_result)> done) {
  auto r = std::make_shared<run>();
  r->request = std::move(request);
  r->sb = &sb;
  r->load_stage = std::move(load_stage);
  r->fetch_resource = std::move(fetch_resource);
  r->done = std::move(done);
  r->exec = std::move(base);
  r->exec.request = &r->request;
  r->exec.response = nullptr;

  // Fig. 4: PUSH serverwall, PUSH site script, PUSH clientwall — POP order is
  // client wall first, then the site, then the server wall.
  r->forward.push_back(config_.clientwall_url);
  r->forward.push_back(std::move(site_script_url));
  r->forward.push_back(config_.serverwall_url);

  sb.begin_run();
  step_forward(r);
}

void pipeline_executor::step_forward(const std::shared_ptr<run>& r) {
  if (r->finished) return;
  if (r->exec.generated) {
    // An onRequest handler created the response: reverse direction.
    r->result.response = std::move(r->exec.generated_response);
    run_backward(r);
    return;
  }
  if (r->forward.empty()) {
    // Fetch the original resource.
    r->fetch_resource(r->request, [this, r](http::response response, double delay) {
      r->result.response = std::move(response);
      r->result.virtual_delay_seconds += delay;
      run_backward(r);
    });
    return;
  }
  if (r->stages_started >= config_.max_stages) {
    js::script_error overflow(js::script_error_kind::runtime,
                              "pipeline exceeded max_stages (runaway nextStages?)");
    fail(r, overflow);
    return;
  }

  const std::string url = r->forward.front();
  r->forward.pop_front();
  ++r->stages_started;

  obs::trace_context* trace = r->exec.trace;
  const double load_begin =
      trace != nullptr && trace->enabled() ? trace->now() : 0.0;
  r->load_stage(url, [this, r, url, trace, load_begin](stage_fetch_result fetched) {
    if (r->finished) return;
    // Trace-clock time from dispatch to script-in-hand: async origin fetches
    // on the sim path (virtual seconds), synchronous loads in worker mode.
    if (trace != nullptr && trace->enabled()) {
      trace->add(obs::stage::stage_load, trace->now() - load_begin);
    }
    r->result.virtual_delay_seconds += fetched.virtual_delay_seconds;
    if (!fetched.found) {
      step_forward(r);  // stage without a script is a no-op
      return;
    }

    const sandbox::loaded_stage* stage = nullptr;
    stage_load_stats stats;
    try {
      stage = &r->sb->load_stage(url, fetched.source, fetched.version, &stats);
    } catch (const js::script_error& e) {
      fail(r, e);
      return;
    }
    // Script time for the span comes from the stats the sandbox already
    // measures for billing — no extra clock reads on the hot path.
    if (trace != nullptr) {
      trace->add(obs::stage::script_exec, stats.parse_seconds + stats.compile_seconds +
                                              stats.execute_seconds + stats.tree_seconds);
    }
    r->result.script_cpu_seconds += stats.parse_seconds + stats.compile_seconds +
                                    stats.execute_seconds + stats.tree_seconds;
    r->result.script_compile_seconds +=
        stats.parse_seconds + stats.compile_seconds + stats.tree_seconds;
    r->result.script_execute_seconds += stats.execute_seconds;
    if (stats.chunk_cache_hit) ++r->result.chunk_cache_hits;
    ++r->result.stages_executed;

    // FIND-CLOSEST-MATCH on the (possibly rewritten) request.
    obs::trace_context::scoped match_span(trace, obs::stage::policy_match);
    const match_result match = r->sb->match_stage(*stage, r->request);
    match_span.stop();
    if (match.found()) {
      r->backward.push_back(match.matched);
      if (match.matched->has_on_request()) {
        if (!run_handler(r, match.matched->on_request, /*request_phase=*/true)) {
          return;  // failed; `fail` already completed the run
        }
      }
      if (!match.matched->next_stages.empty()) {
        // PREPEND(forward, policy.nextStages): scheduled stages run directly
        // after this one, before already-scheduled stages.
        for (auto it = match.matched->next_stages.rbegin();
             it != match.matched->next_stages.rend(); ++it) {
          r->forward.push_front(*it);
        }
      }
    }
    step_forward(r);
  });
}

void pipeline_executor::run_backward(const std::shared_ptr<run>& r) {
  if (r->finished) return;
  r->exec.response = &r->result.response;

  // POP(backward): innermost stage's onResponse first.
  while (!r->backward.empty()) {
    const policy_ptr p = r->backward.back();
    r->backward.pop_back();
    if (!p->has_on_response()) continue;
    r->exec.read_cursor = 0;  // each handler reads the body from the start
    if (!run_handler(r, p->on_response, /*request_phase=*/false)) {
      return;
    }
  }
  finish(r);
}

bool pipeline_executor::run_handler(const std::shared_ptr<run>& r, const js::value& handler,
                                    bool request_phase) {
  sandbox& sb = *r->sb;
  sb.binding()->current = &r->exec;
  sync_request_to_script(sb.ctx(), r->request);
  if (!request_phase) {
    sync_response_to_script(sb.ctx(), r->result.response);
  }

  const auto start = std::chrono::steady_clock::now();
  bool ok = true;
  try {
    js::interpreter in(sb.ctx());
    in.call(handler, js::value::undefined(), {});
  } catch (const request_terminated_signal&) {
    // Request.terminate(): generated response is already in exec state.
  } catch (const js::script_error& e) {
    ok = false;
    const double spent = seconds_since(start);
    r->result.script_cpu_seconds += spent;
    r->result.script_execute_seconds += spent;
    // The billing measurement doubles as the span's script_exec time — the
    // trace itself takes no clock reads here.
    if (r->exec.trace != nullptr) r->exec.trace->add(obs::stage::script_exec, spent);
    sb.binding()->current = nullptr;
    fail(r, e);
  }
  if (!ok) return false;

  const double spent = seconds_since(start);
  r->result.script_cpu_seconds += spent;
  r->result.script_execute_seconds += spent;
  if (r->exec.trace != nullptr) r->exec.trace->add(obs::stage::script_exec, spent);
  ++r->result.handlers_run;

  // Mirror script-side mutations back into the native message.
  read_back_request(sb.ctx(), r->request);
  if (!request_phase) {
    read_back_response(sb.ctx(), r->exec, r->result.response);
  }
  sb.binding()->current = nullptr;
  return true;
}

void pipeline_executor::finish(const std::shared_ptr<run>& r) {
  if (r->finished) return;
  r->finished = true;
  r->result.ops = r->sb->ops_used();
  r->result.heap_bytes = r->sb->allocation_churn();
  r->result.ic_hits = r->sb->ic_hits();
  r->result.ic_misses = r->sb->ic_misses();
  r->result.ic_mono_hits = r->sb->ic_mono_hits();
  r->result.ic_poly_hits = r->sb->ic_poly_hits();
  r->result.ic_mega_lookups = r->sb->ic_mega_lookups();
  r->result.shape_transitions = r->sb->shape_transitions();
  r->result.shape_dict_fallbacks = r->sb->shape_dict_fallbacks();
  r->result.shapes_live = r->sb->shapes_live();
  const js::gc_run_stats& gc = r->sb->gc_run_stats();
  r->result.gc_collections = gc.collections;
  r->result.gc_objects_collected = gc.objects_collected;
  r->result.gc_bytes_reclaimed = gc.bytes_reclaimed;
  r->result.gc_seconds = gc.seconds;
  r->result.gc_pauses = gc.pauses;
  r->result.bytes_read = r->exec.bytes_read;
  r->result.bytes_written = r->exec.bytes_written;
  r->result.virtual_delay_seconds += r->exec.accumulated_delay;
  r->result.log_lines = std::move(r->exec.log_lines);
  if (r->exec.trace != nullptr) {
    r->exec.trace->add_ic(static_cast<std::uint32_t>(r->result.ic_hits),
                          static_cast<std::uint32_t>(r->result.ic_misses));
  }
  r->done(std::move(r->result));
}

void pipeline_executor::fail(const std::shared_ptr<run>& r, const js::script_error& e) {
  if (r->finished) return;
  r->result.failed = true;
  r->result.error = std::string(js::to_string(e.kind())) + ": " + e.what();
  switch (e.kind()) {
    case js::script_error_kind::terminated:
      // The resource manager killed this pipeline; clients see server busy.
      r->result.terminated = true;
      r->result.response = http::make_error_response(503, "pipeline terminated");
      break;
    default:
      r->result.response = http::make_error_response(500, r->result.error);
      break;
  }
  finish(r);
}

}  // namespace nakika::core
