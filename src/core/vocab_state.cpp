// State-facing vocabularies: Cache (proxy-cache access for processed
// content), Fetch (subrequests), HardState (per-site replicated storage,
// paper §3.3), and Messages (reliable messaging). All are partitioned or
// mediated per site, so hosted code cannot touch another site's state.
#include "core/vocabulary.hpp"
#include "js/stdlib.hpp"
#include "util/strings.hpp"

namespace nakika::core {

using js::arg_or_undefined;
using js::make_native_function;
using js::require_string;
using js::throw_js;
using js::value;

namespace {

value response_to_script(js::interpreter& in, const http::response& r) {
  auto obj = in.ctx().make_object();
  obj->set("status", value::number(r.status));
  obj->set("contentType", value::string(r.headers.get_or("Content-Type", "")));
  auto body = in.ctx().make_byte_array();
  if (r.body) {
    body->bytes = *r.body;
    in.ctx().charge_object(*body, body->bytes.size());
  }
  obj->set("body", value::object(body));

  // getHeader closure over a copied header map.
  auto headers = std::make_shared<http::header_map>(r.headers);
  obj->set("getHeader",
           value::object(make_native_function(
               "getHeader", [headers](js::interpreter&, const value&,
                                      std::span<value> args) -> value {
                 const auto v = headers->get(require_string(args, 0, "getHeader"));
                 return v ? value::string(*v) : value::null();
               })));
  return value::object(obj);
}

}  // namespace

void install_state_vocabulary(js::context& ctx, exec_binding_ptr binding) {
  // ----- Cache ---------------------------------------------------------------
  auto cache_obj = js::make_plain_object();
  cache_obj->set("get", value::object(make_native_function(
                            "get", [binding](js::interpreter& in, const value&,
                                             std::span<value> args) -> value {
                              exec_state& exec = require_exec(binding, "Cache.get");
                              if (exec.http_cache == nullptr) return value::null();
                              const std::string url = require_string(args, 0, "Cache.get");
                              const auto r = exec.http_cache->get(url, exec.now);
                              if (!r) return value::null();
                              return response_to_script(in, *r);
                            })));
  cache_obj->set("put",
                 value::object(make_native_function(
                     "put", [binding](js::interpreter&, const value&,
                                      std::span<value> args) -> value {
                       exec_state& exec = require_exec(binding, "Cache.put");
                       if (exec.http_cache == nullptr) return value::boolean(false);
                       const std::string url = require_string(args, 0, "Cache.put");
                       const value spec = arg_or_undefined(args, 1);
                       if (!spec.is_object()) {
                         throw_js("Cache.put: second argument must be an object");
                       }
                       const auto& obj = spec.as_object();
                       http::response r;
                       const value status = obj->get("status");
                       r.status = status.is_number()
                                      ? static_cast<int>(status.as_number())
                                      : 200;
                       util::byte_buffer body;
                       const value b = obj->get("body");
                       if (b.is_object() &&
                           b.as_object()->kind == js::object_kind::byte_array) {
                         body = b.as_object()->bytes;
                       } else if (!b.is_nullish()) {
                         body.append(b.to_string());
                       }
                       const value content_type = obj->get("contentType");
                       r = http::make_response(
                           r.status,
                           content_type.is_string() ? content_type.as_string()
                                                    : "application/octet-stream",
                           util::make_body(std::move(body)));
                       const value ttl = obj->get("ttl");
                       const std::int64_t ttl_s =
                           ttl.is_number() ? static_cast<std::int64_t>(ttl.as_number())
                                           : 300;
                       if (ttl_s <= 0) throw_js("Cache.put: ttl must be positive");
                       return value::boolean(exec.http_cache->put_with_expiry(
                           url, r, exec.now + ttl_s, exec.now));
                     })));
  cache_obj->set("remove",
                 value::object(make_native_function(
                     "remove", [binding](js::interpreter&, const value&,
                                         std::span<value> args) -> value {
                       exec_state& exec = require_exec(binding, "Cache.remove");
                       if (exec.http_cache == nullptr) return value::boolean(false);
                       return value::boolean(
                           exec.http_cache->remove(require_string(args, 0, "Cache.remove")));
                     })));
  ctx.global()->set("Cache", value::object(cache_obj));

  // ----- Fetch ---------------------------------------------------------------
  auto fetch_obj = js::make_plain_object();
  fetch_obj->set(
      "fetch",
      value::object(make_native_function(
          "fetch", [binding](js::interpreter& in, const value&,
                             std::span<value> args) -> value {
            exec_state& exec = require_exec(binding, "Fetch.fetch");
            if (!exec.fetch) throw_js("Fetch.fetch: subrequests unavailable here");
            http::request sub;
            try {
              sub.url = http::url::parse_lenient(require_string(args, 0, "Fetch.fetch"));
            } catch (const std::invalid_argument& e) {
              throw_js(std::string("Fetch.fetch: ") + e.what());
            }
            sub.client_ip = exec.request != nullptr ? exec.request->client_ip : "0.0.0.0";
            const value opts = arg_or_undefined(args, 1);
            if (opts.is_object()) {
              const value m = opts.as_object()->get("method");
              if (m.is_string()) {
                const auto parsed = http::parse_method(m.as_string());
                if (!parsed) throw_js("Fetch.fetch: unknown method " + m.as_string());
                sub.method = *parsed;
              }
              const value body = opts.as_object()->get("body");
              if (!body.is_nullish()) {
                sub.body = util::make_body(body.to_string());
              }
            }
            const fetch_result r = exec.fetch(sub);
            exec.accumulated_delay += r.virtual_delay_seconds;
            if (!r.ok) throw_js("Fetch.fetch: " + sub.url.str() + " unreachable");
            return response_to_script(in, r.response);
          })));
  ctx.global()->set("Fetch", value::object(fetch_obj));

  // ----- HardState -------------------------------------------------------------
  auto hard_state = js::make_plain_object();
  hard_state->set("get",
                  value::object(make_native_function(
                      "get", [binding](js::interpreter&, const value&,
                                       std::span<value> args) -> value {
                        exec_state& exec = require_exec(binding, "HardState.get");
                        const std::string key = require_string(args, 0, "HardState.get");
                        if (exec.replica != nullptr) {
                          const auto v = exec.replica->get(key);
                          return v ? value::string(*v) : value::null();
                        }
                        if (exec.store == nullptr) return value::null();
                        const auto v = exec.store->get(exec.site, key);
                        return v ? value::string(*v) : value::null();
                      })));
  hard_state->set("put",
                  value::object(make_native_function(
                      "put", [binding](js::interpreter&, const value&,
                                       std::span<value> args) -> value {
                        exec_state& exec = require_exec(binding, "HardState.put");
                        const std::string key = require_string(args, 0, "HardState.put");
                        const std::string val =
                            arg_or_undefined(args, 1).to_string();
                        if (exec.replica != nullptr) {
                          exec.replica->put(key, val);
                          return value::boolean(true);
                        }
                        if (exec.store == nullptr) return value::boolean(false);
                        return value::boolean(exec.store->put(exec.site, key, val));
                      })));
  hard_state->set("scan",
                  value::object(make_native_function(
                      "scan", [binding](js::interpreter& in, const value&,
                                        std::span<value> args) -> value {
                        exec_state& exec = require_exec(binding, "HardState.scan");
                        auto arr = in.ctx().make_array();
                        if (exec.store == nullptr) return value::object(arr);
                        const std::string prefix =
                            args.empty() ? "" : args[0].to_string();
                        for (const auto& [k, v] : exec.store->scan(exec.site, prefix)) {
                          auto entry = in.ctx().make_object();
                          entry->set("key", value::string(k));
                          entry->set("value", value::string(v));
                          arr->elements.push_back(value::object(entry));
                        }
                        return value::object(arr);
                      })));
  ctx.global()->set("HardState", value::object(hard_state));

  // ----- Messages ---------------------------------------------------------------
  auto messages = js::make_plain_object();
  messages->set("publish",
                value::object(make_native_function(
                    "publish", [binding](js::interpreter&, const value&,
                                         std::span<value> args) -> value {
                      exec_state& exec = require_exec(binding, "Messages.publish");
                      if (!exec.publish) {
                        throw_js("Messages.publish: messaging unavailable here");
                      }
                      exec.publish(require_string(args, 0, "Messages.publish"),
                                   arg_or_undefined(args, 1).to_string());
                      return value::undefined();
                    })));
  ctx.global()->set("Messages", value::object(messages));
}

}  // namespace nakika::core
