// Sandbox: the unit of isolation. Wraps one scripting context ("its own
// heap"), the vocabularies, a kill flag for the resource manager, and a cache
// of loaded stages (evaluated scripts + their decision trees). Contexts are
// expensive to create and cheap to reuse — the paper measures 1.5 ms vs 3 µs
// — so nodes pool sandboxes per site.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/script_cache.hpp"
#include "core/decision_tree.hpp"
#include "core/match_compiler.hpp"
#include "core/vocabulary.hpp"
#include "js/bytecode.hpp"
#include "js/interpreter.hpp"

namespace nakika::core {

struct stage_load_stats {
  double parse_seconds = 0.0;     // real time spent parsing
  double compile_seconds = 0.0;   // real time lowering to bytecode (VM engine)
  double execute_seconds = 0.0;   // real time evaluating + registering
  double tree_seconds = 0.0;      // real time building the decision tree
  bool from_cache = false;        // evaluated stage reused (per-sandbox)
  bool chunk_cache_hit = false;   // compiled chunk reused (cross-sandbox)
};

// Shared cache of compiled chunks keyed by source content hash. Chunks are
// immutable, so one cache instance can feed every sandbox of a node (and,
// later, every worker thread).
using chunk_cache = cache::lru_cache<js::compiled_program_ptr>;

class sandbox {
 public:
  explicit sandbox(js::context_limits limits = {},
                   js::engine_kind engine = js::engine_kind::bytecode);

  struct loaded_stage {
    std::shared_ptr<const decision_tree> tree;
    // Bytecode form of the tree's predicates (bytecode engine only; null when
    // the tree wasn't compilable or the sandbox runs the tree-walker).
    std::shared_ptr<const compiled_matcher> matcher;
    std::uint64_t version = 0;
    std::size_t policy_count = 0;
  };

  // Returns the cached stage for (url, version) or nullptr.
  [[nodiscard]] const loaded_stage* find_stage(const std::string& url,
                                               std::uint64_t version) const;

  // Parses + evaluates `source` in this sandbox (policies register during
  // evaluation), builds the decision tree, and caches it under (url,
  // version). Throws js::script_error on script failure. `compile_matcher`
  // lowers the tree's predicates to bytecode too (bytecode engine only) —
  // callers that reload a stage per request (the nkp path) pass false, since
  // a matcher that is never reused can't amortize its build.
  const loaded_stage& load_stage(const std::string& url, const std::string& source,
                                 std::uint64_t version, stage_load_stats* stats = nullptr,
                                 bool compile_matcher = true);

  void evict_stage(const std::string& url);

  // FIND-CLOSEST-MATCH for one loaded stage: the compiled predicate chunk
  // when available (evaluated in this sandbox's bare matcher context, so the
  // script context's accounting is untouched), the tree walk otherwise. Both
  // agree exactly (predicate-parity suite in tests/policy_test.cpp).
  [[nodiscard]] match_result match_stage(const loaded_stage& stage, const http::request& r);

  // Attaches a (node-owned, shared) compiled-chunk cache; only consulted by
  // the bytecode engine.
  void set_chunk_cache(chunk_cache* cache) { chunk_cache_ = cache; }

  [[nodiscard]] js::engine_kind engine() const { return engine_; }
  [[nodiscard]] js::context& ctx() { return *ctx_; }
  [[nodiscard]] const exec_binding_ptr& binding() const { return binding_; }

  // Resets per-run counters; call before each pipeline execution.
  void begin_run();
  [[nodiscard]] std::uint64_t ops_used() const { return ctx_->ops_used(); }
  [[nodiscard]] std::size_t heap_used() const { return ctx_->heap_used(); }
  // Allocation pressure this run, the memory figure the resource manager
  // bills. Bytes the cycle collector reclaimed mid-run are added back: the
  // tenant allocated them either way, and billing must be byte-identical
  // with the collector on or off (workers=0 determinism digest).
  [[nodiscard]] std::size_t allocation_churn() const {
    return ctx_->heap_used() + ctx_->transient_used() + ctx_->gc_reclaimed_run();
  }
  // Cycle-collector activity of the current run (reset by begin_run).
  [[nodiscard]] const js::gc_run_stats& gc_run_stats() const {
    return ctx_->gc().run_stats();
  }
  // Inline-cache effectiveness of the current run (reset by begin_run).
  [[nodiscard]] std::uint64_t ic_hits() const { return ctx_->ic_hits(); }
  [[nodiscard]] std::uint64_t ic_misses() const { return ctx_->ic_misses(); }
  // Polymorphism split of the above: way-0 hits (monomorphic sites), ways 1-3
  // (polymorphic), and lookups at sites that went megamorphic (≥5 layouts;
  // counted under ic_misses).
  [[nodiscard]] std::uint64_t ic_mono_hits() const { return ctx_->ic_mono_hits(); }
  [[nodiscard]] std::uint64_t ic_poly_hits() const { return ctx_->ic_poly_hits(); }
  [[nodiscard]] std::uint64_t ic_mega_lookups() const { return ctx_->ic_mega_lookups(); }
  // Shape (hidden-class) activity of the current run, and the context's
  // current interned-shape count.
  [[nodiscard]] std::uint64_t shape_transitions() const {
    return ctx_->shape_transitions_run();
  }
  [[nodiscard]] std::uint64_t shape_dict_fallbacks() const {
    return ctx_->shape_dict_fallbacks_run();
  }
  [[nodiscard]] std::size_t shapes_live() const { return ctx_->shapes_live(); }

  // Frees pooled VM frames beyond a small working set; sandbox_pool calls
  // this when the sandbox returns to the pool so idle sandboxes don't retain
  // deep-recursion stack capacity.
  void trim_vm_arena();

  // Pool-return reclamation: runs a full cycle-collection over the script
  // heap (so an idle pooled sandbox holds only its live set, not the cyclic
  // garbage of the last request) and shrinks the VM frame arena. Cheap when
  // nothing was allocated since the last cycle. Returns what the collection
  // freed so the caller can bill the GC time to the owning site.
  js::gc_cycle_result reclaim();

  // Termination hook for the resource manager (checked at op boundaries,
  // so it also stops native vocabulary loops between charges).
  void kill() { ctx_->kill_flag()->store(true); }
  // Rearms the flag after a run. Only safe once the pipeline has been
  // deregistered (pipeline_finished) so the monitor can no longer target it —
  // clearing any earlier (e.g. at run start) would erase a concurrent
  // monitor-thread termination.
  void clear_kill() { ctx_->kill_flag()->store(false); }
  [[nodiscard]] std::shared_ptr<std::atomic<bool>> kill_flag() const {
    return ctx_->kill_flag();
  }

  // Real time spent constructing the context (paper: ~1.5 ms), for the cost
  // model's calibration.
  [[nodiscard]] double creation_seconds() const { return creation_seconds_; }

 private:
  std::unique_ptr<js::context> ctx_;
  // Bare context for compiled decision-tree matching, created on first use.
  // Separate from ctx_ so matcher fuel/heap never count against the script's
  // budgets (or the resource manager's view of the pipeline).
  std::unique_ptr<js::context> matcher_ctx_;
  exec_binding_ptr binding_;
  policy_sink_ptr sink_;
  js::engine_kind engine_;
  chunk_cache* chunk_cache_ = nullptr;  // non-owning; the node outlives pools
  std::unordered_map<std::string, loaded_stage> stages_;
  double creation_seconds_ = 0.0;
};

// Per-site pool of reusable sandboxes. Single-owner (no locking): the node's
// sim path owns one, and in worker mode each worker thread owns its own —
// the paper's context-reuse optimization without cross-thread sharing of
// scripting state. Poisoned (killed/corrupted) contexts are discarded;
// healthy ones return with their kill flag rearmed.
class sandbox_pool {
 public:
  // Pops a pooled sandbox for `site` or creates one; `created` reports which
  // happened so the caller can charge the matching cost-model amount.
  [[nodiscard]] sandbox* acquire(const std::string& site, const js::context_limits& limits,
                                 js::engine_kind engine, chunk_cache* chunks,
                                 bool* created = nullptr);
  void release(const std::string& site, sandbox* sb, bool poisoned);

  // Relaxed atomic: the pool itself is single-owner, but aggregate
  // introspection (nakika_node::sandboxes_created) reads counters of
  // worker-owned pools from other threads.
  [[nodiscard]] std::size_t created() const {
    return created_.load(std::memory_order_relaxed);
  }

 private:
  std::map<std::string, std::vector<std::unique_ptr<sandbox>>> pools_;
  std::atomic<std::size_t> created_{0};
};

}  // namespace nakika::core
