#include "core/vocabulary.hpp"

#include "js/stdlib.hpp"
#include "util/strings.hpp"

namespace nakika::core {

using js::arg_or_undefined;
using js::make_native_function;
using js::require_number;
using js::require_string;
using js::throw_js;
using js::value;

exec_state& require_exec(const exec_binding_ptr& binding, const char* who) {
  if (binding == nullptr || binding->current == nullptr) {
    throw_js(std::string(who) + ": no pipeline execution in progress");
  }
  return *binding->current;
}

// ----- Policy vocabulary --------------------------------------------------------

namespace {

// Collects a JS value that may be a string or an array of strings.
std::vector<std::string> string_list(const value& v, const char* what) {
  std::vector<std::string> out;
  if (v.is_nullish()) return out;
  if (v.is_string()) {
    out.push_back(v.as_string());
    return out;
  }
  if (v.is_object() && v.as_object()->kind == js::object_kind::array) {
    for (const value& e : v.as_object()->elements) {
      if (!e.is_string()) throw_js(std::string(what) + ": list entries must be strings");
      out.push_back(e.as_string());
    }
    return out;
  }
  throw_js(std::string(what) + ": expected a string or an array of strings");
}

// Lowers a registered JS policy object into the C++ policy record.
policy lower_policy(js::interpreter& in, const js::object_ptr& obj) {
  (void)in;
  policy p;

  for (const auto& u : string_list(obj->get("url"), "Policy.url")) {
    try {
      p.urls.push_back(http::url::parse_lenient(u));
    } catch (const std::invalid_argument& e) {
      throw_js(std::string("Policy.url: ") + e.what());
    }
  }
  p.clients = string_list(obj->get("client"), "Policy.client");
  for (const auto& m : string_list(obj->get("method"), "Policy.method")) {
    const auto parsed = http::parse_method(m);
    if (!parsed) throw_js("Policy.method: unknown method '" + m + "'");
    p.methods.push_back(*parsed);
  }

  const value headers = obj->get("headers");
  if (headers.is_object() && headers.as_object()->kind == js::object_kind::plain) {
    for (const auto& prop : headers.as_object()->props) {
      for (const auto& pattern_text : string_list(prop.val, "Policy.headers")) {
        header_predicate hp;
        hp.name = prop.key;
        hp.pattern_source = pattern_text;
        try {
          hp.pattern = std::make_shared<util::pattern>(pattern_text);
        } catch (const std::invalid_argument& e) {
          throw_js("Policy.headers: bad pattern for '" + prop.key + "': " + e.what());
        }
        p.headers.push_back(std::move(hp));
      }
    }
  } else if (!headers.is_nullish()) {
    throw_js("Policy.headers: expected an object mapping names to patterns");
  }

  p.on_request = obj->get("onRequest");
  if (!p.on_request.is_nullish() &&
      !(p.on_request.is_object() && p.on_request.as_object()->callable())) {
    throw_js("Policy.onRequest must be a function");
  }
  p.on_response = obj->get("onResponse");
  if (!p.on_response.is_nullish() &&
      !(p.on_response.is_object() && p.on_response.as_object()->callable())) {
    throw_js("Policy.onResponse must be a function");
  }
  p.next_stages = string_list(obj->get("nextStages"), "Policy.nextStages");
  return p;
}

}  // namespace

void install_policy_vocabulary(js::context& ctx, policy_sink_ptr sink) {
  auto ctor = make_native_function(
      "Policy", [](js::interpreter& in, const value& this_value, std::span<value>) -> value {
        // `new Policy()` passes a fresh object as `this`; plain calls get a
        // new object too.
        if (this_value.is_object()) return this_value;
        return value::object(in.ctx().make_object());
      });

  // register() lives on Policy.prototype so every instance sees it.
  auto proto = js::make_plain_object();
  proto->set("register",
             value::object(make_native_function(
                 "register",
                 [sink](js::interpreter& in, const value& this_value,
                        std::span<value>) -> value {
                   if (sink == nullptr || sink->current == nullptr) {
                     throw_js("Policy.register: no stage is loading");
                   }
                   if (!this_value.is_object()) {
                     throw_js("Policy.register: call as policy.register()");
                   }
                   auto p = std::make_shared<policy>(lower_policy(in, this_value.as_object()));
                   p->registration_order = sink->current->next_order++;
                   sink->current->set.policies.push_back(std::move(p));
                   return value::undefined();
                 })));
  ctor->set("prototype", value::object(proto));
  ctx.global()->set("Policy", value::object(ctor));
}

// ----- System vocabulary --------------------------------------------------------

void install_system_vocabulary(js::context& ctx, exec_binding_ptr binding) {
  auto system = js::make_plain_object();

  system->set("isLocal",
              value::object(make_native_function(
                  "isLocal", [binding](js::interpreter&, const value&,
                                       std::span<value> args) -> value {
                    exec_state& exec = require_exec(binding, "System.isLocal");
                    const std::string probe = require_string(args, 0, "System.isLocal");
                    for (const auto& spec : exec.local_specs) {
                      if (spec.find('/') != std::string::npos) {
                        if (http::cidr_contains(spec, probe)) return value::boolean(true);
                      } else if (util::domain_matches(probe, spec) || probe == spec) {
                        return value::boolean(true);
                      }
                    }
                    return value::boolean(false);
                  })));
  system->set("time", value::object(make_native_function(
                          "time", [binding](js::interpreter&, const value&,
                                            std::span<value>) -> value {
                            exec_state& exec = require_exec(binding, "System.time");
                            return value::number(static_cast<double>(exec.now));
                          })));
  system->set("congestion",
              value::object(make_native_function(
                  "congestion", [binding](js::interpreter&, const value&,
                                          std::span<value> args) -> value {
                    exec_state& exec = require_exec(binding, "System.congestion");
                    const std::string which = require_string(args, 0, "System.congestion");
                    if (which == "cpu") return value::number(exec.resources.cpu_congestion);
                    if (which == "memory") {
                      return value::number(exec.resources.memory_congestion);
                    }
                    if (which == "bandwidth") {
                      return value::number(exec.resources.bandwidth_congestion);
                    }
                    throw_js("System.congestion: unknown resource '" + which + "'");
                  })));
  system->set("contribution",
              value::object(make_native_function(
                  "contribution", [binding](js::interpreter&, const value&,
                                            std::span<value>) -> value {
                    exec_state& exec = require_exec(binding, "System.contribution");
                    return value::number(exec.resources.site_contribution);
                  })));
  system->set("throttled",
              value::object(make_native_function(
                  "throttled", [binding](js::interpreter&, const value&,
                                         std::span<value>) -> value {
                    exec_state& exec = require_exec(binding, "System.throttled");
                    return value::boolean(exec.resources.throttled);
                  })));
  system->set("site", value::object(make_native_function(
                          "site", [binding](js::interpreter&, const value&,
                                            std::span<value>) -> value {
                            exec_state& exec = require_exec(binding, "System.site");
                            return value::string(exec.site);
                          })));
  ctx.global()->set("System", value::object(system));

  auto log = js::make_plain_object();
  log->set("write", value::object(make_native_function(
                        "write", [binding](js::interpreter&, const value&,
                                           std::span<value> args) -> value {
                          exec_state& exec = require_exec(binding, "Log.write");
                          exec.log_lines.push_back(arg_or_undefined(args, 0).to_string());
                          return value::undefined();
                        })));
  ctx.global()->set("Log", value::object(log));
}

void install_all_vocabularies(js::context& ctx, exec_binding_ptr binding,
                              policy_sink_ptr sink) {
  install_policy_vocabulary(ctx, std::move(sink));
  install_http_vocabulary(ctx, binding);
  install_system_vocabulary(ctx, binding);
  install_media_vocabulary(ctx, binding);
  install_state_vocabulary(ctx, binding);
}

}  // namespace nakika::core
