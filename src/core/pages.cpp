#include "core/pages.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace nakika::core {

std::string script_string_literal(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string compile_nkp(std::string_view source) {
  // The generated script registers a catch-all policy whose onResponse
  // renders the page: text chunks write through, code blocks run inline.
  std::string body;
  std::size_t pos = 0;
  while (pos < source.size()) {
    const std::size_t open = source.find("<?nkp", pos);
    if (open == std::string_view::npos) {
      if (pos < source.size()) {
        body += "  Response.write(" + script_string_literal(source.substr(pos)) + ");\n";
      }
      break;
    }
    if (open > pos) {
      body += "  Response.write(" + script_string_literal(source.substr(pos, open - pos)) +
              ");\n";
    }
    const std::size_t close = source.find("?>", open + 5);
    if (close == std::string_view::npos) {
      throw std::invalid_argument("nkp: unterminated <?nkp block");
    }
    body += "  ";
    body += source.substr(open + 5, close - open - 5);
    body += "\n";
    pos = close + 2;
  }

  std::string script = "var nkpPage = new Policy();\n";
  script += "nkpPage.onResponse = function() {\n";
  script += body;
  script += "  Response.setHeader(\"Content-Type\", \"text/html\");\n";
  script += "};\n";
  script += "nkpPage.register();\n";
  return script;
}

bool is_nkp_resource(std::string_view path, std::string_view content_type) {
  if (path.ends_with(".nkp")) return true;
  const auto semicolon = content_type.find(';');
  const std::string_view mime = util::trim(
      semicolon == std::string_view::npos ? content_type : content_type.substr(0, semicolon));
  return util::iequals(mime, "text/nkp");
}

}  // namespace nakika::core
