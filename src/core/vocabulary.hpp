// Vocabularies: the native-code libraries Na Kika exposes to scripts as
// global JavaScript objects (paper §3.1). A sandboxed context installs them
// once; per pipeline run, the executor points the shared exec_binding at the
// current exec_state, so reused contexts see fresh request/response data.
//
// Installed globals:
//   Policy            predicate + handler registration (paper Fig. 3)
//   Request/Response  the HTTP message being processed (paper Fig. 2, 5)
//   System            isLocal, time, congestion introspection, logging
//   ImageTransformer  type/dimensions/transform (paper Fig. 2)
//   XmlTransformer    XML + XSL-subset rendering (SIMM workload)
//   Cache             proxy-cache access for processed content
//   Fetch             subrequests to other web resources
//   HardState         per-site replicated storage (paper §3.3)
//   Messages          reliable messaging (paper §3.3)
//   Log               per-site access/event logging (paper §3.3)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/http_cache.hpp"
#include "core/policy.hpp"
#include "http/message.hpp"
#include "js/interpreter.hpp"
#include "state/local_store.hpp"
#include "state/replication.hpp"

namespace nakika::obs {
class trace_context;
}  // namespace nakika::obs

namespace nakika::core {

// Thrown by Request.terminate(status); aborts the current handler and
// short-circuits the pipeline with the generated response.
struct request_terminated_signal {};

struct fetch_result {
  bool ok = false;
  http::response response;
  double virtual_delay_seconds = 0.0;  // charged to the pipeline's completion
};
using fetch_fn = std::function<fetch_result(const http::request&)>;

// Resource-manager view exposed to scripts, "thus allowing scripts to adapt
// to system congestion and recover from past penalization" (paper §3.2).
struct resource_view {
  double cpu_congestion = 0.0;        // utilization in [0, ~]
  double memory_congestion = 0.0;
  double bandwidth_congestion = 0.0;
  double site_contribution = 0.0;     // this site's EWMA share
  bool throttled = false;
};

// Per-pipeline-run state; vocabularies read and mutate through the binding.
struct exec_state {
  http::request* request = nullptr;
  http::response* response = nullptr;  // non-null during onResponse phase

  bool generated = false;              // onRequest produced a response
  http::response generated_response;

  std::size_t read_cursor = 0;         // Response.read() progress
  util::byte_buffer write_buffer;      // Response.write() accumulator
  bool wrote = false;

  std::string site;                    // site identity for state partitioning
  std::vector<std::string> local_specs;  // CIDRs / domain suffixes for isLocal
  std::int64_t now = 0;                // virtual epoch seconds
  double accumulated_delay = 0.0;      // virtual seconds owed to sub-fetches
  std::uint64_t bytes_read = 0;        // resource accounting
  std::uint64_t bytes_written = 0;

  fetch_fn fetch;                            // null when subrequests unavailable
  cache::http_cache* http_cache = nullptr;   // null when cache access disabled
  state::local_store* store = nullptr;       // HardState backing
  state::replica* replica = nullptr;         // replicated HardState (optional)
  std::function<void(const std::string&, const std::string&)> publish;  // Messages
  std::vector<std::string> log_lines;        // Log.write output
  resource_view resources;
  // Per-request trace span (telemetry); null when tracing is off. Owned by
  // the node for the request's lifetime; the pipeline records stage timings
  // through it.
  obs::trace_context* trace = nullptr;
};

// Shared slot the vocabularies capture; the executor retargets it per run.
struct exec_binding {
  exec_state* current = nullptr;
};
using exec_binding_ptr = std::shared_ptr<exec_binding>;

// Receives policies registered while one stage's script runs.
struct policy_registry {
  policy_set set;
  std::uint64_t next_order = 0;
};
// Shared slot for the active registry (swapped per stage load).
struct policy_sink {
  policy_registry* current = nullptr;
};
using policy_sink_ptr = std::shared_ptr<policy_sink>;

// --- installation (see vocab_http.cpp / vocab_media.cpp / vocab_state.cpp) ---
void install_policy_vocabulary(js::context& ctx, policy_sink_ptr sink);
void install_http_vocabulary(js::context& ctx, exec_binding_ptr binding);
void install_system_vocabulary(js::context& ctx, exec_binding_ptr binding);
void install_media_vocabulary(js::context& ctx, exec_binding_ptr binding);
void install_state_vocabulary(js::context& ctx, exec_binding_ptr binding);

// Installs everything above into one context.
void install_all_vocabularies(js::context& ctx, exec_binding_ptr binding,
                              policy_sink_ptr sink);

// Helper shared by vocabularies: the current exec_state or a script error.
[[nodiscard]] exec_state& require_exec(const exec_binding_ptr& binding, const char* who);

// Refresh/readback between the executor and the Request/Response globals.
void sync_request_to_script(js::context& ctx, const http::request& r);
void read_back_request(js::context& ctx, http::request& r);
void sync_response_to_script(js::context& ctx, const http::response& r);
void read_back_response(js::context& ctx, exec_state& exec, http::response& r);

}  // namespace nakika::core
