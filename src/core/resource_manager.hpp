// Congestion-based resource management (paper §3.2, Fig. 6). No a-priori
// quotas: the manager tracks per-site consumption of renewable resources
// (CPU, memory, bandwidth) and nonrenewable ones (running time, total bytes
// transferred). When a resource is congested it throttles sites
// proportionally to their contribution; if congestion persists past the
// control timeout it terminates the pipelines of the largest contributor.
// Contributions are EWMAs of past and present consumption and are exposed to
// scripts (System.contribution), "allowing scripts to adapt to system
// congestion and recover from past penalization".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/vocabulary.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace nakika::core {

enum class resource_kind : std::uint8_t {
  cpu = 0,
  memory,
  bandwidth,
  running_time,
  total_bytes,
};
inline constexpr std::size_t resource_kind_count = 5;

[[nodiscard]] constexpr bool is_renewable(resource_kind k) {
  return k == resource_kind::cpu || k == resource_kind::memory ||
         k == resource_kind::bandwidth;
}
[[nodiscard]] const char* to_string(resource_kind k);

struct resource_capacities {
  double cpu_seconds_per_second = 1.0;       // one core's worth of script CPU
  double memory_bytes_per_second = 256e6;    // allocation-rate proxy for heap load
  double bandwidth_bytes_per_second = 12.5e6;
  // Utilization ratio at which a renewable resource counts as congested.
  double congestion_threshold = 0.9;
  // How long a terminated site stays fully blocked before it may recover
  // ("recover from past penalization", §3.2).
  double termination_penalty_seconds = 5.0;
  // A resource congested at phase 1 this many consecutive cycles counts as
  // persistent congestion even if throttling relieves each individual wait
  // window (an attacker re-triggering per request would otherwise oscillate
  // forever between throttle and unthrottle).
  int chronic_congestion_cycles = 3;
};

struct control_outcome {
  bool congested_before = false;   // at phase 1
  bool congested_after = false;    // at phase 2, post-throttling
  std::string terminated_site;     // non-empty when a site was killed
  std::size_t pipelines_killed = 0;
};

// Thread-safety: every public method may be called from any thread. The hot
// accounting path (record / admit, called per request by every worker) only
// takes the mutex to locate the site entry and then updates lock-free atomic
// counters; the periodic CONTROL phases aggregate those atomics under the
// mutex, so EWMAs, throttling state, and termination decisions stay
// consistent while workers keep charging. Kill flags are shared
// atomic<bool>s the VM polls at loop back-edges, so phase-2 terminations
// reach pipelines running on other threads without any handshake.
class resource_manager {
 public:
  explicit resource_manager(resource_capacities capacities = {}, double ewma_alpha = 0.5);

  // --- accounting (called by the node around pipeline executions) ---
  void record(const std::string& site, resource_kind kind, double amount);
  // Batched per-pipeline variant: one site lookup (one lock acquisition)
  // covering every resource kind — the per-request hot path on worker
  // threads. Negative amounts are ignored per element, like record().
  void record_usage(const std::string& site,
                    const std::array<double, resource_kind_count>& amounts);
  void pipeline_started(const std::string& site,
                        std::shared_ptr<std::atomic<bool>> kill_flag);
  void pipeline_finished(const std::string& site,
                         const std::shared_ptr<std::atomic<bool>>& kill_flag);

  // --- the CONTROL procedure (paper Fig. 6), split at WAIT(TIMEOUT) ---
  // Phase 1 at time `now`: detect congestion over the elapsed interval,
  // update usage EWMAs, start throttling proportionally. Returns whether the
  // resource was congested.
  bool control_phase1(resource_kind kind, double now);
  // Phase 2 after the timeout: if still congested, terminate the largest
  // contributor; otherwise restore normal operation.
  control_outcome control_phase2(resource_kind kind, double now);

  // --- admission (the "server busy" flag, paper §4) ---
  // False when the request should be rejected with 503 due to throttling or
  // an active termination penalty. `now` gates penalty expiry.
  [[nodiscard]] bool admit(const std::string& site, util::rng& rng, double now = 0.0);
  [[nodiscard]] bool is_throttled(const std::string& site) const;

  // --- introspection ---
  [[nodiscard]] double contribution(const std::string& site, resource_kind kind) const;
  [[nodiscard]] double utilization(resource_kind kind) const;  // last interval
  [[nodiscard]] resource_view view_for(const std::string& site) const;

  [[nodiscard]] std::size_t active_pipelines(const std::string& site) const;
  [[nodiscard]] std::uint64_t terminations() const {
    return terminations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t throttle_rejections() const {
    return throttle_rejections_.load(std::memory_order_relaxed);
  }
  // Control-phase terminations that selected this site (the per-site split of
  // terminations(); 0 for sites never killed).
  [[nodiscard]] std::uint64_t site_kills(const std::string& site) const;

  // Testing/ablation hook: disable termination, keep throttling.
  void set_termination_enabled(bool enabled) { termination_enabled_ = enabled; }

  // --- multi-tenant scheduling weights ---
  // A site with weight w is entitled to w relative shares of a congested
  // resource: contributions (and hence throttle probability and termination
  // order) are computed from usage normalized by weight, so a weight-4 site
  // consuming 4x what a weight-1 site does contributes equally. Default 1.0;
  // values are clamped to a small positive floor.
  void set_site_weight(const std::string& site, double weight);
  [[nodiscard]] double site_weight(const std::string& site) const;

 private:
  struct site_state {
    // Consumption accumulated in the current control interval, per resource.
    // Workers fetch_add lock-free; the CONTROL phases read-and-reset under
    // the manager mutex.
    std::array<std::atomic<double>, resource_kind_count> interval_use{};
    // EWMA contribution (weighted share of total), per resource (guarded by
    // mu_).
    std::array<util::ewma, resource_kind_count> contribution;
    // Scheduling weight (guarded by mu_; read only by the CONTROL phases).
    double weight = 1.0;
    // Read by admit() without the full control-state lock.
    std::atomic<double> throttle_probability{0.0};
    std::atomic<double> penalty_until{0.0};  // terminated sites blocked until then
    std::atomic<std::uint64_t> kills{0};     // times phase 2 terminated this site
    std::vector<std::weak_ptr<std::atomic<bool>>> active;  // guarded by mu_
  };

  // std::map never invalidates element references, so record() can drop the
  // lock after locating a site and update its atomics contention-free.
  [[nodiscard]] site_state& site_locked(const std::string& site);
  // Drains every site's interval counter for `kind` (exchange(0), so racing
  // charges defer to the next interval rather than being lost) and returns
  // the per-site consumption alongside the sum in *total.
  std::vector<std::pair<site_state*, double>> consume_interval_locked(resource_kind kind,
                                                                      double* total);

  resource_capacities capacities_;
  double ewma_alpha_;
  mutable std::mutex mu_;
  std::map<std::string, site_state> sites_;
  std::array<double, resource_kind_count> last_phase1_time_{};
  std::array<double, resource_kind_count> last_utilization_{};
  std::array<bool, resource_kind_count> throttling_{};
  std::array<int, resource_kind_count> consecutive_congested_{};
  bool termination_enabled_ = true;
  std::atomic<std::uint64_t> terminations_{0};
  std::atomic<std::uint64_t> throttle_rejections_{0};
};

}  // namespace nakika::core
