// Decision tree for predicate evaluation (paper §4): "the matcher builds a
// decision tree for that pipeline stage, with nodes in the tree representing
// choices ... the components of a resource URL's server name, the port, the
// components of the path, the components of the client address, the HTTP
// methods, and, finally, individual headers."
//
// URL predicates become component chains (sharing prefixes across policies,
// which is what buys the lookup speed); client/method/header predicates
// become single typed children whose specificity contribution is precomputed,
// so the tree's verdicts agree exactly with the reference linear matcher
// (property-tested in tests/core).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/policy.hpp"

namespace nakika::core {

class matcher_compiler;  // match_compiler.cpp: lowers the tree to bytecode

class decision_tree {
 public:
  decision_tree() : root_(std::make_unique<node>()) {}

  // Builds the tree for one pipeline stage's registered policies.
  static decision_tree build(const policy_set& set);

  // Depth-first search for the closest valid match; agrees with
  // match_linear on both the chosen policy and its specificity.
  [[nodiscard]] match_result match(const http::request& r) const;

  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] std::size_t policy_count() const { return policy_count_; }

 private:
  // The matcher compiler walks the built tree to emit an equivalent bytecode
  // chunk (shared prefixes become shared code paths).
  friend class matcher_compiler;

  struct node;
  using node_ptr = std::unique_ptr<node>;

  struct node {
    std::map<std::string, node_ptr> host_children;        // reversed host components
    std::map<std::uint16_t, node_ptr> port_children;
    std::map<std::string, node_ptr> path_children;
    struct client_child {
      std::string spec;
      node_ptr next;
    };
    std::vector<client_child> client_children;
    std::map<http::method, node_ptr> method_children;
    struct header_child {
      header_predicate pred;
      node_ptr next;
    };
    std::vector<header_child> header_children;

    // Policies whose predicate path terminates here, with the specificity
    // accumulated along the path.
    std::vector<std::pair<policy_ptr, specificity>> terminals;
  };

  struct request_view;
  static void walk(const node& n, const request_view& rv, std::size_t host_index,
                   std::size_t path_index, match_result& best, std::uint64_t& best_order);
  static std::size_t count_nodes(const node& n);

  node_ptr root_;
  std::size_t policy_count_ = 0;
};

}  // namespace nakika::core
