#include "core/worker_pool.hpp"

#include <algorithm>

namespace nakika::core {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// ----- worker_context ---------------------------------------------------------

sandbox* worker_context::acquire(const std::string& site, const js::context_limits& limits,
                                 js::engine_kind engine, chunk_cache* chunks,
                                 bool* created) {
  return pool_.acquire(site, limits, engine, chunks, created);
}

void worker_context::release(const std::string& site, sandbox* sb, bool poisoned) {
  pool_.release(site, sb, poisoned);
}

// ----- steal_ring -------------------------------------------------------------

worker_pool::steal_ring::steal_ring(std::size_t capacity_pow2)
    : mask_(capacity_pow2 - 1), cells_(capacity_pow2) {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool worker_pool::steal_ring::push(job&& j) {
  std::size_t pos = tail_.load(std::memory_order_relaxed);
  cell* c;
  for (;;) {
    c = &cells_[pos & mask_];
    const std::size_t seq = c->seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
    } else if (dif < 0) {
      return false;  // ring full
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
  c->item = std::move(j);
  c->seq.store(pos + 1, std::memory_order_release);
  return true;
}

bool worker_pool::steal_ring::pop(job& out) {
  std::size_t pos = head_.load(std::memory_order_relaxed);
  cell* c;
  for (;;) {
    c = &cells_[pos & mask_];
    const std::size_t seq = c->seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) break;
    } else if (dif < 0) {
      return false;  // ring empty
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
  out = std::move(c->item);
  c->item = nullptr;  // drop captured state now, not at the next overwrite
  c->seq.store(pos + mask_ + 1, std::memory_order_release);
  return true;
}

std::size_t worker_pool::steal_ring::size() const {
  const std::size_t t = tail_.load(std::memory_order_relaxed);
  const std::size_t h = head_.load(std::memory_order_relaxed);
  return t >= h ? t - h : 0;
}

// ----- worker_pool ------------------------------------------------------------

worker_pool::worker_pool(worker_pool_config config) : config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  // Per-ring capacity: enough that a ring rarely overflows under the
  // aggregate bound, capped so huge queue_capacity values don't multiply
  // into huge per-worker allocations (the overflow deque absorbs the rest).
  const std::size_t ring_cap =
      next_pow2(std::min<std::size_t>(std::max<std::size_t>(config_.queue_capacity, 2), 4096));
  rings_.reserve(config_.workers);
  stats_.reserve(config_.workers);
  contexts_.reserve(config_.workers);
  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    rings_.push_back(std::make_unique<steal_ring>(ring_cap));
    stats_.push_back(std::make_unique<worker_stats>());
    contexts_.push_back(std::make_unique<worker_context>(
        i, config_.rng_seed + static_cast<std::uint64_t>(i)));
  }
  // Contexts and rings are fully built before any thread starts, so
  // worker_main never observes a partially constructed vector.
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(*contexts_[i]); });
  }
}

worker_pool::~worker_pool() { stop(); }

void worker_pool::route(job&& j, std::size_t preferred) {
  // Affinity first; if that ring is disproportionately deep (a hot site
  // monopolizing one worker) or full, fall back to round-robin, then to the
  // overflow deque. The aggregate queued_ reservation already succeeded, so
  // the job must land somewhere.
  const std::size_t n = rings_.size();
  const std::size_t fair =
      queued_.load(std::memory_order_relaxed) / n + rings_[preferred]->capacity() / 4;
  if (rings_[preferred]->size() <= fair && rings_[preferred]->push(std::move(j))) {
    return;
  }
  const std::size_t rr =
      static_cast<std::size_t>(rr_next_.fetch_add(1, std::memory_order_relaxed)) % n;
  if (rr != preferred && rings_[rr]->push(std::move(j))) return;
  overflow_submits_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(overflow_mu_);
    overflow_.push_back(std::move(j));
    overflow_size_.store(overflow_.size(), std::memory_order_relaxed);
  }
}

void worker_pool::wake_one() {
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  // Empty critical section orders the queued_ increment against the
  // sleeper's predicate check, closing the lost-wakeup window.
  { std::lock_guard<std::mutex> lock(wake_mu_); }
  wake_cv_.notify_one();
}

bool worker_pool::try_submit(job j) {
  const std::size_t n = rings_.size();
  const std::size_t rr =
      static_cast<std::size_t>(rr_next_.fetch_add(1, std::memory_order_relaxed)) % n;
  return try_submit(std::move(j), static_cast<std::uint64_t>(rr) * n + rr);
}

bool worker_pool::try_submit(job j, std::uint64_t affinity) {
  // Reserve a queue slot against the aggregate bound first — this keeps the
  // full→503 semantics exact no matter which ring the job lands in.
  std::size_t q = queued_.load(std::memory_order_relaxed);
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed) || q >= config_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (queued_.compare_exchange_weak(q, q + 1, std::memory_order_seq_cst)) break;
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t depth = q + 1;
  std::size_t seen = peak_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !peak_depth_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
  route(std::move(j), static_cast<std::size_t>(affinity % rings_.size()));
  wake_one();
  return true;
}

bool worker_pool::pop_overflow(job& out) {
  if (overflow_size_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(overflow_mu_);
  if (overflow_.empty()) return false;
  out = std::move(overflow_.front());
  overflow_.pop_front();
  overflow_size_.store(overflow_.size(), std::memory_order_relaxed);
  return true;
}

bool worker_pool::try_get(std::size_t self, job& out) {
  if (rings_[self]->pop(out)) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  if (pop_overflow(out)) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  const std::size_t n = rings_.size();
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t victim = (self + k) % n;
    if (rings_[victim]->pop(out)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      stats_[self]->steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void worker_pool::drain() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_seq_cst) == 0; });
}

void worker_pool::stop() {
  stopping_.store(true, std::memory_order_seq_cst);
  { std::lock_guard<std::mutex> lock(wake_mu_); }
  wake_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::size_t worker_pool::queue_depth(std::size_t worker) const {
  return worker < rings_.size() ? rings_[worker]->size() : 0;
}

std::uint64_t worker_pool::steals(std::size_t worker) const {
  return worker < stats_.size() ? stats_[worker]->steals.load(std::memory_order_relaxed)
                                : 0;
}

std::uint64_t worker_pool::total_steals() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s->steals.load(std::memory_order_relaxed);
  return total;
}

std::size_t worker_pool::sandboxes_created() const {
  std::size_t total = 0;
  for (const auto& wc : contexts_) total += wc->sandboxes_created();
  return total;
}

void worker_pool::worker_main(worker_context& wc) {
  const std::size_t self = wc.index();
  // Spin budget before parking: cache-hit jobs are microseconds, so a short
  // burst of retries usually finds work without touching the wake mutex.
  constexpr int k_spin = 64;
  job j;
  for (;;) {
    bool got = false;
    for (int spin = 0; spin < k_spin; ++spin) {
      if (try_get(self, j)) {
        got = true;
        break;
      }
      // Nothing visible anywhere. If the pool is stopping and the aggregate
      // count is zero, every submitted job has been claimed — exit.
      if (queued_.load(std::memory_order_seq_cst) == 0) {
        if (stopping_.load(std::memory_order_seq_cst)) return;
        break;  // genuinely idle: park instead of burning the core
      }
      // queued_ > 0 but no ring delivered: a submit is mid-publish — retry.
    }
    if (got) {
      try {
        j(wc);
      } catch (...) {
        // An exception escaping a job (a throwing completion callback, OOM
        // mid-response) must not unwind out of the thread function — that
        // would std::terminate the whole process. Count it and keep serving.
        job_exceptions_.fetch_add(1, std::memory_order_relaxed);
      }
      j = nullptr;  // drop captured state before sleeping/spinning
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
        { std::lock_guard<std::mutex> lock(wake_mu_); }
        idle_cv_.notify_all();
      }
      continue;
    }
    if (stopping_.load(std::memory_order_seq_cst) &&
        queued_.load(std::memory_order_seq_cst) == 0) {
      return;
    }
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_seq_cst) ||
               queued_.load(std::memory_order_seq_cst) > 0;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

}  // namespace nakika::core
