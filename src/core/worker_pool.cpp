#include "core/worker_pool.hpp"

namespace nakika::core {

// ----- worker_context ---------------------------------------------------------

sandbox* worker_context::acquire(const std::string& site, const js::context_limits& limits,
                                 js::engine_kind engine, chunk_cache* chunks,
                                 bool* created) {
  return pool_.acquire(site, limits, engine, chunks, created);
}

void worker_context::release(const std::string& site, sandbox* sb, bool poisoned) {
  pool_.release(site, sb, poisoned);
}

// ----- worker_pool ------------------------------------------------------------

worker_pool::worker_pool(worker_pool_config config) : config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  contexts_.reserve(config_.workers);
  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    contexts_.push_back(std::make_unique<worker_context>(
        i, config_.rng_seed + static_cast<std::uint64_t>(i)));
  }
  // Contexts are fully built before any thread starts, so worker_main never
  // observes a partially constructed vector.
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(*contexts_[i]); });
  }
}

worker_pool::~worker_pool() { stop(); }

bool worker_pool::try_submit(job j) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= config_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(std::move(j));
    std::size_t depth = queue_.size();
    std::size_t seen = high_watermark_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !high_watermark_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
    }
  }
  not_empty_.notify_one();
  return true;
}

void worker_pool::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void worker_pool::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::size_t worker_pool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t worker_pool::sandboxes_created() const {
  std::size_t total = 0;
  for (const auto& wc : contexts_) total += wc->sandboxes_created();
  return total;
}

void worker_pool::worker_main(worker_context& wc) {
  // Jobs are popped in small batches: one lock acquisition amortizes over up
  // to k_batch short jobs (a cache-hit request is a few microseconds), so the
  // queue mutex doesn't become the serialization point at high request rates.
  constexpr std::size_t k_batch = 8;
  std::vector<job> batch;
  batch.reserve(k_batch);
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      // Fair share first: with a shallow queue every worker should get work
      // rather than one worker hoarding the whole burst.
      std::size_t take = queue_.size() / contexts_.size();
      if (take < 1) take = 1;
      if (take > k_batch) take = k_batch;
      while (!queue_.empty() && batch.size() < take) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      running_ += batch.size();
      // More work left and siblings may be parked on the same notify_one that
      // woke us — pass the baton.
      if (!queue_.empty()) not_empty_.notify_one();
    }
    for (job& j : batch) {
      try {
        j(wc);
      } catch (...) {
        // An exception escaping a job (a throwing completion callback, OOM
        // mid-response) must not unwind out of the thread function — that
        // would std::terminate the whole process. Count it and keep serving.
        job_exceptions_.fetch_add(1, std::memory_order_relaxed);
      }
      executed_.fetch_add(1, std::memory_order_relaxed);
    }
    bool now_idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_ -= batch.size();
      now_idle = queue_.empty() && running_ == 0;
    }
    if (now_idle) idle_.notify_all();
  }
}

}  // namespace nakika::core
