// EXECUTE-PIPELINE (paper Fig. 4): the scripting pipeline that mediates every
// HTTP exchange. Forward phase pops stage scripts (client wall, site script,
// server wall, plus dynamically scheduled stages prepended by nextStages),
// selects the closest-matching policy per stage, and runs onRequest handlers;
// an onRequest that generates a response reverses direction early. The
// backward phase runs onResponse handlers in LIFO order.
//
// Stage scripts and the original resource arrive through host callbacks, so
// the executor composes with both the discrete-event simulator (async
// fetches) and direct in-process harnesses (immediate callbacks).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sandbox.hpp"
#include "core/vocabulary.hpp"
#include "http/message.hpp"

namespace nakika::core {

struct pipeline_config {
  // Administrative control stages (paper §3.1: "accessed from well-known
  // locations"; node administrators may override).
  std::string clientwall_url = "http://nakika.net/clientwall.js";
  std::string serverwall_url = "http://nakika.net/serverwall.js";
  // Guard against runaway nextStages scheduling.
  std::size_t max_stages = 32;
};

// Host-provided stage script fetch: found=false means the URL has no script
// (e.g. a site without nakika.js); virtual_delay is charged to the pipeline's
// completion time; cpu_seconds is any host-side work already accounted.
struct stage_fetch_result {
  bool found = false;
  std::string source;
  std::uint64_t version = 0;  // cache key: bump when content changes
  double virtual_delay_seconds = 0.0;
};
using stage_loader =
    std::function<void(const std::string& url, std::function<void(stage_fetch_result)>)>;

// Host-provided origin fetch for the request once the forward phase ends.
using resource_fetcher =
    std::function<void(const http::request&, std::function<void(http::response,
                                                                double virtual_delay)>)>;

struct pipeline_result {
  http::response response;

  bool failed = false;
  bool terminated = false;  // killed by the resource manager
  std::string error;

  // Accounting for the resource manager and the cost model.
  std::uint64_t ops = 0;
  std::size_t heap_bytes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  double virtual_delay_seconds = 0.0;  // network time owed (stage + resource
                                       // fetches + script subrequests)
  double script_cpu_seconds = 0.0;     // real time in handlers + stage loads
  // Split of script_cpu_seconds: time spent getting code runnable
  // (lex/parse/bytecode-compile/decision-tree build) vs time spent running it
  // (stage evaluation + handlers). compile + execute == script_cpu.
  double script_compile_seconds = 0.0;
  double script_execute_seconds = 0.0;
  int chunk_cache_hits = 0;            // stage loads served from compiled-chunk cache
  // Inline-cache effectiveness of this run's script execution (VM engine).
  std::uint64_t ic_hits = 0;
  std::uint64_t ic_misses = 0;
  // Polymorphism split (mono = way-0 hits, poly = ways 1-3, mega = lookups
  // at sites that gave up caching) and shape-system activity of this run.
  std::uint64_t ic_mono_hits = 0;
  std::uint64_t ic_poly_hits = 0;
  std::uint64_t ic_mega_lookups = 0;
  std::uint64_t shape_transitions = 0;
  std::uint64_t shape_dict_fallbacks = 0;
  std::uint64_t shapes_live = 0;  // interned shapes in the sandbox's table
  int stages_executed = 0;
  int handlers_run = 0;
  std::vector<std::string> log_lines;
  // Cycle-collector work this run triggered (watermark collections inside
  // handlers). Billed to the owning site as CPU by account_pipeline; pause
  // samples feed the gc latency histogram.
  std::uint64_t gc_collections = 0;
  std::uint64_t gc_objects_collected = 0;
  std::uint64_t gc_bytes_reclaimed = 0;
  double gc_seconds = 0.0;
  std::vector<double> gc_pauses;
};

class pipeline_executor {
 public:
  explicit pipeline_executor(pipeline_config config = {});

  // Runs the pipeline for `request`. `site_script_url` is the site's
  // nakika.js location (paper: SITE(request.url) + "/nakika.js").
  // `base` seeds the exec_state (site, clocks, cache/store/fetch hooks);
  // request/response pointers are managed by the executor.
  void execute(http::request request, sandbox& sb, std::string site_script_url,
               stage_loader load_stage, resource_fetcher fetch_resource, exec_state base,
               std::function<void(pipeline_result)> done);

  [[nodiscard]] const pipeline_config& config() const { return config_; }

 private:
  struct run;
  void step_forward(const std::shared_ptr<run>& r);
  void run_backward(const std::shared_ptr<run>& r);
  bool run_handler(const std::shared_ptr<run>& r, const js::value& handler,
                   bool request_phase);
  void finish(const std::shared_ptr<run>& r);
  void fail(const std::shared_ptr<run>& r, const js::script_error& e);

  pipeline_config config_;
};

}  // namespace nakika::core
