// Policy objects (paper §3.1, Fig. 3): predicates over HTTP messages paired
// with onRequest/onResponse event handlers and optional dynamically scheduled
// next stages. Scripts instantiate `new Policy()` and call register(); the
// vocabulary in policy.cpp lowers the JavaScript object into this C++ form.
//
// Predicate semantics (paper): values within one property are a disjunction,
// properties are a conjunction, null properties are true. URL values match
// by host-suffix + port + path-prefix; client values by domain suffix, exact
// IP, or CIDR; header values are regular expressions. Precedence for the
// "closest valid match" is URL, then client, then method, then headers.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "http/message.hpp"
#include "js/value.hpp"
#include "util/glob.hpp"

namespace nakika::core {

struct header_predicate {
  std::string name;            // header name, case-insensitive match
  std::string pattern_source;  // regular expression text
  std::shared_ptr<util::pattern> pattern;
};

struct policy {
  std::vector<http::url> urls;          // empty = any URL
  std::vector<std::string> clients;     // domain suffix, IP, or CIDR; empty = any
  std::vector<http::method> methods;    // empty = any
  std::vector<header_predicate> headers;

  js::value on_request;    // undefined when absent (no-op)
  js::value on_response;   // undefined when absent
  std::vector<std::string> next_stages;

  std::uint64_t registration_order = 0;

  [[nodiscard]] bool has_on_request() const {
    return on_request.is_object() && on_request.as_object()->callable();
  }
  [[nodiscard]] bool has_on_response() const {
    return on_response.is_object() && on_response.as_object()->callable();
  }
};
using policy_ptr = std::shared_ptr<const policy>;

// All policies registered by one stage's script, in registration order.
struct policy_set {
  std::vector<policy_ptr> policies;
};

// Specificity vector ordered by the paper's precedence:
// [url components, client components, method, headers]. Lexicographically
// larger = closer match.
using specificity = std::array<int, 4>;

struct match_result {
  policy_ptr matched;        // null when no policy applies
  specificity score{};
  [[nodiscard]] bool found() const { return matched != nullptr; }
};

// --- individual predicate evaluation (shared by the linear matcher and the
//     decision tree; exposed for property tests) ---

// Number of URL components matched (reversed host components + port + path
// prefix components), or nullopt on mismatch. "med.nyu.edu" matches host
// www.med.nyu.edu (domain suffix = reversed-component prefix).
[[nodiscard]] std::optional<int> match_url_value(const http::url& predicate,
                                                 const http::url& target);
// Number of client components matched for a domain-suffix / IP / CIDR spec.
[[nodiscard]] std::optional<int> match_client_value(const std::string& spec,
                                                    const std::string& client_ip,
                                                    const std::string& client_host);
// Evaluates the full predicate; nullopt when the policy does not apply.
[[nodiscard]] std::optional<specificity> evaluate_policy(const policy& p,
                                                         const http::request& r);

// Reference matcher: linear scan over all policies, best specificity wins,
// ties go to the earliest registration. The decision tree must agree with
// this (tested); it exists as the ablation baseline.
[[nodiscard]] match_result match_linear(const policy_set& set, const http::request& r);

}  // namespace nakika::core
