// Multi-worker request execution (ROADMAP: "per-worker sandbox pools + a
// thread-safe request path"). A worker_pool owns N threads pulling jobs from
// one bounded MPMC queue; a full queue rejects the submit so the caller can
// shed load with a 503, mirroring the paper's congestion-based resource
// controls (server-busy flag, §4). Each worker owns a private worker_context
// — its own RNG and per-site sandbox pools — so the only state jobs share is
// what the node explicitly locked (http_cache shards, script caches, the
// compiled-chunk cache, local_store, resource_manager).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sandbox.hpp"
#include "util/random.hpp"

namespace nakika::core {

struct worker_pool_config {
  std::size_t workers = 1;
  // Bounded request queue; try_submit fails when full (backpressure).
  std::size_t queue_capacity = 1024;
  // Per-worker RNGs are seeded rng_seed + worker index, so admission draws
  // stay deterministic per worker even though cross-worker interleaving
  // is not.
  std::uint64_t rng_seed = 42;
};

// What a job sees: the identity, randomness, and sandbox pool of the worker
// executing it. Never shared across threads — acquire/release and the RNG are
// only touched by the owning worker, so none of it needs locks.
class worker_context {
 public:
  worker_context(std::size_t index, std::uint64_t rng_seed)
      : index_(index), rng_(rng_seed) {}

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] util::rng& rng() { return rng_; }

  // Pops a pooled sandbox for `site` or creates one (paper: contexts cost
  // ~1.5 ms to create, ~3 µs to reuse — pooling matters). `created` reports
  // which happened so the caller can charge the right cost-model amount.
  [[nodiscard]] sandbox* acquire(const std::string& site, const js::context_limits& limits,
                                 js::engine_kind engine, chunk_cache* chunks, bool* created);
  // Returns a sandbox to the pool; poisoned (killed/corrupted) contexts are
  // discarded, matching the single-threaded node's policy.
  void release(const std::string& site, sandbox* sb, bool poisoned);

  [[nodiscard]] std::size_t sandboxes_created() const { return pool_.created(); }

 private:
  std::size_t index_;
  util::rng rng_;
  sandbox_pool pool_;
};

class worker_pool {
 public:
  using job = std::function<void(worker_context&)>;

  explicit worker_pool(worker_pool_config config);
  ~worker_pool();  // stops accepting, drains queued jobs, joins

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  // Enqueues a job; returns false (without blocking) when the queue is at
  // capacity or the pool is stopping — the backpressure signal.
  bool try_submit(job j);

  // Blocks until every submitted job has finished and the queue is empty.
  void drain();

  // Stops accepting new jobs, runs what is queued, joins the threads.
  // Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] std::size_t workers() const { return contexts_.size(); }
  [[nodiscard]] std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  // Jobs whose execution escaped with an exception (swallowed so the worker
  // thread survives). Anything non-zero indicates a bug in a job or caller.
  [[nodiscard]] std::uint64_t job_exceptions() const {
    return job_exceptions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t queue_capacity() const { return config_.queue_capacity; }
  // Peak queue depth observed at submit time (sizing feedback for operators).
  [[nodiscard]] std::size_t high_watermark() const {
    return high_watermark_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t sandboxes_created() const;

 private:
  void worker_main(worker_context& wc);

  worker_pool_config config_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable idle_;
  std::deque<job> queue_;
  std::vector<std::unique_ptr<worker_context>> contexts_;
  std::vector<std::thread> threads_;
  std::size_t running_ = 0;  // jobs currently executing (guarded by mu_)
  bool stopping_ = false;    // guarded by mu_
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> job_exceptions_{0};
  std::atomic<std::size_t> high_watermark_{0};
};

}  // namespace nakika::core
