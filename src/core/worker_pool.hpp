// Multi-worker request execution (ROADMAP: "per-worker queues with work
// stealing instead of the single MPMC queue"). A worker_pool owns N threads,
// each fed by its own bounded lock-free ring; submitters route jobs by site
// affinity (same site → same worker → warm sandbox pool) with round-robin
// fallback, and a mutex-guarded overflow deque absorbs bursts that overrun a
// single ring. Workers that run dry steal from sibling rings before
// sleeping, so one hot ring cannot idle the rest of the pool. Aggregate
// admission stays exactly as before: one atomic queued-count against
// queue_capacity, so a full pool rejects the submit and the caller sheds
// load with a 503, mirroring the paper's congestion-based resource controls
// (server-busy flag, §4). Each worker owns a private worker_context — its
// own RNG and per-site sandbox pools — so the only state jobs share is what
// the node explicitly locked (http_cache shards, script caches, the
// compiled-chunk cache, local_store, resource_manager).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sandbox.hpp"
#include "util/random.hpp"

namespace nakika::core {

struct worker_pool_config {
  std::size_t workers = 1;
  // Bounded request queue (aggregate across all per-worker rings plus the
  // overflow deque); try_submit fails when full (backpressure).
  std::size_t queue_capacity = 1024;
  // Per-worker RNGs are seeded rng_seed + worker index, so admission draws
  // stay deterministic per worker even though cross-worker interleaving
  // is not.
  std::uint64_t rng_seed = 42;
};

// What a job sees: the identity, randomness, and sandbox pool of the worker
// executing it. Never shared across threads — acquire/release and the RNG are
// only touched by the owning worker, so none of it needs locks.
class worker_context {
 public:
  worker_context(std::size_t index, std::uint64_t rng_seed)
      : index_(index), rng_(rng_seed) {}

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] util::rng& rng() { return rng_; }

  // Pops a pooled sandbox for `site` or creates one (paper: contexts cost
  // ~1.5 ms to create, ~3 µs to reuse — pooling matters). `created` reports
  // which happened so the caller can charge the right cost-model amount.
  [[nodiscard]] sandbox* acquire(const std::string& site, const js::context_limits& limits,
                                 js::engine_kind engine, chunk_cache* chunks, bool* created);
  // Returns a sandbox to the pool; poisoned (killed/corrupted) contexts are
  // discarded, matching the single-threaded node's policy.
  void release(const std::string& site, sandbox* sb, bool poisoned);

  [[nodiscard]] std::size_t sandboxes_created() const { return pool_.created(); }

 private:
  std::size_t index_;
  util::rng rng_;
  sandbox_pool pool_;
};

class worker_pool {
 public:
  using job = std::function<void(worker_context&)>;

  explicit worker_pool(worker_pool_config config);
  ~worker_pool();  // stops accepting, drains queued jobs, joins

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  // Enqueues a job; returns false (without blocking) when the pool is at
  // aggregate capacity or stopping — the backpressure signal. Routing is
  // round-robin across worker rings.
  bool try_submit(job j);
  // Same, but routes to the worker `affinity % workers()` first (site
  // affinity: requests for one site land on the worker whose sandbox pool
  // is already warm for it). Falls back to round-robin when that ring is
  // disproportionately deep, then to the overflow deque.
  bool try_submit(job j, std::uint64_t affinity);

  // Blocks until every submitted job has finished and the queues are empty.
  void drain();

  // Stops accepting new jobs, runs what is queued, joins the threads.
  // Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] std::size_t workers() const { return contexts_.size(); }
  [[nodiscard]] std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  // Jobs whose execution escaped with an exception (swallowed so the worker
  // thread survives). Anything non-zero indicates a bug in a job or caller.
  [[nodiscard]] std::uint64_t job_exceptions() const {
    return job_exceptions_.load(std::memory_order_relaxed);
  }
  // Jobs queued but not yet started, aggregated across every per-worker
  // ring and the overflow deque (the admission count, so it is exact).
  [[nodiscard]] std::size_t queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }
  // Approximate depth of one worker's ring (operator telemetry).
  [[nodiscard]] std::size_t queue_depth(std::size_t worker) const;
  // Jobs currently waiting in the overflow deque.
  [[nodiscard]] std::size_t overflow_depth() const {
    return overflow_size_.load(std::memory_order_relaxed);
  }
  // Submits that missed every ring and landed in the overflow deque.
  [[nodiscard]] std::uint64_t overflow_submits() const {
    return overflow_submits_.load(std::memory_order_relaxed);
  }
  // Jobs a worker took from a sibling's ring.
  [[nodiscard]] std::uint64_t steals(std::size_t worker) const;
  [[nodiscard]] std::uint64_t total_steals() const;
  [[nodiscard]] std::size_t queue_capacity() const { return config_.queue_capacity; }
  // Peak aggregate queue depth observed at submit time (sizing feedback for
  // operators); spans every ring plus the overflow deque.
  [[nodiscard]] std::size_t peak_queue_depth() const {
    return peak_depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t high_watermark() const { return peak_queue_depth(); }
  [[nodiscard]] std::size_t sandboxes_created() const;

 private:
  // 64 on every target we build for; a fixed value avoids the ABI-stability
  // warning std::hardware_destructive_interference_size carries on GCC.
  static constexpr std::size_t k_cache_line = 64;

  // Bounded MPMC ring (Vyukov sequence-counter scheme). Producers are the
  // submitting threads; consumers are the owning worker and any thief, so
  // both ends are multi-access. Every slot carries its own sequence number:
  // push claims a slot with one CAS on tail_ and publishes with a release
  // store of seq; pop symmetrically on head_. No mutex anywhere.
  class steal_ring {
   public:
    explicit steal_ring(std::size_t capacity_pow2);

    bool push(job&& j);
    bool pop(job& out);
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const { return cells_.size(); }

   private:
    struct cell {
      std::atomic<std::size_t> seq{0};
      job item;
    };

    std::size_t mask_;
    std::vector<cell> cells_;
    alignas(k_cache_line) std::atomic<std::size_t> tail_{0};  // producers
    alignas(k_cache_line) std::atomic<std::size_t> head_{0};  // consumers
  };

  struct alignas(k_cache_line) worker_stats {
    std::atomic<std::uint64_t> steals{0};
  };

  void worker_main(worker_context& wc);
  // One dequeue attempt for worker `self`: own ring, then overflow, then a
  // steal sweep over sibling rings. Decrements queued_ on success.
  bool try_get(std::size_t self, job& out);
  bool pop_overflow(job& out);
  void route(job&& j, std::size_t preferred);
  void wake_one();

  worker_pool_config config_;
  std::vector<std::unique_ptr<steal_ring>> rings_;
  std::vector<std::unique_ptr<worker_stats>> stats_;
  std::vector<std::unique_ptr<worker_context>> contexts_;
  std::vector<std::thread> threads_;

  // Aggregate admission/state counters. queued_ = submitted-not-yet-started
  // (the 503 bound); pending_ = submitted-not-yet-finished (the drain bound).
  alignas(k_cache_line) std::atomic<std::size_t> queued_{0};
  alignas(k_cache_line) std::atomic<std::size_t> pending_{0};
  alignas(k_cache_line) std::atomic<std::uint64_t> rr_next_{0};
  std::atomic<bool> stopping_{false};

  // Overflow path: only touched when a ring overflows, so the mutex is off
  // the common path entirely.
  mutable std::mutex overflow_mu_;
  std::deque<job> overflow_;
  std::atomic<std::size_t> overflow_size_{0};
  std::atomic<std::uint64_t> overflow_submits_{0};

  // Sleep/wake + drain coordination. Workers spin briefly before parking;
  // producers take wake_mu_ only when a sleeper is registered.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> sleepers_{0};

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> job_exceptions_{0};
  std::atomic<std::size_t> peak_depth_{0};
};

}  // namespace nakika::core
