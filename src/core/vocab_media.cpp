// Media vocabularies: ImageTransformer (paper Fig. 2) and XmlTransformer
// (the SIMM XML→HTML rendering off-loaded to the edge, paper §5.2). The
// image operations charge interpreter ops proportional to pixels touched so
// the resource manager sees transcoding as CPU work.
#include "core/vocabulary.hpp"
#include "js/stdlib.hpp"
#include "media/image.hpp"
#include "media/xsl.hpp"

namespace nakika::core {

using js::arg_or_undefined;
using js::make_native_function;
using js::require_string;
using js::throw_js;
using js::value;

namespace {

std::span<const std::uint8_t> require_bytes(std::span<value> args, std::size_t i,
                                            const char* who) {
  if (i >= args.size() || !args[i].is_object() ||
      args[i].as_object()->kind != js::object_kind::byte_array) {
    throw_js(std::string(who) + ": argument " + std::to_string(i + 1) +
             " must be a ByteArray");
  }
  return args[i].as_object()->bytes.span();
}

}  // namespace

void install_media_vocabulary(js::context& ctx, exec_binding_ptr binding) {
  (void)binding;  // media operations are stateless w.r.t. the pipeline

  auto transformer = js::make_plain_object();

  // type(contentType) -> "jpeg" | "png" | "gif" | "raw" | null
  transformer->set("type",
                   value::object(make_native_function(
                       "type", [](js::interpreter&, const value&,
                                  std::span<value> args) -> value {
                         const std::string mime = require_string(args, 0, "type");
                         const auto f = media::format_from_mime(mime);
                         if (!f) return value::null();
                         return value::string(std::string(media::to_string(*f)));
                       })));
  // dimensions(body, type) -> { x, y }
  transformer->set(
      "dimensions",
      value::object(make_native_function(
          "dimensions",
          [](js::interpreter& in, const value&, std::span<value> args) -> value {
            const auto bytes = require_bytes(args, 0, "dimensions");
            const auto dims = media::read_dimensions(bytes);
            if (!dims) throw_js("ImageTransformer.dimensions: not an image");
            auto obj = in.ctx().make_object();
            obj->set("x", value::number(dims->width));
            obj->set("y", value::number(dims->height));
            return value::object(obj);
          })));
  // transform(body, type, targetType, maxWidth, maxHeight) -> ByteArray
  transformer->set(
      "transform",
      value::object(make_native_function(
          "transform",
          [](js::interpreter& in, const value&, std::span<value> args) -> value {
            const auto bytes = require_bytes(args, 0, "transform");
            const std::string target_name = require_string(args, 2, "transform");
            const auto target = media::format_from_name(target_name);
            if (!target) {
              throw_js("ImageTransformer.transform: unknown format '" + target_name + "'");
            }
            const double max_w = arg_or_undefined(args, 3).to_number();
            const double max_h = arg_or_undefined(args, 4).to_number();
            if (!(max_w >= 1) || !(max_h >= 1)) {
              throw_js("ImageTransformer.transform: bad target dimensions");
            }
            const media::transcode_result result = media::transcode_to_fit(
                bytes, *target, static_cast<std::uint32_t>(max_w),
                static_cast<std::uint32_t>(max_h));
            if (!result.ok) {
              throw_js("ImageTransformer.transform: " + result.error);
            }
            // Account the pixel work as interpreter ops (1 op per 64 pixels
            // keeps the exchange rate comparable to script arithmetic).
            in.ctx().add_ops(static_cast<std::uint64_t>(result.dims.width) *
                                 result.dims.height / 64 +
                             1, 0);
            auto out = in.ctx().make_byte_array();
            out->bytes = std::move(result.data);
            in.ctx().charge_object(*out, out->bytes.size());
            return value::object(out);
          })));
  ctx.global()->set("ImageTransformer", value::object(transformer));

  auto xml = js::make_plain_object();
  // render(documentXml, stylesheetXml) -> string
  xml->set("render", value::object(make_native_function(
                         "render", [](js::interpreter& in, const value&,
                                      std::span<value> args) -> value {
                           const std::string doc = require_string(args, 0, "render");
                           const std::string sheet = require_string(args, 1, "render");
                           try {
                             std::string out = media::xsl_transform(sheet, doc);
                             in.ctx().charge_transient(out.size());
                             in.ctx().add_ops(doc.size() / 16 + 1, 0);
                             return value::string(std::move(out));
                           } catch (const std::invalid_argument& e) {
                             throw_js(std::string("XmlTransformer.render: ") + e.what());
                           }
                         })));
  // parse-and-reserialize round trip, for scripts that only restructure
  xml->set("canonicalize",
           value::object(make_native_function(
               "canonicalize", [](js::interpreter& in, const value&,
                                  std::span<value> args) -> value {
                 const std::string doc = require_string(args, 0, "canonicalize");
                 try {
                   std::string out = media::serialize_xml(*media::parse_xml(doc));
                   in.ctx().charge_transient(out.size());
                   return value::string(std::move(out));
                 } catch (const std::invalid_argument& e) {
                   throw_js(std::string("XmlTransformer.canonicalize: ") + e.what());
                 }
               })));
  ctx.global()->set("XmlTransformer", value::object(xml));
}

}  // namespace nakika::core
