// Na Kika Pages (paper §3.1): markup-based content with embedded script,
// for developers versed in PHP/JSP/ASP.NET. Resources with the .nkp
// extension or text/nkp MIME type are compiled: literal text becomes
// Response.write(...) calls and <?nkp ... ?> blocks are inlined as script.
#pragma once

#include <string>
#include <string_view>

namespace nakika::core {

// Compiles an NKP document into an event-handler script whose onResponse
// replaces the body with the rendered output. Throws std::invalid_argument
// on an unterminated <?nkp block.
[[nodiscard]] std::string compile_nkp(std::string_view source);

// True when the resource should be NKP-processed.
[[nodiscard]] bool is_nkp_resource(std::string_view path, std::string_view content_type);

// Escapes text for inclusion in a script string literal.
[[nodiscard]] std::string script_string_literal(std::string_view text);

}  // namespace nakika::core
