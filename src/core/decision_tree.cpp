#include "core/decision_tree.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace nakika::core {

struct decision_tree::request_view {
  std::vector<std::string> host_rev;
  std::uint16_t port;
  std::vector<std::string> path;
  const http::request* request;
};

namespace {

// Specificity contribution of a client spec, independent of the request
// (exact IP = 4, CIDR = prefix octets, domain = label count).
int client_spec_score(const std::string& spec) {
  if (spec.find('/') != std::string::npos) {
    const auto slash = spec.find('/');
    const auto bits = nakika::util::parse_int(std::string_view(spec).substr(slash + 1));
    return bits ? static_cast<int>((*bits + 7) / 8) : 0;
  }
  if (!http::ip_components(spec).empty()) return 4;
  return static_cast<int>(nakika::util::split(spec, '.').size());
}

}  // namespace

decision_tree decision_tree::build(const policy_set& set) {
  decision_tree tree;
  tree.policy_count_ = set.policies.size();

  for (const auto& p : set.policies) {
    // Cartesian expansion: "if a property contains multiple values, nodes
    // are added along multiple paths" (paper §4). Null properties skip their
    // levels entirely.
    const std::size_t url_paths = p->urls.empty() ? 1 : p->urls.size();
    const std::size_t client_paths = p->clients.empty() ? 1 : p->clients.size();
    const std::size_t method_paths = p->methods.empty() ? 1 : p->methods.size();

    for (std::size_t ui = 0; ui < url_paths; ++ui) {
      for (std::size_t ci = 0; ci < client_paths; ++ci) {
        for (std::size_t mi = 0; mi < method_paths; ++mi) {
          node* cursor = tree.root_.get();
          specificity score{0, 0, 0, 0};

          if (!p->urls.empty()) {
            const http::url& u = p->urls[ui];
            for (const auto& comp : u.host_components_reversed()) {
              auto& child = cursor->host_children[util::to_lower(comp)];
              if (!child) child = std::make_unique<node>();
              cursor = child.get();
              ++score[0];
            }
            auto& port_child = cursor->port_children[u.port()];
            if (!port_child) port_child = std::make_unique<node>();
            cursor = port_child.get();
            ++score[0];
            for (const auto& comp : u.path_components()) {
              auto& child = cursor->path_children[comp];
              if (!child) child = std::make_unique<node>();
              cursor = child.get();
              ++score[0];
            }
          }

          if (!p->clients.empty()) {
            const std::string& spec = p->clients[ci];
            node::client_child* found = nullptr;
            for (auto& cc : cursor->client_children) {
              if (cc.spec == spec) {
                found = &cc;
                break;
              }
            }
            if (found == nullptr) {
              cursor->client_children.push_back({spec, std::make_unique<node>()});
              found = &cursor->client_children.back();
            }
            cursor = found->next.get();
            score[1] = client_spec_score(spec);
          }

          if (!p->methods.empty()) {
            auto& child = cursor->method_children[p->methods[mi]];
            if (!child) child = std::make_unique<node>();
            cursor = child.get();
            score[2] = 1;
          }

          for (const auto& h : p->headers) {
            node::header_child* found = nullptr;
            for (auto& hc : cursor->header_children) {
              if (util::iequals(hc.pred.name, h.name) &&
                  hc.pred.pattern_source == h.pattern_source) {
                found = &hc;
                break;
              }
            }
            if (found == nullptr) {
              cursor->header_children.push_back({h, std::make_unique<node>()});
              found = &cursor->header_children.back();
            }
            cursor = found->next.get();
            ++score[3];
          }

          cursor->terminals.emplace_back(p, score);
        }
      }
    }
  }
  return tree;
}

void decision_tree::walk(const node& n, const request_view& rv, std::size_t host_index,
                         std::size_t path_index, match_result& best,
                         std::uint64_t& best_order) {
  for (const auto& [p, score] : n.terminals) {
    const bool better = !best.found() || score > best.score ||
                        (score == best.score && p->registration_order < best_order);
    if (better) {
      best.matched = p;
      best.score = score;
      best_order = p->registration_order;
    }
  }

  if (host_index < rv.host_rev.size()) {
    const auto it = n.host_children.find(rv.host_rev[host_index]);
    if (it != n.host_children.end()) {
      walk(*it->second, rv, host_index + 1, path_index, best, best_order);
    }
  }
  {
    const auto it = n.port_children.find(rv.port);
    if (it != n.port_children.end()) {
      walk(*it->second, rv, host_index, path_index, best, best_order);
    }
  }
  if (path_index < rv.path.size()) {
    const auto it = n.path_children.find(rv.path[path_index]);
    if (it != n.path_children.end()) {
      walk(*it->second, rv, host_index, path_index + 1, best, best_order);
    }
  }
  for (const auto& cc : n.client_children) {
    if (match_client_value(cc.spec, rv.request->client_ip, rv.request->client_host)) {
      walk(*cc.next, rv, host_index, path_index, best, best_order);
    }
  }
  {
    const auto it = n.method_children.find(rv.request->method);
    if (it != n.method_children.end()) {
      walk(*it->second, rv, host_index, path_index, best, best_order);
    }
  }
  for (const auto& hc : n.header_children) {
    const auto v = rv.request->headers.get(hc.pred.name);
    if (v && hc.pred.pattern->search(*v)) {
      walk(*hc.next, rv, host_index, path_index, best, best_order);
    }
  }
}

match_result decision_tree::match(const http::request& r) const {
  request_view rv;
  rv.host_rev = r.url.host_components_reversed();
  for (auto& c : rv.host_rev) c = util::to_lower(c);
  rv.port = r.url.port();
  rv.path = r.url.path_components();
  rv.request = &r;

  match_result best;
  std::uint64_t best_order = 0;
  walk(*root_, rv, 0, 0, best, best_order);
  return best;
}

std::size_t decision_tree::count_nodes(const node& n) {
  std::size_t total = 1;
  for (const auto& [_, c] : n.host_children) total += count_nodes(*c);
  for (const auto& [_, c] : n.port_children) total += count_nodes(*c);
  for (const auto& [_, c] : n.path_children) total += count_nodes(*c);
  for (const auto& cc : n.client_children) total += count_nodes(*cc.next);
  for (const auto& [_, c] : n.method_children) total += count_nodes(*c);
  for (const auto& hc : n.header_children) total += count_nodes(*hc.next);
  return total;
}

std::size_t decision_tree::node_count() const { return count_nodes(*root_); }

}  // namespace nakika::core
