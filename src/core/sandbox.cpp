#include "core/sandbox.hpp"

#include "integrity/sha256.hpp"
#include "js/compiler.hpp"
#include "js/parser.hpp"
#include "js/vm.hpp"

namespace nakika::core {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
}  // namespace

sandbox::sandbox(js::context_limits limits, js::engine_kind engine) : engine_(engine) {
  const auto start = std::chrono::steady_clock::now();
  ctx_ = std::make_unique<js::context>(limits);
  binding_ = std::make_shared<exec_binding>();
  sink_ = std::make_shared<policy_sink>();
  install_all_vocabularies(*ctx_, binding_, sink_);
  creation_seconds_ = seconds_since(start);
}

const sandbox::loaded_stage* sandbox::find_stage(const std::string& url,
                                                 std::uint64_t version) const {
  const auto it = stages_.find(url);
  if (it == stages_.end() || it->second.version != version) return nullptr;
  return &it->second;
}

const sandbox::loaded_stage& sandbox::load_stage(const std::string& url,
                                                 const std::string& source,
                                                 std::uint64_t version,
                                                 stage_load_stats* stats,
                                                 bool compile_matcher) {
  if (const loaded_stage* cached = find_stage(url, version)) {
    if (stats != nullptr) stats->from_cache = true;
    return *cached;
  }

  // Stage evaluation, engine-dependent. The bytecode path checks the shared
  // chunk cache first: a content-hash hit skips lex/parse/compile entirely,
  // which is what makes warm stage loads cheap across a node's sandbox pool.
  double parse_s = 0.0;
  double compile_s = 0.0;
  bool chunk_hit = false;
  js::program_ptr prog;
  js::compiled_program_ptr chunk;
  auto t0 = std::chrono::steady_clock::now();

  if (engine_ == js::engine_kind::bytecode) {
    std::string content_key;
    if (chunk_cache_ != nullptr) {
      content_key = integrity::sha256_hex(source);
      if (auto cached = chunk_cache_->get(content_key)) {
        chunk = std::move(*cached);
        chunk_hit = true;
      }
    }
    if (!chunk) {
      t0 = std::chrono::steady_clock::now();
      prog = js::parse_program(source, url);
      parse_s = seconds_since(t0);
      t0 = std::chrono::steady_clock::now();
      chunk = js::compile_program(prog);
      compile_s = seconds_since(t0);
      if (chunk_cache_ != nullptr) chunk_cache_->put(content_key, chunk);
    }
  } else {
    prog = js::parse_program(source, url);
    parse_s = seconds_since(t0);
  }

  policy_registry registry;
  sink_->current = &registry;
  t0 = std::chrono::steady_clock::now();
  try {
    if (engine_ == js::engine_kind::bytecode) {
      js::run_program(*ctx_, chunk);
    } else {
      js::interpreter in(*ctx_);
      in.run(prog);
    }
  } catch (...) {
    sink_->current = nullptr;
    throw;
  }
  sink_->current = nullptr;
  const double exec_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  auto tree = std::make_shared<decision_tree>(decision_tree::build(registry.set));

  loaded_stage stage;
  // The bytecode engine also lowers the tree's predicates to a chunk the VM
  // evaluates per request (tree walk kept as oracle and fallback).
  if (compile_matcher && engine_ == js::engine_kind::bytecode) {
    stage.matcher = compiled_matcher::build(*tree);
  }
  const double tree_s = seconds_since(t0);

  stage.tree = std::move(tree);
  stage.version = version;
  stage.policy_count = registry.set.policies.size();
  auto [it, inserted] = stages_.insert_or_assign(url, std::move(stage));
  (void)inserted;

  if (stats != nullptr) {
    stats->parse_seconds = parse_s;
    stats->compile_seconds = compile_s;
    stats->execute_seconds = exec_s;
    stats->tree_seconds = tree_s;
    stats->from_cache = false;
    stats->chunk_cache_hit = chunk_hit;
  }
  return it->second;
}

void sandbox::evict_stage(const std::string& url) { stages_.erase(url); }

match_result sandbox::match_stage(const loaded_stage& stage, const http::request& r) {
  if (stage.matcher) {
    if (!matcher_ctx_) {
      // Unlimited bare context: matching is engine-internal work, not script
      // work, so it carries no budgets and no stdlib.
      js::context_limits limits;
      limits.heap_bytes = 0;
      limits.ops = 0;
      matcher_ctx_ = std::make_unique<js::context>(limits, js::context::bare_t{});
    }
    return stage.matcher->match(*matcher_ctx_, r);
  }
  return stage.tree->match(r);
}

void sandbox::begin_run() { ctx_->reset_for_reuse(); }

void sandbox::trim_vm_arena() { ctx_->vm_frames().trim(4); }

js::gc_cycle_result sandbox::reclaim() {
  js::gc_cycle_result r;
  if (ctx_->gc().dirty()) r = ctx_->gc().collect();
  // The matcher context allocates far less (predicate evaluation), but it is
  // just as pooled — keep it trimmed too. Its time is engine-internal and
  // unbilled, like the matching work itself.
  if (matcher_ctx_ != nullptr && matcher_ctx_->gc().dirty()) matcher_ctx_->gc().collect();
  ctx_->vm_frames().shrink(4);
  return r;
}

// ----- sandbox_pool ------------------------------------------------------------

sandbox* sandbox_pool::acquire(const std::string& site, const js::context_limits& limits,
                               js::engine_kind engine, chunk_cache* chunks,
                               bool* created) {
  auto& pool = pools_[site];
  if (!pool.empty()) {
    sandbox* sb = pool.back().release();
    pool.pop_back();
    if (created != nullptr) *created = false;
    return sb;
  }
  created_.fetch_add(1, std::memory_order_relaxed);
  if (created != nullptr) *created = true;
  auto sb = std::make_unique<sandbox>(limits, engine);
  sb->set_chunk_cache(chunks);
  return sb.release();
}

void sandbox_pool::release(const std::string& site, sandbox* sb, bool poisoned) {
  std::unique_ptr<sandbox> owned(sb);
  if (poisoned) return;  // a killed/corrupted context is discarded, not reused
  // A kill that raced in after the pipeline deregistered targeted the
  // finished run; rearm so the next pipeline doesn't inherit it.
  owned->clear_kill();
  // Reclaim on return-to-pool: collect the request's cyclic garbage and
  // shrink the frame arena, so idle pooled sandboxes hold only their live
  // set. A no-op when the node already reclaimed (to bill the GC time).
  owned->reclaim();
  pools_[site].push_back(std::move(owned));
}

}  // namespace nakika::core
