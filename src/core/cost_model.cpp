#include "core/cost_model.hpp"

#include <algorithm>
#include <chrono>

#include "core/sandbox.hpp"

namespace nakika::core {

void cost_model::calibrate() {
  // Measure context creation and a representative stage load on this host.
  const auto t0 = std::chrono::steady_clock::now();
  sandbox probe;
  const double create_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  static const char* probe_script = R"JS(
    var p = new Policy();
    p.url = [ "calibrate.example.org/a/b" ];
    p.onResponse = function() { var x = 0; for (var i = 0; i < 100; i++) { x += i; } };
    p.register();
  )JS";
  stage_load_stats stats;
  probe.load_stage("http://calibrate/probe.js", probe_script, 1, &stats);
  const double load_s = stats.parse_seconds + stats.execute_seconds + stats.tree_seconds;

  // Scale engine-side constants by measured / default, clamped.
  const double create_factor =
      std::clamp(create_s / context_create, 0.05, 20.0);
  const double exec_factor =
      std::clamp(load_s / parse_exec(200), 0.05, 20.0);

  context_create *= create_factor;
  context_reuse *= create_factor;
  parse_exec_base *= exec_factor;
  parse_exec_per_byte *= exec_factor;
  tree_cache_hit *= exec_factor;
  predicate_eval_base *= exec_factor;
  predicate_eval_per_policy *= exec_factor;
  handler_dispatch *= exec_factor;
}

}  // namespace nakika::core
