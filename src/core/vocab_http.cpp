// Request/Response vocabulary: the global objects scripts use to inspect and
// rewrite the HTTP exchange (paper Figs. 2 and 5). Scalar fields are mirrored
// as plain properties before each handler runs and read back afterwards;
// everything with side effects is a native method.
#include <algorithm>

#include "core/vocabulary.hpp"
#include "http/cookies.hpp"
#include "js/stdlib.hpp"
#include "util/strings.hpp"

namespace nakika::core {

using js::arg_or_undefined;
using js::make_native_function;
using js::require_string;
using js::throw_js;
using js::value;

namespace {

constexpr std::size_t read_chunk_bytes = 16 * 1024;

js::object_ptr global_object(js::context& ctx, const char* name) {
  const value v = ctx.global()->get(name);
  if (!v.is_object()) throw std::logic_error(std::string(name) + " vocabulary missing");
  return v.as_object();
}

}  // namespace

void install_http_vocabulary(js::context& ctx, exec_binding_ptr binding) {
  // ----- Request --------------------------------------------------------------
  auto request = js::make_plain_object();

  request->set("getHeader",
               value::object(make_native_function(
                   "getHeader", [binding](js::interpreter&, const value&,
                                          std::span<value> args) -> value {
                     exec_state& exec = require_exec(binding, "Request.getHeader");
                     const auto v =
                         exec.request->headers.get(require_string(args, 0, "getHeader"));
                     return v ? value::string(*v) : value::null();
                   })));
  request->set("setHeader",
               value::object(make_native_function(
                   "setHeader", [binding](js::interpreter&, const value&,
                                          std::span<value> args) -> value {
                     exec_state& exec = require_exec(binding, "Request.setHeader");
                     exec.request->headers.set(require_string(args, 0, "setHeader"),
                                               arg_or_undefined(args, 1).to_string());
                     return value::undefined();
                   })));
  request->set("removeHeader",
               value::object(make_native_function(
                   "removeHeader", [binding](js::interpreter&, const value&,
                                             std::span<value> args) -> value {
                     exec_state& exec = require_exec(binding, "Request.removeHeader");
                     exec.request->headers.remove(require_string(args, 0, "removeHeader"));
                     return value::undefined();
                   })));
  request->set("cookie",
               value::object(make_native_function(
                   "cookie", [binding](js::interpreter&, const value&,
                                       std::span<value> args) -> value {
                     exec_state& exec = require_exec(binding, "Request.cookie");
                     const auto header = exec.request->headers.get("Cookie");
                     if (!header) return value::null();
                     const auto c =
                         http::get_cookie(*header, require_string(args, 0, "cookie"));
                     return c ? value::string(*c) : value::null();
                   })));
  request->set("setUrl",
               value::object(make_native_function(
                   "setUrl", [binding](js::interpreter& in, const value&,
                                       std::span<value> args) -> value {
                     exec_state& exec = require_exec(binding, "Request.setUrl");
                     try {
                       exec.request->url =
                           http::url::parse_lenient(require_string(args, 0, "setUrl"));
                     } catch (const std::invalid_argument& e) {
                       throw_js(std::string("Request.setUrl: ") + e.what());
                     }
                     sync_request_to_script(in.ctx(), *exec.request);
                     return value::undefined();
                   })));
  request->set("terminate",
               value::object(make_native_function(
                   "terminate", [binding](js::interpreter&, const value&,
                                          std::span<value> args) -> value {
                     exec_state& exec = require_exec(binding, "Request.terminate");
                     const int status =
                         args.empty() ? 403 : static_cast<int>(args[0].to_number());
                     exec.generated_response = http::make_error_response(status);
                     exec.generated = true;
                     throw request_terminated_signal{};
                   })));
  request->set("respond",
               value::object(make_native_function(
                   "respond", [binding](js::interpreter&, const value&,
                                        std::span<value> args) -> value {
                     exec_state& exec = require_exec(binding, "Request.respond");
                     const int status =
                         args.empty() ? 200 : static_cast<int>(args[0].to_number());
                     const std::string content_type =
                         args.size() > 1 ? args[1].to_string() : "text/html";
                     util::byte_buffer body;
                     const value b = arg_or_undefined(args, 2);
                     if (b.is_object() &&
                         b.as_object()->kind == js::object_kind::byte_array) {
                       body = b.as_object()->bytes;
                     } else if (!b.is_nullish()) {
                       body.append(b.to_string());
                     }
                     exec.bytes_written += body.size();
                     exec.generated_response = http::make_response(
                         status, content_type, util::make_body(std::move(body)));
                     exec.generated = true;
                     return value::undefined();
                   })));
  ctx.global()->set("Request", value::object(request));

  // ----- Response -------------------------------------------------------------
  auto response = js::make_plain_object();

  response->set("getHeader",
                value::object(make_native_function(
                    "getHeader", [binding](js::interpreter&, const value&,
                                           std::span<value> args) -> value {
                      exec_state& exec = require_exec(binding, "Response.getHeader");
                      if (exec.response == nullptr) throw_js("Response not available yet");
                      const auto v =
                          exec.response->headers.get(require_string(args, 0, "getHeader"));
                      return v ? value::string(*v) : value::null();
                    })));
  response->set("setHeader",
                value::object(make_native_function(
                    "setHeader", [binding](js::interpreter&, const value&,
                                           std::span<value> args) -> value {
                      exec_state& exec = require_exec(binding, "Response.setHeader");
                      if (exec.response == nullptr) throw_js("Response not available yet");
                      exec.response->headers.set(require_string(args, 0, "setHeader"),
                                                 arg_or_undefined(args, 1).to_string());
                      return value::undefined();
                    })));
  response->set("removeHeader",
                value::object(make_native_function(
                    "removeHeader", [binding](js::interpreter&, const value&,
                                              std::span<value> args) -> value {
                      exec_state& exec = require_exec(binding, "Response.removeHeader");
                      if (exec.response == nullptr) throw_js("Response not available yet");
                      exec.response->headers.remove(require_string(args, 0, "removeHeader"));
                      return value::undefined();
                    })));
  // read(): next chunk of the instance-complete body as a ByteArray, or null
  // at end (paper Fig. 2: "the response body is accessed in chunks").
  response->set("read",
                value::object(make_native_function(
                    "read", [binding](js::interpreter& in, const value&,
                                      std::span<value>) -> value {
                      exec_state& exec = require_exec(binding, "Response.read");
                      if (exec.response == nullptr) throw_js("Response not available yet");
                      if (!exec.response->body ||
                          exec.read_cursor >= exec.response->body->size()) {
                        return value::null();
                      }
                      const std::size_t n = std::min(
                          read_chunk_bytes, exec.response->body->size() - exec.read_cursor);
                      auto chunk = in.ctx().make_byte_array();
                      chunk->bytes = exec.response->body->slice(exec.read_cursor, n);
                      in.ctx().charge_object(*chunk, n);
                      exec.read_cursor += n;
                      exec.bytes_read += n;
                      return value::object(chunk);
                    })));
  response->set("write",
                value::object(make_native_function(
                    "write", [binding](js::interpreter&, const value&,
                                       std::span<value> args) -> value {
                      exec_state& exec = require_exec(binding, "Response.write");
                      const value b = arg_or_undefined(args, 0);
                      const std::size_t before = exec.write_buffer.size();
                      if (b.is_object() &&
                          b.as_object()->kind == js::object_kind::byte_array) {
                        exec.write_buffer.append(b.as_object()->bytes);
                      } else if (!b.is_nullish()) {
                        exec.write_buffer.append(b.to_string());
                      }
                      exec.wrote = true;
                      exec.bytes_written += exec.write_buffer.size() - before;
                      return value::undefined();
                    })));
  ctx.global()->set("Response", value::object(response));
}

// ----- property mirroring ---------------------------------------------------------

void sync_request_to_script(js::context& ctx, const http::request& r) {
  auto request = global_object(ctx, "Request");
  request->set("method", value::string(std::string(http::to_string(r.method))));
  request->set("url", value::string(r.url.str()));
  request->set("host", value::string(r.url.host()));
  request->set("path", value::string(r.url.path()));
  request->set("query", value::string(r.url.query()));
  request->set("clientIP", value::string(r.client_ip));
  request->set("clientHost", value::string(r.client_host));
}

void read_back_request(js::context& ctx, http::request& r) {
  auto request = global_object(ctx, "Request");
  const value url_prop = request->get("url");
  if (url_prop.is_string() && url_prop.as_string() != r.url.str()) {
    try {
      r.url = http::url::parse_lenient(url_prop.as_string());
    } catch (const std::invalid_argument&) {
      // A malformed assignment leaves the request URL untouched; scripts
      // that care use Request.setUrl, which validates eagerly.
    }
  }
  const value method_prop = request->get("method");
  if (method_prop.is_string()) {
    if (const auto m = http::parse_method(method_prop.as_string())) r.method = *m;
  }
}

void sync_response_to_script(js::context& ctx, const http::response& r) {
  auto response = global_object(ctx, "Response");
  response->set("status", value::number(r.status));
  response->set("contentType", value::string(r.headers.get_or("Content-Type", "")));
  response->set("contentLength", value::number(static_cast<double>(r.body_size())));
}

void read_back_response(js::context& ctx, exec_state& exec, http::response& r) {
  auto response = global_object(ctx, "Response");
  const value status_prop = response->get("status");
  if (status_prop.is_number()) {
    const int status = static_cast<int>(status_prop.as_number());
    if (status >= 100 && status <= 599) r.status = status;
  }
  if (exec.wrote) {
    r.body = util::make_body(std::move(exec.write_buffer));
    r.headers.set("Content-Length", std::to_string(r.body->size()));
    exec.write_buffer = util::byte_buffer();
    exec.wrote = false;
  }
}

}  // namespace nakika::core
