#include "core/match_compiler.hpp"

#include <map>
#include <span>
#include <utility>

#include "js/ops.hpp"
#include "js/vm.hpp"
#include "util/strings.hpp"

namespace nakika::core {

namespace {

// Specificity packing: the 4-component vector becomes one exactly-
// representable double so the generated code compares ranks with a single
// numeric comparison. Lexicographic order is preserved while every component
// stays below the base; 4096^4 = 2^48 < 2^53.
constexpr int pack_base = 4096;

[[nodiscard]] bool packable(const specificity& s) {
  for (const int c : s) {
    if (c < 0 || c >= pack_base) return false;
  }
  return true;
}

[[nodiscard]] double pack_score(const specificity& s) {
  double packed = 0.0;
  for (const int c : s) packed = packed * pack_base + c;
  return packed;
}

}  // namespace

// Friend of decision_tree: walks the private node structure and emits the
// equivalent chunk. One instance per build() call.
class matcher_compiler {
 public:
  [[nodiscard]] std::shared_ptr<const compiled_matcher> compile(const decision_tree& tree) {
    auto out = std::shared_ptr<compiled_matcher>(new compiled_matcher());
    out_ = out.get();
    fn_ = std::make_shared<js::compiled_fn>();
    fn_->name = "<matcher>";
    fn_->is_toplevel = false;
    fn_->uses_arguments = false;
    for (std::uint32_t i = 0; i < 6; ++i) {
      fn_->params.push_back(js::bc_binding{false, i});
    }
    fn_->this_binding = js::bc_binding{false, 6};
    fn_->arguments_binding = js::bc_binding{false, 7};
    next_slot_ = slot_tmp_base;

    // best = -1; bestS = -1; bestOrd = 0
    emit_const_store(cnum(-1.0), slot_best);
    emit_const_store(cnum(-1.0), slot_best_score);
    emit_const_store(cnum(0.0), slot_best_order);

    if (!emit_node(*tree.root_, 0, 0)) return nullptr;

    emit(js::opcode::load_local, slot_best);
    emit(js::opcode::ret);

    fn_->num_slots = next_slot_;
    out->fn_ = fn_;
    return out;
  }

 private:
  // Frame layout: 0..5 = params (hostRev, port, path, method, clientOk,
  // headerOk), 6 = this, 7 = arguments (never materialized), 8..10 = best
  // tracking, 11+ = per-node temporaries.
  static constexpr std::int32_t slot_host = 0;
  static constexpr std::int32_t slot_port = 1;
  static constexpr std::int32_t slot_path = 2;
  static constexpr std::int32_t slot_method = 3;
  static constexpr std::int32_t slot_client_ok = 4;
  static constexpr std::int32_t slot_header_ok = 5;
  static constexpr std::int32_t slot_best = 8;
  static constexpr std::int32_t slot_best_score = 9;
  static constexpr std::int32_t slot_best_order = 10;
  static constexpr std::uint32_t slot_tmp_base = 11;

  std::size_t emit(js::opcode op, std::int32_t a = 0, std::int32_t b = 0,
                   std::int32_t c = 0) {
    fn_->code.push_back(js::bc_instr{op, a, b, c, 0});
    return fn_->code.size() - 1;
  }
  void patch(std::size_t at) {
    fn_->code[at].a = static_cast<std::int32_t>(fn_->code.size());
  }
  std::int32_t cnum(double d) {
    auto [it, inserted] = num_consts_.try_emplace(d, fn_->consts.size());
    if (inserted) fn_->consts.push_back(js::value::number(d));
    return static_cast<std::int32_t>(it->second);
  }
  std::int32_t cstr(const std::string& s) {
    auto [it, inserted] = str_consts_.try_emplace(s, fn_->consts.size());
    if (inserted) fn_->consts.push_back(js::value::string(s));
    return static_cast<std::int32_t>(it->second);
  }
  void emit_const_store(std::int32_t const_index, std::int32_t slot) {
    emit(js::opcode::push_const, const_index);
    emit(js::opcode::store_local_pop, slot);
  }
  // `binary` pops right then left, so operands are pushed left-first.
  void emit_compare(std::int32_t left_slot, std::int32_t value_const, js::binop op) {
    emit(js::opcode::load_local, left_slot);
    emit(js::opcode::push_const, value_const);
    emit(js::opcode::binary, static_cast<std::int32_t>(op));
  }

  // if (best < 0 || S > bestS || (S == bestS && ord < bestOrd)) take;
  // — the exact `better` test decision_tree::walk applies per terminal.
  void emit_terminal(std::size_t terminal_index, double packed_score, double order) {
    const std::int32_t s_const = cnum(packed_score);
    const std::int32_t ord_const = cnum(order);

    std::vector<std::size_t> to_take;
    emit_compare(slot_best, cnum(0.0), js::binop::lt);
    to_take.push_back(emit(js::opcode::jump_if_true));
    emit(js::opcode::push_const, s_const);
    emit(js::opcode::load_local, slot_best_score);
    emit(js::opcode::binary, static_cast<std::int32_t>(js::binop::gt));
    to_take.push_back(emit(js::opcode::jump_if_true));
    emit(js::opcode::push_const, s_const);
    emit(js::opcode::load_local, slot_best_score);
    emit(js::opcode::binary, static_cast<std::int32_t>(js::binop::sne));
    std::vector<std::size_t> to_skip;
    to_skip.push_back(emit(js::opcode::jump_if_true));
    emit(js::opcode::push_const, ord_const);
    emit(js::opcode::load_local, slot_best_order);
    emit(js::opcode::binary, static_cast<std::int32_t>(js::binop::lt));
    to_skip.push_back(emit(js::opcode::jump_if_false));

    for (const std::size_t j : to_take) patch(j);
    emit_const_store(cnum(static_cast<double>(terminal_index)), slot_best);
    emit_const_store(s_const, slot_best_score);
    emit_const_store(ord_const, slot_best_order);
    for (const std::size_t j : to_skip) patch(j);
  }

  // Guarded call: <predicate fn slot>(index) — falsy skips the subtree.
  template <typename EmitBody>
  bool emit_native_guard(std::int32_t fn_slot, std::size_t index, EmitBody&& body) {
    emit(js::opcode::load_local, fn_slot);
    emit(js::opcode::push_const, cnum(static_cast<double>(index)));
    emit(js::opcode::call, 1);
    const std::size_t jf = emit(js::opcode::jump_if_false);
    if (!body()) return false;
    patch(jf);
    return true;
  }

  bool emit_node(const decision_tree::node& n, std::size_t host_index,
                 std::size_t path_index) {
    for (const auto& [p, score] : n.terminals) {
      if (!packable(score)) return false;
      out_->terminals_.push_back({p, score});
      emit_terminal(out_->terminals_.size() - 1, pack_score(score),
                    static_cast<double>(p->registration_order));
    }

    // Host / path component levels read the component once into a fresh
    // temporary (get_index past the end yields undefined, which fails every
    // string equality — the walk's bounds check, for free).
    if (!n.host_children.empty()) {
      const auto tmp = static_cast<std::int32_t>(next_slot_++);
      emit(js::opcode::load_local, slot_host);
      emit(js::opcode::push_const, cnum(static_cast<double>(host_index)));
      emit(js::opcode::get_index);
      emit(js::opcode::store_local_pop, tmp);
      for (const auto& [comp, child] : n.host_children) {
        emit_compare(tmp, cstr(comp), js::binop::seq);
        const std::size_t jf = emit(js::opcode::jump_if_false);
        if (!emit_node(*child, host_index + 1, path_index)) return false;
        patch(jf);
      }
    }
    for (const auto& [port, child] : n.port_children) {
      emit_compare(slot_port, cnum(static_cast<double>(port)), js::binop::seq);
      const std::size_t jf = emit(js::opcode::jump_if_false);
      if (!emit_node(*child, host_index, path_index)) return false;
      patch(jf);
    }
    if (!n.path_children.empty()) {
      const auto tmp = static_cast<std::int32_t>(next_slot_++);
      emit(js::opcode::load_local, slot_path);
      emit(js::opcode::push_const, cnum(static_cast<double>(path_index)));
      emit(js::opcode::get_index);
      emit(js::opcode::store_local_pop, tmp);
      for (const auto& [comp, child] : n.path_children) {
        emit_compare(tmp, cstr(comp), js::binop::seq);
        const std::size_t jf = emit(js::opcode::jump_if_false);
        if (!emit_node(*child, host_index, path_index + 1)) return false;
        patch(jf);
      }
    }
    for (const auto& cc : n.client_children) {
      out_->client_specs_.push_back(cc.spec);
      const bool ok = emit_native_guard(
          slot_client_ok, out_->client_specs_.size() - 1,
          [&] { return emit_node(*cc.next, host_index, path_index); });
      if (!ok) return false;
    }
    for (const auto& [m, child] : n.method_children) {
      emit_compare(slot_method, cnum(static_cast<double>(static_cast<int>(m))),
                   js::binop::seq);
      const std::size_t jf = emit(js::opcode::jump_if_false);
      if (!emit_node(*child, host_index, path_index)) return false;
      patch(jf);
    }
    for (const auto& hc : n.header_children) {
      out_->header_preds_.push_back(hc.pred);
      const bool ok = emit_native_guard(
          slot_header_ok, out_->header_preds_.size() - 1,
          [&] { return emit_node(*hc.next, host_index, path_index); });
      if (!ok) return false;
    }
    return true;
  }

  compiled_matcher* out_ = nullptr;
  std::shared_ptr<js::compiled_fn> fn_;
  std::uint32_t next_slot_ = slot_tmp_base;
  std::map<double, std::size_t> num_consts_;
  std::map<std::string, std::size_t> str_consts_;
};

std::shared_ptr<const compiled_matcher> compiled_matcher::build(const decision_tree& tree) {
  matcher_compiler mc;
  return mc.compile(tree);
}

void compiled_matcher::bind(js::context& ctx) const {
  bound_ctx_ = &ctx;
  fn_obj_ = ctx.make_compiled_function(fn_, {});
  client_ok_ = js::value::object(js::make_native_function(
      "matchClient",
      [this](js::interpreter&, const js::value&, std::span<js::value> args) {
        const auto i = static_cast<std::size_t>(args[0].as_number());
        return js::value::boolean(
            current_ != nullptr &&
            match_client_value(client_specs_[i], current_->client_ip,
                               current_->client_host)
                .has_value());
      }));
  header_ok_ = js::value::object(js::make_native_function(
      "matchHeader",
      [this](js::interpreter&, const js::value&, std::span<js::value> args) {
        const auto i = static_cast<std::size_t>(args[0].as_number());
        const header_predicate& pred = header_preds_[i];
        const auto v = current_->headers.get(pred.name);
        return js::value::boolean(v.has_value() && pred.pattern->search(*v));
      }));
}

match_result compiled_matcher::match(js::context& ctx, const http::request& r) const {
  if (bound_ctx_ != &ctx) bind(ctx);
  // The matcher context's counters restart per match so engine-internal fuel
  // and transient bytes never accumulate (and never touch the sandbox's own
  // accounting — determinism of the scripted path is untouched).
  ctx.reset_for_reuse();
  current_ = &r;

  auto host_arr = js::make_array_object();
  {
    auto host_rev = r.url.host_components_reversed();
    host_arr->elements.reserve(host_rev.size());
    for (auto& comp : host_rev) {
      host_arr->elements.push_back(js::value::string(util::to_lower(comp)));
    }
  }
  auto path_arr = js::make_array_object();
  {
    auto path = r.url.path_components();
    path_arr->elements.reserve(path.size());
    for (auto& comp : path) {
      path_arr->elements.push_back(js::value::string(std::move(comp)));
    }
  }

  std::vector<js::value> args;
  args.reserve(6);
  args.push_back(js::value::object(std::move(host_arr)));
  args.push_back(js::value::number(static_cast<double>(r.url.port())));
  args.push_back(js::value::object(std::move(path_arr)));
  args.push_back(js::value::number(static_cast<double>(static_cast<int>(r.method))));
  args.push_back(client_ok_);
  args.push_back(header_ok_);

  const js::value ret =
      js::call_compiled(ctx, fn_obj_, js::value::undefined(), std::move(args), 0);
  current_ = nullptr;

  const auto idx = static_cast<std::int64_t>(ret.as_number());
  match_result out;
  if (idx < 0) return out;
  const terminal& t = terminals_[static_cast<std::size_t>(idx)];
  out.matched = t.policy;
  out.score = t.score;
  return out;
}

}  // namespace nakika::core
