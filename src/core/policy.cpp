#include "core/policy.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace nakika::core {

std::optional<int> match_url_value(const http::url& predicate, const http::url& target) {
  // Host: the predicate's reversed components must be a prefix of the
  // target's reversed components (domain-suffix semantics).
  const auto pred_host = predicate.host_components_reversed();
  const auto target_host = target.host_components_reversed();
  if (pred_host.size() > target_host.size()) return std::nullopt;
  for (std::size_t i = 0; i < pred_host.size(); ++i) {
    if (!util::iequals(pred_host[i], target_host[i])) return std::nullopt;
  }
  int score = static_cast<int>(pred_host.size());

  if (predicate.port() != target.port()) return std::nullopt;
  score += 1;  // port level

  // Path: predicate components must be a prefix of the target's.
  const auto pred_path = predicate.path_components();
  const auto target_path = target.path_components();
  if (pred_path.size() > target_path.size()) return std::nullopt;
  for (std::size_t i = 0; i < pred_path.size(); ++i) {
    if (pred_path[i] != target_path[i]) return std::nullopt;
  }
  score += static_cast<int>(pred_path.size());
  return score;
}

std::optional<int> match_client_value(const std::string& spec, const std::string& client_ip,
                                      const std::string& client_host) {
  if (spec.empty()) return std::nullopt;
  // CIDR notation.
  if (spec.find('/') != std::string::npos) {
    if (!http::cidr_contains(spec, client_ip)) return std::nullopt;
    const auto slash = spec.find('/');
    const auto bits = util::parse_int(std::string_view(spec).substr(slash + 1));
    // Specificity in "components": prefix bits / 8, rounded up.
    return bits ? static_cast<int>((*bits + 7) / 8) : 0;
  }
  // Exact IPv4 address.
  if (!http::ip_components(spec).empty()) {
    if (spec != client_ip) return std::nullopt;
    return 4;
  }
  // Domain suffix against the client's resolved hostname.
  if (client_host.empty()) return std::nullopt;
  if (!util::domain_matches(client_host, spec)) return std::nullopt;
  return static_cast<int>(util::split(spec, '.').size());
}

std::optional<specificity> evaluate_policy(const policy& p, const http::request& r) {
  specificity score{0, 0, 0, 0};

  if (!p.urls.empty()) {
    int best = -1;
    for (const auto& u : p.urls) {
      if (const auto s = match_url_value(u, r.url)) best = std::max(best, *s);
    }
    if (best < 0) return std::nullopt;
    score[0] = best;
  }
  if (!p.clients.empty()) {
    int best = -1;
    for (const auto& c : p.clients) {
      if (const auto s = match_client_value(c, r.client_ip, r.client_host)) {
        best = std::max(best, *s);
      }
    }
    if (best < 0) return std::nullopt;
    score[1] = best;
  }
  if (!p.methods.empty()) {
    if (std::find(p.methods.begin(), p.methods.end(), r.method) == p.methods.end()) {
      return std::nullopt;
    }
    score[2] = 1;
  }
  for (const auto& h : p.headers) {
    const auto v = r.headers.get(h.name);
    if (!v || !h.pattern->search(*v)) return std::nullopt;
    ++score[3];
  }
  return score;
}

match_result match_linear(const policy_set& set, const http::request& r) {
  match_result best;
  std::uint64_t best_order = 0;
  for (const auto& p : set.policies) {
    const auto score = evaluate_policy(*p, r);
    if (!score) continue;
    const bool better =
        !best.found() || *score > best.score ||
        (*score == best.score && p->registration_order < best_order);
    if (better) {
      best.matched = p;
      best.score = *score;
      best_order = p->registration_order;
    }
  }
  return best;
}

}  // namespace nakika::core
