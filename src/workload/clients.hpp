// Closed-loop load generation: each logical client issues a request, waits
// for the response, records it, thinks, repeats — the model behind the
// paper's load-generating client machines.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "http/message.hpp"
#include "proxy/origin_server.hpp"
#include "util/random.hpp"
#include "workload/measurement.hpp"

namespace nakika::workload {

// Produces the next request for (client, sequence); nullopt ends the client.
using request_generator =
    std::function<std::optional<http::request>(std::size_t client, std::size_t seq)>;
// Chooses the target endpoint per request (fixed server, or DNS redirection).
using target_selector = std::function<proxy::http_endpoint*(std::size_t client)>;

struct driver_options {
  std::size_t clients = 1;
  std::size_t requests_per_client = 0;  // 0 = run until the deadline
  double deadline_seconds = 0.0;        // 0 = run until generators finish
  double think_time_seconds = 0.0;      // fixed pause between responses
  double ramp_seconds = 0.0;            // client start times spread over this
};

// Drives `clients` concurrent request loops from one simulated host.
class load_driver {
 public:
  load_driver(sim::network& net, sim::node_id client_host, target_selector select,
              request_generator generate);

  // Schedules all client loops; the caller runs the event loop. Results land
  // in `m` (latency, bandwidth, statuses). Window bookkeeping is the
  // caller's (set_window around the run).
  void start(const driver_options& options, measurement& m);

  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

 private:
  void client_loop(std::size_t client, std::size_t seq, const driver_options& options,
                   measurement& m);

  sim::network& net_;
  sim::node_id client_host_;
  target_selector select_;
  request_generator generate_;
  std::size_t in_flight_ = 0;
};

}  // namespace nakika::workload
