// The Surgical Interactive Multimedia Modules workload (paper §5.2): a
// web-based medical-education site with personalized XML content rendered to
// HTML through one shared XSL stylesheet, plus large multimedia objects.
// Two deployments:
//   - single server: the origin personalizes AND renders (Tomcat/JSP model);
//   - Na Kika: the origin personalizes (returns XML), the edge renders via
//     the site's nakika.js and caches multimedia — exactly the split of the
//     paper's two-day port.
// Content sizes are scaled down from the paper's ~1 GB/module so the
// simulation fits in memory; the ratios (video >> image >> page) and the
// 140 kbps video bitrate criterion are preserved (see DESIGN.md).
#pragma once

#include <memory>
#include <string>

#include "proxy/deployment.hpp"
#include "workload/clients.hpp"

namespace nakika::workload {

struct simm_config {
  int modules = 5;                   // the five existing SIMMs
  int pages_per_module = 40;
  int videos_per_module = 12;
  std::size_t video_bytes = 350 * 1024;  // ~20 s at the 140 kbps bitrate
  int images_per_page = 2;
  std::uint32_t image_side = 96;     // SIMG dimension -> ~27 KB encoded
  double video_probability = 0.25;   // page views that play a video
  double zipf_exponent = 0.9;        // module/page popularity skew

  double personalize_cpu = 0.002;    // origin-side per-request customization
  double render_cpu_base = 0.004;    // origin-side XSL rendering (single-server)
  double render_cpu_per_byte = 4e-7;
  std::int64_t media_max_age = 86400;
  std::int64_t xsl_max_age = 86400;

  std::uint64_t seed = 7;
};

class simm_site {
 public:
  static constexpr const char* host_name = "simms.med.nyu.edu";

  explicit simm_site(simm_config cfg = {});

  // Deterministic personalized page content.
  [[nodiscard]] std::string page_xml(int module, int page, const std::string& student) const;
  [[nodiscard]] static std::string stylesheet();
  // The site's edge script: renders XML to HTML at the proxy (paper: the
  // port's nakika.js is ~100 lines).
  [[nodiscard]] static std::string nakika_script();

  // Installs content on an origin server for the given deployment style.
  void install_single_server(proxy::origin_server& origin) const;
  void install_edge(proxy::origin_server& origin) const;

  // Session-structured request generator: page view = HTML/XML + images +
  // (sometimes) a video segment. `edge_mode` selects URL flavour.
  // `client_seed` decorrelates clients across driver instances.
  [[nodiscard]] request_generator make_generator(bool edge_mode,
                                                 std::uint64_t client_seed) const;

  [[nodiscard]] const simm_config& config() const { return cfg_; }

 private:
  void install_media(proxy::origin_server& origin) const;

  simm_config cfg_;
};

}  // namespace nakika::workload
