#include "workload/arrivals.hpp"

#include <cmath>
#include <stdexcept>

namespace nakika::workload {

zipf_stream::zipf_stream(std::size_t objects, double exponent, std::uint64_t seed)
    : objects_(objects), exponent_(exponent), harmonic_(0.0),
      dist_(objects, exponent), rng_(seed) {
  if (objects == 0) throw std::invalid_argument("zipf_stream: objects must be > 0");
  for (std::size_t j = 1; j <= objects_; ++j) {
    harmonic_ += 1.0 / std::pow(static_cast<double>(j), exponent_);
  }
}

std::size_t zipf_stream::next() { return dist_.sample(rng_); }

double zipf_stream::probability(std::size_t i) const {
  if (i >= objects_) return 0.0;
  return (1.0 / std::pow(static_cast<double>(i + 1), exponent_)) / harmonic_;
}

burst_arrivals::burst_arrivals(burst_config cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.base_rate <= 0.0) throw std::invalid_argument("burst_arrivals: base_rate must be > 0");
}

bool burst_arrivals::in_burst(double t) const {
  return cfg_.burst_rate > 0.0 && t >= cfg_.burst_start &&
         t < cfg_.burst_start + cfg_.burst_duration;
}

double burst_arrivals::next() {
  const double rate = in_burst(now_) ? cfg_.burst_rate : cfg_.base_rate;
  now_ += rng_.exponential(1.0 / rate);
  return now_;
}

std::vector<double> burst_arrivals::take(std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(next());
  return out;
}

}  // namespace nakika::workload
