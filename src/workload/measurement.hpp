// Measurement collection for end-to-end experiments: latency and bandwidth
// samples, status counts, throughput. One instance per experiment run.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/stats.hpp"

namespace nakika::workload {

// Coarse content classes for per-type reporting (the paper reports HTML
// latency and multimedia bandwidth separately).
enum class content_class { html, image, video, other };
[[nodiscard]] content_class classify_content(std::string_view content_type);

class measurement {
 public:
  void record(double latency_seconds, std::size_t bytes, int status,
              std::string_view content_type = "");
  void record_failure();

  [[nodiscard]] util::sample_set& latency_of(content_class c) { return by_class_[c].latency; }
  [[nodiscard]] util::sample_set& bandwidth_of(content_class c) {
    return by_class_[c].bandwidth;
  }
  [[nodiscard]] const util::sample_set& latency_of(content_class c) const {
    return by_class_.at(c).latency;
  }
  [[nodiscard]] const util::sample_set& bandwidth_of(content_class c) const {
    return by_class_.at(c).bandwidth;
  }
  [[nodiscard]] bool has_class(content_class c) const { return by_class_.contains(c); }

  [[nodiscard]] util::sample_set& latency() { return latency_; }
  [[nodiscard]] const util::sample_set& latency() const { return latency_; }
  // Observed goodput per transfer, bits per second.
  [[nodiscard]] util::sample_set& bandwidth_bps() { return bandwidth_; }
  [[nodiscard]] const util::sample_set& bandwidth_bps() const { return bandwidth_; }

  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::size_t failures() const { return failures_; }
  [[nodiscard]] std::size_t status_count(int status) const;
  // 5xx and transport failures as a fraction of attempts.
  [[nodiscard]] double failure_rate() const;

  void set_window(double start_seconds, double end_seconds);
  [[nodiscard]] double duration() const { return end_ - start_; }
  [[nodiscard]] double requests_per_second() const;

 private:
  struct class_samples {
    util::sample_set latency;
    util::sample_set bandwidth;
  };
  util::sample_set latency_;
  util::sample_set bandwidth_;
  std::map<content_class, class_samples> by_class_;
  std::map<int, std::size_t> by_status_;
  std::size_t completed_ = 0;
  std::size_t failures_ = 0;
  double start_ = 0.0;
  double end_ = 0.0;
};

}  // namespace nakika::workload
