#include "workload/clients.hpp"

#include "http/wire.hpp"
#include "proxy/plain_proxy.hpp"

namespace nakika::workload {

load_driver::load_driver(sim::network& net, sim::node_id client_host, target_selector select,
                         request_generator generate)
    : net_(net),
      client_host_(client_host),
      select_(std::move(select)),
      generate_(std::move(generate)) {}

void load_driver::start(const driver_options& options, measurement& m) {
  for (std::size_t c = 0; c < options.clients; ++c) {
    const double offset =
        options.ramp_seconds > 0
            ? options.ramp_seconds * static_cast<double>(c) /
                  static_cast<double>(options.clients)
            : 0.0;
    net_.loop().schedule(offset, [this, c, &options, &m]() { client_loop(c, 0, options, m); });
  }
}

void load_driver::client_loop(std::size_t client, std::size_t seq,
                              const driver_options& options, measurement& m) {
  if (options.requests_per_client != 0 && seq >= options.requests_per_client) return;
  if (options.deadline_seconds > 0 && net_.loop().now() >= options.deadline_seconds) return;

  const auto request = generate_(client, seq);
  if (!request) return;
  proxy::http_endpoint* target = select_(client);
  if (target == nullptr) {
    m.record_failure();
    return;
  }

  const double started = net_.loop().now();
  ++in_flight_;
  proxy::forward_request(
      net_, client_host_, *target, *request,
      [this, client, seq, &options, &m, started](http::response resp) {
        --in_flight_;
        const double latency = net_.loop().now() - started;
        m.record(latency, resp.body_size(), resp.status,
                 resp.headers.get_or("Content-Type", ""));
        const auto next = [this, client, seq, &options, &m]() {
          client_loop(client, seq + 1, options, m);
        };
        if (options.think_time_seconds > 0) {
          net_.loop().schedule(options.think_time_seconds, next);
        } else {
          next();
        }
      });
}

}  // namespace nakika::workload
