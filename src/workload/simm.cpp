#include "workload/simm.hpp"

#include "media/image.hpp"
#include "media/xsl.hpp"
#include "util/strings.hpp"

namespace nakika::workload {

simm_site::simm_site(simm_config cfg) : cfg_(cfg) {}

std::string simm_site::page_xml(int module, int page, const std::string& student) const {
  // Deterministic "personalized" content: the progress marker and section
  // emphasis depend on (student, page), the narrative text on (module, page).
  std::uint32_t h = 2166136261u;
  for (char c : student) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  h ^= static_cast<std::uint32_t>(module * 131 + page * 31);

  std::string xml = "<simm module=\"m" + std::to_string(module) + "\" page=\"p" +
                    std::to_string(page) + "\">";
  xml += "<title>Module " + std::to_string(module) + ": workup, page " +
         std::to_string(page) + "</title>";
  xml += "<student id=\"" + student + "\" progress=\"" + std::to_string(h % 100) + "\"/>";
  for (int s = 0; s < 6; ++s) {
    xml += "<section><heading>Stage " + std::to_string(s) + "</heading><para>";
    for (int w = 0; w < 40; ++w) {
      xml += "clinical finding " + std::to_string((h + s * 40 + w) % 977) + " ";
    }
    xml += "</para><emphasis>" + std::string((h + s) % 3 == 0 ? "review" : "proceed") +
           "</emphasis></section>";
  }
  xml += "<assessment>";
  for (int q = 0; q < 3; ++q) {
    xml += "<question n=\"" + std::to_string(q) + "\">Differential for case " +
           std::to_string((h + q) % 53) + "?</question>";
  }
  xml += "</assessment></simm>";
  return xml;
}

std::string simm_site::stylesheet() {
  return R"XSL(<xsl:stylesheet version="1.0">
  <xsl:template match="simm">
    <html><head><title><xsl:value-of select="title"/></title></head>
    <body>
      <h1><xsl:value-of select="title"/></h1>
      <div class="progress"><xsl:value-of select="student/@progress"/>%</div>
      <xsl:for-each select="section">
        <div class="section">
          <h2><xsl:value-of select="heading"/></h2>
          <p><xsl:value-of select="para"/></p>
          <span class="hint"><xsl:value-of select="emphasis"/></span>
        </div>
      </xsl:for-each>
      <ol class="assessment">
        <xsl:for-each select="assessment/question">
          <li><xsl:value-of select="."/></li>
        </xsl:for-each>
      </ol>
    </body></html>
  </xsl:template>
</xsl:stylesheet>)XSL";
}

std::string simm_site::nakika_script() {
  // The site-specific edge script (the paper's port: ~100 lines of policy).
  // Renders personalized XML to HTML with the shared stylesheet at the edge.
  return R"JS(
var render = new Policy();
render.url = [ "simms.med.nyu.edu/content" ];
render.onResponse = function() {
  var ct = Response.getHeader("Content-Type");
  if (ct == null || ct.indexOf("text/xml") != 0) {
    return;
  }
  var body = new ByteArray();
  var chunk = null;
  while (chunk = Response.read()) {
    body.append(chunk);
  }
  var xsl = Fetch.fetch("http://simms.med.nyu.edu/style/simm.xsl");
  var html = XmlTransformer.render(body.toString(), xsl.body.toString());
  Response.setHeader("Content-Type", "text/html");
  Response.setHeader("Content-Length", html.length);
  Response.write(html);
};
render.register();
)JS";
}

void simm_site::install_media(proxy::origin_server& origin) const {
  for (int m = 0; m < cfg_.modules; ++m) {
    // Video segments: opaque bytes at the configured size.
    for (int v = 0; v < cfg_.videos_per_module; ++v) {
      util::byte_buffer body;
      body.resize(cfg_.video_bytes);
      std::uint32_t state = static_cast<std::uint32_t>(cfg_.seed + m * 131 + v);
      for (std::size_t i = 0; i < body.size(); ++i) {
        state = state * 1664525u + 1013904223u;
        body[i] = static_cast<std::uint8_t>(state >> 24);
      }
      origin.add_static(host_name,
                        "/media/m" + std::to_string(m) + "/vid" + std::to_string(v) + ".mp4",
                        "video/mp4", util::make_body(std::move(body)), cfg_.media_max_age);
    }
    // Imaging studies: real SIMG rasters (so edge transcoding examples have
    // honest inputs).
    for (int p = 0; p < cfg_.pages_per_module; ++p) {
      for (int i = 0; i < cfg_.images_per_page; ++i) {
        const media::image img = media::make_test_image(
            cfg_.image_side, cfg_.image_side,
            static_cast<std::uint32_t>(cfg_.seed + m * 10007 + p * 101 + i));
        origin.add_static(host_name,
                          "/media/m" + std::to_string(m) + "/p" + std::to_string(p) + "-img" +
                              std::to_string(i) + ".jpg",
                          "image/jpeg",
                          util::make_body(media::encode(img, media::image_format::jpeg)),
                          cfg_.media_max_age);
      }
    }
  }
}

void simm_site::install_single_server(proxy::origin_server& origin) const {
  install_media(origin);
  const std::string xsl = stylesheet();
  origin.add_dynamic(
      host_name, "/content/",
      [this, xsl](const http::request& r) {
        proxy::origin_server::dynamic_result out;
        // Parse /content/m{M}/p{P}.html?student=...
        const auto parts = r.url.path_components();
        int module = 0;
        int page = 0;
        if (parts.size() >= 3) {
          module = static_cast<int>(
              util::parse_int(std::string_view(parts[1]).substr(1)).value_or(0));
          const std::size_t dot = parts[2].find('.');
          page = static_cast<int>(
              util::parse_int(std::string_view(parts[2]).substr(1, dot - 1)).value_or(0));
        }
        const std::string student = r.url.query();
        const std::string xml = page_xml(module, page, student);
        // Real rendering work at the origin, charged with the Tomcat-like
        // per-request CPU model.
        std::string html;
        try {
          html = media::xsl_transform(xsl, xml);
        } catch (const std::invalid_argument& e) {
          out.response = http::make_error_response(500, e.what());
          return out;
        }
        out.response = http::make_response(200, "text/html", util::make_body(html));
        out.response.headers.set("Cache-Control", "private");  // personalized
        out.cpu_seconds = cfg_.personalize_cpu + cfg_.render_cpu_base +
                          cfg_.render_cpu_per_byte * static_cast<double>(xml.size());
        return out;
      });
}

void simm_site::install_edge(proxy::origin_server& origin) const {
  install_media(origin);
  origin.add_static_text(host_name, "/nakika.js", "application/javascript", nakika_script(),
                         3600);
  origin.add_static_text(host_name, "/style/simm.xsl", "text/xml", stylesheet(),
                         cfg_.xsl_max_age);
  origin.add_dynamic(
      host_name, "/content/",
      [this](const http::request& r) {
        proxy::origin_server::dynamic_result out;
        const auto parts = r.url.path_components();
        int module = 0;
        int page = 0;
        if (parts.size() >= 3) {
          module = static_cast<int>(
              util::parse_int(std::string_view(parts[1]).substr(1)).value_or(0));
          const std::size_t dot = parts[2].find('.');
          page = static_cast<int>(
              util::parse_int(std::string_view(parts[2]).substr(1, dot - 1)).value_or(0));
        }
        const std::string xml = page_xml(module, page, r.url.query());
        out.response = http::make_response(200, "text/xml", util::make_body(xml));
        out.response.headers.set("Cache-Control", "private");  // personalized
        out.cpu_seconds = cfg_.personalize_cpu;  // rendering moved to the edge
        return out;
      });
}

request_generator simm_site::make_generator(bool edge_mode, std::uint64_t client_seed) const {
  // Per-client session state, created lazily. Shared across the generator's
  // copies so the driver sees one coherent session per client.
  struct client_state {
    std::unique_ptr<util::rng> rng;
    int module = 0;
    int page = 0;
    int step = 0;  // 0 = page, 1..images = image fetches, images+1 = video
    bool wants_video = false;
  };
  auto states = std::make_shared<std::map<std::size_t, client_state>>();
  auto zipf = std::make_shared<util::zipf_distribution>(
      static_cast<std::size_t>(cfg_.modules * cfg_.pages_per_module), cfg_.zipf_exponent);
  const simm_config cfg = cfg_;

  return [states, zipf, cfg, edge_mode, client_seed](
             std::size_t client, std::size_t) -> std::optional<http::request> {
    client_state& st = (*states)[client];
    if (!st.rng) {
      st.rng = std::make_unique<util::rng>(cfg.seed * 1315423911ull + client_seed * 2654435761ull +
                                           client);
      st.step = -1;
    }
    // Step layout per page view: 0 = page, 1..images_per_page = images,
    // images_per_page+1 = optional video.
    const int after_images = cfg.images_per_page + 1;
    if (st.step < 0 || st.step > after_images ||
        (st.step == after_images && !st.wants_video)) {
      // Start a new page view.
      const std::size_t pick = zipf->sample(*st.rng);
      st.module = static_cast<int>(pick) / cfg.pages_per_module;
      st.page = static_cast<int>(pick) % cfg.pages_per_module;
      st.wants_video = st.rng->chance(cfg.video_probability);
      st.step = 0;
    }

    http::request r;
    r.client_ip = "10.1." + std::to_string(client / 250) + "." + std::to_string(client % 250);
    const std::string base = std::string("http://") + host_name;
    if (st.step == 0) {
      const char* ext = edge_mode ? ".xml" : ".html";
      r.url = http::url::parse(base + "/content/m" + std::to_string(st.module) + "/p" +
                               std::to_string(st.page) + ext + "?student=s" +
                               std::to_string(client));
      ++st.step;
    } else if (st.step <= cfg.images_per_page) {
      r.url = http::url::parse(base + "/media/m" + std::to_string(st.module) + "/p" +
                               std::to_string(st.page) + "-img" +
                               std::to_string(st.step - 1) + ".jpg");
      ++st.step;
    } else {
      const int vid = static_cast<int>(st.rng->next(
          static_cast<std::uint64_t>(cfg.videos_per_module)));
      r.url = http::url::parse(base + "/media/m" + std::to_string(st.module) + "/vid" +
                               std::to_string(vid) + ".mp4");
      st.wants_video = false;
      ++st.step;
    }
    return r;
  };
}

}  // namespace nakika::workload
