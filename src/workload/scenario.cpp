#include "workload/scenario.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <stdexcept>
#include <thread>

namespace nakika::workload {

cluster_scenario::cluster_scenario(scenario_config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.nodes == 0) throw std::invalid_argument("cluster_scenario: nodes must be > 0");
  if (cfg_.workers == 0) {
    throw std::invalid_argument("cluster_scenario: the scenario tier is worker-mode (workers >= 1)");
  }
  if (cfg_.tenants.empty()) {
    throw std::invalid_argument("cluster_scenario: need at least one tenant");
  }

  const sim::node_id origin_host = net_.add_node("origin");
  std::vector<sim::node_id> hosts;
  hosts.reserve(cfg_.nodes);
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    hosts.push_back(net_.add_node("p" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    net_.set_route(hosts[i], origin_host, 0.005);
    for (std::size_t j = i + 1; j < cfg_.nodes; ++j) {
      net_.set_route(hosts[i], hosts[j], 0.002);  // one tight Coral cluster
    }
  }

  dep_ = std::make_unique<proxy::deployment>(net_);
  origin_ = &dep_->create_origin(origin_host);
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    const tenant_spec& spec = cfg_.tenants[t];
    dep_->map_host(spec.site, *origin_);
    for (std::size_t obj = 0; obj < spec.objects; ++obj) {
      origin_->add_static_text(spec.site, "/obj/" + std::to_string(obj), "text/plain",
                               expected_body(t, obj), spec.ttl_seconds);
    }
    // Per-node warmup objects (see warm_script_probes).
    for (std::size_t n = 0; n < cfg_.nodes; ++n) {
      origin_->add_static_text(spec.site, "/warm/" + std::to_string(n), "text/plain",
                               "warm-" + std::to_string(n), spec.ttl_seconds);
    }
    if (!spec.site_script.empty()) {
      origin_->add_static_text(spec.site, "/nakika.js", "application/javascript",
                               spec.site_script, spec.ttl_seconds);
    }
  }

  dep_->enable_overlay();
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    proxy::node_config nc;
    nc.workers = cfg_.workers;
    nc.queue_capacity = cfg_.queue_capacity;
    nc.resource_controls = cfg_.resource_controls;
    nc.scripting = cfg_.scripting;
    nc.content_cache_bytes = cfg_.cache_bytes;
    nc.content_cache_shards = cfg_.cache_shards;
    nc.content_cache_borrowing = cfg_.cache_borrowing;
    nc.rng_seed = cfg_.seed + i;
    for (const tenant_spec& spec : cfg_.tenants) {
      if (spec.cache_quota_bytes > 0) {
        nc.tenant_cache_quota_bytes[spec.site] = spec.cache_quota_bytes;
      }
      if (spec.weight != 1.0) nc.site_weights[spec.site] = spec.weight;
    }
    nodes_.push_back(&dep_->create_node(hosts[i], std::move(nc)));
  }
  alive_.assign(cfg_.nodes, true);
  // Settle the overlay joins' bootstrap traffic (single-threaded, before any
  // concurrent serving starts).
  loop_.run();

  streams_.reserve(cfg_.tenants.size());
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    streams_.emplace_back(cfg_.tenants[t].objects, cfg_.zipf_exponent,
                          cfg_.seed * 1000003ULL + t);
  }
}

std::string cluster_scenario::url_of(std::size_t tenant, std::size_t object) const {
  return "http://" + cfg_.tenants[tenant].site + "/obj/" + std::to_string(object);
}

std::string cluster_scenario::expected_body(std::size_t tenant, std::size_t object) const {
  const tenant_spec& spec = cfg_.tenants[tenant];
  std::string body = spec.site + "|" + std::to_string(object) + "|";
  if (body.size() < spec.object_bytes) body.resize(spec.object_bytes, 'x');
  return body;
}

std::vector<request_ref> cluster_scenario::all_objects(std::size_t tenant) const {
  std::vector<request_ref> out;
  out.reserve(cfg_.tenants[tenant].objects);
  for (std::size_t obj = 0; obj < cfg_.tenants[tenant].objects; ++obj) {
    out.push_back({tenant, obj});
  }
  return out;
}

std::vector<request_ref> cluster_scenario::zipf_batch(std::size_t tenant, std::size_t count) {
  std::vector<request_ref> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back({tenant, streams_[tenant].next()});
  return out;
}

std::size_t cluster_scenario::live_nodes() const {
  std::size_t n = 0;
  for (const bool a : alive_) n += a ? 1 : 0;
  return n;
}

std::size_t cluster_scenario::route_index(const std::string& url) {
  std::vector<std::size_t> live;
  live.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) live.push_back(i);
  }
  if (live.empty()) throw std::runtime_error("cluster_scenario: no live nodes to route to");
  if (cfg_.route == route_policy::round_robin) return live[rr_next_++ % live.size()];
  return live[std::hash<std::string>{}(url) % live.size()];
}

util::run_counters cluster_scenario::counters_sum() const {
  util::run_counters sum;
  for (const auto* nd : nodes_) {
    const util::run_counters c = nd->counters();
    sum.offered += c.offered;
    sum.completed += c.completed;
    sum.rejected += c.rejected;
    sum.failed += c.failed;
    sum.peer_hits += c.peer_hits;
    sum.peer_misses += c.peer_misses;
    sum.coalesced += c.coalesced;
  }
  return sum;
}

batch_metrics cluster_scenario::run_batch(const std::vector<request_ref>& reqs,
                                          std::optional<std::size_t> node_index,
                                          const std::vector<double>* arrivals,
                                          double time_scale) {
  const util::run_counters before = counters_sum();
  const std::uint64_t origin_before = origin_->requests_served();

  std::atomic<std::size_t> answered{0};
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> busy{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> bad_body{0};
  // Shared across worker completion threads; relaxed-atomic buckets make
  // concurrent records safe without a lock.
  auto latency = std::make_shared<obs::latency_histogram>();

  double last_arrival = 0.0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (arrivals != nullptr && time_scale > 0.0 && i < arrivals->size()) {
      const double gap = (*arrivals)[i] - last_arrival;
      last_arrival = (*arrivals)[i];
      if (gap > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(gap * time_scale));
      }
    }
    const request_ref ref = reqs[i];
    const std::string url = url_of(ref.tenant, ref.object);
    proxy::nakika_node* target =
        node_index.has_value() ? nodes_[*node_index] : nodes_[route_index(url)];
    http::request r;
    r.url = http::url::parse(url);
    r.client_ip = "10.0.0.1";
    const auto submitted = std::chrono::steady_clock::now();
    target->handle(r, [&answered, &ok, &busy, &failed, &bad_body, latency, submitted,
                       want = expected_body(ref.tenant, ref.object)](http::response resp) {
      latency->record_seconds(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - submitted).count());
      if (resp.status == 200) {
        if (resp.body != nullptr && resp.body->str() == want) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          bad_body.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (resp.status == 503) {
        busy.fetch_add(1, std::memory_order_relaxed);
      } else {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
      answered.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Drain every node (crashed ones too: their queued work must still
  // complete — zero lost requests includes requests in flight at crash time).
  for (auto* nd : nodes_) nd->drain();

  batch_metrics m;
  m.issued = reqs.size();
  m.answered = answered.load();
  m.ok = ok.load();
  m.busy = busy.load();
  m.failed = failed.load();
  m.bad_body = bad_body.load();
  const util::run_counters after = counters_sum();
  m.peer_hits = after.peer_hits - before.peer_hits;
  m.peer_misses = after.peer_misses - before.peer_misses;
  m.coalesced = after.coalesced - before.coalesced;
  m.origin_fetches = origin_->requests_served() - origin_before;
  m.latency = obs::summarize(*latency);
  return m;
}

void cluster_scenario::warm_script_probes() {
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (!alive_[n]) continue;
    for (const tenant_spec& spec : cfg_.tenants) {
      http::request r;
      r.url = http::url::parse("http://" + spec.site + "/warm/" + std::to_string(n));
      r.client_ip = "10.0.0.1";
      nodes_[n]->handle(r, [](http::response) {});
    }
  }
  for (auto* nd : nodes_) nd->drain();
}

void cluster_scenario::crash_node(std::size_t i) {
  dep_->fail_node(*nodes_[i]);
  alive_[i] = false;
  // Process death loses the caches; requests already queued keep draining
  // (the zombie answers model a node dying *after* accepting work).
  nodes_[i]->content_cache().clear();
}

void cluster_scenario::recover_node(std::size_t i) {
  dep_->recover_node(*nodes_[i]);
  alive_[i] = true;
}

cluster_scenario::flash_crowd_result cluster_scenario::run_flash_crowd(
    std::size_t tenant, std::size_t burst_size) {
  const std::vector<request_ref> reqs = zipf_batch(tenant, burst_size);
  std::set<std::size_t> distinct;
  for (const request_ref& ref : reqs) distinct.insert(ref.object);
  flash_crowd_result out;
  out.distinct_objects = distinct.size();
  out.metrics = run_batch(reqs);
  return out;
}

}  // namespace nakika::workload
