// SPECweb99-like workload (paper §5.3): a static-file mix in four size
// classes plus dynamic GETs (ad rotation, per-user customization) and POSTs
// (user registration, the paper's replicated hard state). Two deployments:
//   - PHP single server: dynamic requests cost origin CPU;
//   - Na Kika: dynamic pages are Na Kika Pages rendered at the edge, and
//     registrations are accepted by the site script into replicated
//     HardState — the origin only serves sources and statics.
#pragma once

#include <string>

#include "proxy/deployment.hpp"
#include "workload/clients.hpp"

namespace nakika::workload {

struct specweb_config {
  int directories = 10;
  int files_per_class = 3;
  // SPECweb99's access mix across the four size classes.
  std::array<double, 4> class_weights = {0.35, 0.50, 0.14, 0.01};
  std::array<std::size_t, 4> class_bytes = {1 * 1024, 10 * 1024, 100 * 1024, 1024 * 1024};

  double dynamic_fraction = 0.8;   // "80% dynamic requests"
  double post_fraction = 0.125;    // of dynamic requests, user registrations

  double php_dynamic_cpu = 0.085;  // PHP page build on a loaded PlanetLab node
  double php_post_cpu = 0.020;
  std::int64_t static_max_age = 3600;

  std::uint64_t seed = 17;
};

class specweb_site {
 public:
  static constexpr const char* host_name = "www.specweb.example.org";

  explicit specweb_site(specweb_config cfg = {});

  // The NKP source for the dynamic page (rendered per request at the edge).
  [[nodiscard]] static std::string dynamic_page_nkp();
  // The site script: accepts POST registrations into replicated HardState.
  [[nodiscard]] static std::string nakika_script();

  void install_php_server(proxy::origin_server& origin) const;
  void install_edge(proxy::origin_server& origin) const;

  // Request mix generator. `edge_mode` selects .nkp vs .php dynamic URLs.
  [[nodiscard]] request_generator make_generator(bool edge_mode,
                                                 std::uint64_t client_seed) const;

  [[nodiscard]] const specweb_config& config() const { return cfg_; }

 private:
  void install_statics(proxy::origin_server& origin) const;
  specweb_config cfg_;
};

}  // namespace nakika::workload
