// Scenario tier (ROADMAP open item 5): reusable harness for adversarial
// cluster workloads, shared by the scenario gtest suites and bench_cluster.
// A cluster_scenario owns one simulated experiment — origin + N worker-mode
// Na Kika nodes on a tight proxy mesh with the overlay enabled — and opens
// three adversarial families end to end:
//
//   multi-tenant  per-tenant cache quotas and scheduling weights (tenant_spec)
//                 wired into every node, so isolation invariants can be
//                 asserted across a storm;
//   churn         crash_node / recover_node inject mid-workload node failure
//                 through the deployment's fault injector (overlay rings,
//                 peer directory, DNS redirector), losing the node's caches
//                 like a real process death;
//   flash crowd   Zipf-skewed open-loop bursts via zipf_batch /
//                 run_flash_crowd, with the O(1)-origin-fetches-per-object
//                 invariant computed from origin-side counters.
//
// Requests are issued open-loop from the calling thread and completions are
// verified against deterministic per-object bodies, so "zero lost requests"
// and "no wrong bytes" are directly measurable per batch.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "proxy/deployment.hpp"
#include "workload/arrivals.hpp"

namespace nakika::workload {

struct tenant_spec {
  std::string site;                   // URL host, e.g. "flash.org"
  std::size_t objects = 64;           // distinct cacheable objects
  std::size_t object_bytes = 512;     // body size per object
  std::size_t cache_quota_bytes = 0;  // 0 = no per-tenant cache quota
  double weight = 1.0;                // congestion-control scheduling weight
  std::string site_script;            // optional nakika.js body
  std::int64_t ttl_seconds = 3600;
};

// How run_batch spreads requests across live nodes. url_affinity hashes the
// URL to one node, which makes the flash-crowd O(1) origin bound exact
// (single-flight coalescing is per node); round_robin spreads blindly.
enum class route_policy { url_affinity, round_robin };

struct scenario_config {
  std::size_t nodes = 4;
  std::size_t workers = 2;  // must be >= 1: the scenario tier is worker-mode
  std::size_t queue_capacity = 16384;
  std::size_t cache_bytes = 64 * 1024 * 1024;
  std::size_t cache_shards = 0;
  bool cache_borrowing = true;
  bool resource_controls = false;
  bool scripting = true;
  route_policy route = route_policy::url_affinity;
  std::uint64_t seed = 42;
  double zipf_exponent = 1.1;
  std::vector<tenant_spec> tenants;
};

// Deltas over one run_batch call (counters are snapshotted before/after, so
// overlapping phases stay separable).
struct batch_metrics {
  std::size_t issued = 0;
  std::size_t answered = 0;   // completion callbacks fired
  std::size_t ok = 0;         // 200 with the exact expected body
  std::size_t busy = 0;       // 503 (queue/backpressure/throttle)
  std::size_t failed = 0;     // any other status
  std::size_t bad_body = 0;   // 200 with wrong bytes
  std::size_t peer_hits = 0;
  std::size_t peer_misses = 0;
  std::size_t coalesced = 0;
  std::uint64_t origin_fetches = 0;
  // Wall-clock submit-to-completion latency per request (p50/p99/p999 etc.),
  // measured at the caller — the number bench_cluster's latency rows report.
  obs::histogram_summary latency;

  [[nodiscard]] double peer_hit_ratio() const {
    const std::size_t total = peer_hits + peer_misses;
    return total == 0 ? 0.0 : static_cast<double>(peer_hits) / static_cast<double>(total);
  }
  // Zero lost requests: every issued request answered, nothing wrong or
  // errored (503s count separately — churn runs assert busy == 0 too).
  [[nodiscard]] bool lossless() const {
    return answered == issued && failed == 0 && bad_body == 0;
  }
};

struct request_ref {
  std::size_t tenant = 0;
  std::size_t object = 0;
};

class cluster_scenario {
 public:
  explicit cluster_scenario(scenario_config cfg);

  // --- naming ---
  [[nodiscard]] std::string url_of(std::size_t tenant, std::size_t object) const;
  [[nodiscard]] std::string expected_body(std::size_t tenant, std::size_t object) const;

  // --- batches ---
  // Every object of one tenant, in order (deterministic warm sweeps).
  [[nodiscard]] std::vector<request_ref> all_objects(std::size_t tenant) const;
  // `count` Zipf-skewed draws over one tenant's objects (fixed-seed stream).
  [[nodiscard]] std::vector<request_ref> zipf_batch(std::size_t tenant, std::size_t count);

  // Issues the batch open-loop and drains to completion. `node_index` pins
  // every request to one node (warm phases); nullopt routes per the policy
  // over live nodes. `arrivals`/`time_scale` optionally pace submissions by
  // a burst_arrivals schedule (sleeping scaled inter-arrival gaps).
  batch_metrics run_batch(const std::vector<request_ref>& reqs,
                          std::optional<std::size_t> node_index = std::nullopt,
                          const std::vector<double>* arrivals = nullptr,
                          double time_scale = 0.0);

  // Fetches one warmup object per (live node, tenant) so each node's one-time
  // site-script probe is done; later origin deltas are then pure content
  // fetches, which the O(1) flash-crowd invariant needs.
  void warm_script_probes();

  // --- churn ---
  // Process death: fault-injected out of the overlay/directory/redirector
  // AND all cached state lost. In-flight requests keep draining.
  void crash_node(std::size_t i);
  void recover_node(std::size_t i);
  [[nodiscard]] bool node_alive(std::size_t i) const { return alive_[i]; }
  [[nodiscard]] std::size_t live_nodes() const;

  // --- flash crowd ---
  struct flash_crowd_result {
    batch_metrics metrics;
    std::size_t distinct_objects = 0;
    // The paper's collapse claim: a whole burst costs the origin at most one
    // fetch per distinct hot object.
    [[nodiscard]] bool origin_o1() const {
      return metrics.origin_fetches <= distinct_objects;
    }
  };
  flash_crowd_result run_flash_crowd(std::size_t tenant, std::size_t burst_size);

  // --- accessors ---
  [[nodiscard]] proxy::deployment& dep() { return *dep_; }
  [[nodiscard]] proxy::nakika_node& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] proxy::origin_server& origin() { return *origin_; }
  [[nodiscard]] const scenario_config& config() const { return cfg_; }
  // Which node a URL routes to right now (over live nodes).
  [[nodiscard]] std::size_t route_index(const std::string& url);

 private:
  [[nodiscard]] util::run_counters counters_sum() const;

  scenario_config cfg_;
  sim::event_loop loop_;
  sim::network net_{loop_};
  std::unique_ptr<proxy::deployment> dep_;
  proxy::origin_server* origin_ = nullptr;
  std::vector<proxy::nakika_node*> nodes_;
  std::vector<bool> alive_;
  std::size_t rr_next_ = 0;
  std::vector<zipf_stream> streams_;  // one fixed-seed stream per tenant
};

}  // namespace nakika::workload
