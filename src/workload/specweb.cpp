#include "workload/specweb.hpp"

#include "util/strings.hpp"

namespace nakika::workload {

specweb_site::specweb_site(specweb_config cfg) : cfg_(cfg) {}

std::string specweb_site::dynamic_page_nkp() {
  // Per-request dynamic content: rotating ad (random) and per-user
  // customization (query), as in SPECweb99's dynamic GET with ad rotation.
  return R"NKP(<html><head><title>SPECweb99 dynamic</title></head><body>
<?nkp
  var user = Request.query;
  var ad = Math.floor(Math.random() * 360);
  Response.write("<div class=\"ad\">Advertisement " + ad + "</div>");
  Response.write("<div class=\"user\">Hello, " + user + "</div>");
  var reg = HardState.get("user:" + user);
  if (reg != null) {
    Response.write("<div class=\"member\">member since " + reg + "</div>");
  }
  var filler = "";
  for (var i = 0; i < 60; i++) {
    filler += "<p>custom content line " + i + " for " + user + "</p>";
  }
  Response.write(filler);
?>
</body></html>)NKP";
}

std::string specweb_site::nakika_script() {
  // POST /register: accept the registration into replicated hard state; the
  // replication strategy (broadcast vs origin-primary) is the node's replica
  // configuration, exactly as §3.3 leaves strategy to the site.
  return R"JS(
var reg = new Policy();
reg.url = [ "www.specweb.example.org/register" ];
reg.method = [ "POST" ];
reg.onRequest = function() {
  var user = Request.query;
  if (user == "") {
    Request.terminate(400);
  }
  HardState.put("user:" + user, "t" + System.time());
  Request.respond(200, "text/plain", "registered " + user);
};
reg.register();
)JS";
}

void specweb_site::install_statics(proxy::origin_server& origin) const {
  for (int d = 0; d < cfg_.directories; ++d) {
    for (std::size_t c = 0; c < cfg_.class_bytes.size(); ++c) {
      for (int f = 0; f < cfg_.files_per_class; ++f) {
        util::byte_buffer body;
        body.resize(cfg_.class_bytes[c]);
        std::uint32_t state = static_cast<std::uint32_t>(cfg_.seed + d * 131 + c * 31 + f);
        for (std::size_t i = 0; i < body.size(); ++i) {
          state = state * 1664525u + 1013904223u;
          body[i] = static_cast<std::uint8_t>(state >> 24);
        }
        origin.add_static(host_name,
                          "/file_set/dir" + std::to_string(d) + "/class" +
                              std::to_string(c) + "_" + std::to_string(f),
                          "application/octet-stream", util::make_body(std::move(body)),
                          cfg_.static_max_age);
      }
    }
  }
}

void specweb_site::install_php_server(proxy::origin_server& origin) const {
  install_statics(origin);
  origin.add_dynamic(
      host_name, "/dynamic.php",
      [this](const http::request& r) {
        proxy::origin_server::dynamic_result out;
        const std::string user = r.url.query();
        std::string html = "<html><body><div class=\"ad\">Advertisement</div>";
        html += "<div class=\"user\">Hello, " + user + "</div>";
        for (int i = 0; i < 60; ++i) {
          html += "<p>custom content line " + std::to_string(i) + " for " + user + "</p>";
        }
        html += "</body></html>";
        out.response = http::make_response(200, "text/html", util::make_body(html));
        out.response.headers.set("Cache-Control", "no-store");
        out.cpu_seconds = cfg_.php_dynamic_cpu;
        return out;
      });
  origin.add_dynamic(
      host_name, "/register",
      [this](const http::request& r) {
        proxy::origin_server::dynamic_result out;
        out.response =
            http::make_response(200, "text/plain", util::make_body("registered " +
                                                                    r.url.query()));
        out.response.headers.set("Cache-Control", "no-store");
        out.cpu_seconds = cfg_.php_post_cpu;
        return out;
      });
}

void specweb_site::install_edge(proxy::origin_server& origin) const {
  install_statics(origin);
  origin.add_static_text(host_name, "/nakika.js", "application/javascript", nakika_script(),
                         3600);
  // The NKP source itself: served cheaply, marked no-store so each request
  // renders fresh at the edge (SPECweb dynamic GETs differ per request).
  origin.add_dynamic(
      host_name, "/dynamic.nkp",
      [](const http::request&) {
        proxy::origin_server::dynamic_result out;
        out.response =
            http::make_response(200, "text/nkp", util::make_body(dynamic_page_nkp()));
        out.response.headers.set("Cache-Control", "no-store");
        out.cpu_seconds = 0.0005;  // static-file-like source fetch
        return out;
      });
}

request_generator specweb_site::make_generator(bool edge_mode,
                                               std::uint64_t client_seed) const {
  auto rng = std::make_shared<util::rng>(cfg_.seed * 888888877ull + client_seed);
  auto zipf = std::make_shared<util::zipf_distribution>(
      static_cast<std::size_t>(cfg_.directories), 1.0);
  const specweb_config cfg = cfg_;

  return [rng, zipf, cfg, edge_mode, client_seed](
             std::size_t client, std::size_t seq) -> std::optional<http::request> {
    http::request r;
    r.client_ip =
        "10.2." + std::to_string(client / 250) + "." + std::to_string(client % 250);
    const std::string base = std::string("http://") + host_name;
    const std::string user =
        "u" + std::to_string(client_seed) + "-" + std::to_string(client);

    if (rng->chance(cfg.dynamic_fraction)) {
      if (rng->chance(cfg.post_fraction)) {
        r.method = http::method::post;
        r.url = http::url::parse(base + "/register?" + user + "-" + std::to_string(seq));
        r.body = util::make_body("name=" + user);
        return r;
      }
      const char* page = edge_mode ? "/dynamic.nkp?" : "/dynamic.php?";
      r.url = http::url::parse(base + page + user);
      return r;
    }
    const std::size_t dir = zipf->sample(*rng);
    // Weighted size-class pick.
    const double p = rng->next_double();
    std::size_t cls = 0;
    double acc = 0.0;
    for (std::size_t c = 0; c < cfg.class_weights.size(); ++c) {
      acc += cfg.class_weights[c];
      if (p < acc) {
        cls = c;
        break;
      }
    }
    const std::size_t file = rng->next(static_cast<std::uint64_t>(cfg.files_per_class));
    r.url = http::url::parse(base + "/file_set/dir" + std::to_string(dir) + "/class" +
                             std::to_string(cls) + "_" + std::to_string(file));
    return r;
  };
}

}  // namespace nakika::workload
