#include "workload/measurement.hpp"

namespace nakika::workload {

content_class classify_content(std::string_view content_type) {
  if (content_type.starts_with("text/html")) return content_class::html;
  if (content_type.starts_with("text/xml")) return content_class::html;
  if (content_type.starts_with("image/")) return content_class::image;
  if (content_type.starts_with("video/")) return content_class::video;
  return content_class::other;
}

void measurement::record(double latency_seconds, std::size_t bytes, int status,
                         std::string_view content_type) {
  ++completed_;
  ++by_status_[status];
  latency_.add(latency_seconds);
  const double bps =
      latency_seconds > 0 ? static_cast<double>(bytes) * 8.0 / latency_seconds : 0.0;
  if (latency_seconds > 0 && bytes > 0) {
    bandwidth_.add(bps);
  }
  if (status < 500) {
    auto& cls = by_class_[classify_content(content_type)];
    cls.latency.add(latency_seconds);
    if (latency_seconds > 0 && bytes > 0) cls.bandwidth.add(bps);
  }
}

void measurement::record_failure() { ++failures_; }

std::size_t measurement::status_count(int status) const {
  const auto it = by_status_.find(status);
  return it == by_status_.end() ? 0 : it->second;
}

double measurement::failure_rate() const {
  const std::size_t attempts = completed_ + failures_;
  if (attempts == 0) return 0.0;
  std::size_t bad = failures_;
  for (const auto& [status, count] : by_status_) {
    if (status >= 500) bad += count;
  }
  return static_cast<double>(bad) / static_cast<double>(attempts);
}

void measurement::set_window(double start_seconds, double end_seconds) {
  start_ = start_seconds;
  end_ = end_seconds;
}

double measurement::requests_per_second() const {
  const double d = duration();
  return d > 0 ? static_cast<double>(completed_) / d : 0.0;
}

}  // namespace nakika::workload
