// Fixed-seed adversarial arrival generators for the scenario tier: a Zipf
// object stream (flash crowds concentrate on few hot objects) and an
// open-loop burst arrival schedule (Poisson baseline with a rate spike),
// reusable by scenario tests and benches. Everything is deterministic given
// the seed so scenario assertions are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace nakika::workload {

// Zipf-skewed object index stream over [0, objects). next() draws the next
// index; probability() exposes the exact pmf for distribution-shape checks
// (chi-squared in the unit tests).
class zipf_stream {
 public:
  zipf_stream(std::size_t objects, double exponent, std::uint64_t seed);

  [[nodiscard]] std::size_t next();
  [[nodiscard]] std::size_t objects() const { return objects_; }
  [[nodiscard]] double exponent() const { return exponent_; }
  // P(next() == i): (1/(i+1)^s) / H_n.
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::size_t objects_;
  double exponent_;
  double harmonic_;  // normalizer H_n = sum_{j=1..n} j^-s
  util::zipf_distribution dist_;
  util::rng rng_;
};

// Open-loop arrival schedule: exponential inter-arrivals at base_rate, with
// burst_rate inside the [burst_start, burst_start + burst_duration) window —
// the flash-crowd spike. Timestamps are absolute seconds, nondecreasing.
struct burst_config {
  double base_rate = 50.0;     // arrivals/second outside the burst
  double burst_rate = 0.0;     // arrivals/second inside the burst (0 = none)
  double burst_start = 0.0;
  double burst_duration = 0.0;
  std::uint64_t seed = 1;
};

class burst_arrivals {
 public:
  explicit burst_arrivals(burst_config cfg);

  // Absolute time of the next arrival.
  [[nodiscard]] double next();
  // The next `count` arrival times in order.
  [[nodiscard]] std::vector<double> take(std::size_t count);

 private:
  [[nodiscard]] bool in_burst(double t) const;

  burst_config cfg_;
  util::rng rng_;
  double now_ = 0.0;
};

}  // namespace nakika::workload
