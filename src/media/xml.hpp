// Minimal XML DOM: enough for the SIMM workload's XML content and the XSL
// transformer. Supports elements, attributes, text, comments, self-closing
// tags, and the five predefined entities.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace nakika::media {

struct xml_node;
using xml_node_ptr = std::unique_ptr<xml_node>;

struct xml_node {
  enum class kind { element, text };

  kind k = kind::element;
  std::string name;                                     // element name
  std::string text;                                     // text content (kind::text)
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<xml_node_ptr> children;

  [[nodiscard]] const std::string* attr(std::string_view name) const;
  // First child element with the given name; nullptr if absent.
  [[nodiscard]] const xml_node* child(std::string_view name) const;
  [[nodiscard]] std::vector<const xml_node*> children_named(std::string_view name) const;
  // Concatenated text of this subtree.
  [[nodiscard]] std::string inner_text() const;
};

// Parses a document and returns its root element. Throws
// std::invalid_argument on malformed input.
[[nodiscard]] xml_node_ptr parse_xml(std::string_view source);

// Serializes a subtree (with entity escaping).
[[nodiscard]] std::string serialize_xml(const xml_node& node);

[[nodiscard]] std::string xml_escape(std::string_view text);

}  // namespace nakika::media
