// XSL-subset transformer. The SIMM experiment (paper §5.2) off-loads the
// "processor-intensive" XML-to-HTML rendering (one stylesheet for all
// students) to the edge; this implements the subset those stylesheets need:
//   <xsl:template match="name|/">     template rules
//   <xsl:value-of select="path"/>     path = name, a/b, @attr, or .
//   <xsl:apply-templates/>            recurse into children (optional select)
//   <xsl:for-each select="path">      iterate matching children
// Literal elements are copied through with their attributes.
#pragma once

#include <string>
#include <string_view>

#include "media/xml.hpp"

namespace nakika::media {

class xsl_stylesheet {
 public:
  // Parses a stylesheet document. Throws std::invalid_argument if the
  // document is not a stylesheet or uses unsupported constructs.
  static xsl_stylesheet parse(std::string_view source);

  // Applies the stylesheet to a document, returning the rendered output.
  [[nodiscard]] std::string apply(const xml_node& document) const;

  [[nodiscard]] std::size_t template_count() const { return templates_.size(); }

 private:
  struct template_rule {
    std::string match;       // element name or "/"
    const xml_node* body;    // borrowed from sheet_
  };

  void apply_templates(std::string& out, const xml_node& context) const;
  void run_body(std::string& out, const xml_node& body, const xml_node& context) const;
  [[nodiscard]] const template_rule* find_rule(std::string_view name) const;

  xml_node_ptr sheet_;  // owns the template bodies
  std::vector<template_rule> templates_;
};

// Convenience: parse stylesheet + document and apply.
[[nodiscard]] std::string xsl_transform(std::string_view stylesheet_xml,
                                        std::string_view document_xml);

}  // namespace nakika::media
