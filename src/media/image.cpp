#include "media/image.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace nakika::media {

namespace {
constexpr char magic[4] = {'S', 'I', 'M', 'G'};
constexpr std::size_t header_size = 4 + 1 + 4 + 4;

void put_u32(util::byte_buffer& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
  buf.push_back(static_cast<std::uint8_t>(v >> 16 & 0xff));
  buf.push_back(static_cast<std::uint8_t>(v >> 8 & 0xff));
  buf.push_back(static_cast<std::uint8_t>(v & 0xff));
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t offset) {
  return static_cast<std::uint32_t>(data[offset]) << 24 |
         static_cast<std::uint32_t>(data[offset + 1]) << 16 |
         static_cast<std::uint32_t>(data[offset + 2]) << 8 |
         static_cast<std::uint32_t>(data[offset + 3]);
}

bool has_magic(std::span<const std::uint8_t> data) {
  return data.size() >= header_size && data[0] == 'S' && data[1] == 'I' && data[2] == 'M' &&
         data[3] == 'G';
}
}  // namespace

std::string_view to_string(image_format f) {
  switch (f) {
    case image_format::raw: return "raw";
    case image_format::jpeg: return "jpeg";
    case image_format::png: return "png";
    case image_format::gif: return "gif";
  }
  return "raw";
}

std::optional<image_format> format_from_name(std::string_view name) {
  if (util::iequals(name, "raw")) return image_format::raw;
  if (util::iequals(name, "jpeg") || util::iequals(name, "jpg")) return image_format::jpeg;
  if (util::iequals(name, "png")) return image_format::png;
  if (util::iequals(name, "gif")) return image_format::gif;
  return std::nullopt;
}

std::optional<image_format> format_from_mime(std::string_view mime) {
  const std::string lowered = util::to_lower(util::trim(mime));
  if (!lowered.starts_with("image/")) return std::nullopt;
  return format_from_name(std::string_view(lowered).substr(6));
}

std::string mime_from_format(image_format f) {
  return "image/" + std::string(to_string(f));
}

util::byte_buffer encode(const image& img, image_format format) {
  util::byte_buffer buf;
  buf.reserve(header_size + img.pixels.size());
  for (char c : magic) buf.push_back(static_cast<std::uint8_t>(c));
  buf.push_back(static_cast<std::uint8_t>(format));
  put_u32(buf, img.width);
  put_u32(buf, img.height);
  buf.append(std::span<const std::uint8_t>(img.pixels.data(), img.pixels.size()));
  return buf;
}

decode_result decode(std::span<const std::uint8_t> data) {
  decode_result r;
  if (!has_magic(data)) {
    r.error = "not a SIMG image";
    return r;
  }
  const std::uint8_t tag = data[4];
  if (tag > static_cast<std::uint8_t>(image_format::gif)) {
    r.error = "unknown format tag";
    return r;
  }
  r.format = static_cast<image_format>(tag);
  r.img.width = get_u32(data, 5);
  r.img.height = get_u32(data, 9);
  const std::size_t expected = static_cast<std::size_t>(r.img.width) * r.img.height * 3;
  if (data.size() < header_size + expected) {
    r.error = "truncated pixel data";
    return r;
  }
  r.img.pixels.assign(data.begin() + header_size, data.begin() + header_size + expected);
  r.ok = true;
  return r;
}

std::optional<image_dimensions> read_dimensions(std::span<const std::uint8_t> data) {
  if (!has_magic(data)) return std::nullopt;
  return image_dimensions{get_u32(data, 5), get_u32(data, 9)};
}

std::optional<image_format> read_format(std::span<const std::uint8_t> data) {
  if (!has_magic(data)) return std::nullopt;
  const std::uint8_t tag = data[4];
  if (tag > static_cast<std::uint8_t>(image_format::gif)) return std::nullopt;
  return static_cast<image_format>(tag);
}

image scale_bilinear(const image& src, std::uint32_t new_width, std::uint32_t new_height) {
  if (!src.valid() || src.width == 0 || src.height == 0) {
    throw std::invalid_argument("scale_bilinear: invalid source image");
  }
  if (new_width == 0 || new_height == 0) {
    throw std::invalid_argument("scale_bilinear: target dimensions must be >= 1");
  }
  image dst;
  dst.width = new_width;
  dst.height = new_height;
  dst.pixels.resize(static_cast<std::size_t>(new_width) * new_height * 3);

  const double x_ratio = new_width > 1
                             ? static_cast<double>(src.width - 1) / (new_width - 1)
                             : 0.0;
  const double y_ratio = new_height > 1
                             ? static_cast<double>(src.height - 1) / (new_height - 1)
                             : 0.0;

  for (std::uint32_t y = 0; y < new_height; ++y) {
    const double sy = y * y_ratio;
    const auto y0 = static_cast<std::uint32_t>(sy);
    const std::uint32_t y1 = std::min(y0 + 1, src.height - 1);
    const double fy = sy - y0;
    for (std::uint32_t x = 0; x < new_width; ++x) {
      const double sx = x * x_ratio;
      const auto x0 = static_cast<std::uint32_t>(sx);
      const std::uint32_t x1 = std::min(x0 + 1, src.width - 1);
      const double fx = sx - x0;
      for (int c = 0; c < 3; ++c) {
        const auto p00 = src.pixels[(static_cast<std::size_t>(y0) * src.width + x0) * 3 + c];
        const auto p01 = src.pixels[(static_cast<std::size_t>(y0) * src.width + x1) * 3 + c];
        const auto p10 = src.pixels[(static_cast<std::size_t>(y1) * src.width + x0) * 3 + c];
        const auto p11 = src.pixels[(static_cast<std::size_t>(y1) * src.width + x1) * 3 + c];
        const double top = p00 * (1.0 - fx) + p01 * fx;
        const double bottom = p10 * (1.0 - fx) + p11 * fx;
        dst.pixels[(static_cast<std::size_t>(y) * new_width + x) * 3 + c] =
            static_cast<std::uint8_t>(std::lround(top * (1.0 - fy) + bottom * fy));
      }
    }
  }
  return dst;
}

transcode_result transcode_to_fit(std::span<const std::uint8_t> data, image_format target,
                                  std::uint32_t max_width, std::uint32_t max_height) {
  transcode_result out;
  if (max_width == 0 || max_height == 0) {
    out.error = "target bounds must be >= 1";
    return out;
  }
  decode_result d = decode(data);
  if (!d.ok) {
    out.error = d.error;
    return out;
  }
  std::uint32_t w = d.img.width;
  std::uint32_t h = d.img.height;
  if (w > max_width || h > max_height) {
    // Fit within the box, preserving aspect ratio (paper Fig. 2 logic).
    const double scale = std::min(static_cast<double>(max_width) / w,
                                  static_cast<double>(max_height) / h);
    w = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::lround(w * scale)));
    h = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::lround(h * scale)));
    d.img = scale_bilinear(d.img, w, h);
  }
  out.data = encode(d.img, target);
  out.dims = {w, h};
  out.ok = true;
  return out;
}

image make_test_image(std::uint32_t width, std::uint32_t height, std::uint32_t seed) {
  image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(static_cast<std::size_t>(width) * height * 3);
  std::uint32_t state = seed * 2654435761u + 1;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      state = state * 1664525u + 1013904223u;  // LCG noise
      const std::size_t i = (static_cast<std::size_t>(y) * width + x) * 3;
      img.pixels[i] = static_cast<std::uint8_t>((x * 255) / std::max(1u, width - 1));
      img.pixels[i + 1] = static_cast<std::uint8_t>((y * 255) / std::max(1u, height - 1));
      img.pixels[i + 2] = static_cast<std::uint8_t>(state >> 24);
    }
  }
  return img;
}

}  // namespace nakika::media
