#include "media/xml.hpp"

#include <cctype>
#include <stdexcept>

namespace nakika::media {

const std::string* xml_node::attr(std::string_view name) const {
  for (const auto& [k, v] : attrs) {
    if (k == name) return &v;
  }
  return nullptr;
}

const xml_node* xml_node::child(std::string_view name) const {
  for (const auto& c : children) {
    if (c->k == kind::element && c->name == name) return c.get();
  }
  return nullptr;
}

std::vector<const xml_node*> xml_node::children_named(std::string_view name) const {
  std::vector<const xml_node*> out;
  for (const auto& c : children) {
    if (c->k == kind::element && c->name == name) out.push_back(c.get());
  }
  return out;
}

std::string xml_node::inner_text() const {
  if (k == kind::text) return text;
  std::string out;
  for (const auto& c : children) out += c->inner_text();
  return out;
}

namespace {

class xml_parser {
 public:
  explicit xml_parser(std::string_view src) : src_(src) {}

  xml_node_ptr parse() {
    skip_prolog();
    auto root = parse_element();
    skip_ws_and_comments();
    if (pos_ != src_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("xml: " + message + " (offset " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_]))) ++pos_;
  }

  void skip_ws_and_comments() {
    while (true) {
      skip_ws();
      if (src_.substr(pos_).starts_with("<!--")) {
        const std::size_t end = src_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_ws();
    if (src_.substr(pos_).starts_with("<?")) {
      const std::size_t end = src_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated XML declaration");
      pos_ = end + 2;
    }
    skip_ws_and_comments();
    if (src_.substr(pos_).starts_with("<!DOCTYPE")) {
      const std::size_t end = src_.find('>', pos_);
      if (end == std::string_view::npos) fail("unterminated DOCTYPE");
      pos_ = end + 1;
    }
    skip_ws_and_comments();
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_' ||
            src_[pos_] == '-' || src_[pos_] == ':' || src_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a name");
    return std::string(src_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    std::size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (entity.starts_with("#")) {
        const long cp = std::strtol(std::string(entity.substr(1)).c_str(), nullptr,
                                    entity.starts_with("#x") ? 16 : 10);
        out.push_back(static_cast<char>(cp & 0x7f));
      } else {
        fail("unknown entity &" + std::string(entity) + ";");
      }
      i = semi + 1;
    }
    return out;
  }

  xml_node_ptr parse_element() {
    if (pos_ >= src_.size() || src_[pos_] != '<') fail("expected '<'");
    ++pos_;
    auto node = std::make_unique<xml_node>();
    node->name = parse_name();

    // Attributes.
    while (true) {
      skip_ws();
      if (pos_ >= src_.size()) fail("unterminated start tag");
      if (src_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (src_.substr(pos_).starts_with("/>")) {
        pos_ += 2;
        return node;  // self-closing
      }
      std::string attr_name = parse_name();
      skip_ws();
      if (pos_ >= src_.size() || src_[pos_] != '=') fail("expected '=' after attribute name");
      ++pos_;
      skip_ws();
      if (pos_ >= src_.size() || (src_[pos_] != '"' && src_[pos_] != '\'')) {
        fail("expected quoted attribute value");
      }
      const char quote = src_[pos_++];
      const std::size_t val_end = src_.find(quote, pos_);
      if (val_end == std::string_view::npos) fail("unterminated attribute value");
      node->attrs.emplace_back(std::move(attr_name),
                               decode_entities(src_.substr(pos_, val_end - pos_)));
      pos_ = val_end + 1;
    }

    // Children until the matching end tag.
    while (true) {
      if (pos_ >= src_.size()) fail("unterminated element <" + node->name + ">");
      if (src_.substr(pos_).starts_with("</")) {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != node->name) {
          fail("mismatched end tag </" + closing + "> for <" + node->name + ">");
        }
        skip_ws();
        if (pos_ >= src_.size() || src_[pos_] != '>') fail("malformed end tag");
        ++pos_;
        return node;
      }
      if (src_.substr(pos_).starts_with("<!--")) {
        const std::size_t end = src_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (src_.substr(pos_).starts_with("<![CDATA[")) {
        const std::size_t end = src_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) fail("unterminated CDATA");
        auto text_node = std::make_unique<xml_node>();
        text_node->k = xml_node::kind::text;
        text_node->text = std::string(src_.substr(pos_ + 9, end - pos_ - 9));
        node->children.push_back(std::move(text_node));
        pos_ = end + 3;
        continue;
      }
      if (src_[pos_] == '<') {
        node->children.push_back(parse_element());
        continue;
      }
      const std::size_t text_end = src_.find('<', pos_);
      if (text_end == std::string_view::npos) fail("unterminated element content");
      const std::string decoded = decode_entities(src_.substr(pos_, text_end - pos_));
      pos_ = text_end;
      // Skip whitespace-only runs between elements.
      if (decoded.find_first_not_of(" \t\r\n") != std::string::npos) {
        auto text_node = std::make_unique<xml_node>();
        text_node->k = xml_node::kind::text;
        text_node->text = decoded;
        node->children.push_back(std::move(text_node));
      }
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

void serialize_into(std::string& out, const xml_node& node) {
  if (node.k == xml_node::kind::text) {
    out += xml_escape(node.text);
    return;
  }
  out += "<" + node.name;
  for (const auto& [k, v] : node.attrs) {
    out += " " + k + "=\"" + xml_escape(v) + "\"";
  }
  if (node.children.empty()) {
    out += "/>";
    return;
  }
  out += ">";
  for (const auto& c : node.children) serialize_into(out, *c);
  out += "</" + node.name + ">";
}

}  // namespace

xml_node_ptr parse_xml(std::string_view source) { return xml_parser(source).parse(); }

std::string serialize_xml(const xml_node& node) {
  std::string out;
  serialize_into(out, node);
  return out;
}

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace nakika::media
