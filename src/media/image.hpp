// Synthetic raster imaging. The paper transcodes JPEG/GIF/PNG with an image
// library; offline we substitute the SIMG container (magic + format tag +
// dimensions + raw RGB) and perform genuine bilinear resampling, so the
// transcoding pipeline does real, size-proportional CPU work (see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace nakika::media {

enum class image_format : std::uint8_t { raw = 0, jpeg = 1, png = 2, gif = 3 };

[[nodiscard]] std::string_view to_string(image_format f);
[[nodiscard]] std::optional<image_format> format_from_name(std::string_view name);
// Maps a MIME type ("image/jpeg") to a format; nullopt for non-images.
[[nodiscard]] std::optional<image_format> format_from_mime(std::string_view mime);
[[nodiscard]] std::string mime_from_format(image_format f);

struct image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> pixels;  // RGB24, row-major

  [[nodiscard]] std::size_t pixel_bytes() const { return pixels.size(); }
  [[nodiscard]] bool valid() const {
    return static_cast<std::size_t>(width) * height * 3 == pixels.size();
  }
};

struct image_dimensions {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
};

// --- SIMG container -----------------------------------------------------------

// Encodes pixels into a SIMG container tagged with `format`. The tag is what
// a Content-Type would claim; pixels are stored raw either way.
[[nodiscard]] util::byte_buffer encode(const image& img, image_format format);

struct decode_result {
  bool ok = false;
  std::string error;
  image img;
  image_format format = image_format::raw;
};
[[nodiscard]] decode_result decode(std::span<const std::uint8_t> data);

// Reads only the header. Cheap, like reading JPEG SOF markers.
[[nodiscard]] std::optional<image_dimensions> read_dimensions(
    std::span<const std::uint8_t> data);
[[nodiscard]] std::optional<image_format> read_format(std::span<const std::uint8_t> data);

// --- processing ----------------------------------------------------------------

// Bilinear resample to exactly (new_width, new_height); both must be >= 1.
[[nodiscard]] image scale_bilinear(const image& src, std::uint32_t new_width,
                                   std::uint32_t new_height);

// Transcode: decode, scale down to fit within (max_width, max_height)
// preserving aspect ratio (never upscales), re-encode as `target`.
struct transcode_result {
  bool ok = false;
  std::string error;
  util::byte_buffer data;
  image_dimensions dims;
};
[[nodiscard]] transcode_result transcode_to_fit(std::span<const std::uint8_t> data,
                                                image_format target, std::uint32_t max_width,
                                                std::uint32_t max_height);

// Deterministic synthetic image (gradient + hash noise) for workloads/tests.
[[nodiscard]] image make_test_image(std::uint32_t width, std::uint32_t height,
                                    std::uint32_t seed);

}  // namespace nakika::media
