#include "media/xsl.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace nakika::media {

namespace {

// Resolves a select path against a context element. Supported forms:
// "." (inner text), "@attr", "name", "a/b" (first match), "a/@attr".
std::string resolve_value(const xml_node& context, std::string_view path) {
  if (path == ".") return context.inner_text();
  const xml_node* node = &context;
  for (const auto& step : util::split(std::string(path), '/')) {
    if (step.empty()) continue;
    if (step.front() == '@') {
      const std::string* a = node->attr(std::string_view(step).substr(1));
      return a ? *a : "";
    }
    const xml_node* next = node->child(step);
    if (next == nullptr) return "";
    node = next;
  }
  return node->inner_text();
}

std::vector<const xml_node*> resolve_nodes(const xml_node& context, std::string_view path) {
  if (path.empty() || path == ".") {
    std::vector<const xml_node*> out;
    for (const auto& c : context.children) {
      if (c->k == xml_node::kind::element) out.push_back(c.get());
    }
    return out;
  }
  // Walk intermediate steps to a parent, then collect all children matching
  // the final step.
  const auto steps = util::split(std::string(path), '/');
  const xml_node* node = &context;
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    if (steps[i].empty()) continue;
    node = node->child(steps[i]);
    if (node == nullptr) return {};
  }
  return node->children_named(steps.back());
}

bool is_xsl(const xml_node& n, std::string_view local) {
  return n.k == xml_node::kind::element && (n.name == "xsl:" + std::string(local));
}

}  // namespace

xsl_stylesheet xsl_stylesheet::parse(std::string_view source) {
  xsl_stylesheet sheet;
  sheet.sheet_ = parse_xml(source);
  if (sheet.sheet_->name != "xsl:stylesheet" && sheet.sheet_->name != "xsl:transform") {
    throw std::invalid_argument("xsl: root element must be xsl:stylesheet");
  }
  for (const auto& child : sheet.sheet_->children) {
    if (child->k != xml_node::kind::element) continue;
    if (!is_xsl(*child, "template")) continue;
    const std::string* match = child->attr("match");
    if (match == nullptr || match->empty()) {
      throw std::invalid_argument("xsl: template without match attribute");
    }
    sheet.templates_.push_back({*match, child.get()});
  }
  if (sheet.templates_.empty()) {
    throw std::invalid_argument("xsl: stylesheet has no templates");
  }
  return sheet;
}

const xsl_stylesheet::template_rule* xsl_stylesheet::find_rule(std::string_view name) const {
  for (const auto& t : templates_) {
    if (t.match == name) return &t;
  }
  return nullptr;
}

std::string xsl_stylesheet::apply(const xml_node& document) const {
  std::string out;
  // Root rule "/" if present, else the rule matching the root element, else
  // the built-in rule (recurse).
  if (const template_rule* root = find_rule("/")) {
    run_body(out, *root->body, document);
  } else {
    apply_templates(out, document);
  }
  return out;
}

void xsl_stylesheet::apply_templates(std::string& out, const xml_node& context) const {
  if (const template_rule* rule = find_rule(context.name)) {
    run_body(out, *rule->body, context);
    return;
  }
  // Built-in rule: text copies through, elements recurse.
  for (const auto& c : context.children) {
    if (c->k == xml_node::kind::text) {
      out += c->text;
    } else {
      apply_templates(out, *c);
    }
  }
}

void xsl_stylesheet::run_body(std::string& out, const xml_node& body,
                              const xml_node& context) const {
  for (const auto& child : body.children) {
    if (child->k == xml_node::kind::text) {
      out += child->text;
      continue;
    }
    if (is_xsl(*child, "value-of")) {
      const std::string* select = child->attr("select");
      if (select == nullptr) throw std::invalid_argument("xsl:value-of without select");
      out += xml_escape(resolve_value(context, *select));
      continue;
    }
    if (is_xsl(*child, "apply-templates")) {
      const std::string* select = child->attr("select");
      for (const xml_node* n : resolve_nodes(context, select ? *select : "")) {
        apply_templates(out, *n);
      }
      continue;
    }
    if (is_xsl(*child, "for-each")) {
      const std::string* select = child->attr("select");
      if (select == nullptr) throw std::invalid_argument("xsl:for-each without select");
      for (const xml_node* n : resolve_nodes(context, *select)) {
        run_body(out, *child, *n);
      }
      continue;
    }
    if (child->name.starts_with("xsl:")) {
      throw std::invalid_argument("xsl: unsupported instruction " + child->name);
    }
    // Literal result element: copy tag + attributes, recurse into children.
    out += "<" + child->name;
    for (const auto& [k, v] : child->attrs) {
      out += " " + k + "=\"" + xml_escape(v) + "\"";
    }
    if (child->children.empty()) {
      out += "/>";
    } else {
      out += ">";
      run_body(out, *child, context);
      out += "</" + child->name + ">";
    }
  }
}

std::string xsl_transform(std::string_view stylesheet_xml, std::string_view document_xml) {
  const xsl_stylesheet sheet = xsl_stylesheet::parse(stylesheet_xml);
  const xml_node_ptr doc = parse_xml(document_xml);
  return sheet.apply(*doc);
}

}  // namespace nakika::media
