// Cookie parsing. The paper's vocabularies expose cookies to scripts (the
// SIMM port switched from cookies to URL session identifiers, exercising
// both paths).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nakika::http {

struct cookie {
  std::string name;
  std::string value;
};

// Parses a Cookie request header: "a=1; b=2".
[[nodiscard]] std::vector<cookie> parse_cookie_header(std::string_view header_value);

// Finds a cookie by name in a Cookie header value.
[[nodiscard]] std::optional<std::string> get_cookie(std::string_view header_value,
                                                    std::string_view name);

// Builds a Set-Cookie response header value.
[[nodiscard]] std::string format_set_cookie(const cookie& c, std::string_view path = "/",
                                            std::optional<std::int64_t> max_age = {});

}  // namespace nakika::http
