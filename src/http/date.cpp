#include "http/date.hpp"

#include <array>
#include <cstdio>

#include "util/strings.hpp"

namespace nakika::http {

namespace {

constexpr std::array<const char*, 7> day_names = {"Sun", "Mon", "Tue", "Wed",
                                                  "Thu", "Fri", "Sat"};
constexpr std::array<const char*, 12> month_names = {"Jan", "Feb", "Mar", "Apr",
                                                     "May", "Jun", "Jul", "Aug",
                                                     "Sep", "Oct", "Nov", "Dec"};

// Howard Hinnant's days-from-civil algorithm (public domain).
std::int64_t days_from_civil(std::int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

// Inverse: civil date from days since epoch.
void civil_from_days(std::int64_t z, std::int64_t& y, unsigned& m, unsigned& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp + (mp < 10 ? 3 : -9);
  y += m <= 2;
}

}  // namespace

std::string format_http_date(std::int64_t epoch_seconds) {
  std::int64_t days = epoch_seconds / 86400;
  std::int64_t rem = epoch_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  std::int64_t year = 0;
  unsigned month = 0;
  unsigned day = 0;
  civil_from_days(days, year, month, day);
  // Epoch (1970-01-01) was a Thursday (index 4).
  const auto weekday = static_cast<std::size_t>(((days % 7) + 7 + 4) % 7);
  const auto hour = static_cast<int>(rem / 3600);
  const auto minute = static_cast<int>(rem % 3600 / 60);
  const auto second = static_cast<int>(rem % 60);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s, %02u %s %04lld %02d:%02d:%02d GMT",
                day_names[weekday], day, month_names[month - 1],
                static_cast<long long>(year), hour, minute, second);
  return buf;
}

std::optional<std::int64_t> parse_http_date(std::string_view text) {
  // Expected: "Sun, 06 Nov 1994 08:49:37 GMT"
  const auto fields = util::split_trimmed(std::string(text), ' ');
  if (fields.size() != 6) return std::nullopt;
  const auto day = util::parse_int(fields[1]);
  if (!day || *day < 1 || *day > 31) return std::nullopt;
  int month = 0;
  for (std::size_t i = 0; i < month_names.size(); ++i) {
    if (util::iequals(fields[2], month_names[i])) {
      month = static_cast<int>(i) + 1;
      break;
    }
  }
  if (month == 0) return std::nullopt;
  const auto year = util::parse_int(fields[3]);
  if (!year || *year < 1900) return std::nullopt;
  const auto hms = util::split(fields[4], ':');
  if (hms.size() != 3) return std::nullopt;
  const auto h = util::parse_int(hms[0]);
  const auto m = util::parse_int(hms[1]);
  const auto s = util::parse_int(hms[2]);
  if (!h || !m || !s || *h < 0 || *h > 23 || *m < 0 || *m > 59 || *s < 0 || *s > 60) {
    return std::nullopt;
  }
  const std::int64_t days = days_from_civil(*year, static_cast<unsigned>(month),
                                            static_cast<unsigned>(*day));
  return days * 86400 + *h * 3600 + *m * 60 + *s;
}

}  // namespace nakika::http
