// HTTP message model: methods, status codes, case-insensitive header maps,
// and request/response records. This is the substrate the paper gets from
// Apache; everything the scripting pipeline touches flows through these types.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/url.hpp"
#include "util/bytes.hpp"

namespace nakika::http {

enum class method : std::uint8_t { get, head, post, put, del, options, trace, connect };

[[nodiscard]] std::string_view to_string(method m);
[[nodiscard]] std::optional<method> parse_method(std::string_view text);

// Insertion-ordered header collection with case-insensitive names, matching
// HTTP semantics. Multiple headers with the same name are preserved.
class header_map {
 public:
  // First value for `name`, if any.
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;
  [[nodiscard]] std::string get_or(std::string_view name, std::string_view fallback) const;
  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> get_all(std::string_view name) const;

  // Replaces all values of `name` with a single value.
  void set(std::string_view name, std::string_view v);
  // Appends without replacing.
  void add(std::string_view name, std::string_view v);
  // Removes every value of `name`; returns how many were removed.
  std::size_t remove(std::string_view name);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  struct entry {
    std::string name;
    std::string val;
  };
  [[nodiscard]] const std::vector<entry>& entries() const { return entries_; }

  [[nodiscard]] std::optional<std::int64_t> content_length() const;

 private:
  std::vector<entry> entries_;
};

struct request {
  http::method method = http::method::get;
  http::url url;
  header_map headers;
  util::shared_body body;                // may be null (no body)
  std::string client_ip;                 // dotted quad, filled in by the proxy
  std::string client_host;               // reverse-resolved name, may be empty

  [[nodiscard]] std::size_t body_size() const { return body ? body->size() : 0; }
};

struct response {
  int status = 200;
  std::string reason;  // derived from status if empty
  header_map headers;
  util::shared_body body;

  [[nodiscard]] std::size_t body_size() const { return body ? body->size() : 0; }
  [[nodiscard]] bool ok() const { return status >= 200 && status < 300; }
};

[[nodiscard]] std::string_view reason_phrase(int status);

// Builds a minimal response with Content-Type/Content-Length set.
[[nodiscard]] response make_response(int status, std::string_view content_type,
                                     util::shared_body body);
[[nodiscard]] response make_error_response(int status, std::string_view detail = {});

}  // namespace nakika::http
