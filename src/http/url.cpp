#include "http/url.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace nakika::http {

namespace {

void parse_authority(url& u, std::string_view authority) {
  const std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    const auto port = util::parse_int(authority.substr(colon + 1));
    if (!port || *port < 0 || *port > 65535) {
      throw std::invalid_argument("url: bad port in '" + std::string(authority) + "'");
    }
    u.set_port(static_cast<std::uint16_t>(*port));
    u.set_host(util::to_lower(authority.substr(0, colon)));
  } else {
    u.set_host(util::to_lower(authority));
  }
}

void parse_path_query(url& u, std::string_view rest) {
  if (rest.empty()) {
    u.set_path("/");
    return;
  }
  const std::size_t q = rest.find('?');
  if (q == std::string_view::npos) {
    u.set_path(rest);
  } else {
    u.set_path(rest.substr(0, q));
    u.set_query(rest.substr(q + 1));
  }
  if (u.path().empty()) u.set_path("/");
}

}  // namespace

url url::parse(std::string_view text) {
  url u;
  if (text.empty()) throw std::invalid_argument("url: empty input");

  if (text.starts_with("/")) {  // origin-form
    parse_path_query(u, text);
    return u;
  }

  const std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos) {
    throw std::invalid_argument("url: missing scheme in '" + std::string(text) + "'");
  }
  u.scheme_ = util::to_lower(text.substr(0, scheme_end));
  if (u.scheme_ != "http" && u.scheme_ != "https") {
    throw std::invalid_argument("url: unsupported scheme '" + u.scheme_ + "'");
  }
  u.port_ = u.scheme_ == "https" ? 443 : 80;

  std::string_view rest = text.substr(scheme_end + 3);
  const std::size_t path_start = rest.find('/');
  const std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (authority.empty()) {
    throw std::invalid_argument("url: empty host in '" + std::string(text) + "'");
  }
  parse_authority(u, authority);
  parse_path_query(u, path_start == std::string_view::npos ? std::string_view{}
                                                           : rest.substr(path_start));
  return u;
}

url url::parse_lenient(std::string_view text) {
  if (text.find("://") != std::string_view::npos || text.starts_with("/")) {
    return parse(text);
  }
  // Scheme-less predicate form: host[:port][/path...].
  url u;
  const std::size_t path_start = text.find('/');
  const std::string_view authority =
      path_start == std::string_view::npos ? text : text.substr(0, path_start);
  if (authority.empty()) throw std::invalid_argument("url: empty host");
  parse_authority(u, authority);
  parse_path_query(u, path_start == std::string_view::npos ? std::string_view{}
                                                           : text.substr(path_start));
  return u;
}

std::vector<std::string> url::host_components_reversed() const {
  auto parts = util::split(host_, '.');
  std::reverse(parts.begin(), parts.end());
  return parts;
}

std::vector<std::string> url::path_components() const {
  std::vector<std::string> out;
  for (auto& part : util::split(path_, '/')) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string url::str() const {
  std::string out = scheme_ + "://" + host_;
  const bool default_port =
      (scheme_ == "http" && port_ == 80) || (scheme_ == "https" && port_ == 443);
  if (!default_port) out += ":" + std::to_string(port_);
  out += path_;
  if (!query_.empty()) out += "?" + query_;
  return out;
}

std::string url::host_and_path() const {
  std::string out = host_;
  const bool default_port =
      (scheme_ == "http" && port_ == 80) || (scheme_ == "https" && port_ == 443);
  if (!default_port) out += ":" + std::to_string(port_);
  out += path_;
  if (!query_.empty()) out += "?" + query_;
  return out;
}

std::string url::site() const {
  std::string out = scheme_ + "://" + host_;
  const bool default_port =
      (scheme_ == "http" && port_ == 80) || (scheme_ == "https" && port_ == 443);
  if (!default_port) out += ":" + std::to_string(port_);
  return out;
}

std::vector<std::string> ip_components(std::string_view ip) {
  auto parts = util::split(ip, '.');
  if (parts.size() != 4) return {};
  for (const auto& p : parts) {
    const auto v = util::parse_int(p);
    if (!v || *v < 0 || *v > 255) return {};
  }
  return parts;
}

namespace {
std::optional<std::uint32_t> ip_to_u32(std::string_view ip) {
  const auto parts = ip_components(ip);
  if (parts.empty()) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& p : parts) {
    v = v << 8 | static_cast<std::uint32_t>(*util::parse_int(p));
  }
  return v;
}
}  // namespace

bool cidr_contains(std::string_view cidr, std::string_view ip) {
  const std::size_t slash = cidr.find('/');
  std::string_view base = cidr;
  int bits = 32;
  if (slash != std::string_view::npos) {
    base = cidr.substr(0, slash);
    const auto b = util::parse_int(cidr.substr(slash + 1));
    if (!b || *b < 0 || *b > 32) return false;
    bits = static_cast<int>(*b);
  }
  const auto base_v = ip_to_u32(base);
  const auto ip_v = ip_to_u32(ip);
  if (!base_v || !ip_v) return false;
  if (bits == 0) return true;
  const std::uint32_t mask = bits == 32 ? 0xFFFFFFFFu : ~((1u << (32 - bits)) - 1u);
  return (*base_v & mask) == (*ip_v & mask);
}

}  // namespace nakika::http
