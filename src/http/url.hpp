// URL parsing and decomposition. The decision tree (paper §4) matches on a
// URL's server-name components, port, and path components, so those
// decompositions live here next to the parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nakika::http {

class url {
 public:
  url() = default;
  // Parses an absolute ("http://host[:port]/path?query") or origin-form
  // ("/path?query") URL. Throws std::invalid_argument on malformed input.
  static url parse(std::string_view text);
  // Parses a paper-style URL predicate value, which may omit the scheme:
  // "med.nyu.edu/simms" means host prefix + path prefix.
  static url parse_lenient(std::string_view text);

  [[nodiscard]] const std::string& scheme() const { return scheme_; }
  [[nodiscard]] const std::string& host() const { return host_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& query() const { return query_; }

  void set_host(std::string_view host) { host_ = host; }
  void set_path(std::string_view path) { path_ = path; }
  void set_query(std::string_view query) { query_ = query; }
  void set_port(std::uint16_t port) { port_ = port; }
  void set_scheme(std::string_view scheme) { scheme_ = scheme; }

  // Host components in reverse DNS order: "www.med.nyu.edu" -> {edu, nyu,
  // med, www}. This is the order the decision tree descends.
  [[nodiscard]] std::vector<std::string> host_components_reversed() const;
  // Path components: "/a/b/c" -> {a, b, c}.
  [[nodiscard]] std::vector<std::string> path_components() const;

  // Full serialization "http://host[:port]/path[?query]".
  [[nodiscard]] std::string str() const;
  // Host[:port] + path + query, without the scheme (matches Host headers).
  [[nodiscard]] std::string host_and_path() const;

  // The site identity used for resource accounting and nakika.js discovery:
  // scheme://host[:port].
  [[nodiscard]] std::string site() const;

  bool operator==(const url& other) const = default;

 private:
  std::string scheme_ = "http";
  std::string host_;
  std::uint16_t port_ = 80;
  std::string path_ = "/";
  std::string query_;
};

// Splits a dotted-quad IPv4 address into its four components as strings, most
// significant first ("192.168.7.9" -> {192, 168, 7, 9}). Returns empty on
// malformed input.
[[nodiscard]] std::vector<std::string> ip_components(std::string_view ip);

// True if `ip` falls inside `cidr` ("192.168.0.0/16"). Malformed inputs are
// treated as non-matching.
[[nodiscard]] bool cidr_contains(std::string_view cidr, std::string_view ip);

}  // namespace nakika::http
