#include "http/wire.hpp"

#include "util/strings.hpp"

namespace nakika::http {

namespace {

void serialize_headers(std::string& out, const header_map& headers) {
  for (const auto& e : headers.entries()) {
    out += e.name;
    out += ": ";
    out += e.val;
    out += "\r\n";
  }
  out += "\r\n";
}

struct head_parse {
  bool ok = false;
  std::string error;
  std::string start_line;
  header_map headers;
  std::string_view rest;
};

head_parse parse_head(std::string_view wire) {
  head_parse h;
  const std::size_t line_end = wire.find("\r\n");
  if (line_end == std::string_view::npos) {
    h.error = "missing start line terminator";
    return h;
  }
  h.start_line = std::string(wire.substr(0, line_end));
  std::size_t pos = line_end + 2;
  while (true) {
    const std::size_t next = wire.find("\r\n", pos);
    if (next == std::string_view::npos) {
      h.error = "unterminated header block";
      return h;
    }
    if (next == pos) {  // blank line
      h.rest = wire.substr(pos + 2);
      h.ok = true;
      return h;
    }
    const std::string_view line = wire.substr(pos, next - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      h.error = "malformed header line: " + std::string(line);
      return h;
    }
    h.headers.add(util::trim(line.substr(0, colon)), util::trim(line.substr(colon + 1)));
    pos = next + 2;
  }
}

struct body_parse {
  bool ok = false;
  std::string error;
  util::shared_body body;
};

body_parse parse_body(const header_map& headers, std::string_view rest) {
  body_parse b;
  const auto transfer = headers.get("Transfer-Encoding");
  if (transfer && util::iequals(*transfer, "chunked")) {
    util::byte_buffer out;
    std::size_t pos = 0;
    while (true) {
      const std::size_t line_end = rest.find("\r\n", pos);
      if (line_end == std::string_view::npos) {
        b.error = "chunked: missing size line";
        return b;
      }
      const std::string size_text(util::trim(rest.substr(pos, line_end - pos)));
      char* end = nullptr;
      const unsigned long long n = std::strtoull(size_text.c_str(), &end, 16);
      if (end == size_text.c_str()) {
        b.error = "chunked: bad size '" + size_text + "'";
        return b;
      }
      pos = line_end + 2;
      if (n == 0) break;
      if (pos + n + 2 > rest.size()) {
        b.error = "chunked: truncated chunk";
        return b;
      }
      out.append(rest.substr(pos, n));
      pos += n + 2;  // skip trailing CRLF
    }
    b.body = util::make_body(std::move(out));
    b.ok = true;
    return b;
  }
  const auto length = headers.content_length();
  if (length) {
    if (static_cast<std::size_t>(*length) > rest.size()) {
      b.error = "truncated body";
      return b;
    }
    b.body = util::make_body(util::byte_buffer(rest.substr(0, static_cast<std::size_t>(*length))));
    b.ok = true;
    return b;
  }
  // No framing headers: everything remaining is the body.
  if (!rest.empty()) b.body = util::make_body(util::byte_buffer(rest));
  b.ok = true;
  return b;
}

}  // namespace

util::byte_buffer serialize(const request& r) {
  std::string out;
  out += to_string(r.method);
  out += " ";
  out += r.url.path();
  if (!r.url.query().empty()) {
    out += "?";
    out += r.url.query();
  }
  out += " HTTP/1.1\r\n";
  if (!r.headers.has("Host")) {
    out += "Host: " + r.url.host() + "\r\n";
  }
  serialize_headers(out, r.headers);
  util::byte_buffer buf(out);
  if (r.body) buf.append(*r.body);
  return buf;
}

util::byte_buffer serialize(const response& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    (r.reason.empty() ? std::string(reason_phrase(r.status)) : r.reason) +
                    "\r\n";
  serialize_headers(out, r.headers);
  util::byte_buffer buf(out);
  if (r.body) buf.append(*r.body);
  return buf;
}

std::size_t wire_size(const request& r) {
  std::size_t n = 4 + 14;  // method/version slack + separators
  n += r.url.path().size() + r.url.query().size();
  if (!r.headers.has("Host")) n += 8 + r.url.host().size();
  for (const auto& e : r.headers.entries()) n += e.name.size() + e.val.size() + 4;
  n += 2 + r.body_size();
  return n;
}

std::size_t wire_size(const response& r) {
  std::size_t n = 17;  // status line
  for (const auto& e : r.headers.entries()) n += e.name.size() + e.val.size() + 4;
  n += 2 + r.body_size();
  return n;
}

parse_result_request parse_request(std::string_view wire) {
  parse_result_request out;
  head_parse h = parse_head(wire);
  if (!h.ok) {
    out.error = h.error;
    return out;
  }
  const auto fields = util::split_trimmed(h.start_line, ' ');
  if (fields.size() != 3) {
    out.error = "malformed request line: " + h.start_line;
    return out;
  }
  const auto m = parse_method(fields[0]);
  if (!m) {
    out.error = "unknown method: " + fields[0];
    return out;
  }
  out.value.method = *m;
  try {
    if (fields[1].starts_with("/")) {
      out.value.url = url::parse(fields[1]);
      if (const auto host = h.headers.get("Host")) {
        // Reconstruct an absolute URL from origin-form + Host.
        url u = url::parse_lenient(*host + out.value.url.path() +
                                   (out.value.url.query().empty()
                                        ? ""
                                        : "?" + out.value.url.query()));
        out.value.url = u;
      }
    } else {
      out.value.url = url::parse(fields[1]);
    }
  } catch (const std::invalid_argument& e) {
    out.error = e.what();
    return out;
  }
  out.value.headers = std::move(h.headers);
  body_parse b = parse_body(out.value.headers, h.rest);
  if (!b.ok) {
    out.error = b.error;
    return out;
  }
  out.value.body = std::move(b.body);
  out.ok = true;
  return out;
}

parse_result_response parse_response(std::string_view wire) {
  parse_result_response out;
  head_parse h = parse_head(wire);
  if (!h.ok) {
    out.error = h.error;
    return out;
  }
  if (!h.start_line.starts_with("HTTP/1.")) {
    out.error = "malformed status line: " + h.start_line;
    return out;
  }
  const auto fields = util::split_trimmed(h.start_line, ' ');
  if (fields.size() < 2) {
    out.error = "malformed status line: " + h.start_line;
    return out;
  }
  const auto status = util::parse_int(fields[1]);
  if (!status || *status < 100 || *status > 599) {
    out.error = "bad status code: " + fields[1];
    return out;
  }
  out.value.status = static_cast<int>(*status);
  for (std::size_t i = 2; i < fields.size(); ++i) {
    if (!out.value.reason.empty()) out.value.reason += " ";
    out.value.reason += fields[i];
  }
  out.value.headers = std::move(h.headers);
  body_parse b = parse_body(out.value.headers, h.rest);
  if (!b.ok) {
    out.error = b.error;
    return out;
  }
  out.value.body = std::move(b.body);
  out.ok = true;
  return out;
}

}  // namespace nakika::http
