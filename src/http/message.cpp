#include "http/message.hpp"

#include "util/strings.hpp"

namespace nakika::http {

std::string_view to_string(method m) {
  switch (m) {
    case method::get: return "GET";
    case method::head: return "HEAD";
    case method::post: return "POST";
    case method::put: return "PUT";
    case method::del: return "DELETE";
    case method::options: return "OPTIONS";
    case method::trace: return "TRACE";
    case method::connect: return "CONNECT";
  }
  return "GET";
}

std::optional<method> parse_method(std::string_view text) {
  if (util::iequals(text, "GET")) return method::get;
  if (util::iequals(text, "HEAD")) return method::head;
  if (util::iequals(text, "POST")) return method::post;
  if (util::iequals(text, "PUT")) return method::put;
  if (util::iequals(text, "DELETE")) return method::del;
  if (util::iequals(text, "OPTIONS")) return method::options;
  if (util::iequals(text, "TRACE")) return method::trace;
  if (util::iequals(text, "CONNECT")) return method::connect;
  return std::nullopt;
}

std::optional<std::string> header_map::get(std::string_view name) const {
  for (const auto& e : entries_) {
    if (util::iequals(e.name, name)) return e.val;
  }
  return std::nullopt;
}

std::string header_map::get_or(std::string_view name, std::string_view fallback) const {
  const auto v = get(name);
  return v ? *v : std::string(fallback);
}

bool header_map::has(std::string_view name) const { return get(name).has_value(); }

std::vector<std::string> header_map::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (util::iequals(e.name, name)) out.push_back(e.val);
  }
  return out;
}

void header_map::set(std::string_view name, std::string_view v) {
  remove(name);
  entries_.push_back({std::string(name), std::string(v)});
}

void header_map::add(std::string_view name, std::string_view v) {
  entries_.push_back({std::string(name), std::string(v)});
}

std::size_t header_map::remove(std::string_view name) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (util::iequals(it->name, name)) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::optional<std::int64_t> header_map::content_length() const {
  const auto v = get("Content-Length");
  if (!v) return std::nullopt;
  const auto n = util::parse_int(*v);
  if (!n || *n < 0) return std::nullopt;
  return n;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 307: return "Temporary Redirect";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

response make_response(int status, std::string_view content_type, util::shared_body body) {
  response r;
  r.status = status;
  r.reason = reason_phrase(status);
  if (!content_type.empty()) r.headers.set("Content-Type", content_type);
  r.headers.set("Content-Length", std::to_string(body ? body->size() : 0));
  r.body = std::move(body);
  return r;
}

response make_error_response(int status, std::string_view detail) {
  std::string text = std::to_string(status) + " " + std::string(reason_phrase(status));
  if (!detail.empty()) {
    text += "\n";
    text += detail;
  }
  return make_response(status, "text/plain", util::make_body(text));
}

}  // namespace nakika::http
