// Expiration-based consistency, the web's cache model the paper builds on
// (§3.3): parse Cache-Control and Expires, decide cacheability and freshness
// lifetimes. Times are epoch seconds on the simulator's virtual clock.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "http/message.hpp"

namespace nakika::http {

struct cache_directives {
  bool no_store = false;
  bool no_cache = false;
  bool is_private = false;
  bool must_revalidate = false;
  std::optional<std::int64_t> max_age;    // seconds
  std::optional<std::int64_t> s_maxage;   // seconds, shared caches
};

[[nodiscard]] cache_directives parse_cache_control(std::string_view header_value);

// Freshness decision for a response received at `response_time` (epoch
// seconds). Priority: s-maxage > max-age > Expires - Date. Responses with
// no explicit lifetime get a conservative heuristic lifetime (10% of
// Date - Last-Modified, capped), mirroring common proxy behaviour.
struct freshness {
  bool cacheable = false;
  std::int64_t expires_at = 0;  // epoch seconds; meaningful if cacheable
};

[[nodiscard]] freshness compute_freshness(const response& r, std::int64_t response_time);

}  // namespace nakika::http
