#include "http/cookies.hpp"

#include "util/strings.hpp"

namespace nakika::http {

std::vector<cookie> parse_cookie_header(std::string_view header_value) {
  std::vector<cookie> out;
  for (const auto& part : util::split_trimmed(header_value, ';')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) continue;
    cookie c;
    c.name = std::string(util::trim(std::string_view(part).substr(0, eq)));
    c.value = std::string(util::trim(std::string_view(part).substr(eq + 1)));
    if (!c.name.empty()) out.push_back(std::move(c));
  }
  return out;
}

std::optional<std::string> get_cookie(std::string_view header_value, std::string_view name) {
  for (const auto& c : parse_cookie_header(header_value)) {
    if (c.name == name) return c.value;
  }
  return std::nullopt;
}

std::string format_set_cookie(const cookie& c, std::string_view path,
                              std::optional<std::int64_t> max_age) {
  std::string out = c.name + "=" + c.value + "; Path=" + std::string(path);
  if (max_age) out += "; Max-Age=" + std::to_string(*max_age);
  return out;
}

}  // namespace nakika::http
