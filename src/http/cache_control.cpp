#include "http/cache_control.hpp"

#include <algorithm>

#include "http/date.hpp"
#include "util/strings.hpp"

namespace nakika::http {

cache_directives parse_cache_control(std::string_view header_value) {
  cache_directives d;
  for (const auto& part : util::split_trimmed(header_value, ',')) {
    const std::size_t eq = part.find('=');
    const std::string name =
        util::to_lower(eq == std::string::npos ? part : part.substr(0, eq));
    std::string_view arg =
        eq == std::string::npos ? std::string_view{} : std::string_view(part).substr(eq + 1);
    if (!arg.empty() && arg.front() == '"' && arg.back() == '"' && arg.size() >= 2) {
      arg = arg.substr(1, arg.size() - 2);
    }
    if (name == "no-store") {
      d.no_store = true;
    } else if (name == "no-cache") {
      d.no_cache = true;
    } else if (name == "private") {
      d.is_private = true;
    } else if (name == "must-revalidate") {
      d.must_revalidate = true;
    } else if (name == "max-age") {
      if (const auto v = util::parse_int(arg); v && *v >= 0) d.max_age = *v;
    } else if (name == "s-maxage") {
      if (const auto v = util::parse_int(arg); v && *v >= 0) d.s_maxage = *v;
    }
  }
  return d;
}

freshness compute_freshness(const response& r, std::int64_t response_time) {
  freshness f;
  // Only successful, complete responses are cacheable in our proxy.
  if (r.status != 200 && r.status != 301 && r.status != 404) return f;

  const cache_directives d = parse_cache_control(r.headers.get_or("Cache-Control", ""));
  if (d.no_store || d.no_cache || d.is_private) return f;

  if (d.s_maxage) {
    f.cacheable = true;
    f.expires_at = response_time + *d.s_maxage;
    return f;
  }
  if (d.max_age) {
    f.cacheable = true;
    f.expires_at = response_time + *d.max_age;
    return f;
  }
  if (const auto expires = r.headers.get("Expires")) {
    if (const auto when = parse_http_date(*expires)) {
      f.cacheable = *when > response_time;
      f.expires_at = *when;
      return f;
    }
    return f;  // malformed Expires means already stale
  }
  // Heuristic freshness: 10% of the age implied by Last-Modified, at most a
  // day, at least nothing (uncacheable when Last-Modified is absent).
  const auto last_modified = r.headers.get("Last-Modified");
  if (!last_modified) return f;
  const auto lm = parse_http_date(*last_modified);
  if (!lm || *lm > response_time) return f;
  const std::int64_t lifetime = std::min<std::int64_t>((response_time - *lm) / 10, 86400);
  if (lifetime <= 0) return f;
  f.cacheable = true;
  f.expires_at = response_time + lifetime;
  return f;
}

}  // namespace nakika::http
