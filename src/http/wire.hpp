// HTTP/1.1 wire (de)serialization. The simulator charges link transfer time
// by serialized size, and the tests round-trip messages through this format.
#pragma once

#include <optional>
#include <string>

#include "http/message.hpp"

namespace nakika::http {

// Serializes a request in origin-form with Host header.
[[nodiscard]] util::byte_buffer serialize(const request& r);
[[nodiscard]] util::byte_buffer serialize(const response& r);

// Size on the wire without materializing the full serialization.
[[nodiscard]] std::size_t wire_size(const request& r);
[[nodiscard]] std::size_t wire_size(const response& r);

struct parse_result_request {
  bool ok = false;
  std::string error;
  request value;
};
struct parse_result_response {
  bool ok = false;
  std::string error;
  response value;
};

// Parses a complete serialized message. Supports Content-Length framing and
// chunked transfer-coding. Parse failures are reported, not thrown: malformed
// input is data-path, not programmer error.
[[nodiscard]] parse_result_request parse_request(std::string_view wire);
[[nodiscard]] parse_result_response parse_response(std::string_view wire);

}  // namespace nakika::http
