// HTTP-date (RFC 1123) formatting and parsing over plain epoch seconds.
// The simulator runs on virtual seconds, so everything here is integer math
// with no dependence on the host clock or timezone database.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace nakika::http {

// Formats epoch seconds as "Sun, 06 Nov 1994 08:49:37 GMT".
[[nodiscard]] std::string format_http_date(std::int64_t epoch_seconds);

// Parses RFC 1123 dates; returns nullopt on malformed input.
[[nodiscard]] std::optional<std::int64_t> parse_http_date(std::string_view text);

}  // namespace nakika::http
