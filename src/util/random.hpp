// Deterministic randomness for reproducible experiments. Every workload
// generator and simulated component takes an explicit rng so runs are
// repeatable given a seed (the benches print their seeds).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace nakika::util {

class rng {
 public:
  explicit rng(std::uint64_t seed = 0x6e616b696b61ULL) : engine_(seed) {}

  // Uniform in [0, n); n must be > 0.
  [[nodiscard]] std::uint64_t next(std::uint64_t n);
  // Uniform double in [0, 1).
  [[nodiscard]] double next_double();
  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  // Exponentially distributed with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);
  [[nodiscard]] bool chance(double probability);

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Zipf-distributed integers over [0, n); used for page-popularity skew in
// the SIMM and SPECweb-like workloads.
class zipf_distribution {
 public:
  zipf_distribution(std::size_t n, double exponent);
  [[nodiscard]] std::size_t sample(rng& r) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace nakika::util
