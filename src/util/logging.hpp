// Minimal leveled logging. Off by default so tests and benches stay quiet;
// the examples turn on info-level output to narrate what the pipeline does.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace nakika::util {

enum class log_level { off = 0, error = 1, warn = 2, info = 3, debug = 4 };

log_level get_log_level();
void set_log_level(log_level level);

void log_write(log_level level, std::string_view component, std::string_view message);

// Usage: NAKIKA_LOG(info, "proxy") << "cache hit for " << url;
#define NAKIKA_LOG(level, component)                                              \
  for (bool nakika_log_once =                                                     \
           ::nakika::util::get_log_level() >= ::nakika::util::log_level::level;   \
       nakika_log_once; nakika_log_once = false)                                  \
  ::nakika::util::log_line(::nakika::util::log_level::level, component)

class log_line {
 public:
  log_line(log_level level, std::string_view component)
      : level_(level), component_(component) {}
  ~log_line() { log_write(level_, component_, stream_.str()); }
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;

  template <typename T>
  log_line& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  log_level level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace nakika::util
