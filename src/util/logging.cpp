#include "util/logging.hpp"

#include <cstdio>

namespace nakika::util {

namespace {
log_level current_level = log_level::off;

const char* level_name(log_level level) {
  switch (level) {
    case log_level::error: return "ERROR";
    case log_level::warn: return "WARN";
    case log_level::info: return "INFO";
    case log_level::debug: return "DEBUG";
    case log_level::off: return "OFF";
  }
  return "?";
}
}  // namespace

log_level get_log_level() { return current_level; }

void set_log_level(log_level level) { current_level = level; }

void log_write(log_level level, std::string_view component, std::string_view message) {
  if (current_level < level) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace nakika::util
