// Pattern matching for predicates. Two flavours:
//   - glob_match: '*' / '?' wildcards, used for quick URL-ish matching.
//   - pattern: a small backtracking regular-expression engine supporting
//     the constructs the paper's header predicates need (., *, +, ?, [...],
//     ^, $, |, (...)). Also backs the scripting engine's RegExp vocabulary.
#pragma once

#include <memory>
#include <string>
#include <string_view>

namespace nakika::util {

[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

class pattern {
 public:
  // Compiles the expression; throws std::invalid_argument on syntax errors.
  explicit pattern(std::string_view expr);
  pattern(pattern&&) noexcept;
  pattern& operator=(pattern&&) noexcept;
  ~pattern();

  // True if the expression matches the *entire* text.
  [[nodiscard]] bool full_match(std::string_view text) const;
  // True if the expression matches anywhere in the text (unanchored unless
  // the expression itself uses ^/$).
  [[nodiscard]] bool search(std::string_view text) const;
  // Position of the first match, or npos. `length` receives the match length.
  [[nodiscard]] std::size_t find(std::string_view text, std::size_t* length = nullptr) const;

  [[nodiscard]] const std::string& source() const { return source_; }

  struct node;  // implementation detail, public for the out-of-line matcher

 private:
  std::string source_;
  std::unique_ptr<node> root_;
};

}  // namespace nakika::util
