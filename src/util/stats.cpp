#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace nakika::util {

void sample_set::add(double v) {
  samples_.push_back(v);
  sorted_ = false;
}

void sample_set::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double sample_set::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double sample_set::min() const {
  if (samples_.empty()) throw std::logic_error("sample_set::min on empty set");
  sort();
  return samples_.front();
}

double sample_set::max() const {
  if (samples_.empty()) throw std::logic_error("sample_set::max on empty set");
  sort();
  return samples_.back();
}

double sample_set::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("sample_set::percentile on empty set");
  sort();
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-based.
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

double sample_set::cdf_at(double threshold) const {
  if (samples_.empty()) return 0.0;
  sort();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double sample_set::fraction_at_least(double threshold) const {
  if (samples_.empty()) return 0.0;
  sort();
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(samples_.end() - it) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> sample_set::cdf_points(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  sort();
  const double lo = samples_.front();
  const double hi = samples_.back();
  const double step = points > 1 ? (hi - lo) / static_cast<double>(points - 1) : 0.0;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    out.emplace_back(x, cdf_at(x));
  }
  return out;
}

void sample_set::clear() {
  samples_.clear();
  sorted_ = true;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace nakika::util
