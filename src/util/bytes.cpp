#include "util/bytes.hpp"

#include <algorithm>
#include <stdexcept>

namespace nakika::util {

byte_buffer byte_buffer::slice(std::size_t offset, std::size_t length) const {
  if (offset > data_.size()) {
    throw std::out_of_range("byte_buffer::slice offset past end");
  }
  const std::size_t n = std::min(length, data_.size() - offset);
  return byte_buffer(data_.data() + offset, n);
}

namespace {
constexpr char hex_digits[] = "0123456789abcdef";
constexpr char b64_alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(hex_digits[b >> 4]);
    out.push_back(hex_digits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

std::string base64_encode(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= bytes.size()) {
    const std::uint32_t v = std::uint32_t{bytes[i]} << 16 | std::uint32_t{bytes[i + 1]} << 8 |
                            bytes[i + 2];
    out.push_back(b64_alphabet[v >> 18 & 0x3f]);
    out.push_back(b64_alphabet[v >> 12 & 0x3f]);
    out.push_back(b64_alphabet[v >> 6 & 0x3f]);
    out.push_back(b64_alphabet[v & 0x3f]);
    i += 3;
  }
  const std::size_t rem = bytes.size() - i;
  if (rem == 1) {
    const std::uint32_t v = std::uint32_t{bytes[i]} << 16;
    out.push_back(b64_alphabet[v >> 18 & 0x3f]);
    out.push_back(b64_alphabet[v >> 12 & 0x3f]);
    out.append("==");
  } else if (rem == 2) {
    const std::uint32_t v = std::uint32_t{bytes[i]} << 16 | std::uint32_t{bytes[i + 1]} << 8;
    out.push_back(b64_alphabet[v >> 18 & 0x3f]);
    out.push_back(b64_alphabet[v >> 12 & 0x3f]);
    out.push_back(b64_alphabet[v >> 6 & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::vector<std::uint8_t> base64_decode(std::string_view text) {
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    if (c == '=' || c == '\n' || c == '\r') continue;
    const int v = b64_value(c);
    if (v < 0) {
      throw std::invalid_argument("base64_decode: invalid character");
    }
    acc = acc << 6 | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>(acc >> bits & 0xff));
    }
  }
  return out;
}

}  // namespace nakika::util
