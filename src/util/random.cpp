#include "util/random.hpp"

#include <cmath>
#include <stdexcept>

namespace nakika::util {

std::uint64_t rng::next(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("rng::next(0)");
  return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
}

double rng::next_double() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("rng::exponential: mean must be > 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool rng::chance(double probability) {
  return next_double() < probability;
}

zipf_distribution::zipf_distribution(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("zipf_distribution: n must be > 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
}

std::size_t zipf_distribution::sample(rng& r) const {
  const double u = r.next_double();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace nakika::util
