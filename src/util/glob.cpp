#include "util/glob.hpp"

#include <array>
#include <functional>
#include <stdexcept>
#include <vector>

namespace nakika::util {

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer algorithm with star backtracking.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_text = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_text = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_text;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

// --- regex-lite -------------------------------------------------------------

namespace {

enum class node_kind {
  empty,        // matches nothing consumed
  literal,      // one specific char
  any,          // '.'
  char_class,   // [...] with optional negation
  concat,       // left then right
  alternate,    // left | right
  repeat,       // left repeated min..max (max == SIZE_MAX for unbounded)
  anchor_start, // ^
  anchor_end,   // $
};

}  // namespace

struct pattern::node {
  node_kind kind = node_kind::empty;
  char literal = 0;
  bool negated = false;
  std::array<bool, 256> cls{};  // char_class membership
  std::size_t min = 0;
  std::size_t max = 0;
  std::unique_ptr<node> left;
  std::unique_ptr<node> right;
};

namespace {

using node = pattern::node;  // not accessible; redefine below instead

}  // namespace

// Parser: grammar
//   alt    := concat ('|' concat)*
//   concat := repeat*
//   repeat := atom ('*' | '+' | '?')?
//   atom   := literal | '.' | '[' class ']' | '(' alt ')' | '^' | '$' | '\' c
namespace {

class regex_parser {
 public:
  explicit regex_parser(std::string_view src) : src_(src) {}

  std::unique_ptr<pattern::node> parse() {
    auto n = parse_alt();
    if (pos_ != src_.size()) {
      throw std::invalid_argument("regex: unexpected ')' or trailing input");
    }
    return n;
  }

 private:
  using node_ptr = std::unique_ptr<pattern::node>;

  static node_ptr make(node_kind kind) {
    auto n = std::make_unique<pattern::node>();
    n->kind = kind;
    return n;
  }

  node_ptr parse_alt() {
    auto left = parse_concat();
    while (peek() == '|') {
      ++pos_;
      auto n = make(node_kind::alternate);
      n->left = std::move(left);
      n->right = parse_concat();
      left = std::move(n);
    }
    return left;
  }

  node_ptr parse_concat() {
    node_ptr left = make(node_kind::empty);
    bool first = true;
    while (pos_ < src_.size() && peek() != '|' && peek() != ')') {
      auto item = parse_repeat();
      if (first) {
        left = std::move(item);
        first = false;
      } else {
        auto n = make(node_kind::concat);
        n->left = std::move(left);
        n->right = std::move(item);
        left = std::move(n);
      }
    }
    return left;
  }

  node_ptr parse_repeat() {
    auto atom = parse_atom();
    const char c = peek();
    if (c == '*' || c == '+' || c == '?') {
      ++pos_;
      auto n = make(node_kind::repeat);
      n->min = c == '+' ? 1 : 0;
      n->max = c == '?' ? 1 : SIZE_MAX;
      n->left = std::move(atom);
      return n;
    }
    return atom;
  }

  node_ptr parse_atom() {
    if (pos_ >= src_.size()) throw std::invalid_argument("regex: dangling operator");
    const char c = src_[pos_++];
    switch (c) {
      case '.':
        return make(node_kind::any);
      case '^':
        return make(node_kind::anchor_start);
      case '$':
        return make(node_kind::anchor_end);
      case '(': {
        auto inner = parse_alt();
        if (peek() != ')') throw std::invalid_argument("regex: missing ')'");
        ++pos_;
        return inner;
      }
      case '[':
        return parse_class();
      case '\\':
        return parse_escape();
      case '*':
      case '+':
      case '?':
        throw std::invalid_argument("regex: operator without operand");
      default: {
        auto n = make(node_kind::literal);
        n->literal = c;
        return n;
      }
    }
  }

  node_ptr parse_escape() {
    if (pos_ >= src_.size()) throw std::invalid_argument("regex: trailing backslash");
    const char c = src_[pos_++];
    auto n = make(node_kind::char_class);
    switch (c) {
      case 'd':
        for (char d = '0'; d <= '9'; ++d) n->cls[static_cast<unsigned char>(d)] = true;
        return n;
      case 'w':
        for (char d = '0'; d <= '9'; ++d) n->cls[static_cast<unsigned char>(d)] = true;
        for (char d = 'a'; d <= 'z'; ++d) n->cls[static_cast<unsigned char>(d)] = true;
        for (char d = 'A'; d <= 'Z'; ++d) n->cls[static_cast<unsigned char>(d)] = true;
        n->cls[static_cast<unsigned char>('_')] = true;
        return n;
      case 's':
        for (char d : {' ', '\t', '\r', '\n', '\f', '\v'}) {
          n->cls[static_cast<unsigned char>(d)] = true;
        }
        return n;
      default: {
        auto lit = make(node_kind::literal);
        lit->literal = c;
        return lit;
      }
    }
  }

  node_ptr parse_class() {
    auto n = make(node_kind::char_class);
    if (peek() == '^') {
      n->negated = true;
      ++pos_;
    }
    bool first = true;
    while (true) {
      if (pos_ >= src_.size()) throw std::invalid_argument("regex: missing ']'");
      char c = src_[pos_++];
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') {
        if (pos_ >= src_.size()) throw std::invalid_argument("regex: trailing backslash");
        c = src_[pos_++];
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '-' && src_[pos_ + 1] != ']') {
        ++pos_;
        const char hi = src_[pos_++];
        if (hi < c) throw std::invalid_argument("regex: inverted range in class");
        for (int ch = c; ch <= hi; ++ch) n->cls[static_cast<unsigned char>(ch)] = true;
      } else {
        n->cls[static_cast<unsigned char>(c)] = true;
      }
    }
    return n;
  }

  [[nodiscard]] char peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }

  std::string_view src_;
  std::size_t pos_ = 0;
};

// Backtracking matcher in continuation-passing style. `cont(next_pos)` is
// invoked for every position the node can match up to.
bool match_node(const pattern::node* n, std::string_view text, std::size_t pos,
                const std::function<bool(std::size_t)>& cont) {
  switch (n->kind) {
    case node_kind::empty:
      return cont(pos);
    case node_kind::literal:
      return pos < text.size() && text[pos] == n->literal && cont(pos + 1);
    case node_kind::any:
      return pos < text.size() && cont(pos + 1);
    case node_kind::char_class: {
      if (pos >= text.size()) return false;
      const bool in = n->cls[static_cast<unsigned char>(text[pos])];
      return in != n->negated && cont(pos + 1);
    }
    case node_kind::anchor_start:
      return pos == 0 && cont(pos);
    case node_kind::anchor_end:
      return pos == text.size() && cont(pos);
    case node_kind::concat:
      return match_node(n->left.get(), text, pos, [&](std::size_t mid) {
        return match_node(n->right.get(), text, mid, cont);
      });
    case node_kind::alternate:
      return match_node(n->left.get(), text, pos, cont) ||
             match_node(n->right.get(), text, pos, cont);
    case node_kind::repeat: {
      // Greedy repetition with backtracking. `step` advances one iteration.
      std::function<bool(std::size_t, std::size_t)> step = [&](std::size_t p,
                                                               std::size_t count) -> bool {
        if (count < n->max) {
          const bool advanced = match_node(n->left.get(), text, p, [&](std::size_t q) {
            // Zero-width progress guard: stop expanding if nothing consumed.
            if (q == p) return false;
            return step(q, count + 1);
          });
          if (advanced) return true;
        }
        return count >= n->min && cont(p);
      };
      return step(pos, 0);
    }
  }
  return false;
}

}  // namespace

pattern::pattern(std::string_view expr) : source_(expr) {
  regex_parser parser(expr);
  root_ = parser.parse();
}

pattern::pattern(pattern&&) noexcept = default;
pattern& pattern::operator=(pattern&&) noexcept = default;
pattern::~pattern() = default;

bool pattern::full_match(std::string_view text) const {
  return match_node(root_.get(), text, 0,
                    [&](std::size_t end) { return end == text.size(); });
}

bool pattern::search(std::string_view text) const {
  return find(text) != std::string_view::npos;
}

std::size_t pattern::find(std::string_view text, std::size_t* length) const {
  for (std::size_t start = 0; start <= text.size(); ++start) {
    std::size_t match_end = 0;
    const bool hit = match_node(root_.get(), text, start, [&](std::size_t end) {
      match_end = end;
      return true;
    });
    if (hit) {
      if (length != nullptr) *length = match_end - start;
      return start;
    }
  }
  return std::string_view::npos;
}

}  // namespace nakika::util
