// Small string helpers used across HTTP parsing, predicate matching, and the
// scripting engine. All functions are pure and allocation-conscious.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nakika::util {

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);

// Case-insensitive comparison, as required for HTTP header names and methods.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);
[[nodiscard]] bool istarts_with(std::string_view s, std::string_view prefix);

// Splits on every occurrence of `sep`; empty fields are preserved so that
// "a..b" splits into {"a", "", "b"}.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
// Splits on `sep` and trims each field; empty fields are dropped. Used for
// comma-separated HTTP header values.
[[nodiscard]] std::vector<std::string> split_trimmed(std::string_view s, char sep);

[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view s);
[[nodiscard]] std::optional<double> parse_double(std::string_view s);

// Replaces every occurrence of `from` with `to`. `from` must be non-empty.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

// True if `host` equals `suffix` or ends with "." + suffix. This is the
// domain-suffix rule the paper uses for client predicates like "nyu.edu".
[[nodiscard]] bool domain_matches(std::string_view host, std::string_view suffix);

}  // namespace nakika::util
