// Epoch-based reclamation (EBR) for read-mostly snapshot structures
// (ROADMAP: "RCU or epoch-based reclamation for DHT routing tables and
// overlay membership so lookups are read-lock-free").
//
// The protocol is the classic epoch scheme:
//   * Readers pin the current global epoch for the duration of a critical
//     section (an `ebr_domain::guard`). Pinning is one seq_cst store into a
//     thread-private, cache-line-padded slot — no shared mutex, no CAS.
//   * Writers publish a new snapshot pointer (release store), then hand the
//     old one to `retire()`. Retired objects are stamped with the epoch at
//     retirement and freed only once every pinned reader has advanced past
//     that epoch — at which point no reader can still hold the pointer.
//
// Readers are wait-free; writers serialize among themselves on a small
// mutex guarding the retire list (the structures this serves already
// serialize writers — join/leave/churn — on their own locks). Guards nest:
// an inner guard on the same thread reuses the outer pin, so snapshot
// readers may call each other freely.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace nakika::util {

class ebr_domain {
 private:
  static constexpr std::uint64_t k_idle = ~std::uint64_t{0};
  // Upper bound on threads concurrently inside guards; slots are leased per
  // thread and released at thread exit, so churned threads recycle slots
  // instead of consuming new ones.
  static constexpr std::size_t k_max_threads = 128;

  // 64 on every target we build for; a fixed value avoids the ABI-stability
  // warning std::hardware_destructive_interference_size carries on GCC.
  static constexpr std::size_t k_cache_line = 64;

  struct alignas(k_cache_line) padded_slot {
    std::atomic<std::uint64_t> epoch{k_idle};
    std::atomic<bool> claimed{false};
    std::uint32_t depth = 0;  // owner-thread only
  };

 public:
  // One process-wide domain is enough for every snapshot structure: epochs
  // advance together, and a retired object waits for the slowest reader in
  // the process — acceptable because critical sections are short (one DHT
  // walk or ring scan).
  static ebr_domain& instance() {
    static ebr_domain d;
    return d;
  }

  ebr_domain() = default;
  ebr_domain(const ebr_domain&) = delete;
  ebr_domain& operator=(const ebr_domain&) = delete;

  // RAII read-side critical section. Cheap enough for per-lookup use:
  // entering is one relaxed load + one seq_cst store on the outermost
  // guard, leaving is one release store.
  class guard {
   public:
    guard() : slot_(local_slot()) {
      if (slot_->depth++ == 0) {
        // seq_cst so the epoch announcement cannot be reordered after the
        // snapshot-pointer load that follows; the reclaimer's epoch scan
        // (also seq_cst) then observes either our pin or nothing to wait
        // for.
        slot_->epoch.store(
            instance().global_epoch_.load(std::memory_order_seq_cst),
            std::memory_order_seq_cst);
      }
    }
    ~guard() {
      if (--slot_->depth == 0) slot_->epoch.store(k_idle, std::memory_order_release);
    }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

   private:
    padded_slot* slot_;
  };

  // Hands `p` to the domain for deferred deletion. The deleter runs once no
  // reader pinned at (or before) the current epoch remains; it may run
  // inside this call, a later retire() call, or flush(). Writer-side only.
  void retire(void* p, std::function<void(void*)> deleter) {
    const std::uint64_t e = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(retire_mu_);
      retired_.push_back(limbo_item{p, std::move(deleter), e});
      retired_total_.fetch_add(1, std::memory_order_relaxed);
    }
    try_reclaim();
  }

  // Attempts to free everything whose epoch has been vacated. Called by
  // retire(); also useful from tests and teardown paths.
  void try_reclaim() {
    std::vector<limbo_item> ready;
    {
      std::lock_guard<std::mutex> lock(retire_mu_);
      const std::uint64_t horizon = min_active_epoch();
      auto it = retired_.begin();
      while (it != retired_.end()) {
        // An item retired at epoch E was unpublished before the epoch
        // advanced to E+1, so only readers still pinned at <= E can hold a
        // reference. Free once every active pin is past E.
        if (it->epoch < horizon) {
          ready.push_back(std::move(*it));
          it = retired_.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Deleters run outside retire_mu_ so a deleter that itself retires
    // (nested snapshots) cannot deadlock.
    for (auto& item : ready) {
      item.deleter(item.ptr);
      reclaimed_total_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Drains what is reclaimable; for quiescent teardown and tests.
  void flush() { try_reclaim(); }

  [[nodiscard]] std::uint64_t retired_count() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reclaimed_count() const {
    return reclaimed_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t limbo_size() const {
    std::lock_guard<std::mutex> lock(retire_mu_);
    return retired_.size();
  }

 private:
  struct limbo_item {
    void* ptr;
    std::function<void(void*)> deleter;
    std::uint64_t epoch;
  };

  [[nodiscard]] std::uint64_t min_active_epoch() const {
    std::uint64_t min = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto& s : slots_) {
      const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e < min) min = e;
    }
    return min;
  }

  // Releases the slot at thread exit so short-lived threads (churn tests,
  // scenario workers) don't exhaust the fixed slot table.
  struct slot_lease {
    padded_slot* s = nullptr;
    ~slot_lease() {
      if (s != nullptr) {
        s->epoch.store(k_idle, std::memory_order_release);
        s->claimed.store(false, std::memory_order_release);
      }
    }
  };

  static padded_slot* local_slot() {
    thread_local slot_lease lease;
    if (lease.s == nullptr) {
      ebr_domain& d = instance();
      for (;;) {
        for (auto& s : d.slots_) {
          bool expected = false;
          if (!s.claimed.load(std::memory_order_relaxed) &&
              s.claimed.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
            lease.s = &s;
            return lease.s;
          }
        }
        // All slots claimed: only possible with > k_max_threads concurrent
        // guard users. Spin until one exits — throughput degrades, memory
        // safety never does.
      }
    }
    return lease.s;
  }

  std::atomic<std::uint64_t> global_epoch_{1};
  std::vector<padded_slot> slots_{k_max_threads};
  mutable std::mutex retire_mu_;
  std::vector<limbo_item> retired_;
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> reclaimed_total_{0};
};

}  // namespace nakika::util

