// Measurement collection for the evaluation harness: latency samples,
// percentiles, CDFs (paper Fig. 7), throughput counters, and the exponentially
// weighted moving averages used by the congestion controller (paper Fig. 6).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

namespace nakika::util {

// Accumulates scalar samples and answers percentile / CDF queries. Samples
// are sorted lazily on first query.
class sample_set {
 public:
  void add(double v);
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // p in [0, 100]; nearest-rank percentile. Requires at least one sample.
  [[nodiscard]] double percentile(double p) const;
  // Fraction of samples <= threshold, i.e. one point of the CDF.
  [[nodiscard]] double cdf_at(double threshold) const;
  // Fraction of samples >= threshold (used for "fraction of clients seeing
  // at least the video bitrate").
  [[nodiscard]] double fraction_at_least(double threshold) const;
  // Evenly spaced CDF rendering: `points` (x = value, y = cumulative fraction)
  // suitable for printing a figure as rows.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points(std::size_t points) const;

  void clear();

 private:
  void sort() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Exponentially weighted moving average: "the actual value is the weighted
// average of past and present consumption" (paper §3.2).
class ewma {
 public:
  explicit ewma(double alpha = 0.5) : alpha_(alpha) {}
  void update(double sample) {
    value_ = initialized_ ? alpha_ * sample + (1.0 - alpha_) * value_ : sample;
    initialized_ = true;
  }
  [[nodiscard]] double value() const { return initialized_ ? value_ : 0.0; }
  [[nodiscard]] bool initialized() const { return initialized_; }
  void reset() {
    value_ = 0.0;
    initialized_ = false;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Simple named counter bundle for per-run accounting (requests offered,
// rejected by throttling, dropped by termination, ...).
struct run_counters {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t throttled = 0;
  std::size_t terminated = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;  // bounced at the worker queue (backpressure 503)
  // Cooperative caching: misses served from a peer node's cache vs misses
  // where the overlay was consulted but the origin had to answer.
  std::size_t peer_hits = 0;
  std::size_t peer_misses = 0;
  // Single-flight coalescing: requests that parked on another request's
  // in-flight fetch of the same URL instead of fetching upstream themselves.
  std::size_t coalesced = 0;

  [[nodiscard]] double throttled_fraction() const {
    return offered == 0 ? 0.0 : static_cast<double>(throttled) / static_cast<double>(offered);
  }
  [[nodiscard]] double terminated_fraction() const {
    return offered == 0 ? 0.0 : static_cast<double>(terminated) / static_cast<double>(offered);
  }
};

// Per-worker sharded run counters. Each worker increments its own slot
// (relaxed atomics on a dedicated cache line, so the hot path never shares a
// line across threads); snapshot() merges all slots into a plain
// run_counters. Slot 0 conventionally belongs to the caller/sim thread.
class sharded_run_counters {
 public:
  enum class field : std::size_t {
    offered = 0,
    completed,
    throttled,
    terminated,
    failed,
    rejected,
    peer_hits,
    peer_misses,
    coalesced,
  };
  static constexpr std::size_t field_count = 9;

  explicit sharded_run_counters(std::size_t slots = 1) : slots_(slots == 0 ? 1 : slots) {}

  void add(std::size_t slot, field f, std::size_t n = 1) {
    slots_[slot].v[static_cast<std::size_t>(f)].fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] run_counters snapshot() const {
    std::array<std::size_t, field_count> sum{};
    for (const auto& s : slots_) {
      for (std::size_t i = 0; i < field_count; ++i) {
        sum[i] += s.v[i].load(std::memory_order_relaxed);
      }
    }
    run_counters out;
    out.offered = sum[0];
    out.completed = sum[1];
    out.throttled = sum[2];
    out.terminated = sum[3];
    out.failed = sum[4];
    out.rejected = sum[5];
    out.peer_hits = sum[6];
    out.peer_misses = sum[7];
    out.coalesced = sum[8];
    return out;
  }

  [[nodiscard]] std::size_t slots() const { return slots_.size(); }

 private:
  struct alignas(64) slot_counters {
    std::array<std::atomic<std::size_t>, field_count> v{};
  };
  std::vector<slot_counters> slots_;
};

// Formats a number with fixed decimals without dragging <iomanip> everywhere.
[[nodiscard]] std::string format_fixed(double v, int decimals);

}  // namespace nakika::util
