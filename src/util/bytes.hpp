// Byte buffer primitives shared across the system: HTTP bodies, script
// sources, image payloads, and the scripting engine's ByteArray vocabulary
// all use byte_buffer so data can move between layers without copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nakika::util {

// Growable owning byte sequence. Thin wrapper over std::vector<uint8_t>
// with string interop, because HTTP bodies cross the text/binary boundary
// constantly.
class byte_buffer {
 public:
  byte_buffer() = default;
  explicit byte_buffer(std::string_view text) : data_(text.begin(), text.end()) {}
  explicit byte_buffer(std::vector<std::uint8_t> bytes) : data_(std::move(bytes)) {}
  byte_buffer(const std::uint8_t* data, std::size_t size) : data_(data, data + size) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] const std::uint8_t* data() const { return data_.data(); }
  [[nodiscard]] std::uint8_t* data() { return data_.data(); }

  [[nodiscard]] std::span<const std::uint8_t> span() const { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::string_view view() const {
    return {reinterpret_cast<const char*>(data_.data()), data_.size()};
  }
  [[nodiscard]] std::string str() const { return std::string(view()); }

  void append(std::span<const std::uint8_t> bytes) {
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }
  void append(std::string_view text) {
    data_.insert(data_.end(), text.begin(), text.end());
  }
  void append(const byte_buffer& other) { append(other.span()); }
  void push_back(std::uint8_t b) { data_.push_back(b); }

  [[nodiscard]] byte_buffer slice(std::size_t offset, std::size_t length) const;

  void clear() { data_.clear(); }
  void resize(std::size_t n) { data_.resize(n); }
  void reserve(std::size_t n) { data_.reserve(n); }

  std::uint8_t& operator[](std::size_t i) { return data_[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return data_[i]; }

  bool operator==(const byte_buffer& other) const = default;

  [[nodiscard]] std::vector<std::uint8_t>& vec() { return data_; }
  [[nodiscard]] const std::vector<std::uint8_t>& vec() const { return data_; }

 private:
  std::vector<std::uint8_t> data_;
};

// Immutable, cheaply shareable body payload. Proxy cache entries and script
// sources are shared between pipelines; shared_body avoids copying them.
using shared_body = std::shared_ptr<const byte_buffer>;

inline shared_body make_body(std::string_view text) {
  return std::make_shared<const byte_buffer>(text);
}
inline shared_body make_body(byte_buffer buf) {
  return std::make_shared<const byte_buffer>(std::move(buf));
}

[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex);
[[nodiscard]] std::string base64_encode(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> base64_decode(std::string_view text);

}  // namespace nakika::util
