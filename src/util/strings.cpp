#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace nakika::util {

namespace {
bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }
char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), lower);
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(),
                    [](char x, char y) { return lower(x) == lower(y); });
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& field : split(s, sep)) {
    const std::string_view t = trim(field);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+, but strtod keeps
  // this portable; the copy bounds the input for strtod's NUL expectation.
  const std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

bool domain_matches(std::string_view host, std::string_view suffix) {
  if (suffix.empty()) return false;
  if (iequals(host, suffix)) return true;
  if (host.size() <= suffix.size()) return false;
  return host[host.size() - suffix.size() - 1] == '.' &&
         iequals(host.substr(host.size() - suffix.size()), suffix);
}

}  // namespace nakika::util
