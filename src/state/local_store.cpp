#include "state/local_store.hpp"

namespace nakika::state {

local_store::local_store(std::size_t per_site_quota_bytes) : quota_(per_site_quota_bytes) {}

bool local_store::put(const std::string& site, const std::string& key,
                      const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  partition& p = partitions_[site];
  const std::size_t incoming = key.size() + value.size();
  std::size_t released = 0;
  const auto it = p.entries.find(key);
  if (it != p.entries.end()) {
    released = key.size() + it->second.size();
  }
  if (quota_ != 0 && p.bytes - released + incoming > quota_) {
    return false;
  }
  p.bytes = p.bytes - released + incoming;
  p.entries[key] = value;
  return true;
}

std::optional<std::string> local_store::get(const std::string& site,
                                            const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto pit = partitions_.find(site);
  if (pit == partitions_.end()) return std::nullopt;
  const auto it = pit->second.entries.find(key);
  if (it == pit->second.entries.end()) return std::nullopt;
  return it->second;
}

bool local_store::remove(const std::string& site, const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto pit = partitions_.find(site);
  if (pit == partitions_.end()) return false;
  const auto it = pit->second.entries.find(key);
  if (it == pit->second.entries.end()) return false;
  pit->second.bytes -= key.size() + it->second.size();
  pit->second.entries.erase(it);
  return true;
}

std::size_t local_store::site_bytes(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto pit = partitions_.find(site);
  return pit == partitions_.end() ? 0 : pit->second.bytes;
}

std::size_t local_store::site_keys(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto pit = partitions_.find(site);
  return pit == partitions_.end() ? 0 : pit->second.entries.size();
}

std::vector<std::pair<std::string, std::string>> local_store::scan(
    const std::string& site, const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  const auto pit = partitions_.find(site);
  if (pit == partitions_.end()) return out;
  for (auto it = pit->second.entries.lower_bound(prefix);
       it != pit->second.entries.end() && it->first.starts_with(prefix); ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

void local_store::clear_site(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.erase(site);
}

}  // namespace nakika::state
