// Hard-state replication built on local storage + reliable messaging,
// following Gao et al.'s distributed-objects approach as adapted by the paper
// (§3.3): updates are accepted locally, written to storage, propagated via
// the messaging layer, and applied at receivers with a pluggable conflict
// policy. Two built-in strategies:
//   - broadcast (optimistic): propagate to all replicas; last-writer-wins
//     (timestamp, then node name) or a custom resolver.
//   - origin_primary (serializable): writes forward to the primary, which
//     orders them and broadcasts the outcome.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "state/local_store.hpp"
#include "state/messaging.hpp"

namespace nakika::state {

enum class replication_strategy { broadcast, origin_primary };

// Resolves a write conflict: receives existing and incoming values, returns
// the value to keep.
using conflict_resolver =
    std::function<std::string(const std::string& existing, const std::string& incoming)>;

class replica {
 public:
  // `site` partitions state; all replicas of a site share its topic.
  // `is_primary` marks the origin replica for origin_primary mode.
  replica(local_store& store, message_bus& bus, sim::node_id host, std::string node_name,
          std::string site, replication_strategy strategy, bool is_primary = false);

  // Script/application write. In broadcast mode: applies locally and
  // propagates. In origin_primary mode on a secondary: forwards to the
  // primary (applies only when the primary's broadcast returns).
  // `done` fires when the write is locally durable (broadcast) or globally
  // ordered (origin_primary).
  void put(const std::string& key, const std::string& value, std::function<void()> done = {});

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  void set_conflict_resolver(conflict_resolver resolver) { resolver_ = std::move(resolver); }

  [[nodiscard]] const std::string& node_name() const { return node_name_; }
  [[nodiscard]] std::uint64_t applied_updates() const { return applied_; }
  [[nodiscard]] std::uint64_t deduplicated() const { return deduplicated_; }

 private:
  struct versioned {
    double timestamp = 0.0;
    std::string writer;
    std::string value;
  };

  void apply(const versioned& v, const std::string& key);
  void on_message(std::uint64_t msg_id, const std::string& payload);
  [[nodiscard]] std::string encode(const std::string& key, const versioned& v,
                                   const char* kind) const;

  local_store& store_;
  message_bus& bus_;
  sim::node_id host_;
  std::string node_name_;
  std::string site_;
  replication_strategy strategy_;
  bool is_primary_;
  conflict_resolver resolver_;
  std::map<std::string, versioned> versions_;  // key -> last applied version
  std::map<std::uint64_t, bool> seen_;         // message dedup (at-least-once bus)
  // Secondary writes awaiting the primary's ordered broadcast: key, value,
  // completion callback.
  std::vector<std::tuple<std::string, std::string, std::function<void()>>> pending_;
  std::uint64_t applied_ = 0;
  std::uint64_t deduplicated_ = 0;
};

}  // namespace nakika::state
