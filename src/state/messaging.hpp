// Reliable topic-based messaging over the simulated network — the JORAM
// substitute (paper §4). At-least-once delivery with retransmission under
// injected loss; receivers see message ids so the replication layer can
// deduplicate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "util/random.hpp"

namespace nakika::state {

struct bus_stats {
  std::uint64_t published = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t losses = 0;
  std::uint64_t retransmissions = 0;
};

class message_bus {
 public:
  // `loss_probability` drops each delivery attempt independently; lost
  // attempts are retried after `retry_timeout` seconds, up to `max_attempts`.
  message_bus(sim::network& net, double loss_probability = 0.0,
              double retry_timeout = 0.5, int max_attempts = 10);

  using handler =
      std::function<void(std::uint64_t msg_id, const std::string& topic,
                         const std::string& payload)>;

  // Subscribes a host to a topic. Returns a subscription id for cancel.
  std::size_t subscribe(const std::string& topic, sim::node_id host, handler h);
  void unsubscribe(std::size_t subscription);

  // Publishes to every subscriber of `topic`; `all_acked` (optional) fires
  // after every subscriber has acknowledged one delivery.
  void publish(sim::node_id from, const std::string& topic, const std::string& payload,
               std::function<void()> all_acked = {});

  [[nodiscard]] const bus_stats& stats() const { return stats_; }
  [[nodiscard]] util::rng& rng() { return rng_; }
  [[nodiscard]] sim::network& net() { return net_; }

 private:
  struct subscription {
    bool active = true;
    std::string topic;
    sim::node_id host = 0;
    handler h;
  };

  void deliver(std::uint64_t msg_id, std::size_t sub_index, sim::node_id from,
               std::string topic, std::string payload, int attempt,
               std::shared_ptr<std::size_t> remaining,
               std::shared_ptr<std::function<void()>> all_acked);

  sim::network& net_;
  double loss_probability_;
  double retry_timeout_;
  int max_attempts_;
  std::vector<subscription> subs_;
  std::uint64_t next_msg_id_ = 1;
  bus_stats stats_;
  util::rng rng_;
};

}  // namespace nakika::state
