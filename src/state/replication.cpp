#include "state/replication.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace nakika::state {

namespace {
std::string bcast_topic(const std::string& site) { return "state/" + site; }
std::string fwd_topic(const std::string& site) { return "state-fwd/" + site; }
}  // namespace

replica::replica(local_store& store, message_bus& bus, sim::node_id host,
                 std::string node_name, std::string site, replication_strategy strategy,
                 bool is_primary)
    : store_(store),
      bus_(bus),
      host_(host),
      node_name_(std::move(node_name)),
      site_(std::move(site)),
      strategy_(strategy),
      is_primary_(is_primary) {
  bus_.subscribe(bcast_topic(site_), host_,
                 [this](std::uint64_t id, const std::string&, const std::string& payload) {
                   on_message(id, payload);
                 });
  if (strategy_ == replication_strategy::origin_primary && is_primary_) {
    bus_.subscribe(fwd_topic(site_), host_,
                   [this](std::uint64_t id, const std::string&, const std::string& payload) {
                     on_message(id, payload);
                   });
  }
}

std::string replica::encode(const std::string& key, const versioned& v,
                            const char* kind) const {
  // kind \n timestamp \n writer \n key_length \n key value
  return std::string(kind) + "\n" + std::to_string(v.timestamp) + "\n" + v.writer + "\n" +
         std::to_string(key.size()) + "\n" + key + v.value;
}

namespace {
struct decoded {
  bool ok = false;
  std::string kind;
  double timestamp = 0.0;
  std::string writer;
  std::string key;
  std::string value;
};

decoded decode(const std::string& payload) {
  decoded d;
  std::size_t pos = 0;
  auto next_line = [&](std::string& out) -> bool {
    const std::size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) return false;
    out = payload.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };
  std::string ts, len;
  if (!next_line(d.kind) || !next_line(ts) || !next_line(d.writer) || !next_line(len)) {
    return d;
  }
  const auto t = nakika::util::parse_double(ts);
  const auto n = nakika::util::parse_int(len);
  if (!t || !n || *n < 0 || pos + static_cast<std::size_t>(*n) > payload.size()) return d;
  d.timestamp = *t;
  d.key = payload.substr(pos, static_cast<std::size_t>(*n));
  d.value = payload.substr(pos + static_cast<std::size_t>(*n));
  d.ok = true;
  return d;
}
}  // namespace

void replica::put(const std::string& key, const std::string& value,
                  std::function<void()> done) {
  versioned v;
  v.timestamp = bus_.net().loop().now();
  v.writer = node_name_;
  v.value = value;

  if (strategy_ == replication_strategy::broadcast ||
      (strategy_ == replication_strategy::origin_primary && is_primary_)) {
    apply(v, key);
    bus_.publish(host_, bcast_topic(site_), encode(key, v, "bcast"));
    if (done) bus_.net().loop().schedule(0.0, std::move(done));
    return;
  }

  // Secondary under origin_primary: forward; apply when the primary's
  // ordered broadcast returns. `done` fires at that point.
  if (done) {
    pending_.emplace_back(key, value, std::move(done));
  }
  bus_.publish(host_, fwd_topic(site_), encode(key, v, "fwd"));
}

std::optional<std::string> replica::get(const std::string& key) const {
  return store_.get(site_, key);
}

void replica::apply(const versioned& v, const std::string& key) {
  const auto existing = versions_.find(key);
  versioned to_store = v;
  if (existing != versions_.end()) {
    const versioned& old = existing->second;
    if (resolver_ && old.value != v.value) {
      to_store.value = resolver_(old.value, v.value);
      to_store.timestamp = std::max(old.timestamp, v.timestamp);
    } else if (v.timestamp < old.timestamp ||
               (v.timestamp == old.timestamp && v.writer < old.writer)) {
      return;  // last-writer-wins: incoming loses
    }
  }
  versions_[key] = to_store;
  store_.put(site_, key, to_store.value);
  ++applied_;
}

void replica::on_message(std::uint64_t msg_id, const std::string& payload) {
  if (seen_.contains(msg_id)) {
    ++deduplicated_;
    return;  // at-least-once bus: drop duplicates
  }
  seen_[msg_id] = true;

  const decoded d = decode(payload);
  if (!d.ok) return;

  if (d.kind == "fwd") {
    if (!(strategy_ == replication_strategy::origin_primary && is_primary_)) return;
    // The primary orders the write at its own clock and broadcasts.
    versioned v;
    v.timestamp = bus_.net().loop().now();
    v.writer = d.writer;
    v.value = d.value;
    apply(v, d.key);
    bus_.publish(host_, bcast_topic(site_), encode(d.key, v, "bcast"));
    return;
  }

  versioned v;
  v.timestamp = d.timestamp;
  v.writer = d.writer;
  v.value = d.value;
  apply(v, d.key);

  // Resolve any local write waiting for its ordered broadcast.
  if (d.writer == node_name_) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (std::get<0>(*it) == d.key && std::get<1>(*it) == d.value) {
        auto done = std::move(std::get<2>(*it));
        pending_.erase(it);
        if (done) done();
        break;
      }
    }
  }
}

}  // namespace nakika::state
