#include "state/messaging.hpp"

#include <memory>
#include <stdexcept>

namespace nakika::state {

message_bus::message_bus(sim::network& net, double loss_probability, double retry_timeout,
                         int max_attempts)
    : net_(net),
      loss_probability_(loss_probability),
      retry_timeout_(retry_timeout),
      max_attempts_(max_attempts) {
  if (loss_probability < 0.0 || loss_probability >= 1.0) {
    throw std::invalid_argument("message_bus: loss probability must be in [0, 1)");
  }
  if (max_attempts < 1) {
    throw std::invalid_argument("message_bus: max_attempts must be >= 1");
  }
}

std::size_t message_bus::subscribe(const std::string& topic, sim::node_id host, handler h) {
  subs_.push_back({true, topic, host, std::move(h)});
  return subs_.size() - 1;
}

void message_bus::unsubscribe(std::size_t subscription) {
  if (subscription >= subs_.size()) {
    throw std::invalid_argument("message_bus::unsubscribe: bad id");
  }
  subs_[subscription].active = false;
}

void message_bus::publish(sim::node_id from, const std::string& topic,
                          const std::string& payload, std::function<void()> all_acked) {
  ++stats_.published;
  const std::uint64_t msg_id = next_msg_id_++;

  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    if (subs_[i].active && subs_[i].topic == topic) targets.push_back(i);
  }
  auto remaining = std::make_shared<std::size_t>(targets.size());
  auto acked = std::make_shared<std::function<void()>>(std::move(all_acked));
  if (targets.empty()) {
    if (*acked) net_.loop().schedule(0.0, [acked]() { (*acked)(); });
    return;
  }
  for (std::size_t t : targets) {
    deliver(msg_id, t, from, topic, payload, 1, remaining, acked);
  }
}

void message_bus::deliver(std::uint64_t msg_id, std::size_t sub_index, sim::node_id from,
                          std::string topic, std::string payload, int attempt,
                          std::shared_ptr<std::size_t> remaining,
                          std::shared_ptr<std::function<void()>> all_acked) {
  const std::size_t bytes = 64 + topic.size() + payload.size();
  const sim::node_id host = subs_[sub_index].host;

  net_.transfer(from, host, bytes, [this, msg_id, sub_index, from, topic = std::move(topic),
                                    payload = std::move(payload), attempt, remaining,
                                    all_acked]() mutable {
    const bool lost = rng_.chance(loss_probability_);
    if (lost && attempt < max_attempts_) {
      ++stats_.losses;
      ++stats_.retransmissions;
      net_.loop().schedule(retry_timeout_, [this, msg_id, sub_index, from,
                                            topic = std::move(topic),
                                            payload = std::move(payload), attempt, remaining,
                                            all_acked]() mutable {
        deliver(msg_id, sub_index, from, std::move(topic), std::move(payload), attempt + 1,
                remaining, all_acked);
      });
      return;
    }
    ++stats_.deliveries;
    if (subs_[sub_index].active) {
      subs_[sub_index].h(msg_id, topic, payload);
    }
    // Ack travels back to the publisher.
    net_.transfer(subs_[sub_index].host, from, 64, [remaining, all_acked]() {
      if (--*remaining == 0 && *all_acked) (*all_acked)();
    });
  });
}

}  // namespace nakika::state
