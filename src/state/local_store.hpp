// Per-site partitioned local storage with quotas — the "database for local
// storage" behind hard-state replication (paper §3.3). Na Kika "partitions
// hard state amongst sites and enforces resource constraints on persistent
// storage"; both live here.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace nakika::state {

// Thread-safe: one mutex guards the partition map. HardState scripts running
// on different workers of a multi-worker node share the store; operations are
// individually atomic (per-site quota checks included), while cross-operation
// ordering is whatever the replication layer imposes.
class local_store {
 public:
  // `per_site_quota_bytes` bounds sum(key+value sizes) per site (0 = none).
  explicit local_store(std::size_t per_site_quota_bytes = 16 * 1024 * 1024);

  // Returns false (and stores nothing) if the write would exceed the site's
  // quota. Overwrites release the old value's bytes first.
  bool put(const std::string& site, const std::string& key, const std::string& value);
  [[nodiscard]] std::optional<std::string> get(const std::string& site,
                                               const std::string& key) const;
  bool remove(const std::string& site, const std::string& key);

  [[nodiscard]] std::size_t site_bytes(const std::string& site) const;
  [[nodiscard]] std::size_t site_keys(const std::string& site) const;
  // Keys with the given prefix, sorted (used by per-site log scans).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> scan(
      const std::string& site, const std::string& prefix) const;

  void clear_site(const std::string& site);
  [[nodiscard]] std::size_t quota() const { return quota_; }

 private:
  struct partition {
    std::map<std::string, std::string> entries;
    std::size_t bytes = 0;
  };
  std::size_t quota_;
  mutable std::mutex mu_;
  std::map<std::string, partition> partitions_;
};

}  // namespace nakika::state
