// Fault injection for the scenario tier's churn family: a shared, thread-safe
// fault plan the peer transports and the deployment's peer directory consult
// on every cooperative-caching step. Faults model an open edge network where
// nodes crash mid-workload and peer fetches fail or slow down:
//
//   - crashed nodes: a crashed name is unresolvable (the directory returns no
//     endpoint) and transports skip it as a holder, burning the probe timeout
//     as accounted latency;
//   - probabilistic fetch failures: each peer fetch independently fails with
//     a configured probability (deterministic seeded rng), modeling lossy or
//     partitioned links without touching the frozen sim topology;
//   - added latency: extra virtual seconds accounted on every peer fetch
//     (and every failed probe), modeling congested paths.
//
// All methods are safe to call from worker threads while a workload runs —
// that is the point: faults are injected mid-flight. Activity is counted in
// an embedded single-slot obs::metrics_registry (faults.* counters) so
// harnesses and telemetry consumers see injections by name alongside node
// metrics instead of via bespoke getters.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "util/random.hpp"

namespace nakika::net {

class fault_injector {
 public:
  explicit fault_injector(std::uint64_t seed = 0xfa017ULL)
      : rng_(seed), metrics_(/*slots=*/1, /*counter_capacity=*/8, /*histogram_capacity=*/1) {
    id_injected_failures_ = metrics_.counter("faults.injected_failures");
    id_skipped_crashed_ = metrics_.counter("faults.skipped_crashed_probes");
    id_crashes_ = metrics_.counter("faults.crashes");
    id_revives_ = metrics_.counter("faults.revives");
  }

  // --- node crash/recovery (names as the overlay advertises them) ---
  void crash(const std::string& node_name) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (crashed_.insert(node_name).second) metrics_.add(0, id_crashes_, 1);
  }
  void revive(const std::string& node_name) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (crashed_.erase(node_name) > 0) metrics_.add(0, id_revives_, 1);
  }
  [[nodiscard]] bool crashed(const std::string& node_name) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return crashed_.contains(node_name);
  }

  // --- lossy peer fetches ---
  // Probability in [0, 1] that any single peer fetch fails.
  void set_fetch_failure_rate(double p) {
    const std::lock_guard<std::mutex> lock(mu_);
    fetch_failure_rate_ = p;
  }
  // Extra virtual latency accounted per peer fetch attempt, seconds.
  void set_added_fetch_latency(double seconds) {
    added_latency_.store(seconds, std::memory_order_relaxed);
  }
  [[nodiscard]] double added_fetch_latency() const {
    return added_latency_.load(std::memory_order_relaxed);
  }

  // Decides one fetch's fate (deterministic given the seed and call order
  // under a single-threaded caller); counts injected failures.
  [[nodiscard]] bool should_fail_fetch() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (fetch_failure_rate_ <= 0.0) return false;
    if (!rng_.chance(fetch_failure_rate_)) return false;
    metrics_.add(0, id_injected_failures_, 1);
    return true;
  }

  [[nodiscard]] std::uint64_t injected_failures() const {
    return metrics_.counter_value(id_injected_failures_);
  }
  [[nodiscard]] std::uint64_t skipped_crashed_probes() const {
    return metrics_.counter_value(id_skipped_crashed_);
  }
  void count_skipped_crashed_probe() { metrics_.add(0, id_skipped_crashed_, 1); }

  // The embedded registry (faults.injected_failures, faults.skipped_crashed_
  // probes, faults.crashes, faults.revives) for merging into telemetry views.
  [[nodiscard]] const obs::metrics_registry& metrics() const { return metrics_; }
  [[nodiscard]] obs::metrics_snapshot metrics_snapshot() const { return metrics_.snapshot(); }

 private:
  mutable std::mutex mu_;  // guards crashed_, rng_, fetch_failure_rate_
  std::set<std::string> crashed_;
  util::rng rng_;
  double fetch_failure_rate_ = 0.0;
  std::atomic<double> added_latency_{0.0};
  obs::metrics_registry metrics_;
  obs::metrics_registry::metric_id id_injected_failures_ = 0;
  obs::metrics_registry::metric_id id_skipped_crashed_ = 0;
  obs::metrics_registry::metric_id id_crashes_ = 0;
  obs::metrics_registry::metric_id id_revives_ = 0;
};

}  // namespace nakika::net
