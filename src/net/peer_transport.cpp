#include "net/peer_transport.hpp"

#include "http/wire.hpp"

namespace nakika::net {

// ----- sim transport -----------------------------------------------------------

sim_peer_transport::sim_peer_transport(sim::network& net, overlay::coral_overlay& overlay,
                                       overlay::coral_overlay::member_id member,
                                       std::string self_name, peer_directory peers,
                                       sim::node_id self_host, double peer_serve_cpu_seconds)
    : net_(net),
      overlay_(overlay),
      member_(member),
      self_name_(std::move(self_name)),
      peers_(std::move(peers)),
      host_(self_host),
      peer_serve_cpu_(peer_serve_cpu_seconds) {}

void sim_peer_transport::advertise(const std::string& key, std::int64_t expires_at) {
  overlay_.put(member_, key, self_name_, expires_at, []() {});
}

void sim_peer_transport::fetch_from_peers(const http::request& r, fetch_callback done) {
  const std::string key = r.url.str();
  auto shared_done = std::make_shared<fetch_callback>(std::move(done));
  overlay_.get(
      member_, key,
      [this, r, key, shared_done](std::vector<std::string> holders, int /*level*/) {
        peer_endpoint* peer = nullptr;
        for (const auto& name : holders) {
          if (name == self_name_) continue;
          if (peer_endpoint* p = peers_(name)) {
            peer = p;
            break;
          }
        }
        if (peer == nullptr) {
          (*shared_done)(result{});  // no holder: caller falls back to origin
          return;
        }
        // Ask the peer's cache; a miss (stale hint) sends a short "not here"
        // reply and the caller falls back to origin.
        net_.transfer(
            host_, peer->peer_host(), http::wire_size(r), [this, peer, key, shared_done]() {
              auto hit = peer->peer_cache_lookup(key);
              if (!hit) {
                net_.transfer(peer->peer_host(), host_, 64,
                              [shared_done]() { (*shared_done)(result{}); });
                return;
              }
              const std::size_t bytes = http::wire_size(*hit);
              net_.run_cpu(peer->peer_host(), peer_serve_cpu_,
                           [this, peer, bytes, resp = std::move(*hit),
                            shared_done]() mutable {
                             net_.transfer(peer->peer_host(), host_, bytes,
                                           [resp = std::move(resp), shared_done]() mutable {
                                             result out;
                                             out.response = std::move(resp);
                                             (*shared_done)(std::move(out));
                                           });
                           });
            });
      });
}

// ----- threaded transport ------------------------------------------------------

threaded_peer_transport::threaded_peer_transport(
    sim::network& net, overlay::coral_overlay& overlay,
    overlay::coral_overlay::member_id member, std::string self_name, peer_directory peers,
    sim::node_id self_host, clock now, fault_injector* faults)
    : net_(net),
      overlay_(overlay),
      member_(member),
      self_name_(std::move(self_name)),
      peers_(std::move(peers)),
      host_(self_host),
      now_(std::move(now)),
      faults_(faults) {}

void threaded_peer_transport::advertise(const std::string& key, std::int64_t expires_at) {
  overlay_.put_now(member_, key, self_name_, expires_at, now_());
}

peer_transport::overlay_read_stats threaded_peer_transport::read_stats() const {
  overlay_read_stats s;
  s.membership_fastpath = overlay_.read_fastpath();
  s.membership_slowpath = overlay_.read_slowpath();
  s.ring_fastpath = overlay_.ring_read_fastpath();
  s.ring_slowpath = overlay_.ring_read_slowpath();
  return s;
}

void threaded_peer_transport::fetch_from_peers(const http::request& r, fetch_callback done) {
  const std::string key = r.url.str();
  result out;
  overlay::coral_overlay::sync_result found = overlay_.get_now(member_, key, now_());
  out.hops = found.hops;
  out.latency_seconds = found.latency_seconds;
  for (const auto& name : found.values) {
    if (name == self_name_) continue;
    // A crashed holder never answers: skip it, burn the probe timeout.
    if (faults_ != nullptr && faults_->crashed(name)) {
      faults_->count_skipped_crashed_probe();
      out.latency_seconds += faults_->added_fetch_latency();
      ++out.failed_probes;
      continue;
    }
    peer_endpoint* peer = peers_(name);
    if (peer == nullptr) continue;
    // Account the round-trip the sim would have charged for the probe.
    out.latency_seconds += net_.route_latency_or(host_, peer->peer_host(), 0.0) * 2.0;
    if (faults_ != nullptr) {
      out.latency_seconds += faults_->added_fetch_latency();
      // Lossy link: this fetch attempt fails; try the next holder.
      if (faults_->should_fail_fetch()) {
        ++out.failed_probes;
        continue;
      }
    }
    if (auto hit = peer->peer_cache_lookup(key)) {
      out.response = std::move(hit);
      break;
    }
  }
  done(std::move(out));
}

}  // namespace nakika::net
