// Single-flight fetch coalescing: concurrent misses for the same key collapse
// onto one in-flight upstream fetch. The first caller for a key becomes the
// flight's leader and runs the fetch; every other caller parks on the flight
// and receives a copy of the leader's response. This kills the thundering
// herd on a hot miss — N workers racing for one cold URL perform exactly one
// peer/origin fetch instead of N.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "http/message.hpp"

namespace nakika::net {

class single_flight {
 public:
  struct stats {
    std::uint64_t leaders = 0;  // flights executed (one upstream fetch each)
    std::uint64_t waiters = 0;  // callers that coalesced onto an existing flight
  };

  // Runs `fetch` under single-flight discipline for `key`. Exactly one
  // concurrent caller per key executes `fetch`; the rest block until the
  // leader finishes and get a copy of its response. `coalesced` (optional)
  // reports whether this caller waited instead of fetching.
  //
  // Re-entrancy: a thread that is currently leading any flight never parks —
  // a sub-fetch for its own key, or for a key another leader is fetching
  // (which could cycle: A leads X and wants Y, B leads Y and wants X), runs
  // the fetch directly. The guard trades an occasional duplicate fetch for
  // freedom from cross-flight deadlock.
  //
  // A leader that throws propagates the exception; parked waiters receive a
  // 502 so they never hang on a flight that produced no response.
  http::response run(const std::string& key, const std::function<http::response()>& fetch,
                     bool* coalesced = nullptr);

  [[nodiscard]] stats snapshot() const {
    return {leaders_.load(std::memory_order_relaxed),
            waiters_.load(std::memory_order_relaxed)};
  }
  // In-flight fetches right now (introspection for tests).
  [[nodiscard]] std::size_t in_flight() const;

 private:
  struct flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    http::response response;
  };

  void finish(const std::string& key, const std::shared_ptr<flight>& f,
              http::response response);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<flight>> flights_;
  std::atomic<std::uint64_t> leaders_{0};
  std::atomic<std::uint64_t> waiters_{0};
};

}  // namespace nakika::net
