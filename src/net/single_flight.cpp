#include "net/single_flight.hpp"

namespace nakika::net {

namespace {
// Flights this thread is currently leading (across all single_flight
// instances); a leading thread must never park on another flight.
thread_local std::size_t t_leading_depth = 0;

struct leading_scope {
  leading_scope() { ++t_leading_depth; }
  ~leading_scope() { --t_leading_depth; }
};
}  // namespace

std::size_t single_flight::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

void single_flight::finish(const std::string& key, const std::shared_ptr<flight>& f,
                           http::response response) {
  {
    std::lock_guard<std::mutex> lock(f->mu);
    f->response = std::move(response);
    f->done = true;
  }
  f->cv.notify_all();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = flights_.find(key);
  // Only retire our own flight: a late miss may have started a fresh one.
  if (it != flights_.end() && it->second == f) flights_.erase(it);
}

http::response single_flight::run(const std::string& key,
                                  const std::function<http::response()>& fetch,
                                  bool* coalesced) {
  std::shared_ptr<flight> f;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = flights_.find(key);
    if (it == flights_.end()) {
      f = std::make_shared<flight>();
      flights_[key] = f;
      leader = true;
    } else if (t_leading_depth > 0) {
      // This thread already leads a flight (this key's, or another whose
      // leader may transitively wait on us): never park, fetch directly.
      if (coalesced != nullptr) *coalesced = false;
      return fetch();
    } else {
      f = it->second;
    }
  }

  if (leader) {
    if (coalesced != nullptr) *coalesced = false;
    leaders_.fetch_add(1, std::memory_order_relaxed);
    http::response response;
    try {
      const leading_scope scope;
      response = fetch();
    } catch (...) {
      finish(key, f, http::make_error_response(502, "upstream fetch failed"));
      throw;
    }
    http::response out = response;  // copy before waiters see (and may move) it
    finish(key, f, std::move(response));
    return out;
  }

  if (coalesced != nullptr) *coalesced = true;
  waiters_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(f->mu);
  f->cv.wait(lock, [&] { return f->done; });
  return f->response;  // copy; the flight may have other waiters
}

}  // namespace nakika::net
