// Peer transport: the seam between a Na Kika node and the overlay network.
// A node's cooperative-caching path (miss → who else holds this URL? → fetch
// the copy from that peer) used to hard-code the deterministic sim loop;
// this abstraction lets the same node code run over either
//
//   sim_peer_transport      the original behavior, byte-identical: overlay
//                           lookups and peer copies travel as virtual-time
//                           events on the single-threaded sim::network
//                           (locked by the fixed-seed determinism digest),
//   threaded_peer_transport a thread-safe implementation for multi-node
//                           worker clusters: overlay lookups run through the
//                           DHT's synchronous mutex-guarded API and peer
//                           cache probes call straight into the peer node
//                           from the requesting worker's thread, with the
//                           route latency the sim would have charged
//                           accounted (not slept) so benches can still
//                           report virtual network cost.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "http/message.hpp"
#include "net/fault_injection.hpp"
#include "overlay/clusters.hpp"
#include "sim/network.hpp"

namespace nakika::net {

// What a transport needs from a peer: a thread-safe cache-only probe (no
// origin fallback — a stale overlay hint must not trigger a second origin
// fetch from the peer's side) and the simulated host for latency accounting.
// nakika_node implements this.
class peer_endpoint {
 public:
  virtual ~peer_endpoint() = default;
  [[nodiscard]] virtual std::optional<http::response> peer_cache_lookup(
      const std::string& url) = 0;
  [[nodiscard]] virtual sim::node_id peer_host() const = 0;
};

// Resolves an overlay-advertised node name to the peer serving it.
using peer_directory = std::function<peer_endpoint*(const std::string& name)>;

class peer_transport {
 public:
  struct result {
    // Engaged when some peer's cache held the URL; empty means the caller
    // falls back to its origin fetch.
    std::optional<http::response> response;
    // Virtual network latency the threaded path accounted for the overlay
    // lookup plus the peer round-trip (the sim path bills real virtual time
    // on the event loop instead, so it reports 0 here).
    double latency_seconds = 0.0;
    int hops = 0;  // DHT hops walked by the overlay lookup
    // Holder probes that failed (crashed peer, injected fetch failure) before
    // this result was produced.
    int failed_probes = 0;
  };
  using fetch_callback = std::function<void(result)>;

  virtual ~peer_transport() = default;

  // Advertise that this node caches `key` until `expires_at`.
  virtual void advertise(const std::string& key, std::int64_t expires_at) = 0;

  // Locate `r.url` in the overlay and fetch the copy from a holder's cache.
  // `done` fires exactly once: on the event loop for the sim transport,
  // synchronously on the calling thread for the threaded transport.
  virtual void fetch_from_peers(const http::request& r, fetch_callback done) = 0;

  // Read-path accounting for the overlay this transport fronts: how many
  // membership/ring reads resolved from an epoch-protected snapshot without
  // a mutex (fastpath) vs. rebuilt one under the lock (slowpath). The sim
  // transport reports zeros — its event loop never races readers.
  struct overlay_read_stats {
    std::uint64_t membership_fastpath = 0;
    std::uint64_t membership_slowpath = 0;
    std::uint64_t ring_fastpath = 0;
    std::uint64_t ring_slowpath = 0;
  };
  [[nodiscard]] virtual overlay_read_stats read_stats() const { return {}; }
};

// --- deterministic sim implementation ------------------------------------------

// Wraps the coral overlay's event-driven API plus explicit sim::network
// transfers for the peer round-trip. All callbacks run on the event loop;
// the event sequence is exactly what nakika_node used to inline, so the
// fixed-seed sim path stays byte-identical.
class sim_peer_transport : public peer_transport {
 public:
  sim_peer_transport(sim::network& net, overlay::coral_overlay& overlay,
                     overlay::coral_overlay::member_id member, std::string self_name,
                     peer_directory peers, sim::node_id self_host,
                     double peer_serve_cpu_seconds);

  void advertise(const std::string& key, std::int64_t expires_at) override;
  void fetch_from_peers(const http::request& r, fetch_callback done) override;

 private:
  sim::network& net_;
  overlay::coral_overlay& overlay_;
  overlay::coral_overlay::member_id member_;
  std::string self_name_;
  peer_directory peers_;
  sim::node_id host_;
  double peer_serve_cpu_;  // CPU charged on the peer for serving its copy
};

// --- thread-safe implementation for worker-mode clusters ------------------------

// Dispatches overlay lookups through the DHT's synchronous API (sloppy_dht /
// coral_overlay reads resolve from epoch-protected snapshots, mutating calls
// take the ring mutex) and probes peer caches directly from the calling
// worker thread. Route latencies are read from the (frozen, read-only once
// serving starts) sim topology and accumulated into result::latency_seconds
// rather than slept.
class threaded_peer_transport : public peer_transport {
 public:
  using clock = std::function<std::int64_t()>;  // the owning node's epoch seconds

  // `faults` is optional (nullptr = no fault injection); when set it must
  // outlive the transport. The deployment passes its shared injector so churn
  // scenarios can fail fetches and crash peers mid-workload.
  threaded_peer_transport(sim::network& net, overlay::coral_overlay& overlay,
                          overlay::coral_overlay::member_id member, std::string self_name,
                          peer_directory peers, sim::node_id self_host, clock now,
                          fault_injector* faults = nullptr);

  void advertise(const std::string& key, std::int64_t expires_at) override;
  void fetch_from_peers(const http::request& r, fetch_callback done) override;
  [[nodiscard]] overlay_read_stats read_stats() const override;

 private:
  sim::network& net_;
  overlay::coral_overlay& overlay_;
  overlay::coral_overlay::member_id member_;
  std::string self_name_;
  peer_directory peers_;
  sim::node_id host_;
  clock now_;
  fault_injector* faults_;
};

}  // namespace nakika::net
