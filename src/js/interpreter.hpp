// Execution engine: environments, sandboxed contexts, and the tree-walking
// interpreter. A `context` is the unit of isolation the paper calls a
// "scripting context, including heap": it owns the global object, tracks heap
// bytes and executed operations, and carries the kill flag the resource
// manager uses to terminate pipelines (paper §3.2, §4).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "js/ast.hpp"
#include "js/bytecode.hpp"
#include "js/errors.hpp"
#include "js/frame_arena.hpp"
#include "js/gc.hpp"
#include "js/value.hpp"
#include "util/random.hpp"

namespace nakika::js {

// Script-level exception in flight. `throw` statements raise this; try/catch
// intercepts it; uncaught it surfaces as script_error(thrown). Engine-level
// errors (out_of_memory, ops_budget, terminated) are NOT catchable by script
// code — the sandbox must be able to stop a pipeline unconditionally.
struct thrown_value {
  value v;
};

// Lexical scope chain. Scopes are small, so linear own-slot lookup wins over
// hashing. The global scope is backed by the global object (as in JS, where
// top-level declarations are global-object properties visible to the host).
class environment : public std::enable_shared_from_this<environment> {
 public:
  explicit environment(env_ptr parent = nullptr, object* backing = nullptr)
      : parent_(std::move(parent)), backing_(backing) {}

  // Declares (or overwrites) a binding in this scope.
  void declare(std::string_view name, value v);
  // Finds the nearest binding; nullptr if undeclared anywhere. Pointers may
  // be invalidated by subsequent declarations — copy or write immediately.
  [[nodiscard]] value* find(std::string_view name);
  [[nodiscard]] value* find_local(std::string_view name);
  [[nodiscard]] const env_ptr& parent() const { return parent_; }

  // Cycle breaker for scope teardown. A function declared in a local scope
  // holds its environment via `closure` while the environment's slot holds
  // the function — a shared_ptr cycle that reference counting alone never
  // reclaims. Called when a scope is about to be dropped with `live_refs`
  // remaining env_ptr owners (usually 1, the interpreter's local). If the
  // scope's only other owners are function slots that nothing external
  // references, those functions can never be called again, so their closure
  // pointers are reset and the whole group frees when the last env_ptr
  // drops. Escaped closures (returned, stored in objects, thrown) keep
  // everything intact — detectable because their use_count exceeds the slot
  // count; cycles they form persist until the owning context is destroyed
  // (context::~context sweeps every surviving scope).
  void break_dead_closure_cycles(std::size_t live_refs);

 private:
  // The cycle collector traverses slots_/parent_ and severs them on sweep;
  // gc_tracked_ marks environments already in its candidate registry (set
  // once when a function first closes over this scope, never cleared).
  friend class gc_heap;
  env_ptr parent_;
  object* backing_;  // non-owning; the context outlives its environments
  std::vector<std::pair<std::string, value>> slots_;
  bool gc_tracked_ = false;
};

struct context_limits {
  // Live heap bytes a context may hold; the misbehaving-script experiment
  // relies on this tripping. 0 disables the check.
  std::size_t heap_bytes = 64 * 1024 * 1024;
  // Interpreter operations per run; a coarse CPU bound. 0 disables.
  std::uint64_t ops = 200'000'000;
  // C++ recursion depth for script calls.
  std::size_t call_depth = 200;
  // --- cycle collector (src/js/gc.hpp) ---
  // Heap-growth watermark: script allocations between collection cycles
  // before the collector arms. 0 disables cycle collection entirely (cycles
  // then persist until context teardown, the pre-GC behavior).
  std::size_t gc_watermark = 4096;
  // Registry entries scanned per incremental safepoint slice.
  std::size_t gc_slice = 512;
  // --- shapes (hidden classes, src/js/shapes.hpp) ---
  // Max interned shapes per context; transitions past the bound demote the
  // object to dictionary mode (identity-keyed caching). 0 disables the shape
  // layer entirely — every object is dictionary-mode from birth, which is
  // the pre-shape behavior and must produce identical script results.
  std::size_t shape_table_max = 4096;
};

// One sandboxed scripting context. Creation is deliberately non-trivial
// (installs the standard library), matching the paper's measured 1.5 ms
// context-creation vs 3 µs reuse distinction; reuse resets only counters.
class context {
 public:
  explicit context(context_limits limits = {});
  // Bare context: global object + environment only, no standard library. Used
  // for engine-internal evaluation (compiled decision-tree matchers) where
  // stdlib installation cost and script-visible state would both be wrong.
  struct bare_t {};
  context(context_limits limits, bare_t);
  ~context();
  context(const context&) = delete;
  context& operator=(const context&) = delete;

  [[nodiscard]] const object_ptr& global() const { return global_; }
  [[nodiscard]] const env_ptr& global_env() const { return global_env_; }

  // --- script-visible allocation (charged against the heap budget) ---
  [[nodiscard]] object_ptr make_object();
  [[nodiscard]] object_ptr make_array();
  [[nodiscard]] object_ptr make_byte_array();
  [[nodiscard]] object_ptr make_function(const function_lit* fn, program_ptr owner,
                                         env_ptr closure);
  // Bytecode twin of make_function: a callable backed by a compiled chunk and
  // its captured cells instead of an AST node and an environment chain.
  [[nodiscard]] object_ptr make_compiled_function(
      std::shared_ptr<const compiled_fn> code,
      std::vector<std::shared_ptr<value>> captures);
  // Charges `bytes` against the budget (e.g. string concat results, byte
  // array growth). Throws script_error(out_of_memory) past the limit.
  void charge_transient(std::size_t bytes);
  // Attaches an additional charge to an existing object (growth).
  void charge_object(object& obj, std::size_t bytes);

  // --- resource accounting ---
  [[nodiscard]] std::size_t heap_used() const { return *heap_used_; }
  // Cumulative transient allocation (string churn) this run; the resource
  // manager counts it as memory pressure even though it is freed promptly.
  [[nodiscard]] std::size_t transient_used() const { return transient_run_; }
  [[nodiscard]] std::uint64_t ops_used() const { return ops_used_; }
  void count_op(int line);  // called by the interpreter per AST step
  void add_ops(std::uint64_t n, int line);

  [[nodiscard]] const context_limits& limits() const { return limits_; }
  void set_limits(const context_limits& limits) { limits_ = limits; }

  // Kill flag: set by the resource manager (possibly from outside the
  // script's thread of control); checked at op-count boundaries.
  [[nodiscard]] const std::shared_ptr<std::atomic<bool>>& kill_flag() const {
    return kill_flag_;
  }

  // Resets per-run counters while keeping the (expensive) global state —
  // the paper's "scripting contexts are reused" optimization. Inline caches
  // and the frame arena deliberately survive: they ARE the reuse win.
  void reset_for_reuse();

  // --- cycle collector -----------------------------------------------------
  // Trial-deletion mark-sweep over tracked objects / closure environments /
  // capture cells (see js/gc.hpp). Armed by the allocation watermark, stepped
  // at the same safepoints that check the kill flag.
  [[nodiscard]] gc_heap& gc() { return gc_; }
  [[nodiscard]] const gc_heap& gc() const { return gc_; }
  // Heap bytes the collector reclaimed this run. allocation-churn billing
  // adds these back so a tenant's billed memory is identical with the
  // collector on or off (and the workers=0 determinism digest stays fixed).
  [[nodiscard]] std::size_t gc_reclaimed_run() const { return gc_reclaimed_run_; }

  // --- VM hot-path state -------------------------------------------------------
  // Pooled call frames (see frame_arena.hpp).
  [[nodiscard]] frame_arena& vm_frames() { return vm_frames_; }

  // Per-chunk inline-cache side table. Chunks are immutable and shared across
  // contexts/threads, so the mutable cache slots live here, keyed by chunk
  // identity; the chunk is pinned so its address can never be recycled under
  // a live table. Returns nullptr when the chunk has no cache sites.
  [[nodiscard]] ic_entry* ic_slots(const std::shared_ptr<const compiled_fn>& fn) {
    if (fn->num_ics == 0) return nullptr;
    ic_block& block = ic_tables_[fn.get()];
    if (block.slots.empty()) {
      block.pin = fn;
      block.slots.resize(fn->num_ics);
    }
    return block.slots.data();
  }

  // Inline-cache effectiveness, reset per run (reset_for_reuse) so hosts can
  // attribute hits/misses to individual pipeline executions. Hits are classed
  // by the way that served them: way 0 = monomorphic, ways 1-3 = polymorphic;
  // megamorphic sites skip the cache and count lookups separately.
  void note_ic_hit(unsigned way) { way == 0 ? ++ic_mono_ : ++ic_poly_; }
  void note_ic_mega() { ++ic_mega_; }
  void note_ic_miss() { ++ic_miss_; }
  [[nodiscard]] std::uint64_t ic_mono_hits() const { return ic_mono_; }
  [[nodiscard]] std::uint64_t ic_poly_hits() const { return ic_poly_; }
  [[nodiscard]] std::uint64_t ic_mega_lookups() const { return ic_mega_; }
  // Aggregate views kept for existing consumers: megamorphic lookups take the
  // slow path, so they count as misses.
  [[nodiscard]] std::uint64_t ic_hits() const { return ic_mono_ + ic_poly_; }
  [[nodiscard]] std::uint64_t ic_misses() const { return ic_miss_ + ic_mega_; }

  // --- shapes --------------------------------------------------------------
  // Per-context hidden-class registry; null when limits.shape_table_max == 0.
  [[nodiscard]] const std::shared_ptr<shape_table>& shapes() const { return shapes_; }
  // Per-run shape activity (deltas since reset_for_reuse) and current size.
  [[nodiscard]] std::uint64_t shape_transitions_run() const;
  [[nodiscard]] std::uint64_t shape_dict_fallbacks_run() const;
  [[nodiscard]] std::size_t shapes_live() const;

  // --- opcode-pair profiling (bench_interpreter --profile-pairs) -----------
  // When enabled, the VM counts executed (opcode, next opcode) pairs into an
  // opcode_count x opcode_count histogram. Off (null) on the request path.
  void enable_pair_profile();
  [[nodiscard]] std::uint64_t* pair_profile_data() {
    return pair_profile_.empty() ? nullptr : pair_profile_.data();
  }

  // Prototype objects for primitive method dispatch.
  object_ptr object_proto;
  object_ptr array_proto;
  object_ptr string_proto;
  object_ptr number_proto;
  object_ptr function_proto;
  object_ptr byte_array_proto;

  [[nodiscard]] util::rng& random() { return rng_; }

  // Call-depth bookkeeping used by the interpreter.
  std::size_t call_depth = 0;

 private:
  // The collector reads heap_used_ for reclaim accounting, sweeps the IC
  // side tables for swept object ids, and credits gc_reclaimed_run_.
  friend class gc_heap;

  struct ic_block {
    std::shared_ptr<const compiled_fn> pin;  // keeps the keyed chunk alive
    std::vector<ic_entry> slots;
  };

  context_limits limits_;
  object_ptr global_;
  env_ptr global_env_;
  frame_arena vm_frames_;
  std::unordered_map<const compiled_fn*, ic_block> ic_tables_;
  std::uint64_t ic_mono_ = 0;
  std::uint64_t ic_poly_ = 0;
  std::uint64_t ic_mega_ = 0;
  std::uint64_t ic_miss_ = 0;
  std::shared_ptr<shape_table> shapes_;
  // Baselines snapshotted at reset_for_reuse: the table's counters are
  // monotonic, hosts want per-run deltas.
  std::uint64_t shape_transitions_base_ = 0;
  std::uint64_t shape_dict_fallbacks_base_ = 0;
  std::vector<std::uint64_t> pair_profile_;
  // The collector's candidate registry replaced the old fn_registry_: it
  // tracks every script-visible allocation (not just functions), compacts
  // deterministically on each cycle, and drives teardown severance.
  gc_heap gc_{*this};
  std::size_t gc_reclaimed_run_ = 0;
  std::shared_ptr<std::size_t> heap_used_ = std::make_shared<std::size_t>(0);
  std::size_t transient_run_ = 0;
  std::uint64_t ops_used_ = 0;
  std::shared_ptr<std::atomic<bool>> kill_flag_ = std::make_shared<std::atomic<bool>>(false);
  util::rng rng_;
};

// The tree-walking evaluator. Stateless apart from the bound context, so one
// interpreter per pipeline execution is cheap.
class interpreter {
 public:
  explicit interpreter(context& ctx) : ctx_(ctx) {}

  // Executes a whole program in the context's global scope.
  void run(const program_ptr& prog);

  // Calls a function value (script or native). Throws script_error(runtime)
  // if `fn` is not callable. Works for both engines: bytecode-compiled
  // functions are dispatched to the VM transparently.
  value call(const value& fn, const value& this_value, std::vector<value> args);

  // Like call, but takes a callable object directly and lets script-thrown
  // exceptions propagate as thrown_value (so a surrounding try in either
  // engine can catch them). Used for engine-to-engine calls.
  value call_raw(const object_ptr& fn, const value& this_value, std::vector<value> args,
                 int line);

  [[nodiscard]] context& ctx() { return ctx_; }

  // Helpers shared with vocabularies/stdlib:
  [[nodiscard]] value get_property(const value& base, std::string_view name, int line);
  void set_property(const value& base, std::string_view name, value v, int line);
  [[noreturn]] void runtime_fail(const std::string& message, int line) const;

 private:
  struct completion;
  completion exec_stmt(const stmt& s, env_ptr& env);
  completion exec_block(const std::vector<stmt_ptr>& body, env_ptr env);
  value eval(const expr& e, env_ptr& env);
  value eval_binary(const binary_expr& b, env_ptr& env);
  value eval_assign(const assign_expr& a, env_ptr& env);
  value eval_update(const update_expr& u, env_ptr& env);
  value eval_call(const call_expr& c, env_ptr& env);
  value eval_new(const new_expr& n, env_ptr& env);
  value call_function_object(const object_ptr& fn, const value& this_value,
                             std::vector<value> args, int line);
  void hoist_functions(const std::vector<stmt_ptr>& body, env_ptr& env);

  context& ctx_;
  // The program whose AST is currently executing; function objects created
  // during execution hold it as their owner so their bodies stay alive after
  // the host drops the program.
  program_ptr active_program_;
};

// Parses and runs `source` in `ctx` (convenience for tests and simple hosts).
// The bytecode VM is the default engine; the tree-walker remains available as
// the reference oracle.
void eval_script(context& ctx, std::string_view source, std::string_view name = "<script>",
                 engine_kind engine = engine_kind::bytecode);

}  // namespace nakika::js
