// Frame arena for the bytecode VM. Each `machine::invoke` used to allocate
// four fresh std::vectors (value stack, local slots, cells, handler stack);
// on call-heavy scripts those allocations dominated the per-call cost. The
// arena keeps one pooled frame record per active call depth: frames are
// acquired/released strictly LIFO (C++ unwinding guarantees it, including
// across cross-engine calls and script exceptions), each record retains its
// vectors' capacity between calls, and released frames are cleared so they
// hold no value references (heap charges drop exactly when they did before).
// The value stack is segmented — one retained segment per frame record — so
// deep frames never reallocate under shallow ones. The arena lives on the
// js::context and therefore survives sandbox reuse; sandbox_pool trims it
// back to a few frames when a sandbox returns to the pool.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "js/value.hpp"

namespace nakika::js {

struct vm_handler {
  std::size_t ip;
  std::size_t stack_depth;
};

struct vm_frame {
  std::vector<value> stack;
  std::vector<value> slots;
  std::vector<std::shared_ptr<value>> cells;
  std::vector<vm_handler> handlers;
};

class frame_arena {
 public:
  // Returns a cleared frame for the next call depth (reusing capacity when
  // this depth has been reached before). References stay valid while deeper
  // frames are pushed: records are heap-allocated and never move.
  [[nodiscard]] vm_frame& push() {
    if (depth_ == frames_.size()) frames_.push_back(std::make_unique<vm_frame>());
    return *frames_[depth_++];
  }

  // Releases the most recent frame (LIFO). Clears values so object references
  // (and their heap charges) die now, but keeps the vectors' capacity.
  void pop() {
    vm_frame& f = *frames_[--depth_];
    f.stack.clear();
    f.slots.clear();
    f.cells.clear();
    f.handlers.clear();
  }

  // Frees pooled frames beyond `keep` (called when a sandbox returns to its
  // pool, so idle sandboxes don't sit on deep-recursion capacity).
  void trim(std::size_t keep) {
    if (depth_ == 0 && frames_.size() > keep) frames_.resize(keep);
  }

  // Pool-return variant: trim AND release the retained frames' vector
  // capacity, so an idle pooled sandbox shrinks to its live set instead of
  // sitting on the high-water stack/slot capacity of its busiest request.
  void shrink(std::size_t keep) {
    trim(keep);
    if (depth_ != 0) return;
    for (const auto& f : frames_) {
      f->stack.shrink_to_fit();
      f->slots.shrink_to_fit();
      f->cells.shrink_to_fit();
      f->handlers.shrink_to_fit();
    }
  }

  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::size_t pooled() const { return frames_.size(); }

 private:
  std::vector<std::unique_ptr<vm_frame>> frames_;
  std::size_t depth_ = 0;
};

// RAII frame ownership for machine::invoke: releases on every exit path.
class frame_guard {
 public:
  explicit frame_guard(frame_arena& arena) : arena_(arena), frame_(arena.push()) {}
  ~frame_guard() { arena_.pop(); }
  frame_guard(const frame_guard&) = delete;
  frame_guard& operator=(const frame_guard&) = delete;

  [[nodiscard]] vm_frame& frame() { return frame_; }

 private:
  frame_arena& arena_;
  vm_frame& frame_;
};

}  // namespace nakika::js
