#include "js/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "js/ops.hpp"
#include "js/parser.hpp"
#include "js/shapes.hpp"
#include "js/stdlib.hpp"
#include "js/vm.hpp"
#include "util/strings.hpp"

namespace nakika::js {

// ----- environment -----------------------------------------------------------

void environment::declare(std::string_view name, value v) {
  if (backing_ != nullptr) {
    backing_->set(name, std::move(v));
    return;
  }
  if (value* existing = find_local(name)) {
    *existing = std::move(v);
    return;
  }
  slots_.emplace_back(std::string(name), std::move(v));
}

value* environment::find_local(std::string_view name) {
  if (backing_ != nullptr) return backing_->find_own(name);
  for (auto& [key, val] : slots_) {
    if (key == name) return &val;
  }
  return nullptr;
}

value* environment::find(std::string_view name) {
  for (environment* e = this; e != nullptr; e = e->parent_.get()) {
    if (value* v = e->find_local(name)) return v;
  }
  return nullptr;
}

void environment::break_dead_closure_cycles(std::size_t live_refs) {
  if (backing_ != nullptr) return;  // the global scope is never torn down
  // Distinct function objects in our slots that close over this scope; each
  // contributes exactly one strong reference back to us via `closure`.
  std::vector<object*> fns;
  for (auto& [key, val] : slots_) {
    if (!val.is_object()) continue;
    const object_ptr& o = val.as_object();
    if (o == nullptr || o->kind != object_kind::function || o->closure.get() != this) {
      continue;
    }
    if (std::find(fns.begin(), fns.end(), o.get()) == fns.end()) fns.push_back(o.get());
  }
  if (fns.empty()) return;
  // A candidate referenced from anywhere besides our slots has escaped (was
  // returned, stored, or thrown) and may still be called — leave the whole
  // scope intact in that case.
  for (object* f : fns) {
    long slot_refs = 0;
    for (auto& [key, val] : slots_) {
      if (val.is_object() && val.as_object().get() == f) ++slot_refs;
    }
    if (f->weak_from_this().use_count() != slot_refs) return;
  }
  // The scope itself must be owned only by the caller's live references plus
  // the candidates' closure pointers; any other owner (an escaped anonymous
  // closure, a captured child scope) means the scope outlives this teardown.
  if (weak_from_this().use_count() != static_cast<long>(live_refs + fns.size())) return;
  for (object* f : fns) f->closure.reset();
}

// ----- context ----------------------------------------------------------------

context::context(context_limits limits) : limits_(limits) {
  if (limits_.shape_table_max != 0) {
    shapes_ = std::make_shared<shape_table>(limits_.shape_table_max);
  }
  global_ = make_plain_object();
  // The global object is shaped too: stdlib installation walks it down one
  // long transition chain once, after which load_global/store_global sites
  // hit on the shared shape instead of the global's identity.
  global_->attach_shape(shapes_);
  global_env_ = std::make_shared<environment>(nullptr, global_.get());
  install_stdlib(*this);
}

context::context(context_limits limits, bare_t) : limits_(limits) {
  if (limits_.shape_table_max != 0) {
    shapes_ = std::make_shared<shape_table>(limits_.shape_table_max);
  }
  global_ = make_plain_object();
  global_->attach_shape(shapes_);
  global_env_ = std::make_shared<environment>(nullptr, global_.get());
}

context::~context() {
  // A node surviving to context teardown is either cached by the host
  // (already being torn down with us) or trapped in a reference cycle the
  // watermark collector never ran on (or was configured off for). Nothing
  // can execute in this context anymore, so the collector severs every edge
  // of every tracked node — object properties/elements/prototypes, closure
  // environments, capture cells — and reference counting unwinds the rest.
  gc_.sever_all();
}

namespace {
constexpr std::size_t object_overhead = 64;
}

object_ptr context::make_object() {
  auto o = make_plain_object();
  o->attach_shape(shapes_);
  o->proto = object_proto;
  o->charge = heap_charge(heap_used_, object_overhead);
  if (limits_.heap_bytes != 0 && *heap_used_ > limits_.heap_bytes) {
    throw script_error(script_error_kind::out_of_memory, "script heap limit exceeded");
  }
  gc_.track(o);
  gc_.note_allocation();
  return o;
}

object_ptr context::make_array() {
  auto o = make_array_object();
  o->proto = array_proto;
  o->charge = heap_charge(heap_used_, object_overhead);
  if (limits_.heap_bytes != 0 && *heap_used_ > limits_.heap_bytes) {
    throw script_error(script_error_kind::out_of_memory, "script heap limit exceeded");
  }
  gc_.track(o);
  gc_.note_allocation();
  return o;
}

object_ptr context::make_byte_array() {
  auto o = make_byte_array_object();
  o->proto = byte_array_proto;
  o->charge = heap_charge(heap_used_, object_overhead);
  if (limits_.heap_bytes != 0 && *heap_used_ > limits_.heap_bytes) {
    throw script_error(script_error_kind::out_of_memory, "script heap limit exceeded");
  }
  gc_.track(o);
  gc_.note_allocation();
  return o;
}

object_ptr context::make_function(const function_lit* fn, program_ptr owner, env_ptr closure) {
  auto o = std::make_shared<object>(object_kind::function);
  o->attach_shape(shapes_);
  o->proto = function_proto;
  o->fn = fn;
  o->owner = std::move(owner);
  o->closure = std::move(closure);
  o->name = fn->name;
  // Script functions can serve as constructors; give them a prototype object.
  // Tracked too: `f.prototype.constructor = f` is a classic two-node cycle.
  auto proto_obj = make_plain_object();
  gc_.track(proto_obj);
  o->set("prototype", value::object(std::move(proto_obj)));
  o->charge = heap_charge(heap_used_, object_overhead);
  // The closure chain only becomes cycle-capable once a function points into
  // it, so environments are registered lazily here rather than per scope.
  gc_.track_env_chain(o->closure);
  gc_.track(o);
  gc_.note_allocation();
  return o;
}

object_ptr context::make_compiled_function(std::shared_ptr<const compiled_fn> code,
                                           std::vector<std::shared_ptr<value>> captures) {
  auto o = std::make_shared<object>(object_kind::function);
  o->attach_shape(shapes_);
  o->proto = function_proto;
  o->code = std::move(code);
  o->captures = std::move(captures);
  o->name = o->code->name;
  auto proto_obj = make_plain_object();
  gc_.track(proto_obj);
  o->set("prototype", value::object(std::move(proto_obj)));
  o->charge = heap_charge(heap_used_, object_overhead);
  // Capture cells are the VM's cycle edge (a cell holding the function that
  // captured it); registered per capture, deduplicated at collection time.
  for (const std::shared_ptr<value>& cell : o->captures) {
    if (cell != nullptr) gc_.track_cell(cell);
  }
  gc_.track(o);
  gc_.note_allocation();
  return o;
}

void context::charge_transient(std::size_t bytes) {
  transient_run_ += bytes;  // always tracked: the resource manager reads this
  if (limits_.heap_bytes == 0) return;
  if (transient_run_ > limits_.heap_bytes || bytes > limits_.heap_bytes) {
    throw script_error(script_error_kind::out_of_memory,
                       "script allocation budget exceeded");
  }
}

void context::charge_object(object& obj, std::size_t bytes) {
  if (obj.charge.counter == nullptr) {
    obj.charge = heap_charge(heap_used_, bytes);
  } else {
    obj.charge.add(bytes);
  }
  if (limits_.heap_bytes != 0 && *heap_used_ > limits_.heap_bytes) {
    throw script_error(script_error_kind::out_of_memory, "script heap limit exceeded");
  }
}

void context::count_op(int line) {
  ++ops_used_;
  if ((ops_used_ & 0xFF) == 0) {
    if (kill_flag_->load(std::memory_order_relaxed)) {
      throw script_error(script_error_kind::terminated, "pipeline terminated", line);
    }
    if (limits_.ops != 0 && ops_used_ > limits_.ops) {
      throw script_error(script_error_kind::ops_budget, "script operation budget exceeded",
                         line);
    }
    // GC safepoint, strictly after the kill check so a collection slice can
    // never delay a termination. Interpreter locals hold strong references,
    // so any value mid-evaluation is externally referenced and kept.
    if (gc_.pending()) gc_.safepoint();
  }
}

void context::add_ops(std::uint64_t n, int line) {
  ops_used_ += n;
  if (kill_flag_->load(std::memory_order_relaxed)) {
    throw script_error(script_error_kind::terminated, "pipeline terminated", line);
  }
  if (limits_.ops != 0 && ops_used_ > limits_.ops) {
    throw script_error(script_error_kind::ops_budget, "script operation budget exceeded", line);
  }
  // VM fuel-flush safepoint (loop back-edges, call boundaries, throws):
  // kill flag first, then at most one bounded collection increment.
  if (gc_.pending()) gc_.safepoint();
}

void context::reset_for_reuse() {
  ops_used_ = 0;
  transient_run_ = 0;
  ic_mono_ = 0;
  ic_poly_ = 0;
  ic_mega_ = 0;
  ic_miss_ = 0;
  if (shapes_ != nullptr) {
    shape_transitions_base_ = shapes_->transitions();
    shape_dict_fallbacks_base_ = shapes_->dict_fallbacks();
  }
  gc_reclaimed_run_ = 0;
  gc_.begin_run();
  // Bound the IC side tables: drop entries whose pinned chunk has no other
  // owner (its script was republished / evicted — it can never execute here
  // again). Only safe between runs: no VM frame or machine memo can hold a
  // table pointer across reset, and any chunk still reachable from a live
  // function object or cache keeps use_count > 1.
  if (ic_tables_.size() > 32) {
    std::erase_if(ic_tables_, [](const auto& kv) { return kv.second.pin.use_count() == 1; });
  }
  // Deliberately NOT clearing the kill flag: the resource manager may have
  // set it from another thread after this pipeline registered but before the
  // run reset — erasing that would un-kill a targeted pipeline. The flag is
  // rearmed when a healthy sandbox returns to its pool (sandbox_pool::release
  // / sandbox::clear_kill), after the pipeline has deregistered.
  call_depth = 0;
}

std::uint64_t context::shape_transitions_run() const {
  return shapes_ != nullptr ? shapes_->transitions() - shape_transitions_base_ : 0;
}

std::uint64_t context::shape_dict_fallbacks_run() const {
  return shapes_ != nullptr ? shapes_->dict_fallbacks() - shape_dict_fallbacks_base_ : 0;
}

std::size_t context::shapes_live() const {
  return shapes_ != nullptr ? shapes_->live_shapes() : 0;
}

void context::enable_pair_profile() {
  pair_profile_.assign(opcode_count * opcode_count, 0);
}

// ----- interpreter ------------------------------------------------------------

struct interpreter::completion {
  enum class kind { normal, returned, broke, continued } k = kind::normal;
  value v;

  static completion normal() { return {}; }
  static completion returned(value v) {
    completion c;
    c.k = kind::returned;
    c.v = std::move(v);
    return c;
  }
  static completion broke() {
    completion c;
    c.k = kind::broke;
    return c;
  }
  static completion continued() {
    completion c;
    c.k = kind::continued;
    return c;
  }
  [[nodiscard]] bool abrupt() const { return k != kind::normal; }
};

void interpreter::runtime_fail(const std::string& message, int line) const {
  throw script_error(script_error_kind::runtime, message, line);
}

namespace {
// RAII guard for script call depth.
class depth_guard {
 public:
  depth_guard(context& ctx, int line) : ctx_(ctx) {
    if (++ctx_.call_depth > ctx_.limits().call_depth) {
      --ctx_.call_depth;
      throw script_error(script_error_kind::runtime, "maximum call depth exceeded", line);
    }
  }
  ~depth_guard() { --ctx_.call_depth; }
  depth_guard(const depth_guard&) = delete;
  depth_guard& operator=(const depth_guard&) = delete;

 private:
  context& ctx_;
};

// Owns a scope environment for the duration of its block and runs the
// closure-cycle breaker when the scope is dropped — including on exception
// unwind, where escaped closures riding the thrown value stay protected by
// the use_count checks.
struct scope_reaper {
  explicit scope_reaper(env_ptr e) : env(std::move(e)) {}
  ~scope_reaper() { env->break_dead_closure_cycles(/*live_refs=*/1); }
  scope_reaper(const scope_reaper&) = delete;
  scope_reaper& operator=(const scope_reaper&) = delete;

  env_ptr env;
};
}  // namespace

void interpreter::run(const program_ptr& prog) {
  env_ptr env = ctx_.global_env();
  const program_ptr saved = std::exchange(active_program_, prog);
  hoist_functions(prog->body, env);
  try {
    for (const auto& s : prog->body) {
      const completion c = exec_stmt(*s, env);
      if (c.abrupt()) {
        runtime_fail("illegal top-level break/continue/return", s->line);
      }
    }
  } catch (const thrown_value& t) {
    active_program_ = saved;
    throw script_error(script_error_kind::thrown,
                       prog->name + ": uncaught exception: " + t.v.to_string());
  } catch (...) {
    active_program_ = saved;
    throw;
  }
  active_program_ = saved;
}

value interpreter::call(const value& fn, const value& this_value, std::vector<value> args) {
  if (!fn.is_object() || !fn.as_object()->callable()) {
    runtime_fail("attempted to call a non-function", 0);
  }
  try {
    return call_function_object(fn.as_object(), this_value, std::move(args), 0);
  } catch (const thrown_value& t) {
    throw script_error(script_error_kind::thrown,
                       "uncaught exception: " + t.v.to_string());
  }
}

void interpreter::hoist_functions(const std::vector<stmt_ptr>& body, env_ptr& env) {
  for (const auto& s : body) {
    if (s->kind == stmt_kind::function_decl) {
      const auto& decl = static_cast<const function_decl&>(*s);
      // The owner program pointer is not available here; function objects made
      // during hoisting keep the AST alive via the enclosing program, which
      // outlives the environment in all our uses. We store a null owner and
      // rely on the host holding the program; exec of function_decl re-binds
      // with the proper owner when reached. Hoisting only needs the binding to
      // exist for mutual recursion, so bind the final object right away.
      env->declare(decl.function->name, value::undefined());
    }
  }
}

interpreter::completion interpreter::exec_block(const std::vector<stmt_ptr>& body, env_ptr env) {
  hoist_functions(body, env);
  for (const auto& s : body) {
    completion c = exec_stmt(*s, env);
    if (c.abrupt()) return c;
  }
  return completion::normal();
}

interpreter::completion interpreter::exec_stmt(const stmt& s, env_ptr& env) {
  ctx_.count_op(s.line);
  switch (s.kind) {
    case stmt_kind::empty_stmt:
      return completion::normal();

    case stmt_kind::expr_stmt:
      eval(*static_cast<const expr_stmt&>(s).expression, env);
      return completion::normal();

    case stmt_kind::var_decl: {
      const auto& decl = static_cast<const var_decl&>(s);
      for (const auto& [name, init] : decl.declarations) {
        env->declare(name, init ? eval(*init, env) : value::undefined());
      }
      return completion::normal();
    }

    case stmt_kind::block: {
      const auto& block = static_cast<const block_stmt&>(s);
      scope_reaper scope(std::make_shared<environment>(env));
      return exec_block(block.body, scope.env);
    }

    case stmt_kind::if_stmt: {
      const auto& node = static_cast<const if_stmt&>(s);
      if (eval(*node.condition, env).truthy()) {
        return exec_stmt(*node.then_branch, env);
      }
      if (node.else_branch) return exec_stmt(*node.else_branch, env);
      return completion::normal();
    }

    case stmt_kind::while_stmt: {
      const auto& node = static_cast<const while_stmt&>(s);
      while (eval(*node.condition, env).truthy()) {
        ctx_.count_op(s.line);
        completion c = exec_stmt(*node.body, env);
        if (c.k == completion::kind::broke) break;
        if (c.k == completion::kind::returned) return c;
      }
      return completion::normal();
    }

    case stmt_kind::do_while_stmt: {
      const auto& node = static_cast<const do_while_stmt&>(s);
      do {
        ctx_.count_op(s.line);
        completion c = exec_stmt(*node.body, env);
        if (c.k == completion::kind::broke) break;
        if (c.k == completion::kind::returned) return c;
      } while (eval(*node.condition, env).truthy());
      return completion::normal();
    }

    case stmt_kind::for_stmt: {
      const auto& node = static_cast<const for_stmt&>(s);
      scope_reaper scope(std::make_shared<environment>(env));
      env_ptr& loop_env = scope.env;
      if (node.init) {
        completion c = exec_stmt(*node.init, loop_env);
        if (c.abrupt()) return c;
      }
      while (!node.condition || eval(*node.condition, loop_env).truthy()) {
        ctx_.count_op(s.line);
        completion c = exec_stmt(*node.body, loop_env);
        if (c.k == completion::kind::broke) break;
        if (c.k == completion::kind::returned) return c;
        if (node.step) eval(*node.step, loop_env);
      }
      return completion::normal();
    }

    case stmt_kind::for_in_stmt: {
      const auto& node = static_cast<const for_in_stmt&>(s);
      const value target = eval(*node.object, env);
      scope_reaper scope(std::make_shared<environment>(env));
      env_ptr& loop_env = scope.env;
      if (node.declares) loop_env->declare(node.variable, value::undefined());

      std::vector<std::string> keys;
      if (target.is_object()) {
        const auto& obj = target.as_object();
        if (obj->kind == object_kind::array) {
          for (std::size_t i = 0; i < obj->elements.size(); ++i) {
            keys.push_back(small_index_string(i));
          }
        }
        for (const auto& p : obj->props) keys.push_back(p.key);
      }
      for (const auto& key : keys) {
        ctx_.count_op(s.line);
        if (value* slot = loop_env->find(node.variable)) {
          *slot = value::string(key);
        } else {
          // Assigning an undeclared loop variable creates a global, like JS.
          ctx_.global()->set(node.variable, value::string(key));
        }
        completion c = exec_stmt(*node.body, loop_env);
        if (c.k == completion::kind::broke) break;
        if (c.k == completion::kind::returned) return c;
      }
      return completion::normal();
    }

    case stmt_kind::return_stmt: {
      const auto& node = static_cast<const return_stmt&>(s);
      return completion::returned(node.value ? eval(*node.value, env) : value::undefined());
    }

    case stmt_kind::break_stmt:
      return completion::broke();

    case stmt_kind::continue_stmt:
      return completion::continued();

    case stmt_kind::function_decl: {
      const auto& decl = static_cast<const function_decl&>(s);
      env->declare(decl.function->name,
                   value::object(
                       ctx_.make_function(decl.function.get(), active_program_, env)));
      return completion::normal();
    }

    case stmt_kind::throw_stmt: {
      const auto& node = static_cast<const throw_stmt&>(s);
      throw thrown_value{eval(*node.value, env)};
    }

    case stmt_kind::try_stmt: {
      const auto& node = static_cast<const try_stmt&>(s);
      completion result = completion::normal();
      bool pending_throw = false;
      value pending_value;
      try {
        result = exec_stmt(*node.try_block, env);
      } catch (const thrown_value& t) {
        if (node.catch_block) {
          scope_reaper scope(std::make_shared<environment>(env));
          env_ptr& catch_env = scope.env;
          catch_env->declare(node.catch_name, t.v);
          try {
            result = exec_stmt(*node.catch_block, catch_env);
          } catch (const thrown_value& inner) {
            pending_throw = true;
            pending_value = inner.v;
          }
        } else {
          pending_throw = true;
          pending_value = t.v;
        }
      }
      if (node.finally_block) {
        completion fin = exec_stmt(*node.finally_block, env);
        if (fin.abrupt()) return fin;  // finally overrides earlier completion
      }
      if (pending_throw) throw thrown_value{std::move(pending_value)};
      return result;
    }

    case stmt_kind::switch_stmt: {
      const auto& node = static_cast<const switch_stmt&>(s);
      const value disc = eval(*node.discriminant, env);
      scope_reaper scope(std::make_shared<environment>(env));
      env_ptr& switch_env = scope.env;
      bool matched = false;
      // Two passes: cases first, then fall back to default, with fallthrough.
      std::size_t start = node.cases.size();
      for (std::size_t i = 0; i < node.cases.size(); ++i) {
        if (node.cases[i].test &&
            disc.strict_equals(eval(*node.cases[i].test, switch_env))) {
          start = i;
          matched = true;
          break;
        }
      }
      if (!matched) {
        for (std::size_t i = 0; i < node.cases.size(); ++i) {
          if (!node.cases[i].test) {
            start = i;
            break;
          }
        }
      }
      for (std::size_t i = start; i < node.cases.size(); ++i) {
        for (const auto& st : node.cases[i].body) {
          completion c = exec_stmt(*st, switch_env);
          if (c.k == completion::kind::broke) return completion::normal();
          if (c.abrupt()) return c;
        }
      }
      return completion::normal();
    }
  }
  runtime_fail("unhandled statement kind", s.line);
}

// ----- expressions -------------------------------------------------------------

value interpreter::eval(const expr& e, env_ptr& env) {
  ctx_.count_op(e.line);
  switch (e.kind) {
    case expr_kind::number_lit:
      return value::number(static_cast<const number_lit&>(e).value);
    case expr_kind::string_lit:
      return value::string(static_cast<const string_lit&>(e).value);
    case expr_kind::bool_lit:
      return value::boolean(static_cast<const bool_lit&>(e).value);
    case expr_kind::null_lit:
      return value::null();
    case expr_kind::undefined_lit:
      return value::undefined();

    case expr_kind::identifier: {
      const auto& id = static_cast<const identifier&>(e);
      if (value* v = env->find(id.name)) return *v;
      // Fall back to global object properties (vocabularies live there).
      if (const value* v = ctx_.global()->find_own(id.name)) return *v;
      runtime_fail("'" + id.name + "' is not defined", e.line);
    }

    case expr_kind::this_expr: {
      if (value* v = env->find("this")) return *v;
      return value::undefined();
    }

    case expr_kind::array_lit: {
      const auto& lit = static_cast<const array_lit&>(e);
      auto arr = ctx_.make_array();
      arr->elements.reserve(lit.elements.size());
      for (const auto& el : lit.elements) {
        arr->elements.push_back(eval(*el, env));
      }
      ctx_.charge_object(*arr, lit.elements.size() * 16);
      return value::object(arr);
    }

    case expr_kind::object_lit: {
      const auto& lit = static_cast<const object_lit&>(e);
      auto obj = ctx_.make_object();
      for (const auto& [key, val_expr] : lit.entries) {
        obj->set(key, eval(*val_expr, env));
      }
      ctx_.charge_object(*obj, lit.entries.size() * 32);
      return value::object(obj);
    }

    case expr_kind::function_lit: {
      const auto& fn = static_cast<const function_lit&>(e);
      return value::object(ctx_.make_function(&fn, active_program_, env));
    }

    case expr_kind::member: {
      const auto& m = static_cast<const member_expr&>(e);
      const value base = eval(*m.object, env);
      return get_property(base, m.property, e.line);
    }

    case expr_kind::index: {
      const auto& ix = static_cast<const index_expr&>(e);
      const value base = eval(*ix.object, env);
      const value idx = eval(*ix.index, env);
      if (base.is_object()) {
        const auto& obj = base.as_object();
        if (obj->kind == object_kind::array && idx.is_number()) {
          const double d = idx.as_number();
          const auto i = static_cast<std::int64_t>(d);
          if (i >= 0 && static_cast<std::size_t>(i) < obj->elements.size()) {
            return obj->elements[static_cast<std::size_t>(i)];
          }
          return value::undefined();
        }
        if (obj->kind == object_kind::byte_array && idx.is_number()) {
          const auto i = static_cast<std::int64_t>(idx.as_number());
          if (i >= 0 && static_cast<std::size_t>(i) < obj->bytes.size()) {
            return value::number(obj->bytes[static_cast<std::size_t>(i)]);
          }
          return value::undefined();
        }
      }
      if (base.is_string() && idx.is_number()) {
        const auto i = static_cast<std::int64_t>(idx.as_number());
        if (i >= 0 && static_cast<std::size_t>(i) < base.as_string().size()) {
          return value::string(std::string(1, base.as_string()[static_cast<std::size_t>(i)]));
        }
        return value::undefined();
      }
      return get_property(base, idx.to_string(), e.line);
    }

    case expr_kind::call:
      return eval_call(static_cast<const call_expr&>(e), env);
    case expr_kind::new_call:
      return eval_new(static_cast<const new_expr&>(e), env);

    case expr_kind::unary: {
      const auto& u = static_cast<const unary_expr&>(e);
      if (u.op == "typeof") {
        // typeof tolerates undeclared identifiers.
        if (u.operand->kind == expr_kind::identifier) {
          const auto& id = static_cast<const identifier&>(*u.operand);
          if (env->find(id.name) == nullptr &&
              ctx_.global()->find_own(id.name) == nullptr) {
            return value::string("undefined");
          }
        }
        return value::string(eval(*u.operand, env).type_name());
      }
      if (u.op == "delete") {
        if (u.operand->kind == expr_kind::member) {
          const auto& m = static_cast<const member_expr&>(*u.operand);
          const value base = eval(*m.object, env);
          if (base.is_object()) return value::boolean(base.as_object()->erase(m.property));
          return value::boolean(false);
        }
        if (u.operand->kind == expr_kind::index) {
          const auto& ix = static_cast<const index_expr&>(*u.operand);
          const value base = eval(*ix.object, env);
          const value idx = eval(*ix.index, env);
          if (base.is_object()) {
            return value::boolean(base.as_object()->erase(idx.to_string()));
          }
          return value::boolean(false);
        }
        return value::boolean(true);
      }
      const value operand = eval(*u.operand, env);
      if (u.op == "!") return value::boolean(!operand.truthy());
      if (u.op == "-") return value::number(-operand.to_number());
      if (u.op == "+") return value::number(operand.to_number());
      if (u.op == "~") {
        return value::number(static_cast<double>(
            ~static_cast<std::int32_t>(op_to_int32(operand.to_number()))));
      }
      runtime_fail("unknown unary operator " + u.op, e.line);
    }

    case expr_kind::binary:
      return eval_binary(static_cast<const binary_expr&>(e), env);

    case expr_kind::logical: {
      const auto& l = static_cast<const logical_expr&>(e);
      value left = eval(*l.left, env);
      if (l.op == "&&") return left.truthy() ? eval(*l.right, env) : left;
      return left.truthy() ? left : eval(*l.right, env);  // "||"
    }

    case expr_kind::conditional: {
      const auto& c = static_cast<const conditional_expr&>(e);
      return eval(*c.condition, env).truthy() ? eval(*c.if_true, env) : eval(*c.if_false, env);
    }

    case expr_kind::assign:
      return eval_assign(static_cast<const assign_expr&>(e), env);
    case expr_kind::update:
      return eval_update(static_cast<const update_expr&>(e), env);
  }
  runtime_fail("unhandled expression kind", e.line);
}

value interpreter::eval_binary(const binary_expr& b, env_ptr& env) {
  const value left = eval(*b.left, env);
  const value right = eval(*b.right, env);
  const auto op = binop_from_string(b.op);
  if (!op) runtime_fail("unknown binary operator " + b.op, b.line);
  // Value-level semantics are shared with the bytecode VM (js/ops.hpp).
  return apply_binop(ctx_, *op, left, right, b.line);
}

namespace {
value apply_compound(interpreter& in, const std::string& op, const value& current,
                     const value& operand, context& ctx, int line) {
  (void)in;
  const auto base_op = binop_from_string(std::string_view(op).substr(0, op.size() - 1));
  if (!base_op) {
    throw script_error(script_error_kind::runtime, "unknown compound operator " + op, line);
  }
  return apply_compound_binop(ctx, *base_op, current, operand, line);
}
}  // namespace

value interpreter::eval_assign(const assign_expr& a, env_ptr& env) {
  // Identifier target. The right-hand side is evaluated before the slot is
  // located: evaluation can declare new bindings, which may invalidate any
  // previously held slot pointer.
  if (a.target->kind == expr_kind::identifier) {
    const auto& id = static_cast<const identifier&>(*a.target);
    value rhs = eval(*a.value, env);
    if (a.op != "=") {
      value* slot = env->find(id.name);
      const value current = slot ? *slot : value::undefined();
      rhs = apply_compound(*this, a.op, current, rhs, ctx_, a.line);
    }
    if (value* slot = env->find(id.name)) {
      *slot = rhs;
    } else {
      // Undeclared assignment creates a global-object property (non-strict
      // JS, where the global scope is the global object). This is how the
      // paper's scripts publish handlers: `onResponse = function() {...}`.
      ctx_.global()->set(id.name, rhs);
    }
    return rhs;
  }

  // Member / index target.
  if (a.target->kind == expr_kind::member) {
    const auto& m = static_cast<const member_expr&>(*a.target);
    const value base = eval(*m.object, env);
    value rhs = eval(*a.value, env);
    if (a.op != "=") {
      rhs = apply_compound(*this, a.op, get_property(base, m.property, a.line), rhs, ctx_,
                           a.line);
    }
    set_property(base, m.property, rhs, a.line);
    return rhs;
  }

  const auto& ix = static_cast<const index_expr&>(*a.target);
  const value base = eval(*ix.object, env);
  const value idx = eval(*ix.index, env);
  value rhs = eval(*a.value, env);

  if (base.is_object()) {
    const auto& obj = base.as_object();
    if (obj->kind == object_kind::array && idx.is_number()) {
      const auto i = static_cast<std::int64_t>(idx.as_number());
      if (i < 0) runtime_fail("negative array index", a.line);
      if (a.op != "=") {
        const value current = static_cast<std::size_t>(i) < obj->elements.size()
                                  ? obj->elements[static_cast<std::size_t>(i)]
                                  : value::undefined();
        rhs = apply_compound(*this, a.op, current, rhs, ctx_, a.line);
      }
      if (static_cast<std::size_t>(i) >= obj->elements.size()) {
        const std::size_t grown = static_cast<std::size_t>(i) + 1 - obj->elements.size();
        ctx_.charge_object(*obj, grown * 16);
        obj->elements.resize(static_cast<std::size_t>(i) + 1);
      }
      obj->elements[static_cast<std::size_t>(i)] = rhs;
      return rhs;
    }
    if (obj->kind == object_kind::byte_array && idx.is_number()) {
      const auto i = static_cast<std::int64_t>(idx.as_number());
      if (i < 0 || static_cast<std::size_t>(i) >= obj->bytes.size()) {
        runtime_fail("byte array index out of range", a.line);
      }
      if (a.op != "=") {
        rhs = apply_compound(*this, a.op,
                             value::number(obj->bytes[static_cast<std::size_t>(i)]), rhs,
                             ctx_, a.line);
      }
      obj->bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(static_cast<std::int64_t>(rhs.to_number()) & 0xff);
      return rhs;
    }
  }
  if (a.op != "=") {
    rhs = apply_compound(*this, a.op, get_property(base, idx.to_string(), a.line), rhs, ctx_,
                         a.line);
  }
  set_property(base, idx.to_string(), rhs, a.line);
  return rhs;
}

value interpreter::eval_update(const update_expr& u, env_ptr& env) {
  const double delta = u.op == "++" ? 1.0 : -1.0;
  if (u.target->kind == expr_kind::identifier) {
    const auto& id = static_cast<const identifier&>(*u.target);
    value* slot = env->find(id.name);
    if (slot == nullptr) slot = ctx_.global()->find_own(id.name);
    if (slot == nullptr) runtime_fail("'" + id.name + "' is not defined", u.line);
    const double old_value = slot->to_number();
    *slot = value::number(old_value + delta);
    return value::number(u.prefix ? old_value + delta : old_value);
  }
  if (u.target->kind == expr_kind::member) {
    const auto& m = static_cast<const member_expr&>(*u.target);
    const value base = eval(*m.object, env);
    const double old_value = get_property(base, m.property, u.line).to_number();
    set_property(base, m.property, value::number(old_value + delta), u.line);
    return value::number(u.prefix ? old_value + delta : old_value);
  }
  const auto& ix = static_cast<const index_expr&>(*u.target);
  const value base = eval(*ix.object, env);
  const value idx = eval(*ix.index, env);
  if (base.is_object() && base.as_object()->kind == object_kind::array && idx.is_number()) {
    const auto& obj = base.as_object();
    const auto i = static_cast<std::size_t>(idx.as_number());
    if (i >= obj->elements.size()) runtime_fail("array index out of range", u.line);
    const double old_value = obj->elements[i].to_number();
    obj->elements[i] = value::number(old_value + delta);
    return value::number(u.prefix ? old_value + delta : old_value);
  }
  const std::string key = idx.to_string();
  const double old_value = get_property(base, key, u.line).to_number();
  set_property(base, key, value::number(old_value + delta), u.line);
  return value::number(u.prefix ? old_value + delta : old_value);
}

value interpreter::eval_call(const call_expr& c, env_ptr& env) {
  value this_value;
  value callee;
  if (c.callee->kind == expr_kind::member) {
    const auto& m = static_cast<const member_expr&>(*c.callee);
    this_value = eval(*m.object, env);
    callee = get_property(this_value, m.property, c.line);
    if (callee.is_undefined()) {
      runtime_fail("method '" + m.property + "' is not defined on " +
                       std::string(this_value.type_name()),
                   c.line);
    }
  } else if (c.callee->kind == expr_kind::index) {
    const auto& ix = static_cast<const index_expr&>(*c.callee);
    this_value = eval(*ix.object, env);
    const value idx = eval(*ix.index, env);
    callee = get_property(this_value, idx.to_string(), c.line);
  } else {
    callee = eval(*c.callee, env);
  }

  std::vector<value> args;
  args.reserve(c.args.size());
  for (const auto& a : c.args) args.push_back(eval(*a, env));

  if (!callee.is_object() || !callee.as_object()->callable()) {
    runtime_fail("attempted to call a non-function", c.line);
  }
  return call_function_object(callee.as_object(), this_value, std::move(args), c.line);
}

value interpreter::eval_new(const new_expr& n, env_ptr& env) {
  const value callee = eval(*n.callee, env);
  if (!callee.is_object() || !callee.as_object()->callable()) {
    runtime_fail("'new' applied to a non-function", n.line);
  }
  std::vector<value> args;
  args.reserve(n.args.size());
  for (const auto& a : n.args) args.push_back(eval(*a, env));

  const object_ptr& ctor = callee.as_object();
  object_ptr instance = ctx_.make_object();
  const value proto = ctor->get("prototype");
  if (proto.is_object()) instance->proto = proto.as_object();

  const value result =
      call_function_object(ctor, value::object(instance), std::move(args), n.line);
  // A constructor returning an object overrides the fresh instance.
  return result.is_object() ? result : value::object(instance);
}

value interpreter::call_raw(const object_ptr& fn, const value& this_value,
                            std::vector<value> args, int line) {
  return call_function_object(fn, this_value, std::move(args), line);
}

value interpreter::call_function_object(const object_ptr& fn, const value& this_value,
                                        std::vector<value> args, int line) {
  depth_guard guard(ctx_, line);
  if (fn->kind == object_kind::native_function) {
    return fn->native(*this, this_value, std::span<value>(args));
  }
  if (fn->code) {
    // Bytecode-compiled function: hand off to the VM. thrown_value propagates
    // so surrounding try/catch (in either engine) keeps working.
    return call_compiled(ctx_, fn, this_value, std::move(args), line);
  }

  // Function bodies may create more functions; those belong to this
  // function's owning program.
  const program_ptr saved = std::exchange(active_program_, fn->owner);
  struct restore {
    interpreter* self;
    program_ptr saved;
    ~restore() { self->active_program_ = std::move(saved); }
  } restorer{this, saved};

  scope_reaper frame(
      std::make_shared<environment>(fn->closure ? fn->closure : ctx_.global_env()));
  env_ptr& fn_env = frame.env;
  fn_env->declare("this", this_value);
  const auto& params = fn->fn->params;
  for (std::size_t i = 0; i < params.size(); ++i) {
    fn_env->declare(params[i], i < args.size() ? std::move(args[i]) : value::undefined());
  }
  // `arguments` array for variadic handlers.
  auto args_array = ctx_.make_array();
  for (std::size_t i = params.size(); i < args.size(); ++i) {
    args_array->elements.push_back(std::move(args[i]));
  }
  fn_env->declare("arguments", value::object(args_array));

  completion c = exec_block(fn->fn->body, fn_env);
  if (c.k == completion::kind::returned) return c.v;
  if (c.k == completion::kind::broke || c.k == completion::kind::continued) {
    runtime_fail("break/continue escaped function body", line);
  }
  return value::undefined();
}

// ----- property access ----------------------------------------------------------

value interpreter::get_property(const value& base, std::string_view name, int line) {
  if (base.is_string()) {
    if (name == "length") return value::number(static_cast<double>(base.as_string().size()));
    if (ctx_.string_proto) return ctx_.string_proto->get(name);
    return value::undefined();
  }
  if (base.is_number()) {
    if (ctx_.number_proto) return ctx_.number_proto->get(name);
    return value::undefined();
  }
  if (base.is_boolean()) return value::undefined();
  if (base.is_nullish()) {
    runtime_fail("cannot read property '" + std::string(name) + "' of " +
                     std::string(base.is_null() ? "null" : "undefined"),
                 line);
  }
  const auto& obj = base.as_object();
  if (name == "length") {
    if (obj->kind == object_kind::array) {
      return value::number(static_cast<double>(obj->elements.size()));
    }
    if (obj->kind == object_kind::byte_array) {
      return value::number(static_cast<double>(obj->bytes.size()));
    }
  }
  return obj->get(name);
}

void interpreter::set_property(const value& base, std::string_view name, value v, int line) {
  if (!base.is_object()) {
    runtime_fail("cannot set property '" + std::string(name) + "' on a " +
                     std::string(base.type_name()),
                 line);
  }
  const auto& obj = base.as_object();
  if (obj->kind == object_kind::array && name == "length") {
    const auto n = static_cast<std::int64_t>(v.to_number());
    if (n < 0) runtime_fail("invalid array length", line);
    obj->elements.resize(static_cast<std::size_t>(n));
    return;
  }
  if (obj->kind == object_kind::array) {
    // Numeric string keys address elements ("0", "1", ...).
    const auto idx = util::parse_int(name);
    if (idx && *idx >= 0) {
      if (static_cast<std::size_t>(*idx) >= obj->elements.size()) {
        ctx_.charge_object(*obj,
                           (static_cast<std::size_t>(*idx) + 1 - obj->elements.size()) * 16);
        obj->elements.resize(static_cast<std::size_t>(*idx) + 1);
      }
      obj->elements[static_cast<std::size_t>(*idx)] = std::move(v);
      return;
    }
  }
  ctx_.charge_object(*obj, 32 + name.size());
  obj->set(name, std::move(v));
}

void eval_script(context& ctx, std::string_view source, std::string_view name,
                 engine_kind engine) {
  if (engine == engine_kind::bytecode) {
    eval_script_bytecode(ctx, source, name);
    return;
  }
  const program_ptr prog = parse_program(source, name);
  interpreter in(ctx);
  in.run(prog);
}

}  // namespace nakika::js
