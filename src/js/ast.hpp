// Abstract syntax tree for the scripting language. Nodes are plain structs
// discriminated by a kind enum; the interpreter switches on the kind and
// static_casts, which keeps dispatch cheap for a tree-walker.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace nakika::js {

// ----- expressions ----------------------------------------------------------

enum class expr_kind {
  number_lit,
  string_lit,
  bool_lit,
  null_lit,
  undefined_lit,
  identifier,
  this_expr,
  array_lit,
  object_lit,
  function_lit,
  member,      // obj.name
  index,       // obj[expr]
  call,
  new_call,
  unary,       // ! - + ~ typeof delete
  binary,      // arithmetic / relational / bitwise
  logical,     // && ||
  conditional, // ?:
  assign,      // = += -= *= /= %= &= |= ^= <<= >>=
  update,      // ++ -- (prefix / postfix)
};

struct expr {
  explicit expr(expr_kind k, int ln) : kind(k), line(ln) {}
  virtual ~expr() = default;
  expr(const expr&) = delete;
  expr& operator=(const expr&) = delete;

  expr_kind kind;
  int line;
};
using expr_ptr = std::unique_ptr<expr>;

struct stmt;
using stmt_ptr = std::unique_ptr<stmt>;

struct number_lit final : expr {
  number_lit(double v, int ln) : expr(expr_kind::number_lit, ln), value(v) {}
  double value;
};

struct string_lit final : expr {
  string_lit(std::string v, int ln) : expr(expr_kind::string_lit, ln), value(std::move(v)) {}
  std::string value;
};

struct bool_lit final : expr {
  bool_lit(bool v, int ln) : expr(expr_kind::bool_lit, ln), value(v) {}
  bool value;
};

struct null_lit final : expr {
  explicit null_lit(int ln) : expr(expr_kind::null_lit, ln) {}
};

struct undefined_lit final : expr {
  explicit undefined_lit(int ln) : expr(expr_kind::undefined_lit, ln) {}
};

struct identifier final : expr {
  identifier(std::string n, int ln) : expr(expr_kind::identifier, ln), name(std::move(n)) {}
  std::string name;
};

struct this_expr final : expr {
  explicit this_expr(int ln) : expr(expr_kind::this_expr, ln) {}
};

struct array_lit final : expr {
  explicit array_lit(int ln) : expr(expr_kind::array_lit, ln) {}
  std::vector<expr_ptr> elements;
};

struct object_lit final : expr {
  explicit object_lit(int ln) : expr(expr_kind::object_lit, ln) {}
  std::vector<std::pair<std::string, expr_ptr>> entries;
};

struct function_lit final : expr {
  explicit function_lit(int ln) : expr(expr_kind::function_lit, ln) {}
  std::string name;  // empty for anonymous function expressions
  std::vector<std::string> params;
  std::vector<stmt_ptr> body;
};

struct member_expr final : expr {
  member_expr(expr_ptr obj, std::string prop, int ln)
      : expr(expr_kind::member, ln), object(std::move(obj)), property(std::move(prop)) {}
  expr_ptr object;
  std::string property;
};

struct index_expr final : expr {
  index_expr(expr_ptr obj, expr_ptr idx, int ln)
      : expr(expr_kind::index, ln), object(std::move(obj)), index(std::move(idx)) {}
  expr_ptr object;
  expr_ptr index;
};

struct call_expr final : expr {
  call_expr(expr_ptr c, int ln) : expr(expr_kind::call, ln), callee(std::move(c)) {}
  expr_ptr callee;
  std::vector<expr_ptr> args;
};

struct new_expr final : expr {
  new_expr(expr_ptr c, int ln) : expr(expr_kind::new_call, ln), callee(std::move(c)) {}
  expr_ptr callee;
  std::vector<expr_ptr> args;
};

struct unary_expr final : expr {
  unary_expr(std::string o, expr_ptr opnd, int ln)
      : expr(expr_kind::unary, ln), op(std::move(o)), operand(std::move(opnd)) {}
  std::string op;  // "!", "-", "+", "~", "typeof", "delete"
  expr_ptr operand;
};

struct binary_expr final : expr {
  binary_expr(std::string o, expr_ptr l, expr_ptr r, int ln)
      : expr(expr_kind::binary, ln), op(std::move(o)), left(std::move(l)), right(std::move(r)) {}
  std::string op;
  expr_ptr left;
  expr_ptr right;
};

struct logical_expr final : expr {
  logical_expr(std::string o, expr_ptr l, expr_ptr r, int ln)
      : expr(expr_kind::logical, ln), op(std::move(o)), left(std::move(l)), right(std::move(r)) {}
  std::string op;  // "&&" or "||"
  expr_ptr left;
  expr_ptr right;
};

struct conditional_expr final : expr {
  conditional_expr(expr_ptr c, expr_ptr t, expr_ptr f, int ln)
      : expr(expr_kind::conditional, ln),
        condition(std::move(c)),
        if_true(std::move(t)),
        if_false(std::move(f)) {}
  expr_ptr condition;
  expr_ptr if_true;
  expr_ptr if_false;
};

struct assign_expr final : expr {
  assign_expr(std::string o, expr_ptr t, expr_ptr v, int ln)
      : expr(expr_kind::assign, ln), op(std::move(o)), target(std::move(t)), value(std::move(v)) {}
  std::string op;  // "=", "+=", ...
  expr_ptr target;
  expr_ptr value;
};

struct update_expr final : expr {
  update_expr(std::string o, bool pre, expr_ptr t, int ln)
      : expr(expr_kind::update, ln), op(std::move(o)), prefix(pre), target(std::move(t)) {}
  std::string op;  // "++" or "--"
  bool prefix;
  expr_ptr target;
};

// ----- statements ------------------------------------------------------------

enum class stmt_kind {
  expr_stmt,
  var_decl,
  block,
  if_stmt,
  while_stmt,
  do_while_stmt,
  for_stmt,
  for_in_stmt,
  return_stmt,
  break_stmt,
  continue_stmt,
  function_decl,
  throw_stmt,
  try_stmt,
  switch_stmt,
  empty_stmt,
};

struct stmt {
  explicit stmt(stmt_kind k, int ln) : kind(k), line(ln) {}
  virtual ~stmt() = default;
  stmt(const stmt&) = delete;
  stmt& operator=(const stmt&) = delete;

  stmt_kind kind;
  int line;
};

struct expr_stmt final : stmt {
  expr_stmt(expr_ptr e, int ln) : stmt(stmt_kind::expr_stmt, ln), expression(std::move(e)) {}
  expr_ptr expression;
};

struct var_decl final : stmt {
  explicit var_decl(int ln) : stmt(stmt_kind::var_decl, ln) {}
  std::vector<std::pair<std::string, expr_ptr>> declarations;  // initializer may be null
};

struct block_stmt final : stmt {
  explicit block_stmt(int ln) : stmt(stmt_kind::block, ln) {}
  std::vector<stmt_ptr> body;
};

struct if_stmt final : stmt {
  explicit if_stmt(int ln) : stmt(stmt_kind::if_stmt, ln) {}
  expr_ptr condition;
  stmt_ptr then_branch;
  stmt_ptr else_branch;  // may be null
};

struct while_stmt final : stmt {
  explicit while_stmt(int ln) : stmt(stmt_kind::while_stmt, ln) {}
  expr_ptr condition;
  stmt_ptr body;
};

struct do_while_stmt final : stmt {
  explicit do_while_stmt(int ln) : stmt(stmt_kind::do_while_stmt, ln) {}
  stmt_ptr body;
  expr_ptr condition;
};

struct for_stmt final : stmt {
  explicit for_stmt(int ln) : stmt(stmt_kind::for_stmt, ln) {}
  stmt_ptr init;       // var_decl or expr_stmt; may be null
  expr_ptr condition;  // may be null (infinite)
  expr_ptr step;       // may be null
  stmt_ptr body;
};

struct for_in_stmt final : stmt {
  explicit for_in_stmt(int ln) : stmt(stmt_kind::for_in_stmt, ln) {}
  std::string variable;
  bool declares = false;  // true for `for (var k in ...)`
  expr_ptr object;
  stmt_ptr body;
};

struct return_stmt final : stmt {
  explicit return_stmt(int ln) : stmt(stmt_kind::return_stmt, ln) {}
  expr_ptr value;  // may be null
};

struct break_stmt final : stmt {
  explicit break_stmt(int ln) : stmt(stmt_kind::break_stmt, ln) {}
};

struct continue_stmt final : stmt {
  explicit continue_stmt(int ln) : stmt(stmt_kind::continue_stmt, ln) {}
};

struct function_decl final : stmt {
  explicit function_decl(int ln) : stmt(stmt_kind::function_decl, ln) {}
  std::unique_ptr<function_lit> function;
};

struct throw_stmt final : stmt {
  throw_stmt(expr_ptr v, int ln) : stmt(stmt_kind::throw_stmt, ln), value(std::move(v)) {}
  expr_ptr value;
};

struct try_stmt final : stmt {
  explicit try_stmt(int ln) : stmt(stmt_kind::try_stmt, ln) {}
  stmt_ptr try_block;
  std::string catch_name;   // empty if no catch clause
  stmt_ptr catch_block;     // may be null
  stmt_ptr finally_block;   // may be null
};

struct switch_stmt final : stmt {
  explicit switch_stmt(int ln) : stmt(stmt_kind::switch_stmt, ln) {}
  expr_ptr discriminant;
  struct case_clause {
    expr_ptr test;  // null for `default:`
    std::vector<stmt_ptr> body;
  };
  std::vector<case_clause> cases;
};

struct empty_stmt final : stmt {
  explicit empty_stmt(int ln) : stmt(stmt_kind::empty_stmt, ln) {}
};

// A parsed script. Shared so function values can keep their AST alive after
// the program object itself goes out of scope.
struct program {
  std::string name;  // source name for diagnostics (usually the script URL)
  std::vector<stmt_ptr> body;
};
using program_ptr = std::shared_ptr<const program>;

}  // namespace nakika::js
