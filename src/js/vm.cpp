#include "js/vm.hpp"

#include <span>
#include <utility>

#include "js/compiler.hpp"
#include "js/frame_arena.hpp"
#include "js/ops.hpp"
#include "js/parser.hpp"

namespace nakika::js {

namespace {

// RAII guard for script call depth (same semantics as the tree-walker's).
class depth_guard {
 public:
  depth_guard(context& ctx, int line) : ctx_(ctx) {
    if (++ctx_.call_depth > ctx_.limits().call_depth) {
      --ctx_.call_depth;
      throw script_error(script_error_kind::runtime, "maximum call depth exceeded", line);
    }
  }
  ~depth_guard() { --ctx_.call_depth; }
  depth_guard(const depth_guard&) = delete;
  depth_guard& operator=(const depth_guard&) = delete;

 private:
  context& ctx_;
};

// Object kinds eligible for property inline caching. Arrays and byte arrays
// are excluded because get/set_property give their "length" (and arrays'
// numeric keys) special meaning that an own-property index can't represent.
inline bool ic_cacheable(const object& o) {
  return o.kind != object_kind::array && o.kind != object_kind::byte_array;
}

// The single-sourced cache invariant: an entry is valid while the object's
// unique id and shape generation both still match (then prop_index addresses
// the same own property), and is (re)filled only from an own-property index.
inline bool ic_hit(const ic_entry& ic, const object& o) {
  return ic.obj_id == o.id && ic.shape_gen == o.shape_gen;
}
inline void ic_fill(ic_entry& ic, const object& o, int own_index) {
  if (own_index >= 0) {
    ic = ic_entry{o.id, o.shape_gen, static_cast<std::uint32_t>(own_index)};
  }
}
// Probe-with-accounting: the cached property slot on a hit, nullptr on a
// miss (callers then take the shared slow path and ic_fill afterwards).
inline value* ic_probe(context& ctx, ic_entry& ic, object& o) {
  if (ic_hit(ic, o)) {
    ctx.note_ic(true);
    return &o.props[ic.prop_index].val;
  }
  ctx.note_ic(false);
  return nullptr;
}

class machine {
 public:
  explicit machine(context& ctx) : ctx_(ctx), host_(ctx) {}

  // `args` refers to caller-owned storage (usually the caller frame's stack
  // segment); invoke moves the values out but never grows or frees it.
  value invoke(const compiled_fn_ptr& fn, const std::vector<std::shared_ptr<value>>* captures,
               const value& this_value, std::span<value> args, int line);

 private:
  value do_call(value callee, const value& this_v, std::span<value> args, int line);
  value do_new(value callee, std::span<value> args, int line);
  [[nodiscard]] value index_get(const value& base, const value& idx, int line);
  void index_set(const value& base, const value& idx, const value& v, int line);
  [[nodiscard]] value forin_keys(const value& target);

  context& ctx_;
  interpreter host_;  // shared property/runtime helpers + native-call bridge
  // Single-entry memo for the per-chunk IC-table lookup: recursion and tight
  // call loops re-enter the same chunk, so this skips the context's hash map
  // on almost every call. Safe to cache raw pointers — the context pins the
  // chunk and never moves a table once created.
  const compiled_fn* memo_fn_ = nullptr;
  ic_entry* memo_ics_ = nullptr;
};

value machine::index_get(const value& base, const value& idx, int line) {
  if (base.is_object()) {
    const auto& obj = base.as_object();
    if (obj->kind == object_kind::array && idx.is_number()) {
      const double d = idx.as_number();
      const auto i = static_cast<std::int64_t>(d);
      if (i >= 0 && static_cast<std::size_t>(i) < obj->elements.size()) {
        return obj->elements[static_cast<std::size_t>(i)];
      }
      return value::undefined();
    }
    if (obj->kind == object_kind::byte_array && idx.is_number()) {
      const auto i = static_cast<std::int64_t>(idx.as_number());
      if (i >= 0 && static_cast<std::size_t>(i) < obj->bytes.size()) {
        return value::number(obj->bytes[static_cast<std::size_t>(i)]);
      }
      return value::undefined();
    }
  }
  if (base.is_string() && idx.is_number()) {
    const auto i = static_cast<std::int64_t>(idx.as_number());
    if (i >= 0 && static_cast<std::size_t>(i) < base.as_string().size()) {
      return value::string(std::string(1, base.as_string()[static_cast<std::size_t>(i)]));
    }
    return value::undefined();
  }
  return host_.get_property(base, idx.to_string(), line);
}

void machine::index_set(const value& base, const value& idx, const value& v, int line) {
  if (base.is_object()) {
    const auto& obj = base.as_object();
    if (obj->kind == object_kind::array && idx.is_number()) {
      const auto i = static_cast<std::int64_t>(idx.as_number());
      if (i < 0) host_.runtime_fail("negative array index", line);
      if (static_cast<std::size_t>(i) >= obj->elements.size()) {
        const std::size_t grown = static_cast<std::size_t>(i) + 1 - obj->elements.size();
        ctx_.charge_object(*obj, grown * 16);
        obj->elements.resize(static_cast<std::size_t>(i) + 1);
      }
      obj->elements[static_cast<std::size_t>(i)] = v;
      return;
    }
    if (obj->kind == object_kind::byte_array && idx.is_number()) {
      const auto i = static_cast<std::int64_t>(idx.as_number());
      if (i < 0 || static_cast<std::size_t>(i) >= obj->bytes.size()) {
        host_.runtime_fail("byte array index out of range", line);
      }
      obj->bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(static_cast<std::int64_t>(v.to_number()) & 0xff);
      return;
    }
  }
  host_.set_property(base, idx.to_string(), v, line);
}

value machine::forin_keys(const value& target) {
  // Engine-internal key list (never script-allocated, so uncharged — the
  // tree-walker's std::vector<std::string> equivalent).
  auto arr = make_array_object();
  if (target.is_object()) {
    const auto& obj = target.as_object();
    if (obj->kind == object_kind::array) {
      arr->elements.reserve(obj->elements.size() + obj->props.size());
      for (std::size_t i = 0; i < obj->elements.size(); ++i) {
        arr->elements.push_back(value::string(small_index_string(i)));
      }
    }
    for (const auto& p : obj->props) arr->elements.push_back(value::string(p.key));
  }
  return value::object(std::move(arr));
}

value machine::do_call(value callee, const value& this_v, std::span<value> args, int line) {
  if (!callee.is_object() || !callee.as_object()->callable()) {
    host_.runtime_fail("attempted to call a non-function", line);
  }
  const object_ptr& fn = callee.as_object();
  if (fn->kind == object_kind::native_function) {
    depth_guard guard(ctx_, line);
    return fn->native(host_, this_v, args);
  }
  if (fn->code) {
    depth_guard guard(ctx_, line);
    return invoke(fn->code, &fn->captures, this_v, args, line);
  }
  // AST-compiled function (created by the tree-walker in this context):
  // delegate; call_raw guards depth and propagates thrown_value.
  return host_.call_raw(fn, this_v,
                        std::vector<value>(std::make_move_iterator(args.begin()),
                                           std::make_move_iterator(args.end())),
                        line);
}

value machine::do_new(value callee, std::span<value> args, int line) {
  if (!callee.is_object() || !callee.as_object()->callable()) {
    host_.runtime_fail("'new' applied to a non-function", line);
  }
  const object_ptr ctor = callee.as_object();
  object_ptr instance = ctx_.make_object();
  const value proto = ctor->get("prototype");
  if (proto.is_object()) instance->proto = proto.as_object();
  const value result = do_call(std::move(callee), value::object(instance), args, line);
  return result.is_object() ? result : value::object(instance);
}

value machine::invoke(const compiled_fn_ptr& fnp,
                      const std::vector<std::shared_ptr<value>>* captures,
                      const value& this_value, std::span<value> args,
                      [[maybe_unused]] int line) {
  const compiled_fn& fn = *fnp;

  // The whole frame — segmented value stack, local slots, cells, handler
  // stack — comes from the context's arena: zero heap allocations per call
  // once this call depth has been warmed up.
  frame_guard fg(ctx_.vm_frames());
  vm_frame& frame = fg.frame();
  std::vector<value>& stack = frame.stack;
  std::vector<value>& slots = frame.slots;
  std::vector<std::shared_ptr<value>>& cells = frame.cells;
  std::vector<vm_handler>& handlers = frame.handlers;
  slots.resize(fn.num_slots);
  cells.resize(fn.num_cells);
  if (stack.capacity() < 16) stack.reserve(16);
  std::size_t ip = 0;

  // Per-site inline caches for this chunk, owned by the context (the chunk is
  // immutable and may be shared across sandboxes/threads). This raw pointer
  // is held across GC safepoints: the cycle collector may ZERO entries in
  // place (swept object ids, at add_ops safepoints) but must never erase an
  // ic_block or resize its slots while a frame is live — only
  // reset_for_reuse, which runs strictly between pipeline runs, may do that.
  if (fnp.get() != memo_fn_) {
    memo_ics_ = ctx_.ic_slots(fnp);
    memo_fn_ = fnp.get();
  }
  ic_entry* const ics = memo_ics_;
  // The global object's identity is fixed for the context's lifetime.
  object* const global_obj = ctx_.global().get();

  const auto bind = [&](const bc_binding& b, value v) {
    if (b.is_cell) {
      cells[b.index] = std::make_shared<value>(std::move(v));
    } else {
      slots[b.index] = std::move(v);
    }
  };

  if (!fn.is_toplevel) {
    bind(fn.this_binding, this_value);
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      bind(fn.params[i], i < args.size() ? std::move(args[i]) : value::undefined());
    }
    // `arguments` holds the extras beyond the named parameters, exactly like
    // the tree-walker (including its heap charge) — but only when the body
    // can observe it; an unread extras array is dead weight on every call.
    if (fn.uses_arguments) {
      auto args_array = ctx_.make_array();
      for (std::size_t i = fn.params.size(); i < args.size(); ++i) {
        args_array->elements.push_back(std::move(args[i]));
      }
      bind(fn.arguments_binding, value::object(std::move(args_array)));
    }
  }

  // Fuel accumulates per opcode and is flushed into the context (which
  // enforces the ops budget and the resource manager's kill flag) at loop
  // back-edges, call boundaries, throws, and frame exit.
  std::uint64_t fuel = 0;
  const auto flush_fuel = [&](int ln) {
    if (fuel != 0) {
      ctx_.add_ops(fuel, ln);
      fuel = 0;
    }
  };

  const auto pop = [&]() {
    value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };
  const auto cell_at = [&](std::size_t i) -> std::shared_ptr<value>& {
    auto& c = cells[i];
    if (!c) c = std::make_shared<value>();  // defensive: jump skipped make_cell
    return c;
  };

  for (;;) {
    try {
      for (;;) {
        const bc_instr& ins = fn.code[ip++];
        ++fuel;
        switch (ins.op) {
          case opcode::push_const:
            stack.push_back(fn.consts[static_cast<std::size_t>(ins.a)]);
            break;
          case opcode::push_undefined:
            stack.push_back(value::undefined());
            break;
          case opcode::push_null:
            stack.push_back(value::null());
            break;
          case opcode::push_true:
            stack.push_back(value::boolean(true));
            break;
          case opcode::push_false:
            stack.push_back(value::boolean(false));
            break;

          case opcode::pop:
            stack.pop_back();
            break;
          case opcode::dup:
            stack.push_back(stack.back());
            break;
          case opcode::swap:
            std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
            break;

          case opcode::load_local:
            stack.push_back(slots[static_cast<std::size_t>(ins.a)]);
            break;
          case opcode::store_local:
            slots[static_cast<std::size_t>(ins.a)] = stack.back();
            break;
          case opcode::store_local_pop:
            slots[static_cast<std::size_t>(ins.a)] = std::move(stack.back());
            stack.pop_back();
            break;
          case opcode::store_cell_pop:
            *cell_at(static_cast<std::size_t>(ins.a)) = std::move(stack.back());
            stack.pop_back();
            break;
          case opcode::update_local: {
            value& slot = slots[static_cast<std::size_t>(ins.a)];
            slot = value::number(slot.to_number() + ((ins.b & 2) != 0 ? -1.0 : 1.0));
            break;
          }
          case opcode::update_cell: {
            value& slot = *cell_at(static_cast<std::size_t>(ins.a));
            slot = value::number(slot.to_number() + ((ins.b & 2) != 0 ? -1.0 : 1.0));
            break;
          }
          case opcode::make_cell:
            cells[static_cast<std::size_t>(ins.a)] = std::make_shared<value>();
            break;
          case opcode::load_cell:
            stack.push_back(*cell_at(static_cast<std::size_t>(ins.a)));
            break;
          case opcode::store_cell:
            *cell_at(static_cast<std::size_t>(ins.a)) = stack.back();
            break;
          case opcode::load_capture:
            stack.push_back(*(*captures)[static_cast<std::size_t>(ins.a)]);
            break;
          case opcode::store_capture:
            *(*captures)[static_cast<std::size_t>(ins.a)] = stack.back();
            break;

          case opcode::load_global: {
            object* const g = global_obj;
            ic_entry& ic = ics[static_cast<std::size_t>(ins.b)];
            if (const value* v = ic_probe(ctx_, ic, *g)) {
              stack.push_back(*v);
              break;
            }
            const std::string& name =
                fn.consts[static_cast<std::size_t>(ins.a)].as_string();
            const int idx = g->own_index(name);
            if (idx < 0) {
              host_.runtime_fail("'" + name + "' is not defined", ins.line);
            }
            ic_fill(ic, *g, idx);
            stack.push_back(g->props[static_cast<std::size_t>(idx)].val);
            break;
          }
          case opcode::load_global_soft: {
            object* const g = global_obj;
            ic_entry& ic = ics[static_cast<std::size_t>(ins.b)];
            if (const value* v = ic_probe(ctx_, ic, *g)) {
              stack.push_back(*v);
              break;
            }
            const std::string& name =
                fn.consts[static_cast<std::size_t>(ins.a)].as_string();
            const int idx = g->own_index(name);
            if (idx < 0) {
              stack.push_back(value::undefined());
              break;
            }
            ic_fill(ic, *g, idx);
            stack.push_back(g->props[static_cast<std::size_t>(idx)].val);
            break;
          }
          case opcode::store_global: {
            object* const g = global_obj;
            ic_entry& ic = ics[static_cast<std::size_t>(ins.b)];
            if (value* v = ic_probe(ctx_, ic, *g)) {
              *v = stack.back();
              break;
            }
            const std::string& name =
                fn.consts[static_cast<std::size_t>(ins.a)].as_string();
            g->set(name, stack.back());
            ic_fill(ic, *g, g->own_index(name));
            break;
          }
          case opcode::typeof_global: {
            const value* v = ctx_.global()->find_own(
                fn.consts[static_cast<std::size_t>(ins.a)].as_string());
            stack.push_back(value::string(v != nullptr ? v->type_name() : "undefined"));
            break;
          }

          case opcode::make_array: {
            const auto n = static_cast<std::size_t>(ins.a);
            auto arr = ctx_.make_array();
            arr->elements.reserve(n);
            const std::size_t base = stack.size() - n;
            for (std::size_t i = 0; i < n; ++i) {
              arr->elements.push_back(std::move(stack[base + i]));
            }
            stack.resize(base);
            ctx_.charge_object(*arr, n * 16);
            stack.push_back(value::object(std::move(arr)));
            break;
          }
          case opcode::make_object: {
            const auto n = static_cast<std::size_t>(ins.a);
            auto obj = ctx_.make_object();
            const std::size_t base = stack.size() - 2 * n;
            for (std::size_t i = 0; i < n; ++i) {
              obj->set(stack[base + 2 * i].as_string(), std::move(stack[base + 2 * i + 1]));
            }
            stack.resize(base);
            ctx_.charge_object(*obj, n * 32);
            stack.push_back(value::object(std::move(obj)));
            break;
          }
          case opcode::make_closure: {
            const auto& proto = fn.fns[static_cast<std::size_t>(ins.a)];
            std::vector<std::shared_ptr<value>> caps;
            caps.reserve(proto->captures.size());
            for (const capture_src& src : proto->captures) {
              std::shared_ptr<value> cell =
                  src.from_parent_cell ? cells[src.index] : (*captures)[src.index];
              if (!cell) cell = std::make_shared<value>();
              caps.push_back(std::move(cell));
            }
            stack.push_back(value::object(ctx_.make_compiled_function(proto, std::move(caps))));
            break;
          }

          case opcode::get_prop: {
            const value base = pop();
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(ins.b)];
              if (const value* cached = ic_probe(ctx_, ic, *o)) {
                stack.push_back(*cached);
                break;
              }
              const std::string& name =
                  fn.consts[static_cast<std::size_t>(ins.a)].as_string();
              value v = host_.get_property(base, name, ins.line);
              // Only own-property hits are cacheable: a prototype-chain read
              // has no stable (object, index) to come back to.
              ic_fill(ic, *o, o->own_index(name));
              stack.push_back(std::move(v));
              break;
            }
            stack.push_back(host_.get_property(
                base, fn.consts[static_cast<std::size_t>(ins.a)].as_string(), ins.line));
            break;
          }
          case opcode::set_prop: {
            value v = pop();
            const value base = pop();
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(ins.b)];
              const std::string& name =
                  fn.consts[static_cast<std::size_t>(ins.a)].as_string();
              if (value* cached = ic_probe(ctx_, ic, *o)) {
                // Same charge the uncached path applies for every set.
                ctx_.charge_object(*o, 32 + name.size());
                *cached = v;
                stack.push_back(std::move(v));
                break;
              }
              host_.set_property(base, name, v, ins.line);
              ic_fill(ic, *o, o->own_index(name));
              stack.push_back(std::move(v));
              break;
            }
            host_.set_property(base, fn.consts[static_cast<std::size_t>(ins.a)].as_string(),
                               v, ins.line);
            stack.push_back(std::move(v));
            break;
          }
          case opcode::get_index: {
            const value idx = pop();
            const value base = pop();
            stack.push_back(index_get(base, idx, ins.line));
            break;
          }
          case opcode::set_index: {
            value v = pop();
            const value idx = pop();
            const value base = pop();
            index_set(base, idx, v, ins.line);
            stack.push_back(std::move(v));
            break;
          }
          case opcode::get_method: {
            const value& base = stack.back();
            const std::string* name = nullptr;
            value callee;
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(ins.b)];
              if (const value* cached = ic_probe(ctx_, ic, *o)) {
                callee = *cached;
              } else {
                name = &fn.consts[static_cast<std::size_t>(ins.a)].as_string();
                callee = host_.get_property(base, *name, ins.line);
                ic_fill(ic, *o, o->own_index(*name));
              }
            } else {
              name = &fn.consts[static_cast<std::size_t>(ins.a)].as_string();
              callee = host_.get_property(base, *name, ins.line);
            }
            if (callee.is_undefined()) {
              if (name == nullptr) {
                name = &fn.consts[static_cast<std::size_t>(ins.a)].as_string();
              }
              host_.runtime_fail("method '" + *name + "' is not defined on " +
                                     std::string(base.type_name()),
                                 ins.line);
            }
            stack.push_back(std::move(callee));
            break;
          }
          case opcode::get_index_method: {
            const value idx = pop();
            const value& base = stack.back();
            if (base.is_object() && idx.is_string() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              const std::string& key = idx.as_string();
              ic_entry& ic = ics[static_cast<std::size_t>(ins.a)];
              // Dynamic key: the cached index is only right if the key at
              // that index still equals this access's key.
              if (ic_hit(ic, *o) && o->props[ic.prop_index].key == key) {
                ctx_.note_ic(true);
                stack.push_back(o->props[ic.prop_index].val);
                break;
              }
              ctx_.note_ic(false);
              value v = host_.get_property(base, key, ins.line);
              ic_fill(ic, *o, o->own_index(key));
              stack.push_back(std::move(v));
              break;
            }
            stack.push_back(host_.get_property(base, idx.to_string(), ins.line));
            break;
          }
          case opcode::delete_prop: {
            const value base = pop();
            stack.push_back(value::boolean(
                base.is_object() &&
                base.as_object()->erase(
                    fn.consts[static_cast<std::size_t>(ins.a)].as_string())));
            break;
          }
          case opcode::delete_index: {
            const value idx = pop();
            const value base = pop();
            stack.push_back(value::boolean(base.is_object() &&
                                           base.as_object()->erase(idx.to_string())));
            break;
          }
          case opcode::update_prop: {
            const value base = pop();
            const std::string& name =
                fn.consts[static_cast<std::size_t>(ins.a)].as_string();
            const double delta = (ins.b & 2) != 0 ? -1.0 : 1.0;
            double old_value = 0.0;
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(ins.c)];
              if (value* cached = ic_probe(ctx_, ic, *o)) {
                old_value = cached->to_number();
                ctx_.charge_object(*o, 32 + name.size());
                *cached = value::number(old_value + delta);
              } else {
                old_value = host_.get_property(base, name, ins.line).to_number();
                host_.set_property(base, name, value::number(old_value + delta), ins.line);
                ic_fill(ic, *o, o->own_index(name));
              }
            } else {
              old_value = host_.get_property(base, name, ins.line).to_number();
              host_.set_property(base, name, value::number(old_value + delta), ins.line);
            }
            stack.push_back(
                value::number((ins.b & 1) != 0 ? old_value + delta : old_value));
            break;
          }
          case opcode::update_index: {
            const value idx = pop();
            const value base = pop();
            const double delta = (ins.b & 2) != 0 ? -1.0 : 1.0;
            double old_value = 0.0;
            if (base.is_object() && base.as_object()->kind == object_kind::array &&
                idx.is_number()) {
              const auto& obj = base.as_object();
              const auto i = static_cast<std::size_t>(idx.as_number());
              if (i >= obj->elements.size()) {
                host_.runtime_fail("array index out of range", ins.line);
              }
              old_value = obj->elements[i].to_number();
              obj->elements[i] = value::number(old_value + delta);
            } else {
              const std::string key = idx.to_string();
              old_value = host_.get_property(base, key, ins.line).to_number();
              host_.set_property(base, key, value::number(old_value + delta), ins.line);
            }
            stack.push_back(
                value::number((ins.b & 1) != 0 ? old_value + delta : old_value));
            break;
          }
          case opcode::keys: {
            const value target = pop();
            stack.push_back(forin_keys(target));
            break;
          }
          case opcode::forin_next: {
            // The compiler guarantees slots[b] is the engine-built key array
            // and slots[c] the numeric cursor.
            const auto& arr = slots[static_cast<std::size_t>(ins.b)].as_object();
            value& cursor = slots[static_cast<std::size_t>(ins.c)];
            const auto i = static_cast<std::size_t>(cursor.as_number());
            if (i >= arr->elements.size()) {
              ip = static_cast<std::size_t>(ins.a);
            } else {
              stack.push_back(arr->elements[i]);
              cursor = value::number(static_cast<double>(i + 1));
            }
            break;
          }

          case opcode::binary: {
            const value r = pop();
            const value l = pop();
            stack.push_back(
                apply_binop(ctx_, static_cast<binop>(ins.a), l, r, ins.line));
            break;
          }
          case opcode::compound: {
            const value r = pop();
            const value l = pop();
            stack.push_back(
                apply_compound_binop(ctx_, static_cast<binop>(ins.a), l, r, ins.line));
            break;
          }
          case opcode::binary_ll:
            stack.push_back(apply_binop(ctx_, static_cast<binop>(ins.a),
                                        slots[static_cast<std::size_t>(ins.b)],
                                        slots[static_cast<std::size_t>(ins.c)], ins.line));
            break;
          case opcode::binary_lc:
            stack.push_back(apply_binop(ctx_, static_cast<binop>(ins.a),
                                        slots[static_cast<std::size_t>(ins.b)],
                                        fn.consts[static_cast<std::size_t>(ins.c)],
                                        ins.line));
            break;
          case opcode::binary_cl:
            stack.push_back(apply_binop(ctx_, static_cast<binop>(ins.a),
                                        fn.consts[static_cast<std::size_t>(ins.b)],
                                        slots[static_cast<std::size_t>(ins.c)], ins.line));
            break;
          case opcode::binary_sl: {
            value result =
                apply_binop(ctx_, static_cast<binop>(ins.a), stack.back(),
                            slots[static_cast<std::size_t>(ins.b)], ins.line);
            stack.back() = std::move(result);
            break;
          }
          case opcode::binary_sc: {
            value result =
                apply_binop(ctx_, static_cast<binop>(ins.a), stack.back(),
                            fn.consts[static_cast<std::size_t>(ins.b)], ins.line);
            stack.back() = std::move(result);
            break;
          }
          case opcode::binary_ls: {
            value result =
                apply_binop(ctx_, static_cast<binop>(ins.a),
                            slots[static_cast<std::size_t>(ins.b)], stack.back(), ins.line);
            stack.back() = std::move(result);
            break;
          }
          case opcode::not_op:
            stack.back() = value::boolean(!stack.back().truthy());
            break;
          case opcode::negate:
            stack.back() = value::number(-stack.back().to_number());
            break;
          case opcode::to_number:
            stack.back() = value::number(stack.back().to_number());
            break;
          case opcode::bit_not:
            stack.back() = value::number(static_cast<double>(
                ~static_cast<std::int32_t>(op_to_int32(stack.back().to_number()))));
            break;
          case opcode::typeof_op:
            stack.back() = value::string(stack.back().type_name());
            break;

          case opcode::jump:
            ip = static_cast<std::size_t>(ins.a);
            break;
          case opcode::jump_if_false:
            if (!pop().truthy()) ip = static_cast<std::size_t>(ins.a);
            break;
          case opcode::jump_if_true:
            if (pop().truthy()) ip = static_cast<std::size_t>(ins.a);
            break;
          case opcode::jump_if_false_keep:
            if (!stack.back().truthy()) {
              ip = static_cast<std::size_t>(ins.a);
            } else {
              stack.pop_back();
            }
            break;
          case opcode::jump_if_true_keep:
            if (stack.back().truthy()) {
              ip = static_cast<std::size_t>(ins.a);
            } else {
              stack.pop_back();
            }
            break;
          case opcode::loop_back:
            flush_fuel(ins.line);
            ip = static_cast<std::size_t>(ins.a);
            break;

          case opcode::check_ctor:
            if (!stack.back().is_object() || !stack.back().as_object()->callable()) {
              host_.runtime_fail("'new' applied to a non-function", ins.line);
            }
            break;

          case opcode::call:
          case opcode::call_method:
          case opcode::call_new: {
            const auto argc = static_cast<std::size_t>(ins.a);
            const std::size_t args_base = stack.size() - argc;
            // The callee consumes its arguments directly from this frame's
            // stack segment (it moves the values out); no per-call argument
            // vector exists anymore. The segment stays valid for the whole
            // call because the callee runs on its own arena frame.
            const std::span<value> cargs(stack.data() + args_base, argc);
            value result;
            flush_fuel(ins.line);
            if (ins.op == opcode::call) {
              value callee = std::move(stack[args_base - 1]);
              result = do_call(std::move(callee), value::undefined(), cargs, ins.line);
              stack.resize(args_base - 1);
            } else if (ins.op == opcode::call_method) {
              value callee = std::move(stack[args_base - 1]);
              result = do_call(std::move(callee), stack[args_base - 2], cargs, ins.line);
              stack.resize(args_base - 2);
            } else {
              value callee = std::move(stack[args_base - 1]);
              result = do_new(std::move(callee), cargs, ins.line);
              stack.resize(args_base - 1);
            }
            stack.push_back(std::move(result));
            break;
          }

          case opcode::ret: {
            flush_fuel(ins.line);
            return pop();
          }
          case opcode::ret_undefined:
            flush_fuel(ins.line);
            return value::undefined();

          case opcode::push_handler:
            handlers.push_back(vm_handler{static_cast<std::size_t>(ins.a), stack.size()});
            break;
          case opcode::pop_handler:
            handlers.pop_back();
            break;
          case opcode::throw_op: {
            if (ins.a == 1) {
              // Engine-level error compiled in place (illegal break/return):
              // not catchable by script code.
              const value msg = pop();
              host_.runtime_fail(msg.to_string(), ins.line);
            }
            value v = pop();
            flush_fuel(ins.line);
            throw thrown_value{std::move(v)};
          }
        }
      }
    } catch (thrown_value& t) {
      if (handlers.empty()) throw;
      const vm_handler h = handlers.back();
      handlers.pop_back();
      stack.resize(h.stack_depth);
      stack.push_back(std::move(t.v));
      ip = h.ip;
    }
  }
}

}  // namespace

void run_program(context& ctx, const compiled_program_ptr& prog) {
  machine m(ctx);
  try {
    (void)m.invoke(prog->top, nullptr, value::undefined(), {}, 0);
  } catch (const thrown_value& t) {
    throw script_error(script_error_kind::thrown,
                       prog->name + ": uncaught exception: " + t.v.to_string());
  }
}

value call_compiled(context& ctx, const object_ptr& fn, const value& this_value,
                    std::vector<value> args, int line) {
  machine m(ctx);
  return m.invoke(fn->code, &fn->captures, this_value, std::span<value>(args), line);
}

void eval_script_bytecode(context& ctx, std::string_view source, std::string_view name) {
  const program_ptr prog = parse_program(source, name);
  const compiled_program_ptr compiled = compile_program(prog);
  run_program(ctx, compiled);
}

}  // namespace nakika::js
