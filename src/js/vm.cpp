#include "js/vm.hpp"

#include <span>
#include <utility>

#include "js/compiler.hpp"
#include "js/frame_arena.hpp"
#include "js/ops.hpp"
#include "js/parser.hpp"
#include "js/shapes.hpp"

namespace nakika::js {

namespace {

// RAII guard for script call depth (same semantics as the tree-walker's).
class depth_guard {
 public:
  depth_guard(context& ctx, int line) : ctx_(ctx) {
    if (++ctx_.call_depth > ctx_.limits().call_depth) {
      --ctx_.call_depth;
      throw script_error(script_error_kind::runtime, "maximum call depth exceeded", line);
    }
  }
  ~depth_guard() { --ctx_.call_depth; }
  depth_guard(const depth_guard&) = delete;
  depth_guard& operator=(const depth_guard&) = delete;

 private:
  context& ctx_;
};

// Object kinds eligible for property inline caching. Arrays and byte arrays
// are excluded because get/set_property give their "length" (and arrays'
// numeric keys) special meaning that an own-property index can't represent.
inline bool ic_cacheable(const object& o) {
  return o.kind != object_kind::array && o.kind != object_kind::byte_array;
}

// The single-sourced cache invariant: a shape way is valid for every object
// whose shape id matches (same id => same layout prefix => prop_index
// addresses the same-named own property); an identity way is valid while the
// object's unique id and shape generation both still match. Entries are
// (re)filled only from an own-property index.
inline void ic_fill(ic_entry& ic, const object& o, int own_index) {
  // Indices past 16 bits are not worth a way (pathological objects only) and
  // megamorphic sites have given up on caching.
  if (own_index < 0 || own_index > 0xFFFF || ic.mega) return;
  ic_way w;
  if (o.shape_id != 0) {
    w.mode = way_shape;
    w.key = o.shape_id;
  } else {
    w.mode = way_identity;
    w.key = o.id;
    w.shape_gen = o.shape_gen;
  }
  w.prop_index = static_cast<std::uint16_t>(own_index);
  // Refill in place when the key is already cached (an identity way goes
  // stale whenever its object's generation moves; replacing it keeps the
  // entry from burning ways on one mutating object).
  for (unsigned i = 0; i < ic.n_ways; ++i) {
    if (ic.ways[i].mode == w.mode && ic.ways[i].key == w.key) {
      ic.ways[i] = w;
      return;
    }
  }
  if (ic.n_ways < ic_entry::max_ways) {
    ic.ways[ic.n_ways++] = w;
    return;
  }
  // Megamorphic demotion: a fifth layout at this site. Probing four ways per
  // access on a site this diverse costs more than the slow path saves, so
  // the site stops probing and filling entirely.
  ic = ic_entry{};
  ic.mega = true;
}

// Probe-with-accounting: the cached property slot on a hit, nullptr on a
// miss (callers then take the shared slow path and ic_fill afterwards).
inline value* ic_probe(context& ctx, ic_entry& ic, object& o) {
  const std::uint64_t sid = o.shape_id;
  if (sid != 0) {
    for (unsigned i = 0; i < ic.n_ways; ++i) {
      const ic_way& w = ic.ways[i];
      if (w.mode == way_shape && w.key == sid) {
        ctx.note_ic_hit(i);
        return &o.props[w.prop_index].val;
      }
    }
    // Grown-object promotion: append transitions never move existing
    // properties, so a way cached for an ANCESTOR shape still indexes the
    // right property. Promote it to a way for the current shape instead of
    // cold-missing every site the pre-growth object warmed up.
    if (o.shapes != nullptr && ic.n_ways != 0) {
      std::uint64_t ancestor = o.shapes->parent_of(sid);
      for (int depth = 0; ancestor != 0 && depth < 16; ++depth) {
        for (unsigned i = 0; i < ic.n_ways; ++i) {
          const ic_way& w = ic.ways[i];
          if (w.mode == way_shape && w.key == ancestor) {
            value* v = &o.props[w.prop_index].val;
            ic_fill(ic, o, static_cast<int>(w.prop_index));
            ctx.note_ic_hit(1);  // classed as a polymorphic hit
            return v;
          }
        }
        ancestor = o.shapes->parent_of(ancestor);
      }
    }
  } else {
    for (unsigned i = 0; i < ic.n_ways; ++i) {
      const ic_way& w = ic.ways[i];
      if (w.mode == way_identity && w.key == o.id && w.shape_gen == o.shape_gen) {
        ctx.note_ic_hit(i);
        return &o.props[w.prop_index].val;
      }
    }
  }
  if (ic.mega) {
    ctx.note_ic_mega();
    return nullptr;
  }
  ctx.note_ic_miss();
  return nullptr;
}


// --- dispatch strategy -------------------------------------------------------
// Two interchangeable dispatch strategies share the handler bodies in
// machine::invoke: computed-goto direct threading on GNU-compatible compilers
// (each handler jumps straight to the next handler's code, so the indirect
// branch predicts per-site instead of per-switch), and a portable switch loop
// everywhere else. Defining NAKIKA_NO_THREADED_DISPATCH forces the switch
// (CI builds one leg that way to keep the fallback green). Both strategies
// execute identical bytecode and charge identical fuel, so script results,
// ops accounting, and the determinism digest cannot differ between them.
#if defined(__GNUC__) && !defined(NAKIKA_NO_THREADED_DISPATCH)
#define NAKIKA_THREADED_DISPATCH 1
#else
#define NAKIKA_THREADED_DISPATCH 0
#endif

// Opcode-pair histogram hook (bench_interpreter --profile-pairs): one
// predictable null check on the request path, a counted (current, next) pair
// when profiling. `ip` already points at the next instruction here.
#define VM_PROFILE_PAIR                                                       \
  do {                                                                        \
    if (pair_prof != nullptr && insp != nullptr) {                            \
      ++pair_prof[static_cast<std::size_t>(insp->op) * opcode_count +         \
                  static_cast<std::size_t>(code_base[ip].op)];                \
    }                                                                         \
  } while (0)

#if NAKIKA_THREADED_DISPATCH
#define VM_CASE(name) L_##name
// VM_NEXT must be a PLAIN goto, not the computed goto itself: handlers invoke
// it with destructor-bearing locals (popped values) still in scope, and g++'s
// `goto*` does not run destructors when it leaves a scope — dispatching
// directly from handler scope silently leaks one reference per popped value.
// The plain goto unwinds handler locals correctly; the computed goto then
// fires from vm_dispatch_next, where only function-scope objects are live
// (and the jump target is a same-scope label, so nothing is skipped). GCC's
// duplicate-computed-gotos pass copies the small dispatch block back into
// each handler tail, so the per-site indirect-branch prediction survives.
#define VM_NEXT goto vm_dispatch_next
#define VM_DISPATCH_BEGIN                                                     \
  vm_dispatch_next:                                                           \
  VM_PROFILE_PAIR;                                                            \
  insp = code_base + (ip++);                                                  \
  ++fuel;                                                                     \
  goto* vm_dispatch[static_cast<std::size_t>(insp->op)];
#define VM_DISPATCH_END
#else
#define VM_CASE(name) case opcode::name
#define VM_NEXT break
#define VM_DISPATCH_BEGIN                                                     \
  for (;;) {                                                                  \
    VM_PROFILE_PAIR;                                                          \
    insp = code_base + (ip++);                                                \
    ++fuel;                                                                   \
    switch (insp->op) {
#define VM_DISPATCH_END                                                       \
    }                                                                         \
  }
#endif

class machine {
 public:
  explicit machine(context& ctx) : ctx_(ctx), host_(ctx) {}

  // `args` refers to caller-owned storage (usually the caller frame's stack
  // segment); invoke moves the values out but never grows or frees it.
  value invoke(const compiled_fn_ptr& fn, const std::vector<std::shared_ptr<value>>* captures,
               const value& this_value, std::span<value> args, int line);

 private:
  value do_call(value callee, const value& this_v, std::span<value> args, int line);
  value do_new(value callee, std::span<value> args, int line);
  [[nodiscard]] value index_get(const value& base, const value& idx, int line);
  void index_set(const value& base, const value& idx, const value& v, int line);
  [[nodiscard]] value forin_keys(const value& target);

  context& ctx_;
  interpreter host_;  // shared property/runtime helpers + native-call bridge
  // Single-entry memo for the per-chunk IC-table lookup: recursion and tight
  // call loops re-enter the same chunk, so this skips the context's hash map
  // on almost every call. Safe to cache raw pointers — the context pins the
  // chunk and never moves a table once created.
  const compiled_fn* memo_fn_ = nullptr;
  ic_entry* memo_ics_ = nullptr;
  // Index of the key the most recent forin_next pushed. `table[k]` inside a
  // for-in loop looks up exactly that key, whose own-property index in the
  // iterated object equals the enumeration cursor — so index_get first guesses
  // this position and verifies with one short string compare, skipping the
  // hash probe. A wrong guess (nested loops, mutated object, unrelated base)
  // just fails the compare and falls through; correctness never depends on it.
  std::size_t forin_guess_ = static_cast<std::size_t>(-1);
};

value machine::index_get(const value& base, const value& idx, int line) {
  if (base.is_object()) {
    const auto& obj = base.as_object();
    if (obj->kind == object_kind::array && idx.is_number()) {
      const double d = idx.as_number();
      const auto i = static_cast<std::int64_t>(d);
      if (i >= 0 && static_cast<std::size_t>(i) < obj->elements.size()) {
        return obj->elements[static_cast<std::size_t>(i)];
      }
      return value::undefined();
    }
    if (obj->kind == object_kind::byte_array && idx.is_number()) {
      const auto i = static_cast<std::int64_t>(idx.as_number());
      if (i >= 0 && static_cast<std::size_t>(i) < obj->bytes.size()) {
        return value::number(obj->bytes[static_cast<std::size_t>(i)]);
      }
      return value::undefined();
    }
  }
  if (base.is_string() && idx.is_number()) {
    const auto i = static_cast<std::int64_t>(idx.as_number());
    if (i >= 0 && static_cast<std::size_t>(i) < base.as_string().size()) {
      return value::string(std::string(1, base.as_string()[static_cast<std::size_t>(i)]));
    }
    return value::undefined();
  }
  // String-keyed read on a plain object: resolve own properties directly
  // (find_own rides the shape index for wide objects), skipping the
  // idx.to_string() allocation and the generic get_property dispatch that
  // dominate dictionary-style `table[key]` loops. Misses (prototype-chain
  // reads, string methods) fall through to the full path.
  if (base.is_object() && idx.is_string() && ic_cacheable(*base.as_object())) {
    object& o = *base.as_object();
    if (forin_guess_ < o.props.size() && o.props[forin_guess_].key == idx.as_string()) {
      return o.props[forin_guess_].val;
    }
    if (const value* v = o.find_own(idx.as_string())) return *v;
  }
  return host_.get_property(base, idx.to_string(), line);
}

void machine::index_set(const value& base, const value& idx, const value& v, int line) {
  if (base.is_object()) {
    const auto& obj = base.as_object();
    if (obj->kind == object_kind::array && idx.is_number()) {
      const auto i = static_cast<std::int64_t>(idx.as_number());
      if (i < 0) host_.runtime_fail("negative array index", line);
      if (static_cast<std::size_t>(i) >= obj->elements.size()) {
        const std::size_t grown = static_cast<std::size_t>(i) + 1 - obj->elements.size();
        ctx_.charge_object(*obj, grown * 16);
        obj->elements.resize(static_cast<std::size_t>(i) + 1);
      }
      obj->elements[static_cast<std::size_t>(i)] = v;
      return;
    }
    if (obj->kind == object_kind::byte_array && idx.is_number()) {
      const auto i = static_cast<std::int64_t>(idx.as_number());
      if (i < 0 || static_cast<std::size_t>(i) >= obj->bytes.size()) {
        host_.runtime_fail("byte array index out of range", line);
      }
      obj->bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(static_cast<std::int64_t>(v.to_number()) & 0xff);
      return;
    }
    // String-keyed overwrite of an existing own property: same charge the
    // generic path bills for a set, minus its to_string allocation and
    // dispatch. New keys (shape transitions, billing for growth) fall
    // through to the full path.
    if (idx.is_string() && ic_cacheable(*obj)) {
      if (value* existing = obj->find_own(idx.as_string())) {
        ctx_.charge_object(*obj, 32 + idx.as_string().size());
        *existing = v;
        return;
      }
    }
  }
  host_.set_property(base, idx.to_string(), v, line);
}

value machine::forin_keys(const value& target) {
  // Shaped non-array object: the shape pins the key sequence, so serve the
  // per-shape cached key array instead of rebuilding it (a for-in over a
  // wide table otherwise copies every key string per loop entry). Sharing
  // is safe because the array is engine-internal: only forin_next reads it,
  // and mid-loop mutation of the object demotes the OBJECT's shape without
  // touching this snapshot — exactly the rebuild path's semantics.
  if (target.is_object()) {
    const object_ptr& shaped = target.as_object();
    if (shaped->shape_id != 0 && shaped->shapes != nullptr &&
        shaped->kind != object_kind::array) {
      if (const object_ptr& cached = shaped->shapes->enum_keys(shaped->shape_id)) {
        return value::object(cached);
      }
      auto built = make_array_object();
      built->elements.reserve(shaped->props.size());
      for (const auto& p : shaped->props) built->elements.push_back(value::string(p.key));
      shaped->shapes->set_enum_keys(shaped->shape_id, built);
      return value::object(std::move(built));
    }
  }
  // Engine-internal key list (never script-allocated, so uncharged — the
  // tree-walker's std::vector<std::string> equivalent).
  auto arr = make_array_object();
  if (target.is_object()) {
    const auto& obj = target.as_object();
    if (obj->kind == object_kind::array) {
      arr->elements.reserve(obj->elements.size() + obj->props.size());
      for (std::size_t i = 0; i < obj->elements.size(); ++i) {
        arr->elements.push_back(value::string(small_index_string(i)));
      }
    }
    for (const auto& p : obj->props) arr->elements.push_back(value::string(p.key));
  }
  return value::object(std::move(arr));
}

value machine::do_call(value callee, const value& this_v, std::span<value> args, int line) {
  if (!callee.is_object() || !callee.as_object()->callable()) {
    host_.runtime_fail("attempted to call a non-function", line);
  }
  const object_ptr& fn = callee.as_object();
  if (fn->kind == object_kind::native_function) {
    depth_guard guard(ctx_, line);
    return fn->native(host_, this_v, args);
  }
  if (fn->code) {
    depth_guard guard(ctx_, line);
    return invoke(fn->code, &fn->captures, this_v, args, line);
  }
  // AST-compiled function (created by the tree-walker in this context):
  // delegate; call_raw guards depth and propagates thrown_value.
  return host_.call_raw(fn, this_v,
                        std::vector<value>(std::make_move_iterator(args.begin()),
                                           std::make_move_iterator(args.end())),
                        line);
}

value machine::do_new(value callee, std::span<value> args, int line) {
  if (!callee.is_object() || !callee.as_object()->callable()) {
    host_.runtime_fail("'new' applied to a non-function", line);
  }
  const object_ptr ctor = callee.as_object();
  object_ptr instance = ctx_.make_object();
  const value proto = ctor->get("prototype");
  if (proto.is_object()) instance->proto = proto.as_object();
  const value result = do_call(std::move(callee), value::object(instance), args, line);
  return result.is_object() ? result : value::object(instance);
}

value machine::invoke(const compiled_fn_ptr& fnp,
                      const std::vector<std::shared_ptr<value>>* captures,
                      const value& this_value, std::span<value> args,
                      [[maybe_unused]] int line) {
  const compiled_fn& fn = *fnp;

  // The whole frame — segmented value stack, local slots, cells, handler
  // stack — comes from the context's arena: zero heap allocations per call
  // once this call depth has been warmed up.
  frame_guard fg(ctx_.vm_frames());
  vm_frame& frame = fg.frame();
  std::vector<value>& stack = frame.stack;
  std::vector<value>& slots = frame.slots;
  std::vector<std::shared_ptr<value>>& cells = frame.cells;
  std::vector<vm_handler>& handlers = frame.handlers;
  slots.resize(fn.num_slots);
  cells.resize(fn.num_cells);
  if (stack.capacity() < 16) stack.reserve(16);
  std::size_t ip = 0;

  // Per-site inline caches for this chunk, owned by the context (the chunk is
  // immutable and may be shared across sandboxes/threads). This raw pointer
  // is held across GC safepoints: the cycle collector may ZERO entries in
  // place (swept object ids, at add_ops safepoints) but must never erase an
  // ic_block or resize its slots while a frame is live — only
  // reset_for_reuse, which runs strictly between pipeline runs, may do that.
  if (fnp.get() != memo_fn_) {
    memo_ics_ = ctx_.ic_slots(fnp);
    memo_fn_ = fnp.get();
  }
  ic_entry* const ics = memo_ics_;
  // The global object's identity is fixed for the context's lifetime.
  object* const global_obj = ctx_.global().get();

  const auto bind = [&](const bc_binding& b, value v) {
    if (b.is_cell) {
      cells[b.index] = std::make_shared<value>(std::move(v));
    } else {
      slots[b.index] = std::move(v);
    }
  };

  if (!fn.is_toplevel) {
    bind(fn.this_binding, this_value);
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      bind(fn.params[i], i < args.size() ? std::move(args[i]) : value::undefined());
    }
    // `arguments` holds the extras beyond the named parameters, exactly like
    // the tree-walker (including its heap charge) — but only when the body
    // can observe it; an unread extras array is dead weight on every call.
    if (fn.uses_arguments) {
      auto args_array = ctx_.make_array();
      for (std::size_t i = fn.params.size(); i < args.size(); ++i) {
        args_array->elements.push_back(std::move(args[i]));
      }
      bind(fn.arguments_binding, value::object(std::move(args_array)));
    }
  }

  // Fuel accumulates per opcode and is flushed into the context (which
  // enforces the ops budget and the resource manager's kill flag) at loop
  // back-edges, call boundaries, throws, and frame exit.
  std::uint64_t fuel = 0;
  const auto flush_fuel = [&](int ln) {
    if (fuel != 0) {
      ctx_.add_ops(fuel, ln);
      fuel = 0;
    }
  };

  const auto pop = [&]() {
    value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };
  const auto cell_at = [&](std::size_t i) -> std::shared_ptr<value>& {
    auto& c = cells[i];
    if (!c) c = std::make_shared<value>();  // defensive: jump skipped make_cell
    return c;
  };

  const bc_instr* insp = nullptr;
  const bc_instr* const code_base = fn.code.data();
  std::uint64_t* const pair_prof = ctx_.pair_profile_data();
#if NAKIKA_THREADED_DISPATCH
  // Handler addresses in exact opcode-enum order (checked by the size
  // static_assert; keep in sync with bytecode.hpp).
  static const void* const vm_dispatch[] = {
      &&L_push_const, &&L_push_undefined, &&L_push_null, &&L_push_true, &&L_push_false,
      &&L_pop, &&L_dup, &&L_swap,
      &&L_load_local, &&L_store_local, &&L_store_local_pop, &&L_store_cell_pop,
      &&L_update_local, &&L_update_cell, &&L_make_cell, &&L_load_cell, &&L_store_cell,
      &&L_load_capture, &&L_store_capture, &&L_load_global, &&L_load_global_soft,
      &&L_store_global, &&L_typeof_global,
      &&L_make_array, &&L_make_object, &&L_make_closure, &&L_get_prop, &&L_set_prop,
      &&L_get_index, &&L_set_index, &&L_get_method, &&L_get_index_method, &&L_delete_prop,
      &&L_delete_index, &&L_update_prop, &&L_update_index, &&L_keys, &&L_forin_next,
      &&L_binary, &&L_compound, &&L_binary_ll, &&L_binary_lc, &&L_binary_cl, &&L_binary_sl,
      &&L_binary_sc, &&L_binary_ls, &&L_not_op, &&L_negate, &&L_to_number, &&L_bit_not,
      &&L_typeof_op,
      &&L_jump, &&L_jump_if_false, &&L_jump_if_true, &&L_jump_if_false_keep,
      &&L_jump_if_true_keep, &&L_loop_back,
      &&L_call, &&L_call_method, &&L_check_ctor, &&L_call_new, &&L_ret, &&L_ret_undefined,
      &&L_push_handler, &&L_pop_handler, &&L_throw_op,
      &&L_load_local_get_prop, &&L_load_global_get_prop, &&L_load_local_load_local,
      &&L_binary_lc_jump_if_false, &&L_binary_ll_jump_if_false,
  };
  static_assert(sizeof(vm_dispatch) / sizeof(vm_dispatch[0]) == opcode_count,
                "dispatch table out of sync with the opcode enum");
#endif

  for (;;) {
    try {
      VM_DISPATCH_BEGIN
          VM_CASE(push_const):
            stack.push_back(fn.consts[static_cast<std::size_t>(insp->a)]);
            VM_NEXT;
          VM_CASE(push_undefined):
            stack.push_back(value::undefined());
            VM_NEXT;
          VM_CASE(push_null):
            stack.push_back(value::null());
            VM_NEXT;
          VM_CASE(push_true):
            stack.push_back(value::boolean(true));
            VM_NEXT;
          VM_CASE(push_false):
            stack.push_back(value::boolean(false));
            VM_NEXT;

          VM_CASE(pop):
            stack.pop_back();
            VM_NEXT;
          VM_CASE(dup):
            stack.push_back(stack.back());
            VM_NEXT;
          VM_CASE(swap):
            std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
            VM_NEXT;

          VM_CASE(load_local):
            stack.push_back(slots[static_cast<std::size_t>(insp->a)]);
            VM_NEXT;
          VM_CASE(store_local):
            slots[static_cast<std::size_t>(insp->a)] = stack.back();
            VM_NEXT;
          VM_CASE(store_local_pop):
            slots[static_cast<std::size_t>(insp->a)] = std::move(stack.back());
            stack.pop_back();
            VM_NEXT;
          VM_CASE(store_cell_pop):
            *cell_at(static_cast<std::size_t>(insp->a)) = std::move(stack.back());
            stack.pop_back();
            VM_NEXT;
          VM_CASE(update_local): {
            value& slot = slots[static_cast<std::size_t>(insp->a)];
            slot = value::number(slot.to_number() + ((insp->b & 2) != 0 ? -1.0 : 1.0));
            VM_NEXT;
          }
          VM_CASE(update_cell): {
            value& slot = *cell_at(static_cast<std::size_t>(insp->a));
            slot = value::number(slot.to_number() + ((insp->b & 2) != 0 ? -1.0 : 1.0));
            VM_NEXT;
          }
          VM_CASE(make_cell):
            cells[static_cast<std::size_t>(insp->a)] = std::make_shared<value>();
            VM_NEXT;
          VM_CASE(load_cell):
            stack.push_back(*cell_at(static_cast<std::size_t>(insp->a)));
            VM_NEXT;
          VM_CASE(store_cell):
            *cell_at(static_cast<std::size_t>(insp->a)) = stack.back();
            VM_NEXT;
          VM_CASE(load_capture):
            stack.push_back(*(*captures)[static_cast<std::size_t>(insp->a)]);
            VM_NEXT;
          VM_CASE(store_capture):
            *(*captures)[static_cast<std::size_t>(insp->a)] = stack.back();
            VM_NEXT;

          VM_CASE(load_global): {
            object* const g = global_obj;
            ic_entry& ic = ics[static_cast<std::size_t>(insp->b)];
            if (const value* v = ic_probe(ctx_, ic, *g)) {
              stack.push_back(*v);
              VM_NEXT;
            }
            const std::string& name =
                fn.consts[static_cast<std::size_t>(insp->a)].as_string();
            const int idx = g->own_index(name);
            if (idx < 0) {
              host_.runtime_fail("'" + name + "' is not defined", insp->line);
            }
            ic_fill(ic, *g, idx);
            stack.push_back(g->props[static_cast<std::size_t>(idx)].val);
            VM_NEXT;
          }
          VM_CASE(load_global_soft): {
            object* const g = global_obj;
            ic_entry& ic = ics[static_cast<std::size_t>(insp->b)];
            if (const value* v = ic_probe(ctx_, ic, *g)) {
              stack.push_back(*v);
              VM_NEXT;
            }
            const std::string& name =
                fn.consts[static_cast<std::size_t>(insp->a)].as_string();
            const int idx = g->own_index(name);
            if (idx < 0) {
              stack.push_back(value::undefined());
              VM_NEXT;
            }
            ic_fill(ic, *g, idx);
            stack.push_back(g->props[static_cast<std::size_t>(idx)].val);
            VM_NEXT;
          }
          VM_CASE(store_global): {
            object* const g = global_obj;
            ic_entry& ic = ics[static_cast<std::size_t>(insp->b)];
            if (value* v = ic_probe(ctx_, ic, *g)) {
              *v = stack.back();
              VM_NEXT;
            }
            const std::string& name =
                fn.consts[static_cast<std::size_t>(insp->a)].as_string();
            g->set(name, stack.back());
            ic_fill(ic, *g, g->own_index(name));
            VM_NEXT;
          }
          VM_CASE(typeof_global): {
            const value* v = ctx_.global()->find_own(
                fn.consts[static_cast<std::size_t>(insp->a)].as_string());
            stack.push_back(value::string(v != nullptr ? v->type_name() : "undefined"));
            VM_NEXT;
          }

          VM_CASE(make_array): {
            const auto n = static_cast<std::size_t>(insp->a);
            auto arr = ctx_.make_array();
            arr->elements.reserve(n);
            const std::size_t base = stack.size() - n;
            for (std::size_t i = 0; i < n; ++i) {
              arr->elements.push_back(std::move(stack[base + i]));
            }
            stack.resize(base);
            ctx_.charge_object(*arr, n * 16);
            stack.push_back(value::object(std::move(arr)));
            VM_NEXT;
          }
          VM_CASE(make_object): {
            const auto n = static_cast<std::size_t>(insp->a);
            auto obj = ctx_.make_object();
            const std::size_t base = stack.size() - 2 * n;
            for (std::size_t i = 0; i < n; ++i) {
              obj->set(stack[base + 2 * i].as_string(), std::move(stack[base + 2 * i + 1]));
            }
            stack.resize(base);
            ctx_.charge_object(*obj, n * 32);
            stack.push_back(value::object(std::move(obj)));
            VM_NEXT;
          }
          VM_CASE(make_closure): {
            const auto& proto = fn.fns[static_cast<std::size_t>(insp->a)];
            std::vector<std::shared_ptr<value>> caps;
            caps.reserve(proto->captures.size());
            for (const capture_src& src : proto->captures) {
              std::shared_ptr<value> cell =
                  src.from_parent_cell ? cells[src.index] : (*captures)[src.index];
              if (!cell) cell = std::make_shared<value>();
              caps.push_back(std::move(cell));
            }
            stack.push_back(value::object(ctx_.make_compiled_function(proto, std::move(caps))));
            VM_NEXT;
          }

          VM_CASE(get_prop): {
            const value base = pop();
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(insp->b)];
              if (const value* cached = ic_probe(ctx_, ic, *o)) {
                stack.push_back(*cached);
                VM_NEXT;
              }
              const std::string& name =
                  fn.consts[static_cast<std::size_t>(insp->a)].as_string();
              value v = host_.get_property(base, name, insp->line);
              // Only own-property hits are cacheable: a prototype-chain read
              // has no stable (object, index) to come back to.
              ic_fill(ic, *o, o->own_index(name));
              stack.push_back(std::move(v));
              VM_NEXT;
            }
            stack.push_back(host_.get_property(
                base, fn.consts[static_cast<std::size_t>(insp->a)].as_string(), insp->line));
            VM_NEXT;
          }
          VM_CASE(set_prop): {
            value v = pop();
            const value base = pop();
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(insp->b)];
              const std::string& name =
                  fn.consts[static_cast<std::size_t>(insp->a)].as_string();
              if (value* cached = ic_probe(ctx_, ic, *o)) {
                // Same charge the uncached path applies for every set.
                ctx_.charge_object(*o, 32 + name.size());
                *cached = v;
                stack.push_back(std::move(v));
                VM_NEXT;
              }
              host_.set_property(base, name, v, insp->line);
              ic_fill(ic, *o, o->own_index(name));
              stack.push_back(std::move(v));
              VM_NEXT;
            }
            host_.set_property(base, fn.consts[static_cast<std::size_t>(insp->a)].as_string(),
                               v, insp->line);
            stack.push_back(std::move(v));
            VM_NEXT;
          }
          VM_CASE(get_index): {
            const value idx = pop();
            const value base = pop();
            stack.push_back(index_get(base, idx, insp->line));
            VM_NEXT;
          }
          VM_CASE(set_index): {
            value v = pop();
            const value idx = pop();
            const value base = pop();
            index_set(base, idx, v, insp->line);
            stack.push_back(std::move(v));
            VM_NEXT;
          }
          VM_CASE(get_method): {
            const value& base = stack.back();
            const std::string* name = nullptr;
            value callee;
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(insp->b)];
              if (const value* cached = ic_probe(ctx_, ic, *o)) {
                callee = *cached;
              } else {
                name = &fn.consts[static_cast<std::size_t>(insp->a)].as_string();
                callee = host_.get_property(base, *name, insp->line);
                ic_fill(ic, *o, o->own_index(*name));
              }
            } else {
              name = &fn.consts[static_cast<std::size_t>(insp->a)].as_string();
              callee = host_.get_property(base, *name, insp->line);
            }
            if (callee.is_undefined()) {
              if (name == nullptr) {
                name = &fn.consts[static_cast<std::size_t>(insp->a)].as_string();
              }
              host_.runtime_fail("method '" + *name + "' is not defined on " +
                                     std::string(base.type_name()),
                                 insp->line);
            }
            stack.push_back(std::move(callee));
            VM_NEXT;
          }
          VM_CASE(get_index_method): {
            const value idx = pop();
            const value& base = stack.back();
            if (base.is_object() && idx.is_string() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              const std::string& key = idx.as_string();
              ic_entry& ic = ics[static_cast<std::size_t>(insp->a)];
              // Dynamic key: a way match additionally requires the key at the
              // cached index to equal this access's key (the site may probe
              // the same shape with varying keys).
              const value* cached = nullptr;
              for (unsigned wi = 0; wi < ic.n_ways; ++wi) {
                const ic_way& w = ic.ways[wi];
                const bool match =
                    o->shape_id != 0
                        ? (w.mode == way_shape && w.key == o->shape_id)
                        : (w.mode == way_identity && w.key == o->id &&
                           w.shape_gen == o->shape_gen);
                if (match && o->props[w.prop_index].key == key) {
                  ctx_.note_ic_hit(wi);
                  cached = &o->props[w.prop_index].val;
                  break;  // exits the way scan, not the dispatch
                }
              }
              if (cached != nullptr) {
                stack.push_back(*cached);
                VM_NEXT;
              }
              if (ic.mega) {
                ctx_.note_ic_mega();
                stack.push_back(host_.get_property(base, key, insp->line));
                VM_NEXT;
              }
              ctx_.note_ic_miss();
              value v = host_.get_property(base, key, insp->line);
              ic_fill(ic, *o, o->own_index(key));
              stack.push_back(std::move(v));
              VM_NEXT;
            }
            stack.push_back(host_.get_property(base, idx.to_string(), insp->line));
            VM_NEXT;
          }
          VM_CASE(delete_prop): {
            const value base = pop();
            stack.push_back(value::boolean(
                base.is_object() &&
                base.as_object()->erase(
                    fn.consts[static_cast<std::size_t>(insp->a)].as_string())));
            VM_NEXT;
          }
          VM_CASE(delete_index): {
            const value idx = pop();
            const value base = pop();
            stack.push_back(value::boolean(base.is_object() &&
                                           base.as_object()->erase(idx.to_string())));
            VM_NEXT;
          }
          VM_CASE(update_prop): {
            const value base = pop();
            const std::string& name =
                fn.consts[static_cast<std::size_t>(insp->a)].as_string();
            const double delta = (insp->b & 2) != 0 ? -1.0 : 1.0;
            double old_value = 0.0;
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(insp->c)];
              if (value* cached = ic_probe(ctx_, ic, *o)) {
                old_value = cached->to_number();
                ctx_.charge_object(*o, 32 + name.size());
                *cached = value::number(old_value + delta);
              } else {
                old_value = host_.get_property(base, name, insp->line).to_number();
                host_.set_property(base, name, value::number(old_value + delta), insp->line);
                ic_fill(ic, *o, o->own_index(name));
              }
            } else {
              old_value = host_.get_property(base, name, insp->line).to_number();
              host_.set_property(base, name, value::number(old_value + delta), insp->line);
            }
            stack.push_back(
                value::number((insp->b & 1) != 0 ? old_value + delta : old_value));
            VM_NEXT;
          }
          VM_CASE(update_index): {
            const value idx = pop();
            const value base = pop();
            const double delta = (insp->b & 2) != 0 ? -1.0 : 1.0;
            double old_value = 0.0;
            if (base.is_object() && base.as_object()->kind == object_kind::array &&
                idx.is_number()) {
              const auto& obj = base.as_object();
              const auto i = static_cast<std::size_t>(idx.as_number());
              if (i >= obj->elements.size()) {
                host_.runtime_fail("array index out of range", insp->line);
              }
              old_value = obj->elements[i].to_number();
              obj->elements[i] = value::number(old_value + delta);
            } else {
              const std::string key = idx.to_string();
              old_value = host_.get_property(base, key, insp->line).to_number();
              host_.set_property(base, key, value::number(old_value + delta), insp->line);
            }
            stack.push_back(
                value::number((insp->b & 1) != 0 ? old_value + delta : old_value));
            VM_NEXT;
          }
          VM_CASE(keys): {
            const value target = pop();
            stack.push_back(forin_keys(target));
            VM_NEXT;
          }
          VM_CASE(forin_next): {
            // The compiler guarantees slots[b] is the engine-built key array
            // and slots[c] the numeric cursor.
            const auto& arr = slots[static_cast<std::size_t>(insp->b)].as_object();
            value& cursor = slots[static_cast<std::size_t>(insp->c)];
            const auto i = static_cast<std::size_t>(cursor.as_number());
            if (i >= arr->elements.size()) {
              ip = static_cast<std::size_t>(insp->a);
            } else {
              stack.push_back(arr->elements[i]);
              cursor = value::number(static_cast<double>(i + 1));
              forin_guess_ = i;  // `table[k]` in the body sits at this index
            }
            VM_NEXT;
          }

          VM_CASE(binary): {
            const value r = pop();
            const value l = pop();
            stack.push_back(
                apply_binop(ctx_, static_cast<binop>(insp->a), l, r, insp->line));
            VM_NEXT;
          }
          VM_CASE(compound): {
            const value r = pop();
            const value l = pop();
            stack.push_back(
                apply_compound_binop(ctx_, static_cast<binop>(insp->a), l, r, insp->line));
            VM_NEXT;
          }
          VM_CASE(binary_ll):
            stack.push_back(apply_binop(ctx_, static_cast<binop>(insp->a),
                                        slots[static_cast<std::size_t>(insp->b)],
                                        slots[static_cast<std::size_t>(insp->c)], insp->line));
            VM_NEXT;
          VM_CASE(binary_lc):
            stack.push_back(apply_binop(ctx_, static_cast<binop>(insp->a),
                                        slots[static_cast<std::size_t>(insp->b)],
                                        fn.consts[static_cast<std::size_t>(insp->c)],
                                        insp->line));
            VM_NEXT;
          VM_CASE(binary_cl):
            stack.push_back(apply_binop(ctx_, static_cast<binop>(insp->a),
                                        fn.consts[static_cast<std::size_t>(insp->b)],
                                        slots[static_cast<std::size_t>(insp->c)], insp->line));
            VM_NEXT;
          VM_CASE(binary_sl): {
            value result =
                apply_binop(ctx_, static_cast<binop>(insp->a), stack.back(),
                            slots[static_cast<std::size_t>(insp->b)], insp->line);
            stack.back() = std::move(result);
            VM_NEXT;
          }
          VM_CASE(binary_sc): {
            value result =
                apply_binop(ctx_, static_cast<binop>(insp->a), stack.back(),
                            fn.consts[static_cast<std::size_t>(insp->b)], insp->line);
            stack.back() = std::move(result);
            VM_NEXT;
          }
          VM_CASE(binary_ls): {
            value result =
                apply_binop(ctx_, static_cast<binop>(insp->a),
                            slots[static_cast<std::size_t>(insp->b)], stack.back(), insp->line);
            stack.back() = std::move(result);
            VM_NEXT;
          }
          VM_CASE(not_op):
            stack.back() = value::boolean(!stack.back().truthy());
            VM_NEXT;
          VM_CASE(negate):
            stack.back() = value::number(-stack.back().to_number());
            VM_NEXT;
          VM_CASE(to_number):
            stack.back() = value::number(stack.back().to_number());
            VM_NEXT;
          VM_CASE(bit_not):
            stack.back() = value::number(static_cast<double>(
                ~static_cast<std::int32_t>(op_to_int32(stack.back().to_number()))));
            VM_NEXT;
          VM_CASE(typeof_op):
            stack.back() = value::string(stack.back().type_name());
            VM_NEXT;

          VM_CASE(jump):
            ip = static_cast<std::size_t>(insp->a);
            VM_NEXT;
          VM_CASE(jump_if_false):
            if (!pop().truthy()) ip = static_cast<std::size_t>(insp->a);
            VM_NEXT;
          VM_CASE(jump_if_true):
            if (pop().truthy()) ip = static_cast<std::size_t>(insp->a);
            VM_NEXT;
          VM_CASE(jump_if_false_keep):
            if (!stack.back().truthy()) {
              ip = static_cast<std::size_t>(insp->a);
            } else {
              stack.pop_back();
            }
            VM_NEXT;
          VM_CASE(jump_if_true_keep):
            if (stack.back().truthy()) {
              ip = static_cast<std::size_t>(insp->a);
            } else {
              stack.pop_back();
            }
            VM_NEXT;
          VM_CASE(loop_back):
            flush_fuel(insp->line);
            ip = static_cast<std::size_t>(insp->a);
            VM_NEXT;

          VM_CASE(check_ctor):
            if (!stack.back().is_object() || !stack.back().as_object()->callable()) {
              host_.runtime_fail("'new' applied to a non-function", insp->line);
            }
            VM_NEXT;

          VM_CASE(call):
          VM_CASE(call_method):
          VM_CASE(call_new): {
            const auto argc = static_cast<std::size_t>(insp->a);
            const std::size_t args_base = stack.size() - argc;
            // The callee consumes its arguments directly from this frame's
            // stack segment (it moves the values out); no per-call argument
            // vector exists anymore. The segment stays valid for the whole
            // call because the callee runs on its own arena frame.
            const std::span<value> cargs(stack.data() + args_base, argc);
            value result;
            flush_fuel(insp->line);
            if (insp->op == opcode::call) {
              value callee = std::move(stack[args_base - 1]);
              result = do_call(std::move(callee), value::undefined(), cargs, insp->line);
              stack.resize(args_base - 1);
            } else if (insp->op == opcode::call_method) {
              value callee = std::move(stack[args_base - 1]);
              result = do_call(std::move(callee), stack[args_base - 2], cargs, insp->line);
              stack.resize(args_base - 2);
            } else {
              value callee = std::move(stack[args_base - 1]);
              result = do_new(std::move(callee), cargs, insp->line);
              stack.resize(args_base - 1);
            }
            stack.push_back(std::move(result));
            VM_NEXT;
          }

          VM_CASE(ret): {
            flush_fuel(insp->line);
            return pop();
          }
          VM_CASE(ret_undefined):
            flush_fuel(insp->line);
            return value::undefined();

          VM_CASE(push_handler):
            handlers.push_back(vm_handler{static_cast<std::size_t>(insp->a), stack.size()});
            VM_NEXT;
          VM_CASE(pop_handler):
            handlers.pop_back();
            VM_NEXT;
          VM_CASE(throw_op): {
            if (insp->a == 1) {
              // Engine-level error compiled in place (illegal break/return):
              // not catchable by script code.
              const value msg = pop();
              host_.runtime_fail(msg.to_string(), insp->line);
            }
            value v = pop();
            flush_fuel(insp->line);
            throw thrown_value{std::move(v)};
          }

          // --- fused superinstructions ------------------------------------
          // Each handler reads its second half from the stream (`op2`),
          // advances past it, and charges its fuel with ++fuel, so the fused
          // program burns exactly the ops budget of the unfused one (the
          // determinism digest cannot tell them apart). The intermediate
          // value the unfused pair would push-then-pop never touches the
          // stack, which also means the stack state at every possible throw
          // point matches the unfused program's.
          VM_CASE(load_local_get_prop): {
            const bc_instr& op2 = code_base[ip++];
            ++fuel;
            const value base = slots[static_cast<std::size_t>(insp->a)];
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(op2.b)];
              if (const value* cached = ic_probe(ctx_, ic, *o)) {
                stack.push_back(*cached);
                VM_NEXT;
              }
              const std::string& name =
                  fn.consts[static_cast<std::size_t>(op2.a)].as_string();
              value v = host_.get_property(base, name, op2.line);
              ic_fill(ic, *o, o->own_index(name));
              stack.push_back(std::move(v));
              VM_NEXT;
            }
            stack.push_back(host_.get_property(
                base, fn.consts[static_cast<std::size_t>(op2.a)].as_string(), op2.line));
            VM_NEXT;
          }
          VM_CASE(load_global_get_prop): {
            const bc_instr& op2 = code_base[ip++];
            ++fuel;
            object* const g = global_obj;
            value base;
            {
              ic_entry& gic = ics[static_cast<std::size_t>(insp->b)];
              if (const value* v = ic_probe(ctx_, gic, *g)) {
                base = *v;
              } else {
                const std::string& gname =
                    fn.consts[static_cast<std::size_t>(insp->a)].as_string();
                const int idx = g->own_index(gname);
                if (idx < 0) {
                  host_.runtime_fail("'" + gname + "' is not defined", insp->line);
                }
                ic_fill(gic, *g, idx);
                base = g->props[static_cast<std::size_t>(idx)].val;
              }
            }
            if (base.is_object() && ic_cacheable(*base.as_object())) {
              object* o = base.as_object().get();
              ic_entry& ic = ics[static_cast<std::size_t>(op2.b)];
              if (const value* cached = ic_probe(ctx_, ic, *o)) {
                stack.push_back(*cached);
                VM_NEXT;
              }
              const std::string& name =
                  fn.consts[static_cast<std::size_t>(op2.a)].as_string();
              value v = host_.get_property(base, name, op2.line);
              ic_fill(ic, *o, o->own_index(name));
              stack.push_back(std::move(v));
              VM_NEXT;
            }
            stack.push_back(host_.get_property(
                base, fn.consts[static_cast<std::size_t>(op2.a)].as_string(), op2.line));
            VM_NEXT;
          }
          VM_CASE(load_local_load_local): {
            const bc_instr& op2 = code_base[ip++];
            ++fuel;
            stack.push_back(slots[static_cast<std::size_t>(insp->a)]);
            stack.push_back(slots[static_cast<std::size_t>(op2.a)]);
            VM_NEXT;
          }
          VM_CASE(binary_lc_jump_if_false): {
            const bc_instr& op2 = code_base[ip++];
            ++fuel;
            const value r = apply_binop(ctx_, static_cast<binop>(insp->a),
                                        slots[static_cast<std::size_t>(insp->b)],
                                        fn.consts[static_cast<std::size_t>(insp->c)],
                                        insp->line);
            if (!r.truthy()) ip = static_cast<std::size_t>(op2.a);
            VM_NEXT;
          }
          VM_CASE(binary_ll_jump_if_false): {
            const bc_instr& op2 = code_base[ip++];
            ++fuel;
            const value r = apply_binop(ctx_, static_cast<binop>(insp->a),
                                        slots[static_cast<std::size_t>(insp->b)],
                                        slots[static_cast<std::size_t>(insp->c)], insp->line);
            if (!r.truthy()) ip = static_cast<std::size_t>(op2.a);
            VM_NEXT;
          }
      VM_DISPATCH_END
    } catch (thrown_value& t) {
      if (handlers.empty()) throw;
      const vm_handler h = handlers.back();
      handlers.pop_back();
      stack.resize(h.stack_depth);
      stack.push_back(std::move(t.v));
      ip = h.ip;
    }
  }
}

}  // namespace

void run_program(context& ctx, const compiled_program_ptr& prog) {
  machine m(ctx);
  try {
    (void)m.invoke(prog->top, nullptr, value::undefined(), {}, 0);
  } catch (const thrown_value& t) {
    throw script_error(script_error_kind::thrown,
                       prog->name + ": uncaught exception: " + t.v.to_string());
  }
}

value call_compiled(context& ctx, const object_ptr& fn, const value& this_value,
                    std::vector<value> args, int line) {
  machine m(ctx);
  return m.invoke(fn->code, &fn->captures, this_value, std::span<value>(args), line);
}

void eval_script_bytecode(context& ctx, std::string_view source, std::string_view name) {
  const program_ptr prog = parse_program(source, name);
  const compiled_program_ptr compiled = compile_program(prog);
  run_program(ctx, compiled);
}

}  // namespace nakika::js
