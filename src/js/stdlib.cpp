#include "js/stdlib.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "js/errors.hpp"
#include "js/interpreter.hpp"
#include "util/glob.hpp"
#include "util/strings.hpp"

namespace nakika::js {

value arg_or_undefined(std::span<value> args, std::size_t i) {
  return i < args.size() ? args[i] : value::undefined();
}

void throw_js(const std::string& message) { throw thrown_value{value::string(message)}; }

std::string require_string(std::span<value> args, std::size_t i, const char* who) {
  if (i >= args.size() || !args[i].is_string()) {
    throw_js(std::string(who) + ": argument " + std::to_string(i + 1) + " must be a string");
  }
  return args[i].as_string();
}

double require_number(std::span<value> args, std::size_t i, const char* who) {
  if (i >= args.size() || !args[i].is_number()) {
    throw_js(std::string(who) + ": argument " + std::to_string(i + 1) + " must be a number");
  }
  return args[i].as_number();
}

// ----- JSON -------------------------------------------------------------------

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void json_stringify_into(std::string& out, const value& v, int depth) {
  if (depth > 64) throw_js("JSON.stringify: structure too deep");
  if (v.is_undefined() || v.is_null()) {
    out += "null";
  } else if (v.is_boolean()) {
    out += v.as_boolean() ? "true" : "false";
  } else if (v.is_number()) {
    const double d = v.as_number();
    out += std::isnan(d) || std::isinf(d) ? "null" : v.to_string();
  } else if (v.is_string()) {
    json_escape_into(out, v.as_string());
  } else {
    const auto& obj = v.as_object();
    if (obj->kind == object_kind::array) {
      out.push_back('[');
      for (std::size_t i = 0; i < obj->elements.size(); ++i) {
        if (i > 0) out.push_back(',');
        json_stringify_into(out, obj->elements[i], depth + 1);
      }
      out.push_back(']');
    } else if (obj->kind == object_kind::byte_array) {
      json_escape_into(out, obj->bytes.str());
    } else if (obj->callable()) {
      out += "null";
    } else {
      out.push_back('{');
      bool first = true;
      for (const auto& p : obj->props) {
        if (p.val.is_undefined() || (p.val.is_object() && p.val.as_object()->callable())) {
          continue;
        }
        if (!first) out.push_back(',');
        first = false;
        json_escape_into(out, p.key);
        out.push_back(':');
        json_stringify_into(out, p.val, depth + 1);
      }
      out.push_back('}');
    }
  }
}

class json_reader {
 public:
  json_reader(context& ctx, std::string_view text) : ctx_(ctx), text_(text) {}

  value parse() {
    const value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw_js("JSON.parse: trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw_js("JSON.parse: unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_).starts_with(lit)) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return value::string(parse_string());
    if (consume_literal("true")) return value::boolean(true);
    if (consume_literal("false")) return value::boolean(false);
    if (consume_literal("null")) return value::null();
    return parse_number();
  }

  value parse_object() {
    ++pos_;  // '{'
    auto obj = ctx_.make_object();
    if (peek() == '}') {
      ++pos_;
      return value::object(obj);
    }
    while (true) {
      if (peek() != '"') throw_js("JSON.parse: expected string key");
      std::string key = parse_string();
      if (peek() != ':') throw_js("JSON.parse: expected ':'");
      ++pos_;
      obj->set(key, parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return value::object(obj);
      }
      throw_js("JSON.parse: expected ',' or '}'");
    }
  }

  value parse_array() {
    ++pos_;  // '['
    auto arr = ctx_.make_array();
    if (peek() == ']') {
      ++pos_;
      return value::object(arr);
    }
    while (true) {
      arr->elements.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return value::object(arr);
      }
      throw_js("JSON.parse: expected ',' or ']'");
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw_js("JSON.parse: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) throw_js("JSON.parse: bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case '/': out.push_back('/'); break;
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw_js("JSON.parse: bad \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          char* end = nullptr;
          const long cp = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) throw_js("JSON.parse: bad \\u escape");
          // UTF-8 encode the BMP code point.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          throw_js("JSON.parse: bad escape");
      }
    }
  }

  value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const auto d = util::parse_double(text_.substr(start, pos_ - start));
    if (!d) throw_js("JSON.parse: malformed number");
    return value::number(*d);
  }

  context& ctx_;
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_stringify(const value& v) {
  std::string out;
  json_stringify_into(out, v, 0);
  return out;
}

value json_parse(context& ctx, std::string_view text) {
  return json_reader(ctx, text).parse();
}

// ----- stdlib installation ------------------------------------------------------

namespace {

void install_string_proto(context& ctx) {
  auto proto = make_plain_object();

  auto self_string = [](interpreter&, const value& self) -> std::string {
    if (!self.is_string()) throw_js("String method called on non-string");
    return self.as_string();
  };

  proto->set("charAt",
             value::object(make_native_function(
                 "charAt", [self_string](interpreter& in, const value& self,
                                         std::span<value> args) -> value {
                   const std::string s = self_string(in, self);
                   const auto i = static_cast<std::int64_t>(
                       arg_or_undefined(args, 0).to_number());
                   if (i < 0 || static_cast<std::size_t>(i) >= s.size()) {
                     return value::string("");
                   }
                   return value::string(std::string(1, s[static_cast<std::size_t>(i)]));
                 })));
  proto->set("charCodeAt",
             value::object(make_native_function(
                 "charCodeAt", [self_string](interpreter& in, const value& self,
                                             std::span<value> args) -> value {
                   const std::string s = self_string(in, self);
                   const auto i = static_cast<std::int64_t>(
                       arg_or_undefined(args, 0).to_number());
                   if (i < 0 || static_cast<std::size_t>(i) >= s.size()) {
                     return value::number(std::nan(""));
                   }
                   return value::number(
                       static_cast<unsigned char>(s[static_cast<std::size_t>(i)]));
                 })));
  proto->set("indexOf",
             value::object(make_native_function(
                 "indexOf", [self_string](interpreter& in, const value& self,
                                          std::span<value> args) -> value {
                   const std::string s = self_string(in, self);
                   const std::string needle = arg_or_undefined(args, 0).to_string();
                   std::size_t from = 0;
                   if (args.size() > 1) {
                     const double d = args[1].to_number();
                     if (d > 0) from = static_cast<std::size_t>(d);
                   }
                   const std::size_t pos = from <= s.size() ? s.find(needle, from)
                                                            : std::string::npos;
                   return value::number(pos == std::string::npos
                                            ? -1.0
                                            : static_cast<double>(pos));
                 })));
  proto->set("lastIndexOf",
             value::object(make_native_function(
                 "lastIndexOf", [self_string](interpreter& in, const value& self,
                                              std::span<value> args) -> value {
                   const std::string s = self_string(in, self);
                   const std::string needle = arg_or_undefined(args, 0).to_string();
                   const std::size_t pos = s.rfind(needle);
                   return value::number(pos == std::string::npos
                                            ? -1.0
                                            : static_cast<double>(pos));
                 })));
  proto->set("substring",
             value::object(make_native_function(
                 "substring", [self_string](interpreter& in, const value& self,
                                            std::span<value> args) -> value {
                   const std::string s = self_string(in, self);
                   auto clamp_index = [&](double d) -> std::size_t {
                     if (std::isnan(d) || d < 0) return 0;
                     return std::min(static_cast<std::size_t>(d), s.size());
                   };
                   std::size_t a = clamp_index(arg_or_undefined(args, 0).to_number());
                   std::size_t b = args.size() > 1
                                       ? clamp_index(args[1].to_number())
                                       : s.size();
                   if (a > b) std::swap(a, b);
                   return value::string(s.substr(a, b - a));
                 })));
  proto->set("slice",
             value::object(make_native_function(
                 "slice", [self_string](interpreter& in, const value& self,
                                        std::span<value> args) -> value {
                   const std::string s = self_string(in, self);
                   auto resolve = [&](double d, std::size_t fallback) -> std::size_t {
                     if (std::isnan(d)) return fallback;
                     if (d < 0) {
                       const double adj = static_cast<double>(s.size()) + d;
                       return adj < 0 ? 0 : static_cast<std::size_t>(adj);
                     }
                     return std::min(static_cast<std::size_t>(d), s.size());
                   };
                   const std::size_t a =
                       args.empty() ? 0 : resolve(args[0].to_number(), 0);
                   const std::size_t b = args.size() > 1
                                             ? resolve(args[1].to_number(), s.size())
                                             : s.size();
                   return value::string(a < b ? s.substr(a, b - a) : "");
                 })));
  proto->set("split",
             value::object(make_native_function(
                 "split", [self_string](interpreter& in, const value& self,
                                        std::span<value> args) -> value {
                   const std::string s = self_string(in, self);
                   auto arr = in.ctx().make_array();
                   if (args.empty() || !args[0].is_string()) {
                     arr->elements.push_back(value::string(s));
                     return value::object(arr);
                   }
                   const std::string& sep = args[0].as_string();
                   if (sep.empty()) {
                     for (char c : s) arr->elements.push_back(value::string(std::string(1, c)));
                     return value::object(arr);
                   }
                   std::size_t start = 0;
                   while (true) {
                     const std::size_t pos = s.find(sep, start);
                     if (pos == std::string::npos) {
                       arr->elements.push_back(value::string(s.substr(start)));
                       break;
                     }
                     arr->elements.push_back(value::string(s.substr(start, pos - start)));
                     start = pos + sep.size();
                   }
                   return value::object(arr);
                 })));
  proto->set("replace",
             value::object(make_native_function(
                 "replace", [self_string](interpreter& in, const value& self,
                                          std::span<value> args) -> value {
                   const std::string s = self_string(in, self);
                   const std::string from = require_string(args, 0, "replace");
                   const std::string to = require_string(args, 1, "replace");
                   // First occurrence only, like JS with a string pattern.
                   const std::size_t pos = s.find(from);
                   if (pos == std::string::npos || from.empty()) return value::string(s);
                   std::string out = s.substr(0, pos) + to + s.substr(pos + from.size());
                   in.ctx().charge_transient(out.size());
                   return value::string(std::move(out));
                 })));
  proto->set("replaceAll",
             value::object(make_native_function(
                 "replaceAll", [self_string](interpreter& in, const value& self,
                                             std::span<value> args) -> value {
                   const std::string s = self_string(in, self);
                   const std::string from = require_string(args, 0, "replaceAll");
                   const std::string to = require_string(args, 1, "replaceAll");
                   if (from.empty()) return value::string(s);
                   std::string out = util::replace_all(s, from, to);
                   in.ctx().charge_transient(out.size());
                   return value::string(std::move(out));
                 })));
  proto->set("toLowerCase",
             value::object(make_native_function(
                 "toLowerCase",
                 [self_string](interpreter& in, const value& self, std::span<value>) -> value {
                   return value::string(util::to_lower(self_string(in, self)));
                 })));
  proto->set("toUpperCase",
             value::object(make_native_function(
                 "toUpperCase",
                 [self_string](interpreter& in, const value& self, std::span<value>) -> value {
                   return value::string(util::to_upper(self_string(in, self)));
                 })));
  proto->set("trim", value::object(make_native_function(
                         "trim", [self_string](interpreter& in, const value& self,
                                               std::span<value>) -> value {
                           return value::string(std::string(util::trim(self_string(in, self))));
                         })));
  proto->set("startsWith",
             value::object(make_native_function(
                 "startsWith", [self_string](interpreter& in, const value& self,
                                             std::span<value> args) -> value {
                   return value::boolean(self_string(in, self).starts_with(
                       require_string(args, 0, "startsWith")));
                 })));
  proto->set("endsWith",
             value::object(make_native_function(
                 "endsWith", [self_string](interpreter& in, const value& self,
                                           std::span<value> args) -> value {
                   return value::boolean(self_string(in, self).ends_with(
                       require_string(args, 0, "endsWith")));
                 })));
  proto->set("concat",
             value::object(make_native_function(
                 "concat", [self_string](interpreter& in, const value& self,
                                         std::span<value> args) -> value {
                   std::string out = self_string(in, self);
                   for (const value& a : args) out += a.to_string();
                   in.ctx().charge_transient(out.size());
                   return value::string(std::move(out));
                 })));
  proto->set("toString",
             value::object(make_native_function(
                 "toString", [](interpreter&, const value& self, std::span<value>) -> value {
                   return value::string(self.to_string());
                 })));

  ctx.string_proto = proto;
}

void install_array_proto(context& ctx) {
  auto proto = make_plain_object();

  auto self_array = [](const value& self) -> object_ptr {
    if (!self.is_object() || self.as_object()->kind != object_kind::array) {
      throw_js("Array method called on non-array");
    }
    return self.as_object();
  };

  proto->set("push", value::object(make_native_function(
                         "push", [self_array](interpreter& in, const value& self,
                                              std::span<value> args) -> value {
                           auto arr = self_array(self);
                           in.ctx().charge_object(*arr, args.size() * 16);
                           for (value& a : args) arr->elements.push_back(std::move(a));
                           return value::number(static_cast<double>(arr->elements.size()));
                         })));
  proto->set("pop", value::object(make_native_function(
                        "pop", [self_array](interpreter&, const value& self,
                                            std::span<value>) -> value {
                          auto arr = self_array(self);
                          if (arr->elements.empty()) return value::undefined();
                          value last = std::move(arr->elements.back());
                          arr->elements.pop_back();
                          return last;
                        })));
  proto->set("shift", value::object(make_native_function(
                          "shift", [self_array](interpreter&, const value& self,
                                                std::span<value>) -> value {
                            auto arr = self_array(self);
                            if (arr->elements.empty()) return value::undefined();
                            value first = std::move(arr->elements.front());
                            arr->elements.erase(arr->elements.begin());
                            return first;
                          })));
  proto->set("unshift",
             value::object(make_native_function(
                 "unshift", [self_array](interpreter& in, const value& self,
                                         std::span<value> args) -> value {
                   auto arr = self_array(self);
                   in.ctx().charge_object(*arr, args.size() * 16);
                   arr->elements.insert(arr->elements.begin(), args.begin(), args.end());
                   return value::number(static_cast<double>(arr->elements.size()));
                 })));
  proto->set("join", value::object(make_native_function(
                         "join", [self_array](interpreter& in, const value& self,
                                              std::span<value> args) -> value {
                           auto arr = self_array(self);
                           const std::string sep =
                               args.empty() ? "," : args[0].to_string();
                           std::string out;
                           for (std::size_t i = 0; i < arr->elements.size(); ++i) {
                             if (i > 0) out += sep;
                             if (!arr->elements[i].is_nullish()) {
                               out += arr->elements[i].to_string();
                             }
                           }
                           in.ctx().charge_transient(out.size());
                           return value::string(std::move(out));
                         })));
  proto->set("slice",
             value::object(make_native_function(
                 "slice", [self_array](interpreter& in, const value& self,
                                       std::span<value> args) -> value {
                   auto arr = self_array(self);
                   const std::size_t n = arr->elements.size();
                   auto resolve = [&](double d, std::size_t fallback) -> std::size_t {
                     if (std::isnan(d)) return fallback;
                     if (d < 0) {
                       const double adj = static_cast<double>(n) + d;
                       return adj < 0 ? 0 : static_cast<std::size_t>(adj);
                     }
                     return std::min(static_cast<std::size_t>(d), n);
                   };
                   const std::size_t a = args.empty() ? 0 : resolve(args[0].to_number(), 0);
                   const std::size_t b =
                       args.size() > 1 ? resolve(args[1].to_number(), n) : n;
                   auto out = in.ctx().make_array();
                   for (std::size_t i = a; i < b; ++i) {
                     out->elements.push_back(arr->elements[i]);
                   }
                   return value::object(out);
                 })));
  proto->set("concat",
             value::object(make_native_function(
                 "concat", [self_array](interpreter& in, const value& self,
                                        std::span<value> args) -> value {
                   auto arr = self_array(self);
                   auto out = in.ctx().make_array();
                   out->elements = arr->elements;
                   for (const value& a : args) {
                     if (a.is_object() && a.as_object()->kind == object_kind::array) {
                       for (const value& e : a.as_object()->elements) {
                         out->elements.push_back(e);
                       }
                     } else {
                       out->elements.push_back(a);
                     }
                   }
                   return value::object(out);
                 })));
  proto->set("indexOf",
             value::object(make_native_function(
                 "indexOf", [self_array](interpreter&, const value& self,
                                         std::span<value> args) -> value {
                   auto arr = self_array(self);
                   const value needle = arg_or_undefined(args, 0);
                   for (std::size_t i = 0; i < arr->elements.size(); ++i) {
                     if (arr->elements[i].strict_equals(needle)) {
                       return value::number(static_cast<double>(i));
                     }
                   }
                   return value::number(-1.0);
                 })));
  proto->set("sort",
             value::object(make_native_function(
                 "sort", [self_array](interpreter& in, const value& self,
                                      std::span<value> args) -> value {
                   auto arr = self_array(self);
                   if (!args.empty() && args[0].is_object() && args[0].as_object()->callable()) {
                     const value cmp = args[0];
                     std::stable_sort(arr->elements.begin(), arr->elements.end(),
                                      [&](const value& a, const value& b) {
                                        const value r = in.call(cmp, value::undefined(), {a, b});
                                        return r.to_number() < 0;
                                      });
                   } else {
                     std::stable_sort(arr->elements.begin(), arr->elements.end(),
                                      [](const value& a, const value& b) {
                                        return a.to_string() < b.to_string();
                                      });
                   }
                   return self;
                 })));
  proto->set("reverse", value::object(make_native_function(
                            "reverse", [self_array](interpreter&, const value& self,
                                                    std::span<value>) -> value {
                              auto arr = self_array(self);
                              std::reverse(arr->elements.begin(), arr->elements.end());
                              return self;
                            })));
  proto->set("toString",
             value::object(make_native_function(
                 "toString", [](interpreter&, const value& self, std::span<value>) -> value {
                   return value::string(self.to_string());
                 })));

  ctx.array_proto = proto;
}

void install_number_proto(context& ctx) {
  auto proto = make_plain_object();
  proto->set("toFixed",
             value::object(make_native_function(
                 "toFixed", [](interpreter&, const value& self, std::span<value> args) -> value {
                   if (!self.is_number()) throw_js("toFixed called on non-number");
                   const int digits = args.empty()
                                          ? 0
                                          : static_cast<int>(args[0].to_number());
                   char buf[64];
                   std::snprintf(buf, sizeof(buf), "%.*f",
                                 std::clamp(digits, 0, 20), self.as_number());
                   return value::string(buf);
                 })));
  proto->set("toString",
             value::object(make_native_function(
                 "toString", [](interpreter&, const value& self, std::span<value>) -> value {
                   return value::string(self.to_string());
                 })));
  ctx.number_proto = proto;
}

void install_byte_array(context& ctx) {
  auto proto = make_plain_object();

  auto self_bytes = [](const value& self) -> object_ptr {
    if (!self.is_object() || self.as_object()->kind != object_kind::byte_array) {
      throw_js("ByteArray method called on non-ByteArray");
    }
    return self.as_object();
  };

  proto->set("append",
             value::object(make_native_function(
                 "append", [self_bytes](interpreter& in, const value& self,
                                        std::span<value> args) -> value {
                   auto ba = self_bytes(self);
                   const value a = arg_or_undefined(args, 0);
                   if (a.is_object() && a.as_object()->kind == object_kind::byte_array) {
                     in.ctx().charge_object(*ba, a.as_object()->bytes.size());
                     ba->bytes.append(a.as_object()->bytes);
                   } else if (a.is_string()) {
                     in.ctx().charge_object(*ba, a.as_string().size());
                     ba->bytes.append(a.as_string());
                   } else if (a.is_number()) {
                     in.ctx().charge_object(*ba, 1);
                     ba->bytes.push_back(static_cast<std::uint8_t>(
                         static_cast<std::int64_t>(a.as_number()) & 0xff));
                   } else if (!a.is_nullish()) {
                     throw_js("ByteArray.append: unsupported argument");
                   }
                   return self;
                 })));
  proto->set("slice",
             value::object(make_native_function(
                 "slice", [self_bytes](interpreter& in, const value& self,
                                       std::span<value> args) -> value {
                   auto ba = self_bytes(self);
                   const auto start = static_cast<std::size_t>(
                       std::max(0.0, arg_or_undefined(args, 0).to_number()));
                   const std::size_t end =
                       args.size() > 1
                           ? static_cast<std::size_t>(std::max(0.0, args[1].to_number()))
                           : ba->bytes.size();
                   auto out = in.ctx().make_byte_array();
                   if (start < ba->bytes.size() && start < end) {
                     out->bytes = ba->bytes.slice(start, end - start);
                     in.ctx().charge_object(*out, out->bytes.size());
                   }
                   return value::object(out);
                 })));
  proto->set("toString",
             value::object(make_native_function(
                 "toString", [self_bytes](interpreter& in, const value& self,
                                          std::span<value>) -> value {
                   auto ba = self_bytes(self);
                   in.ctx().charge_transient(ba->bytes.size());
                   return value::string(ba->bytes.str());
                 })));

  ctx.byte_array_proto = proto;

  ctx.global()->set(
      "ByteArray",
      value::object(make_native_function(
          "ByteArray", [](interpreter& in, const value&, std::span<value> args) -> value {
            auto ba = in.ctx().make_byte_array();
            if (!args.empty() && args[0].is_string()) {
              in.ctx().charge_object(*ba, args[0].as_string().size());
              ba->bytes.append(args[0].as_string());
            }
            return value::object(ba);
          })));
}

void install_math(context& ctx) {
  auto math = make_plain_object();
  auto unary = [](const char* name, double (*fn)(double)) {
    return value::object(make_native_function(
        name, [fn](interpreter&, const value&, std::span<value> args) -> value {
          return value::number(fn(arg_or_undefined(args, 0).to_number()));
        }));
  };
  math->set("floor", unary("floor", std::floor));
  math->set("ceil", unary("ceil", std::ceil));
  math->set("round", unary("round", std::round));
  math->set("abs", unary("abs", std::fabs));
  math->set("sqrt", unary("sqrt", std::sqrt));
  math->set("log", unary("log", std::log));
  math->set("exp", unary("exp", std::exp));
  math->set("min", value::object(make_native_function(
                       "min", [](interpreter&, const value&, std::span<value> args) -> value {
                         double best = std::numeric_limits<double>::infinity();
                         for (const value& a : args) best = std::min(best, a.to_number());
                         return value::number(best);
                       })));
  math->set("max", value::object(make_native_function(
                       "max", [](interpreter&, const value&, std::span<value> args) -> value {
                         double best = -std::numeric_limits<double>::infinity();
                         for (const value& a : args) best = std::max(best, a.to_number());
                         return value::number(best);
                       })));
  math->set("pow", value::object(make_native_function(
                       "pow", [](interpreter&, const value&, std::span<value> args) -> value {
                         return value::number(std::pow(arg_or_undefined(args, 0).to_number(),
                                                       arg_or_undefined(args, 1).to_number()));
                       })));
  math->set("random",
            value::object(make_native_function(
                "random", [](interpreter& in, const value&, std::span<value>) -> value {
                  return value::number(in.ctx().random().next_double());
                })));
  math->set("PI", value::number(3.141592653589793));
  ctx.global()->set("Math", value::object(math));
}

void install_json(context& ctx) {
  auto json = make_plain_object();
  json->set("stringify",
            value::object(make_native_function(
                "stringify", [](interpreter& in, const value&, std::span<value> args) -> value {
                  std::string out = json_stringify(arg_or_undefined(args, 0));
                  in.ctx().charge_transient(out.size());
                  return value::string(std::move(out));
                })));
  json->set("parse", value::object(make_native_function(
                         "parse", [](interpreter& in, const value&,
                                     std::span<value> args) -> value {
                           return json_parse(in.ctx(), require_string(args, 0, "JSON.parse"));
                         })));
  ctx.global()->set("JSON", value::object(json));
}

void install_regexp(context& ctx) {
  // RegExp objects wrap util::pattern. Exposed as a constructor with test(),
  // search(), and exec()-lite (index only) — enough for header predicates and
  // content scanning scripts.
  ctx.global()->set(
      "RegExp",
      value::object(make_native_function(
          "RegExp", [](interpreter& in, const value&, std::span<value> args) -> value {
            const std::string source = require_string(args, 0, "RegExp");
            auto compiled = std::make_shared<util::pattern>([&]() -> util::pattern {
              try {
                return util::pattern(source);
              } catch (const std::invalid_argument& e) {
                throw_js(std::string("RegExp: ") + e.what());
              }
            }());
            auto obj = in.ctx().make_object();
            obj->set("source", value::string(source));
            obj->set("test",
                     value::object(make_native_function(
                         "test", [compiled](interpreter&, const value&,
                                            std::span<value> args2) -> value {
                           return value::boolean(
                               compiled->search(require_string(args2, 0, "test")));
                         })));
            obj->set("search",
                     value::object(make_native_function(
                         "search", [compiled](interpreter&, const value&,
                                              std::span<value> args2) -> value {
                           const std::size_t pos =
                               compiled->find(require_string(args2, 0, "search"));
                           return value::number(pos == std::string::npos
                                                    ? -1.0
                                                    : static_cast<double>(pos));
                         })));
            return value::object(obj);
          })));
}

void install_globals(context& ctx) {
  auto& global = *ctx.global();

  global.set("parseInt",
             value::object(make_native_function(
                 "parseInt", [](interpreter&, const value&, std::span<value> args) -> value {
                   const std::string s = arg_or_undefined(args, 0).to_string();
                   const int base = args.size() > 1 && args[1].is_number()
                                        ? static_cast<int>(args[1].as_number())
                                        : 10;
                   char* end = nullptr;
                   const std::string t(util::trim(s));
                   const long long v = std::strtoll(t.c_str(), &end, base);
                   if (end == t.c_str()) return value::number(std::nan(""));
                   return value::number(static_cast<double>(v));
                 })));
  global.set("parseFloat",
             value::object(make_native_function(
                 "parseFloat", [](interpreter&, const value&, std::span<value> args) -> value {
                   const std::string s(util::trim(arg_or_undefined(args, 0).to_string()));
                   char* end = nullptr;
                   const double v = std::strtod(s.c_str(), &end);
                   if (end == s.c_str()) return value::number(std::nan(""));
                   return value::number(v);
                 })));
  global.set("isNaN", value::object(make_native_function(
                          "isNaN", [](interpreter&, const value&, std::span<value> args) -> value {
                            return value::boolean(
                                std::isnan(arg_or_undefined(args, 0).to_number()));
                          })));
  global.set("String",
             value::object(make_native_function(
                 "String", [](interpreter&, const value&, std::span<value> args) -> value {
                   return value::string(arg_or_undefined(args, 0).to_string());
                 })));
  global.set("Number",
             value::object(make_native_function(
                 "Number", [](interpreter&, const value&, std::span<value> args) -> value {
                   return value::number(arg_or_undefined(args, 0).to_number());
                 })));
  global.set("Boolean",
             value::object(make_native_function(
                 "Boolean", [](interpreter&, const value&, std::span<value> args) -> value {
                   return value::boolean(arg_or_undefined(args, 0).truthy());
                 })));

  auto object_ctor = make_native_function(
      "Object", [](interpreter& in, const value&, std::span<value>) -> value {
        return value::object(in.ctx().make_object());
      });
  object_ctor->set("keys",
                   value::object(make_native_function(
                       "keys", [](interpreter& in, const value&, std::span<value> args) -> value {
                         auto arr = in.ctx().make_array();
                         const value v = arg_or_undefined(args, 0);
                         if (v.is_object()) {
                           for (const auto& p : v.as_object()->props) {
                             arr->elements.push_back(value::string(p.key));
                           }
                         }
                         return value::object(arr);
                       })));
  global.set("Object", value::object(object_ctor));

  auto array_ctor = make_native_function(
      "Array", [](interpreter& in, const value&, std::span<value> args) -> value {
        auto arr = in.ctx().make_array();
        if (args.size() == 1 && args[0].is_number()) {
          arr->elements.resize(static_cast<std::size_t>(args[0].as_number()));
        } else {
          for (const value& a : args) arr->elements.push_back(a);
        }
        return value::object(arr);
      });
  global.set("Array", value::object(array_ctor));
}

}  // namespace

void install_stdlib(context& ctx) {
  ctx.object_proto = make_plain_object();
  ctx.function_proto = make_plain_object();
  install_string_proto(ctx);
  install_array_proto(ctx);
  install_number_proto(ctx);
  install_byte_array(ctx);
  install_math(ctx);
  install_json(ctx);
  install_regexp(ctx);
  install_globals(ctx);
}

}  // namespace nakika::js
