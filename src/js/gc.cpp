#include "js/gc.hpp"

#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "js/interpreter.hpp"
#include "js/shapes.hpp"

namespace nakika::js {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
// Bound on retained per-run pause samples; overflow folds into `seconds` only.
constexpr std::size_t max_pauses = 64;
}  // namespace

std::size_t gc_heap::watermark() const { return ctx_.limits().gc_watermark; }
std::size_t gc_heap::slice_budget() const {
  const std::size_t s = ctx_.limits().gc_slice;
  return s == 0 ? 512 : s;
}

void gc_heap::track_env_chain(const env_ptr& closure) {
  // Stop at the global scope (backed by the global object, never torn down)
  // and at environments already in the registry — their parents are too.
  for (environment* e = closure.get();
       e != nullptr && e->backing_ == nullptr && !e->gc_tracked_; e = e->parent_.get()) {
    e->gc_tracked_ = true;
    envs_.push_back(e->weak_from_this());
  }
}

void gc_heap::note_allocation() {
  ++allocs_since_cycle_;
  const std::size_t mark = watermark();
  if (mark != 0 && allocs_since_cycle_ >= mark) pending_ = true;
}

void gc_heap::note_pause(double seconds) {
  run_.seconds += seconds;
  if (run_.pauses.size() < max_pauses) run_.pauses.push_back(seconds);
}

void gc_heap::safepoint() {
  if (!pending_) return;
  const auto t0 = std::chrono::steady_clock::now();
  if (!compacting_) {
    compacting_ = true;
    scan_ = 0;
    keep_ = 0;
  }
  // Compaction slice: drop registry entries whose node already died by plain
  // reference counting. Bounded work per safepoint; the scan picks up where
  // it left off (entries appended mid-scan are reached before it finishes,
  // since it runs to the live end of the vector).
  std::size_t budget = slice_budget();
  while (scan_ < objects_.size() && budget != 0) {
    if (!objects_[scan_].expired()) {
      if (keep_ != scan_) objects_[keep_] = std::move(objects_[scan_]);
      ++keep_;
    }
    ++scan_;
    --budget;
  }
  if (scan_ < objects_.size()) {
    note_pause(seconds_since(t0));
    return;  // more slices to come; the kill flag is rechecked before each
  }
  objects_.resize(keep_);
  compacting_ = false;
  collect_cycle();
  note_pause(seconds_since(t0));
}

gc_cycle_result gc_heap::collect() {
  // Abandon any half-finished scan; collect_cycle compacts everything anyway.
  compacting_ = false;
  const auto t0 = std::chrono::steady_clock::now();
  const gc_cycle_result r = collect_cycle();
  note_pause(seconds_since(t0));
  return r;
}

gc_cycle_result gc_heap::collect_cycle() {
  const auto t0 = std::chrono::steady_clock::now();
  gc_cycle_result out;
  const std::size_t heap_before = *ctx_.heap_used_;

  // --- pin: lock every registry entry; expired ones compact away ----------
  std::vector<object_ptr> objs;
  objs.reserve(objects_.size());
  for (const auto& w : objects_) {
    if (object_ptr o = w.lock()) objs.push_back(std::move(o));
  }
  std::vector<env_ptr> envs;
  envs.reserve(envs_.size());
  for (const auto& w : envs_) {
    if (env_ptr e = w.lock()) envs.push_back(std::move(e));
  }
  // Cells may be registered more than once (re-captured by nested closures);
  // dedup by address now, while the pins keep every address stable.
  std::vector<std::shared_ptr<value>> cells;
  cells.reserve(cells_.size());
  {
    std::unordered_set<const value*> seen;
    for (const auto& w : cells_) {
      if (std::shared_ptr<value> c = w.lock()) {
        if (seen.insert(c.get()).second) cells.push_back(std::move(c));
      }
    }
  }

  // --- candidate index: objects, then envs, then cells ---------------------
  const std::size_t n_obj = objs.size();
  const std::size_t n_env = envs.size();
  const std::size_t n = n_obj + n_env + cells.size();
  std::unordered_map<const object*, std::uint32_t> oi(n_obj * 2 + 1);
  std::unordered_map<const environment*, std::uint32_t> ei(n_env * 2 + 1);
  std::unordered_map<const value*, std::uint32_t> ci(cells.size() * 2 + 1);
  for (std::size_t i = 0; i < n_obj; ++i) oi.emplace(objs[i].get(), static_cast<std::uint32_t>(i));
  for (std::size_t i = 0; i < n_env; ++i) {
    ei.emplace(envs[i].get(), static_cast<std::uint32_t>(n_obj + i));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ci.emplace(cells[i].get(), static_cast<std::uint32_t>(n_obj + n_env + i));
  }

  // Edge visitor: `fn(candidate_index)` for every candidate→candidate edge of
  // node `idx`, enumerating each owning shared_ptr exactly once (the edge
  // count below relies on that 1:1 correspondence). Moved-from VM stack slots
  // can leave null object_ptrs inside values — null-checked throughout.
  const auto visit_value = [&](const value& v, auto&& fn) {
    if (!v.is_object()) return;
    const object_ptr& o = v.as_object();
    if (o == nullptr) return;
    if (const auto it = oi.find(o.get()); it != oi.end()) fn(it->second);
  };
  const auto visit_edges = [&](std::size_t idx, auto&& fn) {
    if (idx < n_obj) {
      const object& o = *objs[idx];
      if (o.proto != nullptr) {
        if (const auto it = oi.find(o.proto.get()); it != oi.end()) fn(it->second);
      }
      for (const object::property& p : o.props) visit_value(p.val, fn);
      for (const value& v : o.elements) visit_value(v, fn);
      if (o.closure != nullptr) {
        if (const auto it = ei.find(o.closure.get()); it != ei.end()) fn(it->second);
      }
      for (const std::shared_ptr<value>& c : o.captures) {
        if (c == nullptr) continue;
        if (const auto it = ci.find(c.get()); it != ci.end()) fn(it->second);
      }
      // o.native (a std::function) is deliberately not traversed: anything it
      // captures merely looks externally referenced, which only keeps nodes.
    } else if (idx < n_obj + n_env) {
      const environment& e = *envs[idx - n_obj];
      if (e.parent_ != nullptr) {
        if (const auto it = ei.find(e.parent_.get()); it != ei.end()) fn(it->second);
      }
      for (const auto& slot : e.slots_) visit_value(slot.second, fn);
    } else {
      visit_value(*cells[idx - n_obj - n_env], fn);
    }
  };

  // --- trial deletion: subtract internal edges, then the remaining count is
  // external by construction ------------------------------------------------
  std::vector<std::uint32_t> internal(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    visit_edges(i, [&](std::uint32_t t) { ++internal[t]; });
  }
  std::vector<char> marked(n, 0);
  std::vector<std::uint32_t> work;
  const auto use_count = [&](std::size_t i) -> long {
    if (i < n_obj) return objs[i].use_count();
    if (i < n_obj + n_env) return envs[i - n_obj].use_count();
    return cells[i - n_obj - n_env].use_count();
  };
  for (std::size_t i = 0; i < n; ++i) {
    // One reference is our pin; internal edges can never exceed the rest
    // (every edge is a live shared_ptr), so this cannot go negative.
    if (use_count(i) - 1 - static_cast<long>(internal[i]) > 0) {
      marked[i] = 1;
      work.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!work.empty()) {
    const std::uint32_t i = work.back();
    work.pop_back();
    visit_edges(i, [&](std::uint32_t t) {
      if (marked[t] == 0) {
        marked[t] = 1;
        work.push_back(t);
      }
    });
  }

  // --- sweep: sever every edge of every unmarked node. The pins keep the
  // nodes alive until they drop below, so severance order is free; reference
  // counting then cascades the frees. ---------------------------------------
  std::unordered_set<std::uint64_t> swept_ids;
  std::unordered_set<std::uint64_t> swept_shapes;
  for (std::size_t i = 0; i < n_obj; ++i) {
    if (marked[i] != 0) continue;
    object& o = *objs[i];
    swept_ids.insert(o.id);
    if (o.shape_id != 0) swept_shapes.insert(o.shape_id);
    // A swept shaped object must leave the shape system: its shape id still
    // describes a props layout that is about to be cleared, and a stale
    // reference probing a shape-keyed cache way would otherwise index into
    // the emptied props vector.
    o.demote_to_dictionary();
    o.props.clear();
    o.elements.clear();
    o.proto.reset();
    o.closure.reset();
    o.captures.clear();
    o.owner.reset();
    o.code.reset();
    ++out.objects_collected;
  }
  for (std::size_t i = 0; i < n_env; ++i) {
    if (marked[n_obj + i] != 0) continue;
    environment& e = *envs[i];
    e.slots_.clear();
    e.parent_.reset();
    ++out.envs_collected;
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (marked[n_obj + n_env + i] != 0) continue;
    *cells[i] = value::undefined();
    ++out.cells_collected;
  }

  // Swept ids can never be probed again (ids are process-unique), but a
  // stale identity way would pin nothing while still occupying the slot;
  // clearing now keeps the satellite guarantee that a swept object's IC slot
  // misses. Shape-keyed ways are object-independent (they describe a layout,
  // not an object) and stay valid while any object of that shape lives — but
  // when the sweep killed a shape's LAST object, the way can only ever hit
  // again if some future object re-derives the same interned id, and the
  // shape itself is now a compaction candidate that would orphan the way
  // anyway. Those dead-shape ways are cleared too; surviving ways compact
  // down so fills keep appending densely.
  if (!swept_ids.empty()) {
    for (auto& [chunk, block] : ctx_.ic_tables_) {
      (void)chunk;
      for (ic_entry& slot : block.slots) {
        unsigned kept = 0;
        bool cleared = false;
        for (unsigned w = 0; w < slot.n_ways; ++w) {
          const ic_way& way = slot.ways[w];
          const bool stale_identity =
              way.mode == way_identity && swept_ids.count(way.key) != 0;
          const bool dead_shape = way.mode == way_shape &&
                                  swept_shapes.count(way.key) != 0 &&
                                  ctx_.shapes_ != nullptr &&
                                  ctx_.shapes_->shape_is_dead(way.key);
          if (stale_identity || dead_shape) {
            cleared = true;
            continue;
          }
          slot.ways[kept++] = slot.ways[w];
        }
        if (cleared) {
          for (unsigned w = kept; w < slot.n_ways; ++w) slot.ways[w] = ic_way{};
          slot.n_ways = static_cast<std::uint8_t>(kept);
          ++out.ic_entries_cleared;
        }
      }
    }
  }

  // Shape-table compaction (no-op below the pressure threshold): shapes only
  // referenced by objects that just died can be dropped, keeping the
  // registry O(live shapes) for shape-churning scripts.
  if (ctx_.shapes_ != nullptr) ctx_.shapes_->compact();

  // --- rebuild registries from survivors (deterministic compaction) -------
  objects_.clear();
  envs_.clear();
  cells_.clear();
  for (std::size_t i = 0; i < n_obj; ++i) {
    if (marked[i] != 0) objects_.push_back(objs[i]);
  }
  for (std::size_t i = 0; i < n_env; ++i) {
    if (marked[n_obj + i] != 0) envs_.push_back(envs[i]);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (marked[n_obj + n_env + i] != 0) cells_.push_back(cells[i]);
  }

  // Drop the pins: severed garbage frees here, releasing its heap charges.
  objs.clear();
  envs.clear();
  cells.clear();
  const std::size_t heap_after = *ctx_.heap_used_;
  out.bytes_reclaimed = heap_before > heap_after ? heap_before - heap_after : 0;

  allocs_since_cycle_ = 0;
  pending_ = false;
  ++collections_total_;
  out.seconds = seconds_since(t0);

  run_.collections += 1;
  run_.objects_collected += out.objects_collected;
  run_.bytes_reclaimed += out.bytes_reclaimed;
  run_.ic_entries_cleared += out.ic_entries_cleared;
  // Billing compensation: the tenant allocated these bytes this run even
  // though the collector freed them; allocation_churn adds them back so a
  // run bills identically with the collector on or off.
  ctx_.gc_reclaimed_run_ += out.bytes_reclaimed;
  return out;
}

void gc_heap::sever_all() {
  for (const auto& w : objects_) {
    if (const object_ptr o = w.lock()) {
      o->props.clear();
      o->elements.clear();
      o->proto.reset();
      o->closure.reset();
      o->captures.clear();
      o->owner.reset();
      o->code.reset();
    }
  }
  for (const auto& w : envs_) {
    if (const env_ptr e = w.lock()) {
      e->slots_.clear();
      e->parent_.reset();
    }
  }
  for (const auto& w : cells_) {
    if (const std::shared_ptr<value> c = w.lock()) *c = value::undefined();
  }
  objects_.clear();
  envs_.clear();
  cells_.clear();
}

}  // namespace nakika::js
