#include "js/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "js/errors.hpp"

namespace nakika::js {

namespace {

// Multi-character punctuators, longest first so maximal munch works.
constexpr const char* punctuators[] = {
    ">>>=", "===", "!==", ">>>", "<<=", ">>=", "&&", "||", "==", "!=", "<=",
    ">=",  "++",  "--",  "+=",  "-=",  "*=",  "/=", "%=", "&=", "|=", "^=",
    "<<",  ">>",  "{",   "}",   "(",   ")",   "[",  "]",  ";",  ",",  "<",
    ">",   "+",   "-",   "*",   "/",   "%",   "&",  "|",  "^",  "!",  "~",
    "?",   ":",   "=",   ".",
};

class lexer {
 public:
  explicit lexer(std::string_view src) : src_(src) {}

  std::vector<token> run() {
    std::vector<token> out;
    while (true) {
      skip_trivia();
      if (pos_ >= src_.size()) {
        out.push_back({token_kind::end_of_input, "", 0.0, line_});
        return out;
      }
      out.push_back(next_token());
    }
  }

 private:
  void skip_trivia() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        const int start_line = line_;
        pos_ += 2;
        while (true) {
          if (pos_ + 1 >= src_.size()) {
            throw script_error(script_error_kind::syntax,
                               "unterminated block comment", start_line);
          }
          if (src_[pos_] == '*' && src_[pos_ + 1] == '/') {
            pos_ += 2;
            break;
          }
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
      } else {
        return;
      }
    }
  }

  token next_token() {
    const char c = src_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      return lex_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      return lex_identifier();
    }
    if (c == '"' || c == '\'') {
      return lex_string();
    }
    return lex_punctuator();
  }

  token lex_number() {
    const std::size_t start = pos_;
    const int line = line_;
    if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
        (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
      pos_ += 2;
      const std::size_t digits = pos_;
      while (pos_ < src_.size() && std::isxdigit(static_cast<unsigned char>(src_[pos_]))) ++pos_;
      if (pos_ == digits) {
        throw script_error(script_error_kind::syntax, "malformed hex literal", line);
      }
      const std::string text(src_.substr(start, pos_ - start));
      return {token_kind::number, text,
              static_cast<double>(std::strtoull(text.c_str() + 2, nullptr, 16)), line};
    }
    while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) ++pos_;
    if (pos_ < src_.size() && src_[pos_] == '.') {
      ++pos_;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) ++pos_;
    }
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) ++pos_;
      const std::size_t digits = pos_;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) ++pos_;
      if (pos_ == digits) {
        throw script_error(script_error_kind::syntax, "malformed exponent", line);
      }
    }
    const std::string text(src_.substr(start, pos_ - start));
    return {token_kind::number, text, std::strtod(text.c_str(), nullptr), line};
  }

  token lex_identifier() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_' ||
            src_[pos_] == '$')) {
      ++pos_;
    }
    std::string text(src_.substr(start, pos_ - start));
    const token_kind kind =
        is_reserved_word(text) ? token_kind::keyword : token_kind::identifier;
    return {kind, std::move(text), 0.0, line_};
  }

  token lex_string() {
    const char quote = src_[pos_++];
    const int line = line_;
    std::string text;
    while (true) {
      if (pos_ >= src_.size() || src_[pos_] == '\n') {
        throw script_error(script_error_kind::syntax, "unterminated string literal", line);
      }
      const char c = src_[pos_++];
      if (c == quote) break;
      if (c != '\\') {
        text.push_back(c);
        continue;
      }
      if (pos_ >= src_.size()) {
        throw script_error(script_error_kind::syntax, "unterminated escape", line);
      }
      const char e = src_[pos_++];
      switch (e) {
        case 'n': text.push_back('\n'); break;
        case 't': text.push_back('\t'); break;
        case 'r': text.push_back('\r'); break;
        case '0': text.push_back('\0'); break;
        case 'b': text.push_back('\b'); break;
        case 'f': text.push_back('\f'); break;
        case 'v': text.push_back('\v'); break;
        case 'x': {
          if (pos_ + 1 >= src_.size()) {
            throw script_error(script_error_kind::syntax, "bad \\x escape", line);
          }
          const std::string hex(src_.substr(pos_, 2));
          char* end = nullptr;
          const long v = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 2) {
            throw script_error(script_error_kind::syntax, "bad \\x escape", line);
          }
          text.push_back(static_cast<char>(v));
          pos_ += 2;
          break;
        }
        case '\n':
          ++line_;  // line continuation
          break;
        default:
          text.push_back(e);  // \' \" \\ / and any other pass through
          break;
      }
    }
    return {token_kind::string, std::move(text), 0.0, line};
  }

  token lex_punctuator() {
    for (const char* p : punctuators) {
      const std::string_view sv(p);
      if (src_.substr(pos_).starts_with(sv)) {
        pos_ += sv.size();
        return {token_kind::punctuator, std::string(sv), 0.0, line_};
      }
    }
    throw script_error(script_error_kind::syntax,
                       std::string("unexpected character '") + src_[pos_] + "'", line_);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<token> tokenize(std::string_view source) {
  return lexer(source).run();
}

}  // namespace nakika::js
