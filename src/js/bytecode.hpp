// Compiled form of a script: compact opcode streams with constant pools and
// resolved local slots. Chunks are immutable after compilation and hold no
// pointers into the AST or into any scripting context, so one compiled program
// can be shared across sandboxes (and, later, across worker threads) and
// cached by content hash.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "js/value.hpp"

namespace nakika::js {

// Which execution engine evaluates scripts. The tree-walker is kept as the
// reference oracle for differential testing; the bytecode VM is the fast path.
enum class engine_kind { tree_walker, bytecode };

[[nodiscard]] inline const char* to_string(engine_kind e) {
  return e == engine_kind::tree_walker ? "tree_walker" : "bytecode";
}

enum class opcode : std::uint8_t {
  // --- literals / constants -------------------------------------------------
  push_const,       // a = constant index
  push_undefined,
  push_null,
  push_true,
  push_false,

  // --- stack shuffling ------------------------------------------------------
  pop,
  dup,
  swap,

  // --- locals, cells, captures, globals ------------------------------------
  load_local,       // a = slot
  store_local,      // a = slot; keeps value on stack
  store_local_pop,  // a = slot; pops the value (statement-position store)
  store_cell_pop,   // a = cell slot; pops the value
  update_local,     // a = slot, b = flags (bit1 decrement); ++/-- with result discarded
  update_cell,      // a = cell slot, b = flags; same for boxed bindings
  make_cell,        // a = cell slot; allocates a fresh boxed binding
  load_cell,        // a = cell slot (this frame's boxed locals)
  store_cell,       // a = cell slot; keeps value
  load_capture,     // a = capture index (from the closure object)
  store_capture,    // a = capture index; keeps value
  load_global,      // a = name const, b = ic slot; missing name is a runtime error
  load_global_soft, // a = name const, b = ic slot; missing name yields undefined
  store_global,     // a = name const, b = ic slot; creates/overwrites, keeps value
  typeof_global,    // a = name const; typeof with undeclared tolerance

  // --- objects and properties ----------------------------------------------
  make_array,       // a = element count (popped)
  make_object,      // a = entry count (pops key/value pairs)
  make_closure,     // a = nested fn index
  get_prop,         // a = name const, b = ic slot; pops base
  set_prop,         // a = name const, b = ic slot; pops base+value, keeps value
  get_index,        // pops base+index
  set_index,        // pops base+index+value, keeps value
  get_method,       // a = name const, b = ic slot; keeps base, pushes callee
                    // (method-call error on undefined)
  get_index_method, // a = ic slot; pops index, keeps base, pushes callee
  delete_prop,      // a = name const; pops base, pushes bool
  delete_index,     // pops base+index, pushes bool
  update_prop,      // a = name const, b = flags (bit0 prefix, bit1 decrement),
                    // c = ic slot; pops base
  update_index,     // b = flags; pops base+index
  keys,             // pops a value, pushes its for-in key list as an array
  forin_next,       // a = exit target, b = keys slot, c = index slot; pushes
                    // the next key and advances, or jumps to a when done

  // --- operators ------------------------------------------------------------
  binary,           // a = js::binop; pops two, pushes result
  compound,         // a = js::binop; compound-assignment flavor of `binary`
  // Fused operand forms: the compiler emits these when an operand is a local
  // slot or a constant, eliminating the push/pop traffic that dominates tight
  // loops. Semantics are identical to `binary` (same apply_binop kernel).
  binary_ll,        // a = binop, b = left slot, c = right slot
  binary_lc,        // a = binop, b = left slot, c = right const
  binary_cl,        // a = binop, b = left const, c = right slot
  binary_sl,        // a = binop, b = right slot; left popped from stack
  binary_sc,        // a = binop, b = right const; left popped from stack
  binary_ls,        // a = binop, b = left slot; right popped from stack
                    // (emitted only when the right operand is side-effect
                    // free, so reading the slot late is unobservable)
  not_op,
  negate,
  to_number,        // unary + / numeric coercion for ++ and --
  bit_not,
  typeof_op,

  // --- control flow ---------------------------------------------------------
  jump,             // a = target instruction index
  jump_if_false,    // a = target; pops condition
  jump_if_true,     // a = target; pops condition
  jump_if_false_keep, // a = target; jumps keeping value, else pops
  jump_if_true_keep,  // a = target; jumps keeping value, else pops
  loop_back,        // a = target; flushes fuel + checks the kill flag

  // --- calls ----------------------------------------------------------------
  call,             // a = argc; stack: callee, args... (this = undefined)
  call_method,      // a = argc; stack: this, callee, args...
  check_ctor,       // peeks the would-be constructor; fails if not callable
                    // (tree-walker order: `new` checks before evaluating args)
  call_new,         // a = argc; stack: ctor, args...
  ret,              // pops return value, leaves the frame
  ret_undefined,

  // --- exceptions -----------------------------------------------------------
  push_handler,     // a = handler target
  pop_handler,
  throw_op,         // pops value, raises it as a script exception

  // --- fused superinstructions ----------------------------------------------
  // Emitted by the compiler's fusion pass (compiler.cpp fuse_code) for the
  // hottest adjacent pairs measured by `bench_interpreter --profile-pairs`.
  // The second instruction stays in the stream (jump targets keep their
  // indices; a branch INTO it executes it standalone, which is still
  // correct); the fused handler executes both halves, charges both halves'
  // fuel, and skips it. Operands: the fused instruction carries op1's
  // operands, op2's are read from the next instruction.
  load_local_get_prop,      // load_local a; then get_prop at pc+1
  load_global_get_prop,     // load_global a,b; then get_prop at pc+1
  load_local_load_local,    // load_local a; then load_local at pc+1
  binary_lc_jump_if_false,  // binary_lc a,b,c; then jump_if_false at pc+1
  binary_ll_jump_if_false,  // binary_ll a,b,c; then jump_if_false at pc+1
};

// Number of opcodes (for dispatch tables and pair-profile histograms). Must
// track the last enumerator above.
inline constexpr std::size_t opcode_count =
    static_cast<std::size_t>(opcode::binary_ll_jump_if_false) + 1;

// Human-readable opcode names, enum order (pair-profiler and disassembly
// output). Keep in sync with the enum; a missing tail entry prints as null.
[[nodiscard]] inline const char* opcode_name(opcode op) {
  static constexpr const char* names[opcode_count] = {
      "push_const", "push_undefined", "push_null", "push_true", "push_false",
      "pop", "dup", "swap",
      "load_local", "store_local", "store_local_pop", "store_cell_pop",
      "update_local", "update_cell", "make_cell", "load_cell", "store_cell",
      "load_capture", "store_capture", "load_global", "load_global_soft",
      "store_global", "typeof_global",
      "make_array", "make_object", "make_closure", "get_prop", "set_prop",
      "get_index", "set_index", "get_method", "get_index_method",
      "delete_prop", "delete_index", "update_prop", "update_index", "keys",
      "forin_next",
      "binary", "compound", "binary_ll", "binary_lc", "binary_cl", "binary_sl",
      "binary_sc", "binary_ls", "not_op", "negate", "to_number", "bit_not",
      "typeof_op",
      "jump", "jump_if_false", "jump_if_true", "jump_if_false_keep",
      "jump_if_true_keep", "loop_back",
      "call", "call_method", "check_ctor", "call_new", "ret", "ret_undefined",
      "push_handler", "pop_handler", "throw_op",
      "load_local_get_prop", "load_global_get_prop", "load_local_load_local",
      "binary_lc_jump_if_false", "binary_ll_jump_if_false",
  };
  const auto i = static_cast<std::size_t>(op);
  return i < opcode_count ? names[i] : "?";
}

struct bc_instr {
  opcode op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t line = 0;
};

// Where a closure capture comes from when the closure is created: either a
// boxed local (cell) of the enclosing frame, or a capture the enclosing
// closure itself carries (transitive capture).
struct capture_src {
  bool from_parent_cell = true;
  std::uint32_t index = 0;
};

// A variable binding inside a frame: plain slot or boxed cell. Boxed bindings
// are used for everything captured by a nested function.
struct bc_binding {
  bool is_cell = false;
  std::uint32_t index = 0;
};

// One way of a polymorphic inline-cache entry. Shaped objects key on their
// shape id (one way serves the whole stream of same-layout objects);
// dictionary-mode objects fall back to the PR-4 identity keying
// (object id + shape generation). Both id kinds come from the same
// process-unique allocator, so the two modes can never collide on `key`.
struct ic_way {
  std::uint64_t key = 0;        // shape id or object id; 0 only when empty
  std::uint32_t shape_gen = 0;  // identity mode: structural-change guard
  std::uint16_t prop_index = 0;
  std::uint8_t mode = 0;        // way_empty / way_shape / way_identity
};

inline constexpr std::uint8_t way_empty = 0;
inline constexpr std::uint8_t way_shape = 1;
inline constexpr std::uint8_t way_identity = 2;

// One polymorphic inline-cache entry (up to 4 ways, then megamorphic).
// Chunks are immutable and shared across sandboxes (and worker threads), so
// the mutable cache state lives in a per-context side table
// (context::ic_slots) indexed by the instruction's ic slot; only the slot
// COUNT lives in the chunk. A megamorphic site stops probing and filling
// entirely (the site sees too many layouts for caching to pay off); `mega`
// is sticky until the GC or reset clears the entry.
struct ic_entry {
  static constexpr unsigned max_ways = 4;
  ic_way ways[max_ways];
  std::uint8_t n_ways = 0;
  bool mega = false;
};

// One compiled function (the top-level script compiles to one of these too).
struct compiled_fn {
  std::string name;                 // diagnostic name; empty for anonymous
  std::vector<bc_binding> params;
  bc_binding this_binding;          // invalid (unused) for top-level chunks
  bc_binding arguments_binding;
  bool is_toplevel = false;
  // Whether the body ever mentions `arguments`. When false the VM skips
  // materializing the per-call extras array entirely (the tree-walker always
  // builds it, but an unreferenced array is unobservable).
  bool uses_arguments = false;

  std::uint32_t num_slots = 0;
  std::uint32_t num_cells = 0;
  std::uint32_t num_ics = 0;        // inline-cache slots referenced by `code`

  std::vector<bc_instr> code;
  std::vector<value> consts;        // numbers and strings only: shareable
  std::vector<std::shared_ptr<const compiled_fn>> fns;  // nested functions
  std::vector<capture_src> captures;
};

using compiled_fn_ptr = std::shared_ptr<const compiled_fn>;

struct compiled_program {
  std::string name;           // source name (usually the script URL)
  compiled_fn_ptr top;        // top-level code
  std::size_t source_bytes = 0;
  std::size_t instruction_count = 0;  // across all functions, for stats
};

using compiled_program_ptr = std::shared_ptr<const compiled_program>;

}  // namespace nakika::js
