// Token model for the Na Kika scripting language, a JavaScript subset that
// covers every construct used by the paper's scripts (event handlers, policy
// objects, vocabularies) plus the conventional library surface.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace nakika::js {

enum class token_kind : std::uint8_t {
  end_of_input,
  identifier,
  keyword,
  number,
  string,
  punctuator,
};

struct token {
  token_kind kind = token_kind::end_of_input;
  std::string text;      // identifier name, keyword, punctuator spelling, or string value
  double number = 0.0;   // numeric literal value
  int line = 0;

  [[nodiscard]] bool is_keyword(std::string_view kw) const {
    return kind == token_kind::keyword && text == kw;
  }
  [[nodiscard]] bool is_punct(std::string_view p) const {
    return kind == token_kind::punctuator && text == p;
  }
};

// True if `word` is a reserved word of the language.
[[nodiscard]] bool is_reserved_word(std::string_view word);

}  // namespace nakika::js
