#include "js/shapes.hpp"

#include <algorithm>

namespace nakika::js {

namespace {
// A shape's name->index map only pays for itself on shapes that are queried
// repeatedly (the map build is O(props) and each query object may carry many
// properties). Below this many queries the caller's linear scan wins.
constexpr std::uint32_t index_build_after_lookups = 4;
}  // namespace

shape_table::shape_table(std::size_t max_shapes)
    : max_shapes_(max_shapes), root_(next_object_id()) {
  nodes_.emplace(root_, node{});
}

std::uint64_t shape_table::transition(std::uint64_t parent, std::string_view key) {
  auto it = nodes_.find(parent);
  if (it == nodes_.end()) {
    // Parent was compacted away while an object still carried it (the object
    // keeps a valid layout; only the tree node is gone). Re-root the walk so
    // the object can keep transitioning: treat as overflow below if full.
    if (nodes_.size() >= max_shapes_) {
      ++dict_fallbacks_;
      return 0;
    }
    it = nodes_.emplace(parent, node{}).first;
  }
  for (const auto& [name, child] : it->second.kids) {
    if (name == key) return child;
  }
  if (nodes_.size() >= max_shapes_) {
    ++dict_fallbacks_;
    return 0;
  }
  const std::uint64_t child_id = next_object_id();
  node child;
  child.parent = parent;
  child.nprops = it->second.nprops + 1;
  it->second.kids.emplace_back(std::string(key), child_id);
  nodes_.emplace(child_id, std::move(child));  // invalidates `it`; not reused
  ++transitions_;
  return child_id;
}

std::uint64_t shape_table::parent_of(std::uint64_t id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() ? it->second.parent : 0;
}

int shape_table::index_of(std::uint64_t id, std::string_view key,
                          const std::vector<object::property>& props) {
  node* np = memo_node_;
  if (id != memo_id_ || np == nullptr) {
    const auto it = nodes_.find(id);
    if (it == nodes_.end()) return -2;
    np = &it->second;
    memo_id_ = id;
    memo_node_ = np;
  }
  node& n = *np;
  if (!n.indexed) {
    if (++n.lookups < index_build_after_lookups) return -2;
    n.index.reserve(props.size());
    for (std::size_t i = 0; i < props.size(); ++i) {
      n.index.emplace(props[i].key, static_cast<std::uint32_t>(i));
    }
    n.indexed = true;
  }
  const auto hit = n.index.find(key);
  return hit != n.index.end() ? static_cast<int>(hit->second) : -1;
}

void shape_table::retain(std::uint64_t id) {
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) ++it->second.live;
}

void shape_table::release(std::uint64_t id) {
  const auto it = nodes_.find(id);
  if (it != nodes_.end() && it->second.live > 0) --it->second.live;
}

bool shape_table::shape_is_dead(std::uint64_t id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() || it->second.live == 0;
}

const object_ptr& shape_table::enum_keys(std::uint64_t id) const {
  static const object_ptr none;
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? none : it->second.enum_cache;
}

void shape_table::set_enum_keys(std::uint64_t id, object_ptr keys) {
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.enum_cache = std::move(keys);
}

void shape_table::compact() {
  // Under no pressure, keep everything: dropping a dead interior shape means
  // the next run of the same object literal re-derives a fresh id and every
  // cache way keyed on the old one goes cold.
  const std::size_t threshold = std::max<std::size_t>(16, max_shapes_ / 2);
  if (nodes_.size() <= threshold) return;
  memo_id_ = 0;
  memo_node_ = nullptr;
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (it->second.live == 0 && it->first != root_) {
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }
  // Drop transition edges to erased children (a surviving child whose parent
  // was erased simply loses its ancestry: parent_of returns 0, which stops
  // cache-promotion walks early but never misdirects them).
  for (auto& [id, n] : nodes_) {
    (void)id;
    std::erase_if(n.kids,
                  [this](const auto& kid) { return nodes_.find(kid.second) == nodes_.end(); });
  }
}

}  // namespace nakika::js
